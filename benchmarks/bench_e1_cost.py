"""E1 — Inter-cluster transmissions per message (paper Section 5, cost).

Paper claim: the cluster tree needs k-1 inter-cluster transmissions per
data message (optimal); the basic algorithm needs at least k-1 and
"probably more if there is more than one host per cluster".
"""

from conftest import rows_by

from repro.experiments import run_e1_cost


def test_e1_cost(run_experiment):
    result = run_experiment(run_e1_cost)
    for row in result.rows:
        # Tree within 1.6x of the k-1 optimum everywhere.
        assert row["tree"] <= row["optimal"] * 1.6 + 0.5, row
        # Basic is never cheaper once clusters hold several hosts.
        if row["hosts_per_cluster"] >= 2:
            assert row["basic"] >= row["tree"], row
    # Basic's cost grows with hosts per cluster; the tree's does not.
    tree_m1 = [r["tree"] for r in result.rows if r["hosts_per_cluster"] == 1]
    tree_m4 = [r["tree"] for r in result.rows if r["hosts_per_cluster"] == 4]
    basic_m1 = [r["basic"] for r in result.rows if r["hosts_per_cluster"] == 1]
    basic_m4 = [r["basic"] for r in result.rows if r["hosts_per_cluster"] == 4]
    assert sum(basic_m4) > 2 * sum(basic_m1)
    assert sum(tree_m4) < 1.5 * sum(tree_m1) + 1.0
