"""E18 — Relative reliability (paper Section 1).

Paper: "it seems more justified to speak of relative reliability of a
protocol, referring to the degree to which it is capable of utilizing
communication opportunities presented by the dynamically changing
network."  This benchmark grants 10-second connectivity windows and
scores each tuning by the fraction of granted opportunities it used.
"""

from repro.experiments import run_e18_relative_reliability


def test_e18_relative_reliability(run_experiment):
    result = run_experiment(run_e18_relative_reliability)
    rows = sorted(result.rows, key=lambda r: r["scale_factor"])
    # Fast exchange uses every opportunity it is given.
    assert rows[0]["relative_reliability"] == 1.0
    # Slow exchange misses granted windows — lower relative reliability,
    # at proportionally lower control cost.
    assert rows[-1]["relative_reliability"] < 0.8
    assert rows[-1]["control_sent"] < rows[0]["control_sent"] / 4
    # Relative reliability is weakly monotone in exchange frequency.
    values = [r["relative_reliability"] for r in rows]
    assert all(a >= b - 0.05 for a, b in zip(values, values[1:]))
