"""E13 — Control piggybacking (paper Section 6, optimizations).

Paper claim: "some control messages that are dispatched by the same
host at about the same time can be piggybacked in one packet."  The
saving grows with concurrency (multiple protocol instances sharing a
host's port).
"""

from conftest import rows_by

from repro.experiments import run_e13_piggyback


def test_e13_piggyback(run_experiment):
    result = run_experiment(run_e13_piggyback)
    for row in result.rows:
        assert row["delivered"], row
    # With several sources, bundling measurably reduces control packets.
    for sources in (2, 3):
        (plain,) = rows_by(result, sources=sources, piggyback=False)
        (bundled,) = rows_by(result, sources=sources, piggyback=True)
        assert bundled["control_packets"] < plain["control_packets"], sources
        assert bundled["bundles"] > 0
    (b3,) = rows_by(result, sources=3, piggyback=True)
    (p3,) = rows_by(result, sources=3, piggyback=False)
    assert b3["control_packets"] < 0.9 * p3["control_packets"]
