"""E11 — Figure 3.2: the host parent graph induces a cluster tree
(paper Section 4.1/4.3).

Paper claim: the attachment procedure dynamically settles into a host
parent graph that is a tree rooted at the source, with exactly one
leader per cluster whose children include all its cluster mates.
"""

from repro.experiments import run_e11_fig32


def test_e11_fig32(run_experiment):
    result = run_experiment(run_e11_fig32)
    for row in result.rows:
        assert row["violations"] == 0, (row, result.notes)
