"""E16 — Host-level cost inference vs clock skew (paper Section 2).

The paper suggests inferring whether a delivery crossed an expensive
link from the message's time in transit.  That comparison of one-way
delays implicitly assumes host clocks agree to within the
cheap/expensive transit gap.  This benchmark makes the assumption
explicit: accuracy is perfect for sub-millisecond offsets, degrades as
offsets approach the transit gap, and delivery is never endangered
(CLUSTER sets are advisory, not safety-critical).
"""

from repro.experiments import run_e16_clock_skew


def test_e16_clock_skew(run_experiment):
    result = run_experiment(run_e16_clock_skew)
    rows = sorted(result.rows, key=lambda r: r["max_offset_s"])
    for row in rows:
        assert row["delivered"], row          # delivery always survives
    assert rows[0]["cluster_accuracy"] == 1.0  # perfect clocks -> perfect
    assert rows[1]["cluster_accuracy"] == 1.0  # 1 ms skew: still perfect
    # Accuracy is (weakly) worse at the largest offset than with none.
    assert rows[-1]["cluster_accuracy"] < rows[0]["cluster_accuracy"] - 0.2
