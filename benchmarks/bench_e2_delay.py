"""E2 — Delivery delay, tree vs basic (paper Section 5, delay).

Paper claim: "our algorithm appears to be comparable with the basic
one" on delay — the basic algorithm rides the network's shortest paths,
the tree pays extra host hops but avoids serializing one copy per
destination at the source.
"""

from repro.experiments import run_e2_delay


def test_e2_delay(run_experiment):
    result = run_experiment(run_e2_delay)
    for row in result.rows:
        hosts = row["clusters"] * row["hosts_per_cluster"]
        if hosts <= 12:
            # Comparable: within 3x of each other at moderate scale.
            assert row["tree_mean"] < 3 * row["basic_mean"] + 0.05, row
    # At the largest point the basic algorithm's source serialization
    # shows up; the tree must not be the one collapsing.
    last = result.rows[-1]
    assert last["tree_mean"] < last["basic_mean"] * 2
