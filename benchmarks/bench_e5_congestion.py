"""E5 — Source-server congestion (paper Section 5).

Paper claim: "the basic algorithm can cause congestion of the source
host's server since data messages go out separately to every host. Our
algorithm does not present such a problem."
"""

from conftest import rows_by

from repro.experiments import run_e5_congestion


def test_e5_congestion(run_experiment):
    result = run_experiment(run_e5_congestion)
    for hosts in sorted({r["hosts"] for r in result.rows}):
        (tree,) = rows_by(result, hosts=hosts, protocol="tree")
        (basic,) = rows_by(result, hosts=hosts, protocol="basic")
        assert basic["concentration"] > 2 * tree["concentration"], hosts
        assert basic["source_access_tx_per_msg"] > \
            tree["source_access_tx_per_msg"], hosts
    # Basic's concentration grows with N; the tree's stays flat.
    basic_rows = sorted(rows_by(result, protocol="basic"),
                        key=lambda r: r["hosts"])
    assert basic_rows[-1]["concentration"] > 2 * basic_rows[0]["concentration"]
