"""E9 — Figure 4.1: non-neighbor gap filling (paper Section 4.4).

Paper scenario: source s isolated; i holds {1,3}, j holds {2,3}.
Neither INFO set precedes the other so no re-parenting is possible, and
i, j are not parent-graph neighbors — yet both must end with {1,2,3},
each supplied by the other.
"""

from repro.experiments import run_e9_fig41


def test_e9_fig41(run_experiment):
    result = run_experiment(run_e9_fig41)
    by_host = {r["host"]: r for r in result.rows}
    assert by_host["i"]["before"] == "[1, 3]"
    assert by_host["j"]["before"] == "[2, 3]"
    for row in result.rows:
        assert row["after"] == "[1, 2, 3]", row
        assert row["reattached"] is False, row
    assert by_host["i"]["gap_supplier"] == "j"
    assert by_host["j"]["gap_supplier"] == "i"
