"""E21 — Adversarial packet timing: fixed vs adaptive control plane.

Seed-matched loss x corruption x delay-skew sweep with two scheduled
host outages per point.  The adaptive control plane (RTT-estimated
timeouts, backoff with jitter, congestion-aware gap filling) must
deliver at least as large a fraction as the fixed-timeout config at
every operating point, and recover strictly faster at the two harshest
points — where loss delays control round trips and corruption eats
retransmissions, the fixed windows are exactly wrong.
"""

import math

from repro.experiments import run_e21_adversarial_timing
from repro.experiments.runners import E21_POINTS

#: the two harshest operating points (last entries of the sweep)
HARSHEST = tuple(p[0] for p in E21_POINTS[-2:])


def test_e21_adversarial_timing(run_experiment):
    result = run_experiment(run_e21_adversarial_timing)
    rows = {(r["point"], r["mode"]): r for r in result.rows}
    for point, *_ in E21_POINTS:
        fixed, adaptive = rows[(point, "fixed")], rows[(point, "adaptive")]
        assert adaptive["delivered"] >= fixed["delivered"], (point, fixed,
                                                            adaptive)
    for point in HARSHEST:
        fixed, adaptive = rows[(point, "fixed")], rows[(point, "adaptive")]
        assert not math.isnan(adaptive["recovery_mean_s"]), (point, adaptive)
        assert adaptive["recovery_mean_s"] < fixed["recovery_mean_s"], (
            point, fixed, adaptive)
    # The corruption points must actually exercise the wire hardening.
    assert rows[("harsh", "adaptive")]["corrupt_dropped"] > 0
    assert rows[("harsh", "adaptive")]["dup_suppressed"] > 0
