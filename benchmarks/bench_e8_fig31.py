"""E8 — Figure 3.1: host-level broadcast vs the multicast lower bound.

Paper claim (Section 3): with nonprogrammable servers, "no matter what
type of protocol one comes up with ... it will not, in general, have
optimal performance" — on the Figure 3.1 diamond the in-network optimum
traverses every link once (6), while any host-level scheme must cross
the s1-s4 trunk twice (8).
"""

from repro.experiments import run_e8_fig31


def test_e8_fig31(run_experiment):
    result = run_experiment(run_e8_fig31)
    by_scheme = {r["scheme"]: r["link_traversals_per_msg"] for r in result.rows}
    assert by_scheme["server multicast (lower bound)"] == 6.0
    assert 7.5 <= by_scheme["basic"] <= 8.5
    assert 7.5 <= by_scheme["tree"] <= 9.0
    assert by_scheme["tree"] > by_scheme["server multicast (lower bound)"]
