"""E15 — Delay adaptation to changing load (paper Section 3).

Paper claim: "at a later time, due to changing message traffic, some
other cluster can become a more desirable parent ... we may have to
dynamically restructure the cluster tree to minimize delays."  Case II
option 3 is the mechanism; this benchmark shifts cross-traffic onto the
tree's current path mid-run and measures whether the leader migrates.
"""

from conftest import rows_by

from repro.experiments import run_e15_load_adaptation


def test_e15_load_adaptation(run_experiment):
    result = run_experiment(run_e15_load_adaptation)
    (on,) = rows_by(result, delay_optimization=True)
    (off,) = rows_by(result, delay_optimization=False)
    assert on["delivered"] and off["delivered"]
    assert on["leader_migrated"] is True
    assert off["leader_migrated"] is False
    # The whole point: II.3 cuts post-shift delay substantially.
    assert on["phase2_delay_mean"] < 0.6 * off["phase2_delay_mean"]
