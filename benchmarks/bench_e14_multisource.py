"""E14 — Multiple-source broadcast (paper Section 2).

Paper claim: "a multiple-source broadcast can be performed reliably by
running several identical single-source protocols ... From the point of
view of efficiency this option also appears to be a reasonable one."

Shape: control traffic scales with the number of instances; the
per-message data cost and delay stay flat (each instance builds its own
near-optimal tree).
"""

from repro.experiments import run_e14_multisource


def test_e14_multisource(run_experiment):
    result = run_experiment(run_e14_multisource)
    rows = sorted(result.rows, key=lambda r: r["sources"])
    for row in rows:
        assert row["delivered"], row
    # Control cost grows roughly linearly with the instance count...
    assert rows[-1]["control_per_s"] > 2 * rows[0]["control_per_s"]
    # ...while per-message data cost stays in the same band.
    assert rows[-1]["inter_cluster_data_per_msg"] < \
        2 * rows[0]["inter_cluster_data_per_msg"]
