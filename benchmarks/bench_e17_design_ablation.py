"""E17 — Implementation-mechanism ablations (DESIGN.md section 4).

Not a paper claim: these mechanisms fill gaps the paper's prose leaves
open, and each was added in response to an observed failure or waste
pattern.  The benchmark re-runs the stress regime (mass catch-up after
a half-network partition heals, through 56 kbit/s trunks) with each
mechanism disabled.
"""

from conftest import rows_by

from repro.experiments import run_e17_design_ablation


def test_e17_design_ablation(run_experiment):
    result = run_experiment(run_e17_design_ablation)
    by_variant = {r["variant"]: r for r in result.rows}
    for row in result.rows:
        assert row["delivered_fraction"] == 1.0, row
    full = by_variant["full protocol"]
    no_suppression = by_variant["no gap-fill suppression"]
    tiny_batch = by_variant["tiny inter batch (1)"]
    # Suppression cuts duplicate fills and speeds catch-up.
    assert no_suppression["duplicates"] > full["duplicates"]
    assert no_suppression["gapfills"] > full["gapfills"]
    assert no_suppression["completion_s"] > full["completion_s"]
    # Starving the catch-up batch stretches completion severely.
    assert tiny_batch["completion_s"] > 2 * full["completion_s"]
