"""E3 — Recovery locality under loss (paper Section 5, recovery).

Paper claim: lost messages are redelivered "either by one of its
cluster neighbors or by a host from the parent cluster"; in the basic
algorithm "the source itself would always have to enact a redelivery".
"""

from conftest import rows_by

from repro.experiments import run_e3_recovery


def test_e3_recovery(run_experiment):
    result = run_experiment(run_e3_recovery)
    for row in rows_by(result, protocol="basic"):
        assert row["from_source_fraction"] == 1.0, row
        assert row["delivered"] == 1.0, row
    for row in rows_by(result, protocol="tree"):
        assert row["delivered"] == 1.0, row
        assert row["local_fraction"] > 0.3, row
        assert row["from_source_fraction"] < 0.8, row
