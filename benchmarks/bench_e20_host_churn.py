"""E20 — Reliability and recovery latency under host churn.

Every non-source host randomly crashes (volatile state lost beyond the
stable prefix) and recovers while the source streams; all churn heals
by a fixed horizon.  The tree protocol must deliver at least as large a
fraction as the basic algorithm under the identical, seed-matched
churn, with zero stable invariant violations.
"""

from repro.experiments import run_e20_host_churn


def test_e20_host_churn(run_experiment):
    result = run_experiment(run_e20_host_churn)
    rows = {(r["protocol"], r["scope"]): r for r in result.rows}
    tree, basic = rows[("tree", "all")], rows[("basic", "all")]
    assert tree["crashes"] > 0, tree
    assert tree["delivered"] >= basic["delivered"], (tree, basic)
    assert tree["stable_violations"] == 0, tree
    assert tree["recovery_mean_s"] > 0, tree
