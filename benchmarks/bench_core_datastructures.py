"""Micro-benchmarks of the protocol's hot data structures.

These are classic pytest-benchmark timing runs (many rounds) rather
than experiment reproductions: SeqnoSet is touched on every message at
every host, so its operations must stay cheap even with gaps.
"""

import random

from repro.core import SeqnoSet


def make_gappy_set(n=2_000, hole_every=7, seed=1):
    rng = random.Random(seed)
    s = SeqnoSet()
    for seq in range(1, n + 1):
        if seq % hole_every:
            s.add(seq)
    return s


def test_seqnoset_sequential_add(benchmark):
    def run():
        s = SeqnoSet()
        for seq in range(1, 2_001):
            s.add(seq)
        return s

    result = benchmark(run)
    assert len(result) == 2_000
    assert len(result.ranges()) == 1  # coalesced to one range


def test_seqnoset_gappy_add(benchmark):
    result = benchmark(make_gappy_set)
    assert result.max_seqno == 2_000


def test_seqnoset_membership(benchmark):
    s = make_gappy_set()

    def run():
        return sum((seq in s) for seq in range(1, 2_001))

    present = benchmark(run)
    assert present == len(s)


def test_seqnoset_difference(benchmark):
    mine = SeqnoSet.range(1, 2_000)
    theirs = make_gappy_set()

    def run():
        return mine.difference(theirs, limit=50)

    missing = benchmark(run)
    assert len(missing) == 50


def test_seqnoset_update_union(benchmark):
    base = make_gappy_set(seed=1)
    other = make_gappy_set(hole_every=5, seed=2)

    def run():
        merged = base.copy()
        merged.update(other)
        return merged

    merged = benchmark(run)
    assert len(merged) >= len(base)


def test_seqnoset_snapshot_copy(benchmark):
    s = make_gappy_set()
    result = benchmark(s.copy)
    assert list(result) == list(s)
