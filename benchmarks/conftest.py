"""Shared helpers for the benchmark suite.

Every benchmark runs its experiment exactly once (``rounds=1``): these
are deterministic simulations, so repetition only measures Python's
noise, and a single round keeps the full suite fast while still
recording wall time per experiment through pytest-benchmark.

Each benchmark also prints the experiment's paper-style table (visible
with ``pytest benchmarks/ --benchmark-only -s``) and asserts the
qualitative claims so a regression in protocol behavior fails the
benchmark suite, not just the unit tests.
"""

from typing import Callable

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment runner once under pytest-benchmark."""

    def runner(fn: Callable, **kwargs):
        result = benchmark.pedantic(lambda: fn(**kwargs), rounds=1,
                                    iterations=1)
        print()
        print(result.render())
        return result

    return runner


def rows_by(result, **filters):
    """Filter an ExperimentResult's rows by column values."""
    return [r for r in result.rows
            if all(r[k] == v for k, v in filters.items())]
