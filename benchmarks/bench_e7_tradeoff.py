"""E7 — Reliability vs cost under brief connectivity (paper Section 6).

Paper claim: "The more frequently this is done, the more chance we will
have to use the brief interval to deliver the message, and, at the same
time, the more costly the algorithm will be."
"""

from repro.experiments import run_e7_tradeoff


def test_e7_tradeoff(run_experiment):
    result = run_experiment(run_e7_tradeoff)
    rows = sorted(result.rows, key=lambda r: r["scale_factor"])
    # Cost strictly decreases as exchange slows down.
    for faster, slower in zip(rows, rows[1:]):
        assert faster["control_sent"] > slower["control_sent"]
    # Reliability is (weakly) monotone: the fastest setting delivers at
    # least as much as the slowest, with a real gap across the sweep.
    assert rows[0]["delivered_fraction"] >= rows[-1]["delivered_fraction"]
    assert rows[0]["delivered_fraction"] - rows[-1]["delivered_fraction"] > 0.3
