"""E12 — Extension: comparison against anti-entropy epidemic broadcast
([Deme87], cited by the paper for the unknown-membership setting).

Expected shape: epidemic gossip delivers reliably but, being blind to
link costs, pays far more inter-cluster traffic and higher delay than
the cluster tree.
"""

from repro.experiments import run_e12_epidemic


def test_e12_epidemic(run_experiment):
    result = run_experiment(run_e12_epidemic)
    by_protocol = {r["protocol"]: r for r in result.rows}
    for row in result.rows:
        assert row["delivered"] == 1.0, row
    tree = by_protocol["tree"]["inter_cluster_per_msg"]
    assert tree < by_protocol["epidemic"]["inter_cluster_per_msg"]
    assert tree < by_protocol["basic"]["inter_cluster_per_msg"]
    assert by_protocol["tree"]["delay_mean"] < \
        by_protocol["epidemic"]["delay_mean"]
