"""E22 — Execution engine: wall-clock speedup and determinism parity.

Runs the E21 work-item grid under jobs=1 (the serial reference), 2,
and 4, recording wall time per worker count.  The hard claim is the
parity column: every parallel run's rows must be byte-identical to the
serial reference — derived per-item seeds and the ordered merge make
worker scheduling invisible to the output.  Speedup is asserted only
when the host actually has cores to parallelize over; on a single-core
runner the engine's process-per-item overhead makes speedup physically
unmeasurable, and the table just records the honest wall times.
"""

import os

from repro.experiments import run_e22_parallel_speedup


def test_e22_parallel_speedup(run_experiment):
    result = run_experiment(run_e22_parallel_speedup)
    rows = {r["jobs"]: r for r in result.rows}
    assert sorted(rows) == [1, 2, 4]
    # Determinism parity is unconditional: any scheduling leak fails here.
    for row in result.rows:
        assert row["rows_match_serial"], row
    assert rows[1]["speedup"] == 1.0
    assert all(r["wall_s"] > 0 for r in result.rows)
    if (os.cpu_count() or 1) >= 4:
        # With real cores the 4-worker fan-out must clearly beat serial.
        assert rows[4]["speedup"] >= 2.5, rows[4]
        assert rows[2]["speedup"] > 1.3, rows[2]
