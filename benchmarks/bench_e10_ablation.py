"""E10 — Ablations (paper Section 6, conclusions).

Paper claims: with static cluster knowledge the algorithm works "albeit
with less satisfying performance"; with no cluster information at all
(every host its own cluster) it "still can be used".
"""

from repro.experiments import run_e10_ablation


def test_e10_ablation(run_experiment):
    result = run_experiment(run_e10_ablation)
    by_variant = {r["variant"]: r for r in result.rows}
    # Everything still delivers.
    for row in result.rows:
        assert row["delivered"] == 1.0, row
    dynamic = by_variant["dynamic clusters (paper)"]
    singleton = by_variant["no cluster info (singletons)"]
    static = by_variant["static clusters"]
    # No cluster information costs markedly more inter-cluster traffic.
    assert singleton["inter_cluster_per_msg"] > \
        1.5 * dynamic["inter_cluster_per_msg"]
    # Static knowledge lands in the same ballpark as dynamic.
    assert static["inter_cluster_per_msg"] < \
        2 * dynamic["inter_cluster_per_msg"]
