"""E19 — Cost optimality over multi-server clusters.

The paper's clusters are defined by cheap connectivity, not by sharing
one switch.  This benchmark rebuilds the E1 cost claim over clusters
that are rings of several servers (multi-hop cheap paths) and asserts
the k-1 optimum survives the topology generalization.
"""

from repro.experiments import run_e19_hierarchical


def test_e19_hierarchical(run_experiment):
    result = run_experiment(run_e19_hierarchical)
    for row in result.rows:
        assert row["delivered"], row
        assert row["tree"] <= row["optimal"] * 1.4 + 0.3, row
