"""E23 — Chaos fuzzing: campaign verdicts and minimal repros.

The same derived-seed fuzz campaign (random topology, workload, and
composed fault schedule per trial, all healing by the trial horizon)
runs against both protocols.  The paper's protocol must come out clean
on every trial, while the basic algorithm's acked-then-lost messages
under host crashes must surface as liveness failures — each shrunk to
a minimal fault schedule at most a quarter of the original.
"""

from repro.experiments import run_e23_fuzz_campaign


def test_e23_fuzz_campaign(run_experiment):
    result = run_experiment(run_e23_fuzz_campaign)
    rows = {r["protocol"]: r for r in result.rows}
    tree, basic = rows["tree"], rows["basic"]
    assert tree["clean"] == tree["trials"], tree
    assert tree["stable_violation"] == 0, tree
    assert basic["no_eventual_delivery"] > 0, basic
    assert basic["shrink_ratio_mean"] <= 0.25, basic
    assert basic["min_repro_events"] == 1, basic
