"""E4 — Behavior during and after a partition (paper Section 5).

Paper claim: "the source, using the basic algorithm, does not stop
trying to send data messages to all the hosts that are cut off from it,
which is wasteful"; the tree-side hosts organize and "only the root
will periodically probe".  Both complete after the repair.
"""

from conftest import rows_by

from repro.experiments import run_e4_partition


def test_e4_partition(run_experiment):
    result = run_experiment(run_e4_partition)
    (tree,) = rows_by(result, protocol="tree")
    (basic,) = rows_by(result, protocol="basic")
    assert tree["delivered_all"] and basic["delivered_all"]
    assert basic["sends_toward_partitioned_per_s"] > \
        2 * tree["sends_toward_partitioned_per_s"]
