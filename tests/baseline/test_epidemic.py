"""Tests for the anti-entropy epidemic baseline."""

import pytest

from repro.baseline import EpidemicBroadcastSystem, EpidemicConfig
from repro.net import cheap_spec, expensive_spec, wan_of_lans
from repro.sim import Simulator


def build(k=2, m=2, seed=0, config=None, **spec_kwargs):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m, backbone="line",
                        convergence_delay=0.0, **spec_kwargs)
    system = EpidemicBroadcastSystem(built, config=config)
    return sim, built, system


def test_config_validation():
    with pytest.raises(ValueError):
        EpidemicConfig(sync_period=0.0)
    with pytest.raises(ValueError):
        EpidemicConfig(fanout=-1)
    with pytest.raises(ValueError):
        EpidemicConfig(batch_limit=0)


def test_gossip_spreads_to_everyone():
    sim, built, system = build(k=3, m=2)
    system.start()
    system.broadcast_stream(5, interval=0.5, start_at=1.0)
    assert system.run_until_delivered(5, timeout=120.0)


def test_spreads_without_eager_push():
    """Pure anti-entropy (fanout=0) must still converge."""
    sim, built, system = build(config=EpidemicConfig(fanout=0, sync_period=0.5))
    system.start()
    system.source.broadcast("x")
    assert system.run_until_delivered(1, timeout=60.0)


def test_survives_loss():
    sim, built, system = build(
        cheap=cheap_spec(loss_prob=0.2), expensive=expensive_spec(loss_prob=0.2),
        config=EpidemicConfig(sync_period=0.5), seed=4)
    system.start()
    system.broadcast_stream(5, interval=0.5, start_at=1.0)
    assert system.run_until_delivered(5, timeout=200.0)


def test_no_duplicate_deliveries():
    sim, built, system = build(k=3, m=2, config=EpidemicConfig(fanout=3))
    system.start()
    system.broadcast_stream(10, interval=0.2, start_at=1.0)
    assert system.run_until_delivered(10, timeout=120.0)
    for host_id, records in system.delivery_records().items():
        seqs = [r.seq for r in records]
        assert len(seqs) == len(set(seqs))


def test_sync_traffic_flows():
    sim, built, system = build()
    system.start()
    sim.run(until=20.0)
    assert sim.metrics.counter("epidemic.syncs").value > 10


def test_deterministic_per_seed():
    def run(seed):
        sim, built, system = build(seed=seed, k=3, m=2)
        system.start()
        system.broadcast_stream(5, interval=0.5, start_at=1.0)
        system.run_until_delivered(5, timeout=120.0)
        return sim.metrics.counter("net.h2h.sent").value

    assert run(7) == run(7)


def test_stop_halts_gossip():
    sim, built, system = build()
    system.start()
    sim.run(until=5.0)
    system.stop()
    syncs = sim.metrics.counter("epidemic.syncs").value
    sim.run(until=50.0)
    assert sim.metrics.counter("epidemic.syncs").value == syncs
