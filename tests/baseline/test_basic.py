"""Tests for the paper's basic algorithm baseline."""

import pytest

from repro.baseline import BasicBroadcastSystem, BasicConfig
from repro.net import HostId, cheap_spec, expensive_spec, wan_of_lans
from repro.sim import Simulator


def build(k=2, m=2, seed=0, config=None, **spec_kwargs):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m, backbone="line",
                        convergence_delay=0.0, **spec_kwargs)
    system = BasicBroadcastSystem(built, config=config)
    return sim, built, system


def test_config_validation():
    with pytest.raises(ValueError):
        BasicConfig(retry_period=0.0)
    with pytest.raises(ValueError):
        BasicConfig(retry_batch_limit=0)


def test_broadcast_reaches_all_hosts():
    sim, built, system = build()
    system.start()
    system.broadcast_stream(5, interval=0.5, start_at=1.0)
    assert system.run_until_delivered(5, timeout=60.0)


def test_source_sends_one_copy_per_host():
    sim, built, system = build(k=3, m=2)
    system.start()
    system.source.broadcast("x")
    sim.run(until=1.0)
    # 5 receivers -> 5 individually addressed sends.
    assert sim.metrics.counter("net.h2h.sent.kind.data").value == 5


def test_acks_flow_back():
    sim, built, system = build()
    system.start()
    system.source.broadcast("x")
    sim.run(until=5.0)
    assert not system.source.unacked


def test_retransmits_until_acked_under_loss():
    sim, built, system = build(
        cheap=cheap_spec(loss_prob=0.3), expensive=expensive_spec(loss_prob=0.3),
        config=BasicConfig(retry_period=0.5), seed=3)
    system.start()
    system.broadcast_stream(5, interval=0.5, start_at=1.0)
    assert system.run_until_delivered(5, timeout=120.0)
    assert sim.metrics.counter("basic.retransmissions").value > 0


def test_keeps_retrying_into_partition():
    """The paper's waste argument: unacked copies are retried forever."""
    sim, built, system = build(config=BasicConfig(retry_period=1.0))
    system.start()
    built.network.set_link_state("s0", "s1", up=False)
    system.source.broadcast("x")
    sim.run(until=30.0)
    assert sim.metrics.counter("basic.retransmissions").value >= 25
    assert system.source.unacked  # still outstanding


def test_recovers_after_partition_heals():
    sim, built, system = build(config=BasicConfig(retry_period=1.0))
    system.start()
    built.network.set_link_state("s0", "s1", up=False)
    system.source.broadcast("x")
    sim.run(until=10.0)
    built.network.set_link_state("s0", "s1", up=True)
    assert system.run_until_delivered(1, timeout=30.0)


def test_all_recoveries_come_from_source():
    from repro.analysis import recovery_locality

    sim, built, system = build(
        cheap=cheap_spec(loss_prob=0.2), expensive=expensive_spec(loss_prob=0.2),
        config=BasicConfig(retry_period=0.5), seed=5)
    system.start()
    system.broadcast_stream(10, interval=0.5, start_at=1.0)
    assert system.run_until_delivered(10, timeout=200.0)
    locality = recovery_locality(system.delivery_records(), built.network,
                                 system.source_id)
    assert locality.total_recoveries > 0
    assert locality.source_fraction == 1.0


def test_duplicate_data_not_redelivered():
    sim, built, system = build(config=BasicConfig(retry_period=0.2))
    system.start()
    # Kill the reverse path for acks only: drop the host's sends by
    # downing its access link after delivery is impossible... simpler:
    # lose all acks via a very lossy trunk is probabilistic; instead
    # verify via records that retransmissions never duplicate records.
    system.broadcast_stream(3, interval=0.2, start_at=1.0)
    system.run_until_delivered(3, timeout=30.0)
    for host_id, records in system.delivery_records().items():
        seqs = [r.seq for r in records]
        assert len(seqs) == len(set(seqs))


def test_invalid_source_rejected():
    sim = Simulator(seed=0)
    built = wan_of_lans(sim, 2, 1, convergence_delay=0.0)
    with pytest.raises(ValueError):
        BasicBroadcastSystem(built, source=HostId("nope"))
