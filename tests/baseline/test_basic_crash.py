"""Crash/recovery semantics of the basic algorithm.

The decisive difference from the tree protocol: a message a receiver
*acknowledged* and then lost in a crash is gone for good — the source
already discarded its unacked entry and never retransmits.
"""

import pytest

from repro.baseline import BasicBroadcastSystem, BasicConfig
from repro.net import HostId, wan_of_lans
from repro.sim import Simulator


def build_system(seed=1, k=2, m=2, **overrides):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m, backbone="line",
                        convergence_delay=0.0)
    system = BasicBroadcastSystem(built, config=BasicConfig(**overrides))
    return sim, built, system.start()


def test_crash_host_api_and_trace_parity():
    sim, built, system = build_system()
    victim = HostId("h1.0")
    system.crash_host(victim)
    assert system.crashed_hosts() == [victim]
    system.recover_host(victim)
    assert system.crashed_hosts() == []
    assert sim.trace.count("host.crash") == 1
    assert sim.trace.count("host.recover") == 1
    assert sim.metrics.counter("proto.host.crash").value == 1


def test_crashed_receiver_drops_and_does_not_ack():
    sim, built, system = build_system()
    victim = HostId("h0.1")
    system.crash_host(victim)
    system.broadcast_stream(3, interval=0.5, start_at=1.0)
    sim.run(until=10.0)
    assert len(system.hosts[victim].deliveries) == 0
    assert sim.metrics.counter("proto.host.drop_crashed").value > 0
    # The source keeps retrying the unacked copies...
    assert any(pair[0] == victim for pair in system.source.unacked)
    # ...so after recovery the stream completes.
    system.recover_host(victim)
    assert system.run_until_delivered(3, timeout=120.0)


def test_acked_then_lost_messages_are_never_retransmitted():
    """With a stable lag, a crash discards recently acked messages; the
    basic source has no record of the loss and never resends them."""
    sim, built, system = build_system(crash_stable_lag=2)
    victim = HostId("h1.1")
    system.broadcast_stream(6, interval=0.5, start_at=1.0)
    assert system.run_until_delivered(6, timeout=120.0)
    sim.run(until=sim.now + 30.0)  # drain in-flight retransmissions
    assert not system.source.unacked  # everything acked
    system.crash_host(victim)
    host = system.hosts[victim]
    assert len(host.deliveries) == 4  # 5 and 6 lost with the crash
    system.recover_host(victim)
    sim.run(until=sim.now + 120.0)
    # Permanent loss: the acked-then-lost tail never comes back.
    assert 5 not in host.deliveries and 6 not in host.deliveries


def test_source_crash_pauses_retries_and_outbox_survives():
    sim, built, system = build_system()
    source = system.source
    sim.schedule_at(1.5, source.crash)
    sim.schedule_at(8.0, source.recover)
    system.broadcast_stream(5, interval=1.0, start_at=1.0)
    assert system.run_until_delivered(5, timeout=200.0)
    crashed_issues = [r for r in sim.trace.records(kind="source.broadcast")
                      if r.fields["while_crashed"]]
    assert crashed_issues  # issued to the stable outbox while down


def test_recovery_time_is_measured():
    sim, built, system = build_system()
    victim = HostId("h1.0")
    system.broadcast_stream(6, interval=1.0, start_at=1.0)
    sim.schedule_at(2.0, lambda: system.crash_host(victim))
    sim.schedule_at(6.0, lambda: system.recover_host(victim))
    assert system.run_until_delivered(6, timeout=200.0)
    recoveries = sim.trace.records(kind="host.recovery_delivery")
    assert [r.source for r in recoveries] == [str(victim)]
    assert sim.metrics.histogram("proto.host.recovery_time").count == 1


def test_crash_stable_lag_validated():
    with pytest.raises(ValueError):
        BasicConfig(crash_stable_lag=-1)
