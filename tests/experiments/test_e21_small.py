"""Small, tier-1-sized E21 run: adversarial timing, fixed vs adaptive.

The full sweep lives in ``benchmarks/bench_e21_adversarial.py``; this
keeps a two-point version in the fast suite so the adaptive control
plane's core claim — never worse delivery, measurable hardening
activity under attack — is exercised on every test run.
"""

import math

from repro.experiments import run_e21_adversarial_timing

SMALL_POINTS = (
    ("clean", 0.00, 0.00, 0.0, 0.0, 0.00),
    ("harsh", 0.15, 0.10, 0.3, 0.8, 0.05),
)


def test_e21_small_adaptive_never_worse():
    result = run_e21_adversarial_timing(n=15, measure_at=50.0,
                                        horizon=300.0, points=SMALL_POINTS)
    rows = {(r["point"], r["mode"]): r for r in result.rows}
    assert len(rows) == 4
    for point, *_ in SMALL_POINTS:
        fixed, adaptive = rows[(point, "fixed")], rows[(point, "adaptive")]
        assert adaptive["delivered"] >= fixed["delivered"], (point, fixed,
                                                            adaptive)
        assert not math.isnan(adaptive["recovery_mean_s"]), adaptive
    harsh = rows[("harsh", "adaptive")]
    # The attack actually landed and the hardening actually engaged.
    assert harsh["corrupt_dropped"] > 0
    assert harsh["dup_suppressed"] > 0
