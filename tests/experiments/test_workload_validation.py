"""Workload-generator validation and determinism.

Saturation sweeps lean on two properties: invalid parameters fail
loudly *naming the parameter* (a combined error made sweep callers
bisect their own argument lists), and identical seeds produce identical
arrival schedules for every generator shape.
"""

import pytest

from repro.experiments import arrival_times, bursty_stream
from repro.experiments.saturation import (
    ARRIVAL_SHAPES,
    bursty_arrival_times,
    diurnal_arrival_times,
    poisson_arrival_times,
)
from repro.sim import Simulator


class Recorder:
    def __init__(self):
        self.contents = []

    def broadcast(self, content=None):
        self.contents.append(content)
        return len(self.contents)


class TestBurstyStreamValidation:
    def run_with(self, **overrides):
        kwargs = dict(bursts=2, burst_size=3, burst_gap=1.0,
                      intra_burst_interval=0.01)
        kwargs.update(overrides)
        bursty_stream(Simulator(seed=0), Recorder(), **kwargs)

    @pytest.mark.parametrize("param,value", [
        ("bursts", -1),
        ("burst_size", 0),
        ("burst_gap", 0.0),
        ("intra_burst_interval", -0.5),
    ])
    def test_each_parameter_validated_by_name(self, param, value):
        with pytest.raises(ValueError, match=param):
            self.run_with(**{param: value})

    def test_valid_parameters_schedule_and_count(self):
        sim = Simulator(seed=0)
        recorder = Recorder()
        total = bursty_stream(sim, recorder, bursts=2, burst_size=3,
                              burst_gap=1.0)
        sim.run(until=10.0)
        assert total == 6
        assert len(recorder.contents) == 6


class TestArrivalValidation:
    def test_poisson_rejects_nonpositive(self):
        rng = Simulator(seed=0).rng.stream("t")
        with pytest.raises(ValueError):
            poisson_arrival_times(rng, rate=0.0, duration=10.0)
        with pytest.raises(ValueError):
            poisson_arrival_times(rng, rate=1.0, duration=0.0)

    def test_bursty_rejects_bad_shape_params(self):
        rng = Simulator(seed=0).rng.stream("t")
        with pytest.raises(ValueError, match="burst_size"):
            bursty_arrival_times(rng, 1.0, 10.0, burst_size=0)
        with pytest.raises(ValueError):
            bursty_arrival_times(rng, 1.0, 10.0, intra_burst_interval=0.0)

    def test_diurnal_rejects_bad_depth_and_period(self):
        rng = Simulator(seed=0).rng.stream("t")
        with pytest.raises(ValueError, match="depth"):
            diurnal_arrival_times(rng, 1.0, 10.0, depth=1.0)
        with pytest.raises(ValueError):
            diurnal_arrival_times(rng, 1.0, 10.0, period=0.0)

    def test_unknown_shape_names_the_known_ones(self):
        rng = Simulator(seed=0).rng.stream("t")
        with pytest.raises(ValueError, match="poisson"):
            arrival_times("sawtooth", rng, 1.0, 10.0)


class TestDeterminism:
    """Same seed, same schedule — across all three arrival shapes."""

    def schedule(self, shape, seed):
        rng = Simulator(seed=seed).rng.stream("workload.saturation")
        return arrival_times(shape, rng, rate=4.0, duration=25.0)

    @pytest.mark.parametrize("shape", ARRIVAL_SHAPES)
    def test_identical_seed_identical_schedule(self, shape):
        assert self.schedule(shape, 42) == self.schedule(shape, 42)

    @pytest.mark.parametrize("shape", ARRIVAL_SHAPES)
    def test_different_seed_different_schedule(self, shape):
        assert self.schedule(shape, 42) != self.schedule(shape, 43)

    @pytest.mark.parametrize("shape", ARRIVAL_SHAPES)
    def test_schedules_stay_in_window_and_ordered(self, shape):
        times = self.schedule(shape, 42)
        assert times, "expected a nonempty schedule at rate*duration=100"
        assert all(0 <= t < 25.0 for t in times)
        assert times == sorted(times)

    def test_mean_rate_is_roughly_preserved_across_shapes(self):
        counts = {shape: len(self.schedule(shape, 42))
                  for shape in ARRIVAL_SHAPES}
        for shape, count in counts.items():
            assert 60 <= count <= 140, (shape, count)
