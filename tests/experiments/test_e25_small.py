"""Small, tier-1-sized E25 run: saturation verdicts and the shedding flip.

The full sweep covers four protocols x shapes x utilizations; the fast
suite (and the CI saturation smoke leg) pins only the load-bearing
claims: past saturation the unbounded tree *collapses* while the same
protocol with bounded resources, shedding, and admission control comes
back (*degraded_recovering*); latency percentiles are ordered; shedding
and rejection really engaged; and the sweep is deterministic.
"""

import math

from repro.experiments import get_spec, run_e25_saturation

POINTS = dict(shapes=("poisson",), utilizations=(0.4, 3.0),
              protocols=("tree", "tree+shed"))


def _rows():
    result = run_e25_saturation(**POINTS)
    return result, {(r["protocol"], r["util"], r["churn"]): r
                    for r in result.rows}


def test_e25_small_shedding_flips_collapse_to_recovery():
    result, rows = _rows()
    # 2 protocols x 1 shape x 2 utilizations, plus the churn point.
    assert len(result.rows) == 5

    collapsed = rows[("tree", 3.0, "-")]
    assert collapsed["verdict"] == "collapsed"
    assert not collapsed["delivered_ok"]
    assert collapsed["slo"] != "pass"
    assert collapsed["worst_link"] != "-"  # drop-tail overflow engaged

    recovered = rows[("tree+shed", 3.0, "-")]
    assert recovered["verdict"] == "degraded_recovering"
    assert recovered["delivered_ok"]
    assert recovered["rejected"] > 0  # admission control pushed back
    assert recovered["admitted"] < recovered["offered"]
    assert recovered["shed"] > 0  # bounded buffers really evicted

    # Below saturation, shedding changes nothing: identical verdicts
    # and identical latency, because no limit is ever hit.
    mild_tree = rows[("tree", 0.4, "-")]
    mild_shed = rows[("tree+shed", 0.4, "-")]
    assert mild_tree["verdict"] == "stable"
    assert mild_shed["verdict"] == "stable"
    assert mild_tree["p999_s"] == mild_shed["p999_s"]

    # Overload composed with E20-style churn still recovers with
    # shedding on, at a (reported) tail-latency cost.
    churned = rows[("tree+shed", 3.0, "yes")]
    assert churned["verdict"] in ("degraded_recovering", "stable")
    assert churned["delivered_ok"]


def test_e25_small_percentiles_are_ordered():
    result, _ = _rows()
    for row in result.rows:
        p50, p99, p999 = row["p50_s"], row["p99_s"], row["p999_s"]
        if not math.isnan(p50):
            assert p50 <= p99 <= p999


def test_e25_small_is_deterministic_and_registered():
    a, _ = _rows()
    b, _ = _rows()
    assert a.rows == b.rows
    assert get_spec("E25").runner is run_e25_saturation
