"""Tests for the experiments CLI."""

from repro.experiments.cli import main


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "E1" in out
    assert "E12" in out


def test_unknown_experiment(capsys):
    assert main(["E99"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_runs_selected_experiment(capsys):
    assert main(["E9"]) == 0
    out = capsys.readouterr().out
    assert "E9:" in out
    assert "finished in" in out


def test_seed_override(capsys):
    assert main(["E9", "--seed", "123"]) == 0
    assert "E9:" in capsys.readouterr().out


def test_markdown_output(capsys):
    assert main(["E9", "--markdown"]) == 0
    out = capsys.readouterr().out
    assert "### E9:" in out
    assert "| host | before |" in out


def test_json_output(tmp_path, capsys):
    import json

    path = tmp_path / "results.json"
    assert main(["E9", "--json", str(path)]) == 0
    data = json.loads(path.read_text())
    assert data[0]["experiment_id"] == "E9"
    assert data[0]["rows"][0]["after"] == "[1, 2, 3]"
