"""Tests for the experiments CLI: the legacy shim and the unified front door."""

import json

from repro.cli import main as unified_main
from repro.experiments.cli import main


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "E1" in out
    assert "E12" in out


def test_unknown_experiment(capsys):
    assert main(["E99"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_runs_selected_experiment(capsys):
    assert main(["E9"]) == 0
    out = capsys.readouterr().out
    assert "E9:" in out
    assert "finished in" in out


def test_seed_override(capsys):
    assert main(["E9", "--seed", "123"]) == 0
    assert "E9:" in capsys.readouterr().out


def test_markdown_output(capsys):
    assert main(["E9", "--markdown"]) == 0
    out = capsys.readouterr().out
    assert "### E9:" in out
    assert "| host | before |" in out


def test_json_output(tmp_path, capsys):
    path = tmp_path / "results.json"
    assert main(["E9", "--json", str(path)]) == 0
    data = json.loads(path.read_text())
    assert data[0]["experiment_id"] == "E9"
    assert data[0]["rows"][0]["after"] == "[1, 2, 3]"


class TestUnifiedCli:
    def test_experiments_subcommand_matches_legacy_shim(self, capsys):
        assert main(["E9", "--markdown"]) == 0
        legacy = capsys.readouterr().out
        assert unified_main(["experiments", "E9", "--markdown"]) == 0
        assert capsys.readouterr().out == legacy

    def test_experiments_list(self, capsys):
        assert unified_main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E22" in out

    def test_experiments_unknown_returns_2(self, capsys):
        assert unified_main(["experiments", "E99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_experiments_parallel_jobs(self, capsys):
        assert unified_main(["experiments", "E9", "E11", "--markdown"]) == 0
        serial = capsys.readouterr().out
        assert unified_main(
            ["experiments", "E9", "E11", "--markdown", "--jobs", "2"]) == 0
        # Same tables, same order, regardless of which worker finished first.
        assert capsys.readouterr().out == serial

    def test_experiments_cache_round_trip(self, tmp_path, capsys):
        argv = ["experiments", "E9", "--cache", "--cache-dir", str(tmp_path)]
        assert unified_main(argv) == 0
        first = capsys.readouterr().out
        assert "finished in" in first
        assert unified_main(argv) == 0
        second = capsys.readouterr().out
        assert "[E9 loaded from cache]" in second
        # The table itself is identical; only the status line differs.
        assert second.split("  [E9")[0] == first.split("  [E9")[0]

    def test_cache_miss_on_different_seed(self, tmp_path, capsys):
        base = ["experiments", "E9", "--cache", "--cache-dir", str(tmp_path)]
        assert unified_main(base) == 0
        capsys.readouterr()
        assert unified_main(base + ["--seed", "123"]) == 0
        assert "finished in" in capsys.readouterr().out

    def test_sweep_seed_replicas(self, capsys):
        assert unified_main(["sweep", "E9", "--seeds", "2", "--seed", "8"]) == 0
        out = capsys.readouterr().out
        assert "E9-sweep" in out
        assert "seed" in out

    def test_sweep_unknown_experiment(self, capsys):
        assert unified_main(["sweep", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_sweep_unknown_axis_lists_parameters(self, capsys):
        assert unified_main(["sweep", "E9", "--set", "bogus=1,2"]) == 2
        assert "no parameter 'bogus'" in capsys.readouterr().err

    def test_perf_list_scenarios(self, capsys):
        assert unified_main(["perf", "--list"]) == 0
        assert "kernel_throughput" in capsys.readouterr().out
