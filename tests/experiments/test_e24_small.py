"""Small, tier-1-sized E24 run: adversarial hosts and containment.

The full sweep (three protocols x k x persona x placement) runs in a
couple of seconds, but the fast suite pins only the load-bearing
claims: the sweep is deterministic, the k=0 baselines are perfect, an
interior data black hole starves its correct subtree under the tree
protocol while every structural invariant still holds globally, and
leaf placements are harmless everywhere.
"""

from repro.experiments import get_spec, run_e24_adversary_containment

PERSONAS = ("selective_forward", "stale_info")


def _rows():
    result = run_e24_adversary_containment(
        n=8, ks=(0, 1), personas=PERSONAS, horizon=60.0)
    return result, {(r["protocol"], r["k"], r["persona"], r["placement"]): r
                    for r in result.rows}


def test_e24_small_placement_decides_the_outcome():
    result, rows = _rows()
    # 3 protocols x (k=0 baseline + 2 personas x 2 placements)
    assert len(rows) == 3 * (1 + len(PERSONAS) * 2)

    for protocol in ("tree", "basic", "epidemic"):
        baseline = rows[(protocol, 0, "-", "-")]
        assert baseline["correct_delivered"] == 1.0 and baseline["correct_ok"]

    black_hole = rows[("tree", 1, "selective_forward", "interior")]
    assert not black_hole["correct_ok"]
    assert black_hole["correct_delivered"] < 1.0
    # The damage is purely data-plane: structure invariants all hold.
    assert black_hole["containment"] == "holds_globally"
    assert black_hole["broken"] == 0

    # The same persona at a leaf — or against the source-direct basic
    # algorithm / redundant epidemic baseline — hurts nobody.
    assert rows[("tree", 1, "selective_forward", "leaf")]["correct_ok"]
    for protocol in ("basic", "epidemic"):
        for persona in PERSONAS:
            for placement in ("interior", "leaf"):
                row = rows[(protocol, 1, persona, placement)]
                assert row["correct_ok"], row


def test_e24_small_is_deterministic_and_registered():
    a, _ = _rows()
    b, _ = _rows()
    assert a.rows == b.rows
    assert get_spec("E24").runner is run_e24_adversary_containment
