"""The declarative experiment registry and its compatibility surface."""

import pytest

from repro.experiments import ALL_RUNNERS, REGISTRY, ExperimentSpec, get_spec
from repro.experiments import runners as runners_module
from repro.experiments.records import ExperimentResult
from repro.experiments.registry import run_registered


def dummy_runner(rng_seed=7, width=3):
    """A dummy table for spec introspection."""
    result = ExperimentResult("EX", "dummy", ["rng_seed", "width"])
    result.add_row(rng_seed=rng_seed, width=width)
    return result


def executor_runner(seed=1, executor=None):
    result = ExperimentResult("EY", "dummy", ["seed", "saw_executor"])
    result.add_row(seed=seed, saw_executor=executor is not None)
    return result


class TestSpecIntrospection:
    def test_defaults_and_title_from_signature(self):
        spec = ExperimentSpec.from_runner("EX", dummy_runner,
                                          seed_param="rng_seed")
        assert spec.defaults == {"rng_seed": 7, "width": 3}
        assert spec.title == "A dummy table for spec introspection"
        assert spec.default_seed == 7
        assert not spec.accepts_executor

    def test_missing_seed_param_fails_at_registration(self):
        with pytest.raises(ValueError, match="no parameter 'seed'"):
            ExperimentSpec.from_runner("EX", dummy_runner)

    def test_seed_lands_on_declared_param(self):
        # The normalization bugfix: --seed must thread through even when
        # the runner does not call its parameter "seed".
        spec = ExperimentSpec.from_runner("EX", dummy_runner,
                                          seed_param="rng_seed")
        assert spec.run(seed=99).rows[0]["rng_seed"] == 99
        assert spec.run().rows[0]["rng_seed"] == 7

    def test_executor_forwarded_only_when_accepted(self):
        from repro.exec import SerialExecutor

        plain = ExperimentSpec.from_runner("EX", dummy_runner,
                                           seed_param="rng_seed")
        fanout = ExperimentSpec.from_runner("EY", executor_runner)
        assert fanout.accepts_executor
        assert "executor" not in fanout.defaults
        executor = SerialExecutor()
        # No TypeError on the serial runner, forwarded to the other.
        assert plain.run(executor=executor).rows[0]["width"] == 3
        assert fanout.run(executor=executor).rows[0]["saw_executor"]

    def test_cache_params_resolve_defaults_seed_and_overrides(self):
        spec = ExperimentSpec.from_runner("EX", dummy_runner,
                                          seed_param="rng_seed")
        assert spec.cache_params(seed=5, width=9) == \
            {"rng_seed": 5, "width": 9}
        assert spec.cache_params() == {"rng_seed": 7, "width": 3}


class TestRegistry:
    def test_all_e_series_registered(self):
        for exp_id in ("E1", "E2", "E6b", "E12", "E21", "E22", "E23", "E24",
                       "E25"):
            assert exp_id in REGISTRY
        assert len(REGISTRY) == 26

    def test_specs_know_their_runner_defaults(self):
        spec = get_spec("E2")
        assert spec.runner is runners_module.run_e2_delay
        assert spec.seed_param == "seed"
        assert "ks" in spec.defaults and "ms" in spec.defaults
        assert spec.accepts_executor

    def test_get_spec_unknown_lists_known_ids(self):
        with pytest.raises(KeyError, match="E99.*E1"):
            get_spec("E99")

    def test_run_registered_threads_seed(self):
        result = run_registered("E9", seed=123)
        assert result.experiment_id == "E9"


class TestCompatibility:
    def test_all_runners_view_matches_registry(self):
        assert set(ALL_RUNNERS) == set(REGISTRY)
        for exp_id, runner in ALL_RUNNERS.items():
            assert REGISTRY[exp_id].runner is runner

    def test_runners_module_attribute_still_works(self):
        # Old call sites did `from .runners import ALL_RUNNERS`; the
        # PEP 562 shim keeps that import path alive.
        assert runners_module.ALL_RUNNERS is ALL_RUNNERS

    def test_runners_module_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            runners_module.no_such_runner
