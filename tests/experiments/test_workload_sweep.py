"""Tests for workload generators and the sweep helper."""

import pytest

from repro.core import BroadcastSystem
from repro.experiments import bursty_stream, constant_rate_stream, poisson_stream
from repro.experiments.sweep import grid, sweep
from repro.net import wan_of_lans
from repro.sim import Simulator


def build_system(seed=0):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=1, hosts_per_cluster=2)
    system = BroadcastSystem(built).start()
    return sim, system


class TestWorkloads:
    def test_constant_rate_times(self):
        sim, system = build_system()
        constant_rate_stream(sim, system.source, count=3, interval=2.0,
                             start_at=1.0)
        sim.run(until=10.0)
        times = [r.time for r in sim.trace.records(kind="source.broadcast")]
        assert times == [1.0, 3.0, 5.0]

    def test_constant_rate_validates(self):
        sim, system = build_system()
        with pytest.raises(ValueError):
            constant_rate_stream(sim, system.source, count=1, interval=0.0)

    def test_poisson_stream_deterministic_and_ordered(self):
        def run(seed):
            sim, system = build_system(seed=seed)
            poisson_stream(sim, system.source, count=10, rate=1.0, start_at=1.0)
            sim.run(until=100.0)
            return [r.time for r in sim.trace.records(kind="source.broadcast")]

        times = run(5)
        assert len(times) == 10
        assert times == sorted(times)
        assert run(5) == times
        assert run(6) != times

    def test_poisson_validates(self):
        sim, system = build_system()
        with pytest.raises(ValueError):
            poisson_stream(sim, system.source, count=5, rate=0.0)

    def test_bursty_stream_counts_and_shape(self):
        sim, system = build_system()
        total = bursty_stream(sim, system.source, bursts=3, burst_size=4,
                              burst_gap=10.0, start_at=1.0)
        assert total == 12
        sim.run(until=60.0)
        times = [r.time for r in sim.trace.records(kind="source.broadcast")]
        assert len(times) == 12
        # Bursts are tight; gaps are wide.
        assert times[3] - times[0] < 0.5
        assert times[4] - times[3] > 5.0

    def test_bursty_validates(self):
        sim, system = build_system()
        with pytest.raises(ValueError):
            bursty_stream(sim, system.source, bursts=1, burst_size=0,
                          burst_gap=1.0)


def double_point(a, seed=None):
    # Module-level so it pickles for the parallel sweep test.
    return {"double": a * 2, "used_seed": seed}


class TestSweep:
    def test_grid_cartesian_deterministic(self):
        points = list(grid(a=[1, 2], b=["x", "y"]))
        assert points == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
        ]

    def test_grid_empty(self):
        assert list(grid()) == []

    def test_sweep_returns_experiment_result(self):
        result = sweep(lambda a: {"double": a * 2}, a=[1, 2, 3])
        assert result.experiment_id == "sweep"
        assert result.columns == ["a", "double"]
        assert result.rows == [{"a": 1, "double": 2}, {"a": 2, "double": 4},
                               {"a": 3, "double": 6}]

    def test_sweep_rejects_key_collisions_naming_the_point(self):
        with pytest.raises(ValueError, match=r"\{'a': 1\}"):
            sweep(lambda a: {"a": 1}, a=[1])

    def test_sweep_rejects_non_dict_measurements(self):
        with pytest.raises(TypeError):
            sweep(lambda a: a * 2, a=[1])

    def test_sweep_base_seed_derives_per_point_seeds(self):
        result = sweep(double_point, base_seed=7, a=[1, 2])
        assert result.columns == ["a", "seed", "double", "used_seed"]
        seeds = [r["seed"] for r in result.rows]
        assert len(set(seeds)) == 2
        assert [r["used_seed"] for r in result.rows] == seeds
        again = sweep(double_point, base_seed=7, a=[1, 2])
        assert [r["seed"] for r in again.rows] == seeds

    def test_sweep_parallel_matches_serial(self):
        from repro.exec import make_executor

        serial = sweep(double_point, base_seed=3, a=[1, 2, 3])
        parallel = sweep(double_point, executor=make_executor(2),
                         base_seed=3, a=[1, 2, 3])
        assert serial.columns == parallel.columns
        assert serial.rows == parallel.rows

    def test_sweep_missing_cells_padded(self):
        def sparse(a):
            return {"extra": a} if a == 2 else {"double": a * 2}

        result = sweep(sparse, a=[1, 2])
        assert result.rows[0]["extra"] == "-"
        assert result.rows[1]["double"] == "-"
