"""Tests for workload generators and the sweep helper."""

import pytest

from repro.core import BroadcastSystem
from repro.experiments import bursty_stream, constant_rate_stream, poisson_stream
from repro.experiments.sweep import grid, sweep
from repro.net import wan_of_lans
from repro.sim import Simulator


def build_system(seed=0):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=1, hosts_per_cluster=2)
    system = BroadcastSystem(built).start()
    return sim, system


class TestWorkloads:
    def test_constant_rate_times(self):
        sim, system = build_system()
        constant_rate_stream(sim, system.source, count=3, interval=2.0,
                             start_at=1.0)
        sim.run(until=10.0)
        times = [r.time for r in sim.trace.records(kind="source.broadcast")]
        assert times == [1.0, 3.0, 5.0]

    def test_constant_rate_validates(self):
        sim, system = build_system()
        with pytest.raises(ValueError):
            constant_rate_stream(sim, system.source, count=1, interval=0.0)

    def test_poisson_stream_deterministic_and_ordered(self):
        def run(seed):
            sim, system = build_system(seed=seed)
            poisson_stream(sim, system.source, count=10, rate=1.0, start_at=1.0)
            sim.run(until=100.0)
            return [r.time for r in sim.trace.records(kind="source.broadcast")]

        times = run(5)
        assert len(times) == 10
        assert times == sorted(times)
        assert run(5) == times
        assert run(6) != times

    def test_poisson_validates(self):
        sim, system = build_system()
        with pytest.raises(ValueError):
            poisson_stream(sim, system.source, count=5, rate=0.0)

    def test_bursty_stream_counts_and_shape(self):
        sim, system = build_system()
        total = bursty_stream(sim, system.source, bursts=3, burst_size=4,
                              burst_gap=10.0, start_at=1.0)
        assert total == 12
        sim.run(until=60.0)
        times = [r.time for r in sim.trace.records(kind="source.broadcast")]
        assert len(times) == 12
        # Bursts are tight; gaps are wide.
        assert times[3] - times[0] < 0.5
        assert times[4] - times[3] > 5.0

    def test_bursty_validates(self):
        sim, system = build_system()
        with pytest.raises(ValueError):
            bursty_stream(sim, system.source, bursts=1, burst_size=0,
                          burst_gap=1.0)


class TestSweep:
    def test_grid_cartesian_deterministic(self):
        points = list(grid(a=[1, 2], b=["x", "y"]))
        assert points == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
        ]

    def test_grid_empty(self):
        assert list(grid()) == []

    def test_sweep_merges_measurements(self):
        rows = sweep(lambda a: {"double": a * 2}, a=[1, 2, 3])
        assert rows == [{"a": 1, "double": 2}, {"a": 2, "double": 4},
                        {"a": 3, "double": 6}]

    def test_sweep_rejects_key_collisions(self):
        with pytest.raises(ValueError):
            sweep(lambda a: {"a": 1}, a=[1])
