"""Tests for the experiment harness (small, fast parameterizations).

These assert the *shape* of every experiment's outcome — the qualitative
claims from the paper's Section 5 — using reduced parameters so the
whole module runs in seconds.  The benchmarks run the full versions.
"""

import math

import pytest

from repro.experiments import (
    ExperimentResult,
    run_e1_cost,
    run_e2_delay,
    run_e3_recovery,
    run_e4_partition,
    run_e5_congestion,
    run_e6_control,
    run_e6_tuning,
    run_e7_tradeoff,
    run_e8_fig31,
    run_e9_fig41,
    run_e10_ablation,
    run_e11_fig32,
    run_e12_epidemic,
)
from repro.scenarios import WindowSpec


class TestExperimentResult:
    def test_row_validation(self):
        result = ExperimentResult("X", "t", ["a", "b"])
        with pytest.raises(ValueError):
            result.add_row(a=1)
        result.add_row(a=1, b=2)
        assert "X: t" in result.render()

    def test_notes_rendered(self):
        result = ExperimentResult("X", "t", ["a"])
        result.add_row(a=1)
        result.note("hello")
        assert "note: hello" in result.render()


def rows_by(result, **filters):
    return [r for r in result.rows
            if all(r[k] == v for k, v in filters.items())]


def test_e1_tree_near_optimal_and_beats_basic():
    result = run_e1_cost(ks=(2, 3), ms=(1, 3), n=10, warmup=3)
    for row in result.rows:
        assert row["tree"] <= row["optimal"] * 1.6 + 0.5
        if row["hosts_per_cluster"] >= 3:
            assert row["basic"] > row["tree"]


def test_e2_delays_comparable():
    result = run_e2_delay(ks=(2,), ms=(2,), n=10, warmup=3)
    (row,) = result.rows
    assert row["tree_mean"] < 1.0
    assert row["basic_mean"] < 1.0


def test_e3_tree_recovers_locally_basic_from_source():
    result = run_e3_recovery(losses=(0.1,), n=15)
    (tree_row,) = rows_by(result, protocol="tree")
    (basic_row,) = rows_by(result, protocol="basic")
    assert tree_row["delivered"] == 1.0
    assert basic_row["delivered"] == 1.0
    assert basic_row["from_source_fraction"] == 1.0
    assert tree_row["local_fraction"] > 0.3
    assert tree_row["from_source_fraction"] < 1.0


def test_e4_basic_wastes_more_during_partition():
    result = run_e4_partition(n=20, partition=(8.0, 30.0))
    (tree_row,) = rows_by(result, protocol="tree")
    (basic_row,) = rows_by(result, protocol="basic")
    assert basic_row["sends_toward_partitioned_per_s"] > \
        2 * tree_row["sends_toward_partitioned_per_s"]
    assert tree_row["delivered_all"]
    assert basic_row["delivered_all"]


def test_e5_basic_concentrates_load_at_source():
    result = run_e5_congestion(ms=(4,), n=10)
    (tree_row,) = rows_by(result, protocol="tree")
    (basic_row,) = rows_by(result, protocol="basic")
    assert basic_row["concentration"] > 3 * tree_row["concentration"]


def test_e6_tree_control_independent_of_stream_length():
    result = run_e6_control(stream_sizes=(0, 100), horizon=60.0)
    tree_rows = rows_by(result, protocol="tree")
    assert len(tree_rows) == 2
    ratio = tree_rows[1]["control_sent"] / tree_rows[0]["control_sent"]
    assert 0.9 <= ratio <= 1.1  # independent of data count
    basic_rows = rows_by(result, protocol="basic")
    assert basic_rows[0]["control_sent"] == 0
    assert basic_rows[1]["control_sent"] > 0  # acks scale with data


def test_e6b_control_scales_inversely_with_period():
    result = run_e6_tuning(factors=(1.0, 2.0), horizon=60.0)
    fast, slow = result.rows
    assert fast["control_sent"] > 1.5 * slow["control_sent"]


def test_e7_faster_exchange_more_reliable_more_costly():
    result = run_e7_tradeoff(
        factors=(0.5, 4.0), horizon=100.0, n=5, trials=3,
        window=WindowSpec(period=30.0, width=4.0, first_open=20.0))
    fast, slow = result.rows
    assert fast["delivered_fraction"] >= slow["delivered_fraction"]
    assert fast["control_sent"] > slow["control_sent"]


def test_e8_matches_figure_3_1_exactly():
    result = run_e8_fig31(n=10, warmup=3)
    by_scheme = {r["scheme"]: r["link_traversals_per_msg"] for r in result.rows}
    assert by_scheme["server multicast (lower bound)"] == 6.0
    assert by_scheme["tree"] == pytest.approx(8.0, abs=1.0)
    assert by_scheme["basic"] == pytest.approx(8.0, abs=0.5)


def test_e9_non_neighbor_gapfill_converges():
    result = run_e9_fig41()
    for row in result.rows:
        assert row["after"] == "[1, 2, 3]"
        assert row["reattached"] is False
    suppliers = {r["host"]: r["gap_supplier"] for r in result.rows}
    assert suppliers == {"i": "j", "j": "i"}


def test_e10_singleton_mode_works_but_costs_more():
    result = run_e10_ablation(n=15, churn=False)
    by_variant = {r["variant"]: r for r in result.rows}
    dynamic = by_variant["dynamic clusters (paper)"]
    singleton = by_variant["no cluster info (singletons)"]
    assert dynamic["delivered"] == 1.0
    assert singleton["delivered"] == 1.0
    assert singleton["inter_cluster_per_msg"] > dynamic["inter_cluster_per_msg"]


def test_e11_invariants_hold_on_figure_3_2():
    result = run_e11_fig32(n=5)
    assert all(row["violations"] == 0 for row in result.rows)


def test_e20_tree_at_least_as_reliable_under_host_churn():
    from repro.experiments import run_e20_host_churn

    result = run_e20_host_churn(n=10, heal_by=30.0, mean_up=12.0,
                                mean_down=4.0, horizon=200.0)
    (tree_all,) = rows_by(result, protocol="tree", scope="all")
    (basic_all,) = rows_by(result, protocol="basic", scope="all")
    assert tree_all["crashes"] > 0  # churn actually happened
    assert tree_all["delivered"] >= basic_all["delivered"]
    assert tree_all["stable_violations"] == 0
    # Per-host recovery breakdown is reported alongside the totals.
    per_host = rows_by(result, protocol="tree")
    assert len(per_host) > 1
    recovered = [r for r in per_host if r["scope"] != "all"
                 and not math.isnan(r["recovery_mean_s"])]
    assert recovered
    assert all(r["recovery_mean_s"] <= r["recovery_max_s"] + 1e-9
               for r in recovered)


def test_e12_tree_cheapest_on_inter_cluster_traffic():
    result = run_e12_epidemic(n=10, warmup=3)
    by_protocol = {r["protocol"]: r for r in result.rows}
    assert by_protocol["tree"]["inter_cluster_per_msg"] < \
        by_protocol["basic"]["inter_cluster_per_msg"]
    assert by_protocol["tree"]["inter_cluster_per_msg"] < \
        by_protocol["epidemic"]["inter_cluster_per_msg"]
    for row in result.rows:
        assert row["delivered"] == 1.0
