"""Tests for host crash schedules and the host flapper."""

import pytest

from repro.chaos import HostCrashSchedule, HostFlapper
from repro.core import BroadcastSystem, ProtocolConfig
from repro.net import HostId, wan_of_lans
from repro.sim import Simulator


def build_system(seed=1, k=2, m=2):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m, backbone="line",
                        convergence_delay=0.0)
    system = BroadcastSystem(built, config=ProtocolConfig.for_scale(k * m))
    return sim, built, system.start()


def test_crash_schedule_outage_crashes_and_recovers():
    sim, built, system = build_system()
    victim = HostId("h1.0")
    HostCrashSchedule(sim, system).outage(5.0, 10.0, victim)
    sim.run(until=4.0)
    assert system.crashed_hosts() == []
    sim.run(until=6.0)
    assert system.crashed_hosts() == [victim]
    sim.run(until=11.0)
    assert system.crashed_hosts() == []


def test_crash_schedule_emits_trace_and_counters():
    sim, built, system = build_system()
    HostCrashSchedule(sim, system).outage(2.0, 4.0, HostId("h0.1"))
    sim.run(until=5.0)
    applies = sim.trace.records(kind="failure.apply")
    assert [(r.fields["host"], r.fields["up"]) for r in applies] == [
        ("h0.1", False), ("h0.1", True)]
    assert sim.metrics.counter("net.failures.host.down").value == 1
    assert sim.metrics.counter("net.failures.host.up").value == 1


def test_crash_schedule_validates_interval():
    sim, built, system = build_system()
    with pytest.raises(ValueError):
        HostCrashSchedule(sim, system).outage(5.0, 5.0, HostId("h0.1"))


def test_host_flapper_excludes_source_by_default():
    sim, built, system = build_system()
    flapper = HostFlapper(sim, system, mean_up=2.0, mean_down=1.0)
    assert system.source_id not in flapper.hosts
    assert len(flapper.hosts) == len(built.hosts) - 1


def test_host_flapper_is_deterministic():
    def run(seed):
        sim, built, system = build_system(seed=seed)
        HostFlapper(sim, system, mean_up=4.0, mean_down=2.0).start()
        sim.run(until=80.0)
        return [(round(r.time, 9), r.kind, r.source)
                for r in sim.trace.records(kind="host.crash")
                ] + [(round(r.time, 9), r.kind, r.source)
                     for r in sim.trace.records(kind="host.recover")]

    first = run(7)
    assert any(kind == "host.crash" for _, kind, _ in first)
    assert first == run(7)
    assert first != run(8)


def test_host_flapper_heal_recovers_every_host():
    sim, built, system = build_system()
    flapper = HostFlapper(sim, system, mean_up=2.0, mean_down=5.0).start()
    sim.run(until=30.0)
    flapper.heal()
    assert system.crashed_hosts() == []
    crashes = sim.metrics.counter("proto.host.crash").value
    sim.run(until=120.0)
    assert system.crashed_hosts() == []
    assert sim.metrics.counter("proto.host.crash").value == crashes


def test_host_flapper_validates():
    sim, built, system = build_system()
    with pytest.raises(ValueError):
        HostFlapper(sim, system, mean_up=0.0)
    with pytest.raises(ValueError):
        HostFlapper(sim, system, hosts=[])


def test_host_flapper_stop_cancels_pending_transitions():
    """stop() must cancel already-armed crash/recover timers — a timer
    left armed could crash a host after a chaos plan's heal-by horizon."""
    sim, built, system = build_system()
    flapper = HostFlapper(sim, system, mean_up=2.0, mean_down=1.0).start()
    sim.run(until=10.0)
    pending = list(flapper._pending.values())
    assert pending  # every managed host has its next transition armed
    flapper.heal()
    assert not flapper._pending
    assert all(not timer.armed for timer in pending)
    # No transition ever fires again: hosts stay up forever.
    downs = sim.metrics.counter("net.failures.host.down").value
    sim.run(until=200.0)
    assert sim.metrics.counter("net.failures.host.down").value == downs
    assert system.crashed_hosts() == []
