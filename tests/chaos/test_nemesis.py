"""ChaosNemesis: the seeded chaos arsenal aimed at real UDP sockets."""

import asyncio

import pytest

from repro.chaos import (
    AdversarySpec,
    ChaosNemesis,
    ChaosSpec,
    HostChurnSpec,
    HostOutageSpec,
    LinkChurnSpec,
    LinkOutageSpec,
    PacketFaultSpec,
    PartitionSpec,
    ServerOutageSpec,
    validate_udp_spec,
)
from repro.io.crosscheck import (
    ChaosCrosscheckScenario,
    chaos_crosscheck,
    run_udp_chaos_async,
)
from repro.io.node import UdpBroadcastSystem, cluster_names
from repro.net import HostId


def make_system(scenario: ChaosCrosscheckScenario) -> UdpBroadcastSystem:
    return UdpBroadcastSystem(
        cluster_names(scenario.clusters, scenario.hosts_per_cluster),
        config=scenario.config(), seed=scenario.seed,
        time_scale=scenario.time_scale)


class TestSpecValidation:
    def test_backend_agnostic_subset_is_accepted(self):
        validate_udp_spec(ChaosSpec(
            heal_by=20.0,
            host_outages=(HostOutageSpec(host="h1.1", start=2.0, end=5.0),),
            host_churn=(HostChurnSpec(hosts=("h0.1",)),),
            packet_faults=(PacketFaultSpec(drop_prob=0.1),)))

    @pytest.mark.parametrize("kind,spec", [
        ("link_outages", ChaosSpec(heal_by=10.0, link_outages=(
            LinkOutageSpec(a="h0.0", b="s0", start=1.0, end=2.0),))),
        ("server_outages", ChaosSpec(heal_by=10.0, server_outages=(
            ServerOutageSpec(server="s0", start=1.0, end=2.0),))),
        ("partitions", ChaosSpec(heal_by=10.0, partitions=(
            PartitionSpec(groups=(("h0.0",), ("h1.0",)),
                          start=1.0, end=2.0),))),
        ("link_churn", ChaosSpec(heal_by=10.0, link_churn=(
            LinkChurnSpec(links=(("h0.0", "s0"),)),))),
        ("adversaries", ChaosSpec(heal_by=10.0, adversaries=(
            AdversarySpec(host="h0.1", persona="stale_info"),))),
    ])
    def test_sim_only_fault_kinds_are_rejected_by_name(self, kind, spec):
        with pytest.raises(ValueError, match=kind):
            validate_udp_spec(spec)
        with pytest.raises(ValueError, match=kind):
            ChaosNemesis(object(), spec)


class TestNemesisOverUdp:
    def test_seeded_crash_and_loss_reach_full_delivery_post_heal(self):
        scenario = ChaosCrosscheckScenario(messages=5)

        async def main():
            system = make_system(scenario)
            await system.open()
            nemesis = ChaosNemesis(system, scenario.chaos_spec())
            try:
                nemesis.start()
                system.broadcast_stream(scenario.messages,
                                        interval=scenario.interval,
                                        start_at=scenario.start_at)
                await nemesis.wait_healed()
                assert nemesis.healed
                # The heal-by guarantee: nobody is down past the horizon.
                assert system.crashed_hosts() == []
                delivered_all = await system.run_until_delivered(
                    scenario.messages, timeout=scenario.timeout)
                victim_crashed = system.runtime.metrics.counter(
                    "net.failures.host.down").value
                dropped = system.runtime.metrics.counter(
                    "chaos.packet.dropped").value
                return (delivered_all, victim_crashed, dropped,
                        system.delivered_seqnos(), nemesis.report())
            finally:
                nemesis.stop()
                system.close()

        delivered_all, crashed, dropped, seqnos, report = asyncio.run(main())
        assert delivered_all, f"post-heal delivery incomplete: {seqnos}"
        assert crashed >= 1  # the outage actually fired
        assert dropped >= 1  # the packet chaos actually bit
        expected = list(range(1, scenario.messages + 1))
        assert all(v == expected for v in seqnos.values())
        # The invariant monitor ran over the live UDP trace stream.
        assert report.samples > 0
        assert report.clean
        # The victim's crash -> first post-recovery delivery was observed.
        assert any(host == str(scenario.crash_host)
                   for host, _seconds in report.recoveries)

    def test_stop_before_horizon_forces_heal_and_is_idempotent(self):
        scenario = ChaosCrosscheckScenario(messages=0, heal_by=500.0,
                                           crash_start=400.0, crash_end=450.0,
                                           fault_start=0.0, fault_end=500.0)

        async def main():
            system = make_system(scenario)
            await system.open()
            nemesis = ChaosNemesis(system, scenario.chaos_spec())
            try:
                nemesis.start()
                tapped = [t for t in system.transports.values()
                          if t.tap is not None]
                assert tapped  # packet chaos is installed
                nemesis.stop()  # run ends long before the horizon
                assert nemesis.healed
                assert all(t.tap is None
                           for t in system.transports.values())
                await nemesis.wait_healed()  # resolved: returns at once
                nemesis.stop()  # idempotent
                return nemesis.report()
            finally:
                system.close()

        report = asyncio.run(main())
        assert report.clean

    def test_crash_hook_cancels_pending_injections_for_victim(self):
        # A dup with a huge lag queued toward the victim must die with
        # the victim's crash, exactly as in-sim (ChaosPlan semantics).
        scenario = ChaosCrosscheckScenario(
            messages=3, crash_start=4.0, crash_end=8.0, heal_by=12.0,
            fault_start=0.0, fault_end=4.0, drop_prob=0.0, corrupt_prob=0.0)
        spec = ChaosSpec(
            heal_by=scenario.heal_by,
            host_outages=(HostOutageSpec(host=scenario.crash_host,
                                         start=scenario.crash_start,
                                         end=scenario.crash_end),),
            packet_faults=(PacketFaultSpec(dst=scenario.crash_host,
                                           dup_prob=1.0, dup_lag=300.0,
                                           end=4.0),))

        async def main():
            system = make_system(scenario)
            await system.open()
            nemesis = ChaosNemesis(system, spec)
            try:
                nemesis.start()
                system.broadcast_stream(scenario.messages,
                                        interval=scenario.interval,
                                        start_at=1.0)
                await nemesis.wait_healed()
                metrics = system.runtime.metrics
                return (metrics.counter("chaos.packet.duplicated").value,
                        metrics.counter(
                            "chaos.packet.cancelled_crashed").value)
            finally:
                nemesis.stop()
                system.close()

        duplicated, cancelled = asyncio.run(main())
        assert duplicated >= 1
        assert cancelled == duplicated  # every far-future dup was killed

    def test_monitor_can_be_disabled(self):
        scenario = ChaosCrosscheckScenario()

        async def main():
            system = make_system(scenario)
            await system.open()
            nemesis = ChaosNemesis(system, scenario.chaos_spec(),
                                   monitor=False)
            try:
                nemesis.start()
                with pytest.raises(RuntimeError, match="monitor=False"):
                    nemesis.report()
                return True
            finally:
                nemesis.stop()
                system.close()

        assert asyncio.run(main())


class TestChaosParity:
    def test_same_seeded_spec_on_both_backends(self):
        result = chaos_crosscheck(ChaosCrosscheckScenario(messages=5))
        assert result.udp_complete, result.report()
        assert result.udp_stable_violations == 0
        assert result.parity or result.within_tolerance, result.report()
        assert result.ok

    def test_run_udp_chaos_async_returns_report(self):
        scenario = ChaosCrosscheckScenario(messages=3, heal_by=12.0,
                                           crash_start=3.0, crash_end=7.0,
                                           fault_end=10.0)
        delivered, report = asyncio.run(run_udp_chaos_async(scenario))
        assert sorted(delivered) == sorted(
            str(HostId(f"h{c}.{h}")) for c in range(2) for h in range(2))
        assert report.samples > 0

    def test_result_tolerance_band(self):
        from repro.io.crosscheck import ChaosCrosscheckResult

        full = [1, 2, 3, 4]
        result = ChaosCrosscheckResult(
            sim_delivered={"h0.0": full, "h0.1": full},
            udp_delivered={"h0.0": full, "h0.1": [1, 2, 3]},
            expected=full, tolerance=0.25,
            udp_stable_violations=0, udp_unresolved_violations=0,
            udp_recoveries=[])
        assert not result.parity
        assert result.within_tolerance  # 1 of 4 missing == 25%
        assert not result.udp_complete  # ...but completeness is hard
        assert not result.ok
        strict = ChaosCrosscheckResult(
            sim_delivered={"h0.0": full}, udp_delivered={"h0.0": [1, 2]},
            expected=full, tolerance=0.25,
            udp_stable_violations=0, udp_unresolved_violations=0,
            udp_recoveries=[])
        assert not strict.within_tolerance  # 2 of 4 missing == 50%

    def test_stable_violations_fail_the_verdict(self):
        from repro.io.crosscheck import ChaosCrosscheckResult

        full = [1, 2]
        result = ChaosCrosscheckResult(
            sim_delivered={"h0.0": full}, udp_delivered={"h0.0": full},
            expected=full, tolerance=0.2,
            udp_stable_violations=1, udp_unresolved_violations=1,
            udp_recoveries=[("h0.0", 3.0)])
        assert result.parity and result.udp_complete
        assert not result.ok
        assert "FAILED" in result.report()
