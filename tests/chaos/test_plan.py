"""Tests for the ChaosPlan orchestrator and its declarative spec."""

import pytest

from repro.chaos import (
    ChaosPlan,
    ChaosSpec,
    HostChurnSpec,
    HostOutageSpec,
    LinkChurnSpec,
    LinkOutageSpec,
    PartitionSpec,
    PartitionWindowSpec,
    ServerOutageSpec,
)
from repro.scenarios.partitions import WindowSpec
from repro.core import BroadcastSystem, ProtocolConfig
from repro.net import wan_of_lans
from repro.sim import Simulator


def build_system(seed=1, k=3, m=2, backbone="ring"):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m,
                        backbone=backbone, convergence_delay=0.0)
    system = BroadcastSystem(built, config=ProtocolConfig.for_scale(k * m))
    return sim, built, system.start()


def test_spec_rejects_outage_past_heal_by():
    with pytest.raises(ValueError):
        ChaosSpec(heal_by=10.0,
                  host_outages=(HostOutageSpec("h0.1", 5.0, 12.0),))
    with pytest.raises(ValueError):
        ChaosSpec(heal_by=10.0,
                  link_outages=(LinkOutageSpec("s0", "s1", 5.0, 11.0),))


def test_spec_rejects_bad_windows_and_means():
    with pytest.raises(ValueError):
        ChaosSpec(heal_by=0.0)
    with pytest.raises(ValueError):
        ChaosSpec(heal_by=10.0,
                  server_outages=(ServerOutageSpec("s0", 5.0, 5.0),))
    with pytest.raises(ValueError):
        ChaosSpec(heal_by=10.0,
                  host_churn=(HostChurnSpec(("h0.1",), mean_up=0.0),))


def test_plan_applies_scheduled_outages():
    sim, built, system = build_system()
    spec = ChaosSpec(
        heal_by=20.0,
        host_outages=(HostOutageSpec("h1.0", 2.0, 6.0),),
        server_outages=(ServerOutageSpec("s2", 3.0, 7.0),),
        link_outages=(LinkOutageSpec("s0", "s1", 4.0, 8.0),),
    )
    ChaosPlan(sim, system, spec).start()
    sim.run(until=5.0)
    assert [str(h) for h in system.crashed_hosts()] == ["h1.0"]
    assert not built.network.servers["s2"].up
    assert not built.network.link("s0", "s1").up
    sim.run(until=9.0)
    assert system.crashed_hosts() == []
    assert built.network.servers["s2"].up
    assert built.network.link("s0", "s1").up


def test_plan_partition_spec():
    sim, built, system = build_system(k=3, m=1, backbone="line")
    groups = (("s0", "h0.0"), ("s1", "s2", "h1.0", "h2.0"))
    spec = ChaosSpec(heal_by=20.0,
                     partitions=(PartitionSpec(groups, 2.0, 6.0),))
    ChaosPlan(sim, system, spec).start()
    sim.run(until=3.0)
    assert len(built.network.partitions()) == 2
    sim.run(until=7.0)
    assert len(built.network.partitions()) == 1


def test_windowed_partition_spec_validation():
    groups = (("s0", "h0.0"), ("s1", "h1.0"))
    window = WindowSpec(period=5.0, width=1.0, first_open=2.0)
    with pytest.raises(ValueError):
        PartitionWindowSpec(groups[:1], window, until=10.0)  # one side
    with pytest.raises(ValueError):
        PartitionWindowSpec(groups, window, until=2.0)  # ends at first open
    with pytest.raises(ValueError):  # must end before the heal horizon
        ChaosSpec(heal_by=10.0, window_partitions=(
            PartitionWindowSpec(groups, window, until=10.0),))


def test_plan_windowed_partition_opens_and_heals():
    sim, built, system = build_system(k=2, m=1, backbone="line")
    spec = ChaosSpec(heal_by=20.0, window_partitions=(
        PartitionWindowSpec(
            groups=(("s0", "h0.0"), ("s1", "h1.0")),
            window=WindowSpec(period=6.0, width=2.0, first_open=3.0),
            until=15.0),))
    ChaosPlan(sim, system, spec).start()
    link = built.network.link("s0", "s1")
    sim.run(until=1.0)
    assert not link.up          # cut from the start until the first window
    sim.run(until=3.5)
    assert link.up              # first window [3, 5)
    sim.run(until=5.5)
    assert not link.up
    sim.run(until=9.5)
    assert link.up              # second window [9, 11)
    sim.run(until=13.5)
    assert not link.up
    sim.run(until=16.0)
    assert link.up              # force-healed past `until`


def test_plan_composed_chaos_is_deterministic_per_seed():
    # Window partitions and packet faults composed with churn: the
    # whole plan's observable behaviour is a function of the seed.
    def state_trace(seed):
        sim, built, system = build_system(seed=seed, k=3, m=1,
                                          backbone="line")
        spec = ChaosSpec(
            heal_by=30.0,
            window_partitions=(PartitionWindowSpec(
                groups=(("s0", "h0.0"), ("s1", "s2", "h1.0", "h2.0")),
                window=WindowSpec(period=8.0, width=2.0, first_open=2.0),
                until=26.0),),
            host_churn=(HostChurnSpec(("h1.0", "h2.0"),
                                      mean_up=5.0, mean_down=2.0),),
        )
        ChaosPlan(sim, system, spec).start()
        samples = []
        for t in range(1, 31):
            sim.schedule_at(float(t), lambda: samples.append((
                sim.now,
                tuple(sorted(str(h) for h in system.crashed_hosts())),
                tuple(sorted(str(name) for name, link
                             in built.network.links.items()
                             if not link.up)),
            )))
        sim.run(until=31.0)
        return samples

    first = state_trace(5)
    assert any(down for _, _, down in first)     # partitions happened
    assert any(crashed for _, crashed, _ in first)  # churn happened
    assert first == state_trace(5)
    assert first != state_trace(6)


def test_plan_heals_churn_by_horizon():
    sim, built, system = build_system()
    hosts = tuple(str(h) for h in built.hosts if h != system.source_id)
    links = tuple((a, b) for a, b in built.backbone)
    spec = ChaosSpec(
        heal_by=30.0,
        host_churn=(HostChurnSpec(hosts, mean_up=4.0, mean_down=3.0),),
        link_churn=(LinkChurnSpec(links, mean_up=4.0, mean_down=3.0),),
    )
    plan = ChaosPlan(sim, system, spec).start()
    sim.run(until=31.0)
    assert plan.healed
    assert system.crashed_hosts() == []
    assert all(link.up for link in built.network.links.values())
    # Healed means healed: no further churn transitions ever fire.
    crashes = sim.metrics.counter("proto.host.crash").value
    sim.run(until=120.0)
    assert system.crashed_hosts() == []
    assert sim.metrics.counter("proto.host.crash").value == crashes
    assert all(link.up for link in built.network.links.values())


def test_plan_is_deterministic_per_seed():
    hosts = ("h0.1", "h1.0", "h1.1")

    def fault_trace(seed):
        sim, built, system = build_system(seed=seed)
        links = tuple((a, b) for a, b in built.backbone)
        spec = ChaosSpec(
            heal_by=40.0,
            host_churn=(HostChurnSpec(hosts, mean_up=5.0, mean_down=2.0),),
            link_churn=(LinkChurnSpec(links, mean_up=5.0, mean_down=2.0),),
        )
        ChaosPlan(sim, system, spec).start()
        sim.run(until=41.0)
        return [(round(r.time, 9), r.kind, r.source)
                for r in sim.trace.records(kind="host.crash")]

    first = fault_trace(5)
    assert first  # churn actually happened
    assert first == fault_trace(5)
    assert first != fault_trace(6)


def test_plan_delivers_full_stream_after_heal():
    sim, built, system = build_system()
    hosts = tuple(str(h) for h in built.hosts if h != system.source_id)
    spec = ChaosSpec(
        heal_by=25.0,
        host_churn=(HostChurnSpec(hosts, mean_up=8.0, mean_down=3.0),),
    )
    ChaosPlan(sim, system, spec).start()
    system.broadcast_stream(10, interval=1.0, start_at=1.0)
    sim.run(until=26.0)
    assert system.run_until_delivered(10, timeout=400.0)
