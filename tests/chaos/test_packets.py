"""Tests for adversarial packet-level fault injection (PacketChaos)."""

import pytest

from repro.chaos import ChaosPlan, ChaosSpec, HostOutageSpec, PacketChaos, \
    PacketFaultSpec
from repro.core import BroadcastSystem, ProtocolConfig
from repro.core.seqnoset import SeqnoSet
from repro.core.wire import InfoMsg, corrupted_copy, forged_copy
from repro.net import HostId, wan_of_lans
from repro.sim import Simulator


def build_system(seed=1, k=2, m=2, **config_overrides):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m,
                        backbone="line", convergence_delay=0.0)
    system = BroadcastSystem(built, config=ProtocolConfig.for_scale(
        k * m, **config_overrides))
    return sim, built, system.start()


def run_stream(sim, system, n=5, until=60.0):
    system.broadcast_stream(n, interval=1.0, start_at=2.0)
    sim.run(until=until)
    return system


def test_spec_validates_probabilities_and_windows():
    with pytest.raises(ValueError):
        PacketFaultSpec(corrupt_prob=1.5)
    with pytest.raises(ValueError):
        PacketFaultSpec(dup_prob=-0.1)
    with pytest.raises(ValueError):
        PacketFaultSpec(delay=-1.0)
    with pytest.raises(ValueError):
        PacketFaultSpec(start=5.0, end=5.0)


def test_corruption_is_detected_and_dropped():
    sim, built, system = build_system()
    PacketChaos(sim, built.network, (PacketFaultSpec(corrupt_prob=0.3),)).start()
    run_stream(sim, system)
    assert sim.metrics.counter("chaos.packet.corrupted").value > 0
    assert sim.metrics.counter("proto.wire.corrupt_dropped").value > 0
    # Corruption slows delivery but must not poison protocol state.
    assert system.run_until_delivered(5, timeout=300.0)


def test_duplicated_control_packets_are_suppressed():
    sim, built, system = build_system()
    PacketChaos(sim, built.network, (PacketFaultSpec(dup_prob=0.5),)).start()
    run_stream(sim, system)
    assert sim.metrics.counter("chaos.packet.duplicated").value > 0
    assert sim.metrics.counter("proto.wire.dup_suppressed").value > 0
    assert system.run_until_delivered(5, timeout=300.0)


def test_replayed_stale_packets_do_not_wedge_the_protocol():
    sim, built, system = build_system()
    PacketChaos(sim, built.network,
                (PacketFaultSpec(replay_prob=0.3, replay_lag=5.0),)).start()
    run_stream(sim, system)
    assert sim.metrics.counter("chaos.packet.replayed").value > 0
    assert system.run_until_delivered(5, timeout=300.0)
    # Every host must still deliver each seqno exactly once.
    for host_id, records in system.delivery_records().items():
        seqs = [r.seq for r in records]
        assert len(seqs) == len(set(seqs)), (host_id, seqs)


def test_delayed_packets_arrive_late_not_never():
    sim, built, system = build_system()
    PacketChaos(sim, built.network,
                (PacketFaultSpec(delay_prob=0.4, delay=1.0),)).start()
    run_stream(sim, system)
    assert sim.metrics.counter("chaos.packet.delayed").value > 0
    assert system.run_until_delivered(5, timeout=300.0)


def test_dst_and_window_scoping():
    sim, built, system = build_system()
    victim = str(sorted(built.hosts)[1])
    chaos = PacketChaos(sim, built.network,
                        (PacketFaultSpec(dst=victim, start=0.0, end=4.0,
                                         corrupt_prob=1.0),)).start()
    # Only the victim's port is tapped.
    tapped = [str(port.host_id) for port, _tap in chaos._tapped]
    assert tapped == [victim]
    run_stream(sim, system, until=30.0)
    # After the window closed, corruption stopped; stream still completes.
    corrupted_at_4 = sim.metrics.counter("chaos.packet.corrupted").value
    sim.run(until=40.0)
    assert sim.metrics.counter("chaos.packet.corrupted").value == corrupted_at_4
    assert system.run_until_delivered(5, timeout=300.0)


def test_stop_removes_taps_and_cancels_pending_injections():
    sim, built, system = build_system()
    chaos = PacketChaos(sim, built.network,
                        (PacketFaultSpec(dup_prob=1.0, dup_lag=50.0),)).start()
    run_stream(sim, system, until=10.0)
    assert chaos._pending  # far-future duplicates are in flight
    recv_at_stop = sim.metrics.counter("net.h2h.recv").value
    duplicated = sim.metrics.counter("chaos.packet.duplicated").value
    chaos.stop()
    assert not chaos._pending
    for port in [built.network.host_port(h) for h in built.network.hosts()]:
        assert port.tap is None
    # The cancelled duplicates never arrive, and no new ones are made.
    sim.run(until=70.0)
    assert sim.metrics.counter("chaos.packet.duplicated").value == duplicated
    assert sim.metrics.counter("net.h2h.recv").value >= recv_at_stop


def test_chaos_plan_composes_packet_faults_and_heals():
    sim, built, system = build_system()
    plan = ChaosPlan(sim, system, ChaosSpec(
        heal_by=15.0,
        # open-ended window: clamped to heal_by when the plan starts
        packet_faults=(PacketFaultSpec(corrupt_prob=0.5, start=1.0),),
    )).start()
    run_stream(sim, system, until=16.0)
    assert sim.metrics.counter("chaos.packet.corrupted").value > 0
    corrupted_at_heal = sim.metrics.counter("chaos.packet.corrupted").value
    sim.run(until=40.0)
    # Healed: no post-horizon corruption, every port untapped.
    assert sim.metrics.counter("chaos.packet.corrupted").value == corrupted_at_heal
    for host in built.network.hosts():
        assert built.network.host_port(host).tap is None
    assert plan  # plan object stays alive for inspection


def test_spec_rejects_packet_fault_window_past_heal_by():
    # A finite rule window reaching past the horizon is a spec bug, not
    # something to clamp silently; the error must name the rule.
    with pytest.raises(ValueError, match=r"ends at 100\.0.*heal_by.*15\.0"):
        ChaosSpec(heal_by=15.0,
                  packet_faults=(PacketFaultSpec(corrupt_prob=0.5, start=1.0,
                                                 end=100.0),))
    # At-the-horizon and open-ended windows are both fine.
    ChaosSpec(heal_by=15.0,
              packet_faults=(PacketFaultSpec(corrupt_prob=0.5, end=15.0),))
    ChaosSpec(heal_by=15.0, packet_faults=(PacketFaultSpec(drop_prob=0.1),))


def test_crash_cancels_pending_injections_for_the_victim():
    # A duplicate queued with a long lag toward a host that crashes
    # mid-window must be cancelled: a recovering host must not receive
    # chaos-made copies of packets from before its crash.
    sim, built, system = build_system()
    victim = str(sorted(built.hosts)[1])
    plan = ChaosPlan(sim, system, ChaosSpec(
        heal_by=30.0,
        host_outages=(HostOutageSpec(host=victim, start=10.0, end=20.0),),
        packet_faults=(PacketFaultSpec(dst=victim, dup_prob=1.0,
                                       dup_lag=50.0, end=9.0),),
    )).start()
    run_stream(sim, system, until=9.5)
    assert sim.metrics.counter("chaos.packet.duplicated").value > 0
    pending = [dst for chaos in plan._packet_chaos
               for dst in chaos._pending.values()]
    assert HostId(victim) in pending  # far-future dups queued pre-crash
    sim.run(until=11.0)  # the crash fires, taking the queue with it
    assert sim.metrics.counter("chaos.packet.cancelled_crashed").value \
        == len(pending)
    assert not any(chaos._pending for chaos in plan._packet_chaos)
    assert system.run_until_delivered(5, timeout=300.0)


def test_corrupt_drops_split_dup_uid_from_forged_uid():
    sim, built, system = build_system()
    run_stream(sim, system, until=20.0)  # protocol is up and attached
    hosts = sorted(built.hosts)
    src, dst = hosts[0], hosts[1]
    info = SeqnoSet()
    info.add(1)
    msg = InfoMsg(sender=src, info=info, parent=None)
    port = built.network.host_port(src)
    # 1) honest delivery: dst records (src, uid) as seen
    port.send(dst, msg)
    sim.run(until=sim.now + 2.0)
    base_dup = sim.metrics.counter(
        "proto.wire.corrupt_dropped.dup_uid").value
    base_forged = sim.metrics.counter(
        "proto.wire.corrupt_dropped.forged_uid").value
    # 2) a mangled retransmission of the *same* uid -> dup_uid
    port.send(dst, corrupted_copy(msg))
    # 3) a corrupt message with a never-seen uid -> forged_uid
    port.send(dst, corrupted_copy(forged_copy(msg, uid=0)))
    sim.run(until=sim.now + 2.0)
    dup = sim.metrics.counter("proto.wire.corrupt_dropped.dup_uid").value
    forged = sim.metrics.counter(
        "proto.wire.corrupt_dropped.forged_uid").value
    assert dup == base_dup + 1
    assert forged == base_forged + 1
    # The legacy aggregate keeps its name and covers both.
    assert sim.metrics.counter("proto.wire.corrupt_dropped").value >= \
        dup + forged - base_dup - base_forged


def test_corrupt_split_counters_sum_to_aggregate_under_chaos():
    sim, built, system = build_system()
    PacketChaos(sim, built.network,
                (PacketFaultSpec(corrupt_prob=0.3),)).start()
    run_stream(sim, system)
    total = sim.metrics.counter("proto.wire.corrupt_dropped").value
    split = (sim.metrics.counter("proto.wire.corrupt_dropped.dup_uid").value
             + sim.metrics.counter(
                 "proto.wire.corrupt_dropped.forged_uid").value)
    assert total > 0 and total == split


def test_same_seed_same_fault_sequence():
    counters = []
    for _ in range(2):
        sim, built, system = build_system(seed=9)
        PacketChaos(sim, built.network,
                    (PacketFaultSpec(corrupt_prob=0.2, dup_prob=0.2,
                                     delay_prob=0.2),)).start()
        run_stream(sim, system)
        counters.append(tuple(
            sim.metrics.counter(name).value
            for name in ("chaos.packet.corrupted", "chaos.packet.duplicated",
                         "chaos.packet.delayed", "net.h2h.recv")))
    assert counters[0] == counters[1]
