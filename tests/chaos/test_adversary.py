"""Tests for adversarial host personas (repro.chaos.adversary)."""

import pytest

from repro.baseline import BasicBroadcastSystem, BasicConfig, \
    EpidemicBroadcastSystem
from repro.chaos import PERSONAS, AdversaryHarness, AdversarySpec, \
    ChaosPlan, ChaosSpec
from repro.core import BroadcastSystem, ProtocolConfig
from repro.fuzz.properties import delivery_signature
from repro.net import HostId, wan_of_lans
from repro.sim import Simulator

N = 10


def _build(seed=24, clusters=3, hosts_per_cluster=2):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=clusters,
                        hosts_per_cluster=hosts_per_cluster, backbone="line")
    return sim, built


def _tree(built, n_hosts=6):
    return BroadcastSystem(built, config=ProtocolConfig.for_scale(
        n_hosts, data_size_bits=4_000)).start()


def _correct(built, adversaries):
    return [h for h in built.hosts if str(h) not in adversaries]


def _run(sim, system, specs, n=N, timeout=120.0):
    if specs:
        ChaosPlan(sim, system, ChaosSpec(
            heal_by=5.0, adversaries=tuple(specs))).start()
    system.broadcast_stream(n, interval=1.0, start_at=2.0)
    adversaries = {s.host for s in specs}
    return system.run_until_delivered(
        n, timeout=timeout,
        hosts=_correct(system.built, adversaries) if specs else None)


def test_spec_validation():
    with pytest.raises(ValueError):
        AdversarySpec(host="h0.1", persona="nonsense")
    with pytest.raises(ValueError):
        AdversarySpec(host="h0.1", persona="stale_info", start=5.0, end=5.0)
    with pytest.raises(ValueError):
        AdversarySpec(host="h0.1", persona="equivocate", lie_ahead=0)
    with pytest.raises(ValueError):
        AdversarySpec(host="h0.1", persona="selective_forward", drop_frac=1.5)
    with pytest.raises(ValueError):
        AdversarySpec(host="h0.1", persona="replay_control",
                      replay_interval=0.0)


def test_source_cannot_be_adversary():
    sim, built = _build()
    system = _tree(built)
    with pytest.raises(ValueError, match="source"):
        AdversaryHarness(sim, system, (AdversarySpec(
            host=str(system.source_id), persona="stale_info"),))


def test_no_adversaries_installs_nothing():
    sim, built = _build()
    system = _tree(built)
    plan = ChaosPlan(sim, system, ChaosSpec(heal_by=5.0)).start()
    assert plan.adversary_hosts() == frozenset()
    _run(sim, system, ())
    assert sim.metrics.counter("chaos.adversary.active").value == 0
    for host in built.network.hosts():
        port = built.network.host_port(host)
        assert port.tap is None and port.send_tap is None


def test_disabled_runs_are_byte_identical():
    signatures = []
    for _ in range(2):
        sim, built = _build()
        system = _tree(built)
        assert _run(sim, system, ())
        signatures.append(delivery_signature(system))
    assert signatures[0] == signatures[1]


def test_ack_no_deliver_on_basic_loses_only_the_adversary():
    sim, built = _build()
    system = BasicBroadcastSystem(
        built, config=BasicConfig(data_size_bits=4_000)).start()
    adv = "h1.0"
    assert _run(sim, system, (AdversarySpec(host=adv, persona="ack_no_deliver"),))
    assert sim.metrics.counter("chaos.adversary.swallowed").value > 0
    # The acked-but-swallowed messages are unrecoverable for the
    # adversary — the source crossed them off — but correct hosts are
    # whole (checked by _run above).
    assert not system.hosts[HostId(adv)].deliveries.has_all(N)


def _placements(seed=24):
    """Interior/leaf adversary slots, from the same probe E24 uses."""
    from repro.experiments.runners import _e24_placements

    return _e24_placements(seed, clusters=3, hosts_per_cluster=2)


def test_selective_forward_interior_starves_correct_subtree():
    # With two-host clusters the cluster leader is a cut vertex: a data
    # black hole there permanently starves its correct child, while the
    # protocol's control plane (which the persona forwards faithfully)
    # keeps the structure looking healthy.
    interior, _leaves = _placements()
    assert interior, "seed must form at least one non-source parent"
    adv = interior[0]
    sim, built = _build()
    system = _tree(built)
    delivered = _run(sim, system, (AdversarySpec(
        host=adv, persona="selective_forward", start=4.0),), timeout=60.0)
    assert not delivered
    assert sim.metrics.counter("chaos.adversary.dropped_data").value > 0
    starved = [str(h) for h in _correct(built, {adv})
               if not system.hosts[h].deliveries.has_all(N)]
    assert starved, "the black hole's subtree should miss messages"


def test_stale_info_and_replay_leaf_are_harmless():
    _interior, leaves = _placements()
    for persona in ("stale_info", "replay_control"):
        sim, built = _build()
        system = _tree(built)
        assert _run(sim, system, (AdversarySpec(
            host=leaves[0], persona=persona, start=4.0),)), persona


def test_equivocate_splits_neighbors_and_counts():
    sim, built = _build()
    system = _tree(built)
    assert _run(sim, system, (AdversarySpec(host="h1.0",
                                            persona="equivocate"),))
    assert sim.metrics.counter("chaos.adversary.equivocated").value > 0
    assert sim.metrics.counter("chaos.adversary.forged").value > 0


def test_replay_control_defeats_uid_dedup_but_not_seq_dedup():
    sim, built = _build()
    system = _tree(built)
    assert _run(sim, system, (AdversarySpec(host="h1.0",
                                            persona="replay_control",
                                            replay_interval=2.0),),
                timeout=180.0)
    assert sim.metrics.counter("chaos.adversary.replayed").value > 0
    # Replays carry fresh uids, so exactly-once must come from the
    # protocol's seq-level dedup, not uid suppression.
    for host_id, records in system.delivery_records().items():
        seqs = [r.seq for r in records]
        assert len(seqs) == len(set(seqs)), (host_id, seqs)


def test_digest_personas_apply_to_epidemic():
    sim, built = _build()
    system = EpidemicBroadcastSystem(built).start()
    adv = "h1.0"
    assert _run(sim, system, (AdversarySpec(host=adv,
                                            persona="ack_no_deliver"),))
    # The forged digests claimed the swallowed seqnos, so peers stopped
    # offering them: self-starvation, contained at the adversary.
    assert sim.metrics.counter("chaos.adversary.forged").value > 0
    assert not system.hosts[HostId(adv)].deliveries.has_all(N)


def test_finite_window_restores_honesty():
    sim, built = _build()
    system = _tree(built)
    spec = AdversarySpec(host="h1.0", persona="selective_forward",
                         start=2.0, end=10.0)
    assert _run(sim, system, (spec,), timeout=120.0)
    port = built.network.host_port(HostId("h1.0"))
    assert port.send_tap is None  # persona uninstalled at end
    # A cleaned host resumes honest forwarding: even the ex-adversary
    # ends up complete (its internal state was always maintained).
    assert system.hosts[HostId("h1.0")].deliveries.has_all(N)


def test_stop_cancels_pending_installation():
    sim, built = _build()
    system = _tree(built)
    harness = AdversaryHarness(sim, system, (AdversarySpec(
        host="h1.0", persona="stale_info", start=50.0),)).start()
    harness.stop()  # before the window opens
    system.broadcast_stream(N, interval=1.0, start_at=2.0)
    sim.run(until=80.0)
    assert sim.metrics.counter("chaos.adversary.active").value == 0


def test_personas_registry_is_complete():
    assert set(PERSONAS) == {"stale_info", "equivocate", "ack_no_deliver",
                             "selective_forward", "replay_control"}
