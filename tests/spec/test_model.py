"""Unit tests for the abstract protocol specification."""

import pytest

from repro.net import HostId
from repro.spec import Attach, Broadcast, BroadcastSpec, Deliver, Detach

S, A, B, C = (HostId(x) for x in ["s", "a", "b", "c"])


def make_spec():
    return BroadcastSpec(source=S, hosts=[S, A, B, C])


def test_source_must_be_a_host():
    with pytest.raises(ValueError):
        BroadcastSpec(source=HostId("ghost"), hosts=[A])


class TestBroadcastAction:
    def test_consecutive_numbering(self):
        spec = make_spec()
        assert spec.apply(Broadcast(1)) is None
        assert spec.apply(Broadcast(2)) is None
        assert 2 in spec.state.info[S]

    def test_skipping_a_number_violates(self):
        spec = make_spec()
        spec.apply(Broadcast(1))
        assert spec.apply(Broadcast(3)) is not None

    def test_repeating_a_number_violates(self):
        spec = make_spec()
        spec.apply(Broadcast(1))
        assert spec.apply(Broadcast(1)) is not None


class TestDeliverAction:
    def seeded(self):
        spec = make_spec()
        spec.apply(Broadcast(1))
        spec.apply(Broadcast(2))
        spec.apply(Attach(A, S))
        return spec

    def test_delivery_from_parent_allowed(self):
        spec = self.seeded()
        assert spec.apply(Deliver(A, 1, S)) is None
        assert 1 in spec.state.info[A]

    def test_never_broadcast_message_rejected(self):
        spec = self.seeded()
        violation = spec.apply(Deliver(A, 99, S))
        assert violation and "never broadcast" in violation

    def test_duplicate_delivery_rejected(self):
        spec = self.seeded()
        spec.apply(Deliver(A, 1, S))
        violation = spec.apply(Deliver(A, 1, S))
        assert violation and "twice" in violation

    def test_supplier_must_hold_the_message(self):
        spec = self.seeded()
        spec.apply(Attach(B, A))
        # A does not hold seq 1 yet, so it cannot supply it to B.
        violation = spec.apply(Deliver(B, 1, A))
        assert violation and "without holding" in violation

    def test_new_maximum_only_from_parent(self):
        spec = self.seeded()
        # B's parent is None; a new-max delivery from A must be rejected.
        spec.apply(Deliver(A, 1, S))
        violation = spec.apply(Deliver(B, 1, A))
        assert violation and "parent" in violation

    def test_gap_below_maximum_from_anyone(self):
        spec = self.seeded()
        spec.apply(Deliver(A, 1, S))
        spec.apply(Deliver(A, 2, S))
        spec.apply(Attach(B, S))
        spec.apply(Deliver(B, 2, S))      # new max via parent
        assert spec.apply(Deliver(B, 1, A)) is None  # hole filled by A

    def test_source_self_delivery_allowed(self):
        spec = make_spec()
        assert spec.apply(Broadcast(1)) is None


class TestAttachDetach:
    def test_source_never_attaches(self):
        spec = make_spec()
        assert spec.apply(Attach(S, A)) is not None

    def test_self_attachment_rejected(self):
        spec = make_spec()
        assert spec.apply(Attach(A, A)) is not None

    def test_attach_updates_parent(self):
        spec = make_spec()
        spec.apply(Attach(A, B))
        assert spec.state.parent[A] == B
        spec.apply(Detach(A))
        assert spec.state.parent[A] is None

    def test_source_detach_rejected(self):
        spec = make_spec()
        assert spec.apply(Detach(S)) is not None


class TestFinalCheck:
    def test_incomplete_run_flagged_when_expected_complete(self):
        spec = make_spec()
        spec.apply(Broadcast(1))
        violations = spec.final_check(expect_complete=True)
        assert any("never received" in v for v in violations)

    def test_complete_run_passes(self):
        spec = make_spec()
        spec.apply(Broadcast(1))
        for host in (A, B, C):
            spec.apply(Attach(host, S))
            spec.apply(Deliver(host, 1, S))
        assert spec.final_check(expect_complete=True) == []

    def test_incomplete_ok_when_not_expected(self):
        spec = make_spec()
        spec.apply(Broadcast(1))
        assert spec.final_check(expect_complete=False) == []
