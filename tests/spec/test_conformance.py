"""Conformance tests: the implementation obeys its own specification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BroadcastSystem, ProtocolConfig
from repro.net import HostId, cheap_spec, expensive_spec, wan_of_lans
from repro.scenarios import midstream_partition
from repro.sim import Simulator
from repro.spec import check_conformance, check_trace


def run_system(seed=1, k=2, m=2, n=10, loss=0.0, dup=0.0, partition=False):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m, backbone="line",
                        cheap=cheap_spec(loss_prob=loss, dup_prob=dup),
                        expensive=expensive_spec(loss_prob=loss, dup_prob=dup))
    if partition:
        midstream_partition(built, cluster_index=k - 1, start=5.0, end=20.0)
    system = BroadcastSystem(built, config=ProtocolConfig.for_scale(k * m))
    system.start()
    system.broadcast_stream(n, interval=0.5, start_at=2.0)
    ok = system.run_until_delivered(n, timeout=500.0)
    return system, ok


def test_clean_run_conforms_and_completes():
    system, ok = run_system()
    assert ok
    report = check_conformance(system, expect_complete=True)
    assert report.ok, report.violations
    assert report.actions_checked > 20


def test_lossy_run_conforms():
    system, ok = run_system(seed=3, loss=0.1, dup=0.05)
    assert ok
    report = check_conformance(system, expect_complete=True)
    assert report.ok, report.violations


def test_partitioned_run_conforms():
    system, ok = run_system(seed=4, k=3, partition=True, n=15)
    assert ok
    report = check_conformance(system, expect_complete=True)
    assert report.ok, report.violations


def test_incomplete_run_detected():
    sim = Simulator(seed=5)
    built = wan_of_lans(sim, clusters=2, hosts_per_cluster=2, backbone="line")
    built.network.set_link_state("s0", "s1", up=False)  # permanent partition
    system = BroadcastSystem(built, config=ProtocolConfig.for_scale(4)).start()
    system.broadcast_stream(3, interval=0.5, start_at=2.0)
    sim.run(until=30.0)
    report = check_conformance(system, expect_complete=True)
    assert not report.ok
    assert any("never received" in v for v in report.violations)


def test_fabricated_bad_event_is_caught():
    """The checker is not a rubber stamp: a forged trace event fails."""
    system, ok = run_system()
    sim = system.sim
    victim = HostId("h1.1")
    # Forge a delivery of a message that was never broadcast.
    sim.trace.emit("host.deliver", str(victim), seq=999, sender="h0.0",
                   gapfill=False)
    report = check_conformance(system)
    assert not report.ok
    assert any("never broadcast" in v for v in report.violations)


def test_forged_new_max_from_non_parent_caught():
    system, ok = run_system()
    sim = system.sim
    # h1.1's parent is some specific host; forge a new-max delivery from
    # a non-parent (the source's own sibling h0.1 can never be everyone's
    # parent simultaneously, so pick whichever host is NOT the parent).
    victim = system.hosts[HostId("h1.1")]
    non_parent = next(h for h in system.built.hosts
                      if h not in (victim.parent, victim.me))
    sim.trace.emit("source.broadcast", "h0.0", seq=11)
    sim.trace.emit("host.deliver", "h0.1", seq=11, sender="h0.0", gapfill=False)
    sim.trace.emit("host.deliver", str(victim.me), seq=11,
                   sender=str(non_parent), gapfill=False)
    report = check_conformance(system)
    assert not report.ok


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000),
       loss=st.floats(min_value=0.0, max_value=0.12))
def test_conformance_holds_across_random_runs(seed, loss):
    """Property: every reachable run satisfies the abstract spec."""
    system, ok = run_system(seed=seed, loss=loss, n=8)
    report = check_conformance(system, expect_complete=ok)
    assert report.ok, (seed, loss, report.violations)


def test_refinement_state_correspondence():
    """The concrete final state must equal the abstract replayed state."""
    from repro.spec import BroadcastSpec, check_refinement

    system, ok = run_system(seed=9, loss=0.05)
    assert ok
    report = check_conformance(system, expect_complete=True)
    assert report.ok, report.violations


def test_refinement_catches_state_divergence():
    from repro.spec import BroadcastSpec, check_refinement

    system, ok = run_system()
    spec = BroadcastSpec(source=system.source_id, hosts=system.built.hosts)
    # Deliberately diverge: abstract state never saw any action.
    violations = check_refinement(system, spec)
    assert violations
    assert any("diverges" in v for v in violations)
