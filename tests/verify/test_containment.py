"""Tests for per-invariant containment classification under adversaries."""

from repro.core import BroadcastSystem, ProtocolConfig
from repro.net import wan_of_lans
from repro.sim import Simulator
from repro.verify import (CONTAINMENT_STATUSES, InvariantContainment,
                          classify_containment, classify_spans, span_hosts,
                          worst_status)
from repro.verify.containment import _classify
from repro.verify.monitor import ViolationSpan


def _span(kind, *hosts, stable=True, unresolved=False):
    return ViolationSpan(key=(kind, *hosts), first_seen=1.0, last_seen=30.0,
                         stable=stable, unresolved_at_end=unresolved)


def test_classify_statuses():
    adv = frozenset({"h1.1"})
    assert _classify("x", [], adv).status == "holds_globally"
    assert _classify("x", [("h1.1", "h1.0")], adv).status == \
        "holds_correct_only"
    assert _classify("x", [("h0.1", "h1.0")], adv).status == "broken"
    # one contained violation does not excuse an uncontained one
    assert _classify("x", [("h1.1",), ("h0.1",)], adv).status == "broken"


def test_contained_property_and_worst_status():
    results = (InvariantContainment("a", "holds_globally"),
               InvariantContainment("b", "holds_correct_only",
                                    ((("h1.1",),))),
               InvariantContainment("c", "broken", ((("h0.1",),))))
    assert results[0].contained and results[1].contained
    assert not results[2].contained
    assert worst_status(results) == "broken"
    assert worst_status(results[:2]) == "holds_correct_only"
    assert worst_status(()) == "holds_globally"
    assert tuple(CONTAINMENT_STATUSES) == (
        "holds_globally", "holds_correct_only", "broken")


def test_span_attribution_is_structural():
    span = _span("info_dominance", "h1.0", "h1.1")
    assert span_hosts(span) == ("h1.0", "h1.1")


def test_classify_spans_filters_transients_and_seeds_kinds():
    spans = [
        _span("info_dominance", "h1.0", "h1.1"),             # stable
        _span("info_dominance", "h0.1", "h0.0", stable=False),  # transient
        _span("harmful_cycle", "h2.0", "h2.1", stable=False,
              unresolved=True),                               # open at end
    ]
    results = {r.invariant: r for r in classify_spans(spans, {"h1.1"})}
    # transient wobble among correct hosts is not a broken verdict
    assert results["info_dominance"].status == "holds_correct_only"
    # an unresolved-at-end span counts even though it never went stable
    assert results["harmful_cycle"].status == "broken"
    # both monitored kinds always report, even with no spans at all
    empty = {r.invariant: r.status for r in classify_spans([], ())}
    assert empty == {"harmful_cycle": "holds_globally",
                     "info_dominance": "holds_globally"}


def test_classify_containment_on_a_healthy_live_system():
    sim = Simulator(seed=11)
    built = wan_of_lans(sim, clusters=2, hosts_per_cluster=2,
                        backbone="line")
    system = BroadcastSystem(built, config=ProtocolConfig.for_scale(4)).start()
    n = 5
    system.broadcast_stream(n, interval=1.0, start_at=2.0)
    assert system.run_until_delivered(n, timeout=120.0)
    results = classify_containment(system, adversaries=(), quiescent=True,
                                   n=n)
    names = {r.invariant for r in results}
    assert names == {"no_harmful_cycles", "info_dominance",
                     "single_leader_per_cluster", "children_consistency",
                     "delivery"}
    assert worst_status(results) == "holds_globally"


def test_delivery_invariant_is_contained_when_only_adversaries_starve():
    sim = Simulator(seed=11)
    built = wan_of_lans(sim, clusters=2, hosts_per_cluster=2,
                        backbone="line")
    system = BroadcastSystem(built, config=ProtocolConfig.for_scale(4)).start()
    n = 5
    system.broadcast_stream(n, interval=1.0, start_at=2.0)
    sim.run(until=60.0)
    # Pretend a host that did deliver everything is an adversary and a
    # fully-delivered run has no delivery violations at all.
    results = {r.invariant: r for r in classify_containment(
        system, adversaries={"h1.0"}, n=n)}
    assert results["delivery"].status == "holds_globally"
