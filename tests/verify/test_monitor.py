"""Tests for the online invariant monitor."""

import pytest

from repro.core import BroadcastSystem, ProtocolConfig
from repro.net import HostId, wan_of_lans
from repro.sim import Simulator
from repro.verify import InvariantMonitor


def build_system(seed=1, k=2, m=2):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m, backbone="line",
                        convergence_delay=0.0)
    system = BroadcastSystem(built, config=ProtocolConfig.for_scale(k * m))
    return sim, built, system


def test_monitor_clean_on_healthy_run():
    sim, built, system = build_system()
    system.start()
    monitor = InvariantMonitor(system, sample_period=1.0,
                               stable_window=10.0).start()
    system.broadcast_stream(6, interval=1.0, start_at=1.0)
    assert system.run_until_delivered(6, timeout=200.0)
    monitor.stop()
    report = monitor.report()
    assert report.samples > 0
    assert report.clean
    assert report.spans == ()


def test_monitor_classifies_transient_vs_stable():
    sim, built, system = build_system()
    # Freeze the protocol (never started) and forge an INFO-dominance
    # violation by hand: child h0.1 claims more than its parent h0.0.
    child, parent = system.hosts[HostId("h0.1")], system.hosts[HostId("h0.0")]
    child.parent = parent.me
    child.info.add(5)
    monitor = InvariantMonitor(system, sample_period=1.0,
                               stable_window=4.0).start()
    sim.run(until=2.5)           # present for ~2 samples: transient
    child.info.truncate_above(0)  # violation disappears
    sim.run(until=6.0)
    child.info.add(7)            # reappears, and now persists
    sim.run(until=20.0)
    report = monitor.report()
    assert not report.clean
    keys = [(s.key, s.stable) for s in report.spans]
    assert (("info_dominance", "h0.1", "h0.0"), False) in keys
    assert (("info_dominance", "h0.1", "h0.0"), True) in keys
    assert len(report.transient_violations) == 1
    assert len(report.stable_violations) == 1


def test_monitor_detects_harmful_cycle():
    sim, built, system = build_system(k=2, m=2)
    # Forge a two-host parent cycle; the source (outside it) has newer
    # messages and is reachable, making the cycle harmful.
    a, b = system.hosts[HostId("h0.1")], system.hosts[HostId("h1.0")]
    a.parent, b.parent = b.me, a.me
    system.source.info.add(3)
    monitor = InvariantMonitor(system, sample_period=1.0,
                               stable_window=3.0).start()
    sim.run(until=10.0)
    report = monitor.report()
    assert any(s.key[0] == "harmful_cycle" and s.stable
               for s in report.spans)


def test_monitor_collects_recovery_times():
    sim, built, system = build_system(k=3, m=2)
    system.start()
    monitor = InvariantMonitor(system).start()
    victim = HostId("h1.0")
    system.broadcast_stream(8, interval=1.0, start_at=1.0)
    sim.schedule_at(3.0, lambda: system.crash_host(victim))
    sim.schedule_at(8.0, lambda: system.recover_host(victim))
    assert system.run_until_delivered(8, timeout=400.0)
    report = monitor.report()
    assert [host for host, _ in report.recoveries] == [str(victim)]
    assert all(t > 0 for t in report.recovery_times())
    assert report.clean


def test_monitor_stop_closes_open_streak_as_unresolved():
    sim, built, system = build_system()
    child, parent = system.hosts[HostId("h0.1")], system.hosts[HostId("h0.0")]
    child.parent = parent.me
    monitor = InvariantMonitor(system, sample_period=1.0,
                               stable_window=10.0).start()
    child.info.add(5)  # violation appears and never resolves
    sim.run(until=4.0)
    monitor.stop()
    report = monitor.report()
    assert len(report.spans) == 1
    span = report.spans[0]
    assert span.key == ("info_dominance", "h0.1", "h0.0")
    assert span.unresolved_at_end
    assert not span.stable          # streak shorter than the window...
    assert report.unresolved_violations == (span,)
    assert report.clean             # ...so still transient, not stable
    # stop() is idempotent: a second call adds no duplicate span.
    monitor.stop()
    assert len(monitor.report().spans) == 1


def test_monitor_stop_marks_long_unresolved_streak_stable():
    sim, built, system = build_system()
    child, parent = system.hosts[HostId("h0.1")], system.hosts[HostId("h0.0")]
    child.parent = parent.me
    monitor = InvariantMonitor(system, sample_period=1.0,
                               stable_window=5.0).start()
    child.info.add(5)
    sim.run(until=12.0)  # well past the stable window, never resolves
    monitor.stop()
    report = monitor.report()
    assert len(report.spans) == 1
    span = report.spans[0]
    assert span.unresolved_at_end
    assert span.stable
    assert not report.clean


def test_monitor_resolved_spans_are_not_unresolved():
    sim, built, system = build_system()
    child, parent = system.hosts[HostId("h0.1")], system.hosts[HostId("h0.0")]
    child.parent = parent.me
    monitor = InvariantMonitor(system, sample_period=1.0,
                               stable_window=10.0).start()
    child.info.add(5)
    sim.run(until=3.0)
    child.info.truncate_above(0)  # violation resolves mid-run
    sim.run(until=6.0)
    monitor.stop()
    report = monitor.report()
    assert len(report.spans) == 1
    assert not report.spans[0].unresolved_at_end
    assert report.unresolved_violations == ()


def test_monitor_validates_parameters():
    sim, built, system = build_system()
    with pytest.raises(ValueError):
        InvariantMonitor(system, sample_period=0.0)
    with pytest.raises(ValueError):
        InvariantMonitor(system, stable_window=-1.0)


# ----------------------------------------------------------------------
# The same oracle on the wall-clock backend (AsyncioRuntime shim)
# ----------------------------------------------------------------------


class _FakeInfo:
    def __init__(self):
        self.max_seqno = 0


class _FakeHost:
    def __init__(self):
        self.info = _FakeInfo()
        self.parent = None


class _FakeWallSystem:
    """Minimal duck-typed system: no ``sim``, no ``network``, no
    ``built`` — exactly the attribute shape a UDP deployment has."""

    def __init__(self, runtime):
        self.runtime = runtime
        self.hosts = {HostId("a"): _FakeHost(), HostId("b"): _FakeHost()}

    def parent_edges(self):
        return {h: host.parent for h, host in self.hosts.items()}


def run_wall(coro_fn, time_scale=0.01):
    """Drive a monitor scenario on a real event loop, 100x compressed."""
    import asyncio

    from repro.io import AsyncioRuntime

    async def main():
        runtime = AsyncioRuntime(seed=0, time_scale=time_scale)
        system = _FakeWallSystem(runtime)
        return await coro_fn(runtime, system)

    return asyncio.run(main())


async def _sleep_protocol(runtime, seconds):
    import asyncio

    await asyncio.sleep(seconds * runtime.time_scale)


def test_monitor_spans_open_and_close_under_wall_clock():
    async def scenario(runtime, system):
        monitor = InvariantMonitor(system, sample_period=0.5,
                                   stable_window=50.0).start()
        child = system.hosts[HostId("a")]
        child.parent = HostId("b")
        child.info.max_seqno = 5  # child ahead of parent: dominance broken
        await _sleep_protocol(runtime, 3.0)
        child.info.max_seqno = 0  # resolves
        await _sleep_protocol(runtime, 3.0)
        monitor.stop()
        return monitor.report()

    report = run_wall(scenario)
    assert report.samples >= 3
    assert len(report.spans) == 1
    span = report.spans[0]
    assert span.key == ("info_dominance", "a", "b")
    assert not span.unresolved_at_end  # it was seen to resolve
    assert not span.stable  # transient: far shorter than the window
    assert report.clean


def test_monitor_stop_marks_unresolved_spans_under_wall_clock():
    async def scenario(runtime, system):
        monitor = InvariantMonitor(system, sample_period=0.5,
                                   stable_window=2.0).start()
        child = system.hosts[HostId("a")]
        child.parent = HostId("b")
        child.info.max_seqno = 7  # never resolves
        await _sleep_protocol(runtime, 4.0)
        monitor.stop()
        return monitor.report()

    report = run_wall(scenario)
    assert len(report.spans) == 1
    span = report.spans[0]
    assert span.unresolved_at_end
    assert span.stable  # persisted past the stable window in real time
    assert not report.clean
    assert report.unresolved_violations == (span,)


def test_monitor_stop_halts_sampling_on_wall_clock():
    async def scenario(runtime, system):
        monitor = InvariantMonitor(system, sample_period=0.5,
                                   stable_window=5.0).start()
        await _sleep_protocol(runtime, 2.0)
        monitor.stop()
        samples_at_stop = monitor.report().samples
        await _sleep_protocol(runtime, 2.0)
        return samples_at_stop, monitor.report().samples

    at_stop, later = run_wall(scenario)
    assert at_stop >= 1
    assert later == at_stop  # stop() guaranteed no further ticks
