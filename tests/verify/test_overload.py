"""Tests for the overload oracle's three verdicts."""

import pytest

from repro.net import (
    HostId,
    Network,
    RawPayload,
    expensive_spec,
)
from repro.sim import Simulator
from repro.verify import OVERLOAD_VERDICTS, OverloadMonitor


def build_link_pair(queue_limit=64):
    sim = Simulator(seed=2)
    network = Network(sim)
    network.add_server("a")
    network.add_server("b")
    network.connect("a", "b", expensive_spec(queue_limit=queue_limit))
    x, y = HostId("x"), HostId("y")
    network.add_host(x, "a")
    network.add_host(y, "b")
    network.use_global_routing(convergence_delay=0.0)
    return sim, network


def flood(network, count, size_bits=8_000):
    port = network.host_port(HostId("x"))
    for _ in range(count):
        port.send(HostId("y"), RawPayload(size_bits=size_bits))


class TestValidation:
    def test_rejects_bad_parameters(self):
        sim, network = build_link_pair()
        with pytest.raises(ValueError):
            OverloadMonitor(sim, network, sample_period=0.0)
        with pytest.raises(ValueError):
            OverloadMonitor(sim, network, degrade_threshold=0)
        with pytest.raises(ValueError):
            OverloadMonitor(sim, network, drain_slack=0)


class TestVerdicts:
    def test_idle_run_is_stable(self):
        sim, network = build_link_pair()
        monitor = OverloadMonitor(sim, network).start()
        sim.run(until=20.0)
        monitor.stop()
        report = monitor.report(delivered_ok=True)
        assert report.verdict == "stable"
        assert report.peak_queue == 0
        assert report.bounded_memory_ok
        assert len(report.samples) >= 20

    def test_queue_spike_that_drains_is_degraded_recovering(self):
        sim, network = build_link_pair()
        monitor = OverloadMonitor(sim, network, degrade_threshold=12).start()
        sim.schedule_at(2.0, lambda: flood(network, 40))
        sim.run(until=5.0)
        monitor.note_load_end()
        sim.run(until=60.0)  # 40 packets * ~0.14s each: fully drained
        monitor.stop()
        report = monitor.report(delivered_ok=True)
        assert report.verdict == "degraded_recovering"
        assert report.peak_queue > 12
        assert report.drained
        assert report.load_ended_at == pytest.approx(5.0)

    def test_missing_deliveries_mean_collapsed(self):
        sim, network = build_link_pair()
        monitor = OverloadMonitor(sim, network).start()
        sim.run(until=10.0)
        monitor.stop()
        report = monitor.report(delivered_ok=False)
        assert report.verdict == "collapsed"
        assert report.collapsed

    def test_undrained_queues_mean_collapsed(self):
        sim, network = build_link_pair()
        monitor = OverloadMonitor(sim, network).start()
        sim.schedule_at(2.0, lambda: flood(network, 50))
        sim.run(until=3.0)  # stop mid-backlog: queue still deep
        monitor.stop()
        report = monitor.report(delivered_ok=True)
        assert report.final_queue > monitor.drain_slack
        assert report.verdict == "collapsed"
        assert not report.bounded_memory_ok

    def test_verdicts_enumerated(self):
        assert OVERLOAD_VERDICTS == (
            "stable", "degraded_recovering", "collapsed")


class TestStoreSampling:
    def test_max_store_tracks_attached_system(self):
        from repro.core import BroadcastSystem, ProtocolConfig
        from repro.net import wan_of_lans

        sim = Simulator(seed=4)
        built = wan_of_lans(sim, clusters=2, hosts_per_cluster=2,
                            backbone="line")
        system = BroadcastSystem(
            built, config=ProtocolConfig(data_size_bits=4_000)).start()
        monitor = OverloadMonitor(sim, built.network, system=system).start()
        system.broadcast_stream(6, interval=0.5, start_at=2.0)
        assert system.run_until_delivered(6, timeout=60.0)
        monitor.stop()
        report = monitor.report(delivered_ok=True)
        assert report.peak_store >= 6  # the source outbox alone holds 6

    def test_without_system_store_is_zero(self):
        sim, network = build_link_pair()
        monitor = OverloadMonitor(sim, network).start()
        sim.run(until=5.0)
        monitor.stop()
        assert monitor.report(delivered_ok=True).peak_store == 0
