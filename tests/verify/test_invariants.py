"""Tests for the verification oracles."""

from repro.core import BroadcastSystem, ProtocolConfig
from repro.net import HostId, wan_of_lans
from repro.sim import Simulator
from repro.verify import (
    check_all,
    check_children_consistency,
    check_induces_cluster_tree,
    check_info_dominance,
    check_is_tree_rooted_at_source,
    check_no_harmful_cycles,
    check_single_leader_per_cluster,
    find_parent_cycles,
    run_to_quiescence,
    true_leaders,
)


def build(k=2, m=2, seed=0):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m, backbone="line",
                        convergence_delay=0.0)
    system = BroadcastSystem(built)
    return sim, built, system


def h(name):
    return HostId(name)


class TestCycleFinding:
    def test_no_cycles_initially(self):
        _, _, system = build()
        assert find_parent_cycles(system) == []

    def test_finds_forced_cycle(self):
        _, _, system = build()
        system.hosts[h("h0.0")].parent = h("h0.1")
        system.hosts[h("h0.1")].parent = h("h0.0")
        cycles = find_parent_cycles(system)
        assert len(cycles) == 1
        assert set(cycles[0]) == {h("h0.0"), h("h0.1")}

    def test_chain_into_cycle_reports_only_cycle(self):
        _, _, system = build(k=1, m=4)
        system.hosts[h("h0.0")].parent = h("h0.1")
        system.hosts[h("h0.1")].parent = h("h0.2")
        system.hosts[h("h0.2")].parent = h("h0.1")
        cycles = find_parent_cycles(system)
        assert len(cycles) == 1
        assert set(cycles[0]) == {h("h0.1"), h("h0.2")}

    def test_harmful_cycle_flagged_when_better_host_reachable(self):
        _, _, system = build()
        system.hosts[h("h1.0")].parent = h("h1.1")
        system.hosts[h("h1.1")].parent = h("h1.0")
        system.source.broadcast("x")  # source now ahead, and reachable
        violations = check_no_harmful_cycles(system)
        assert violations

    def test_cycle_tolerated_when_partitioned(self):
        _, built, system = build()
        system.hosts[h("h1.0")].parent = h("h1.1")
        system.hosts[h("h1.1")].parent = h("h1.0")
        system.source.broadcast("x")
        built.network.set_link_state("s0", "s1", up=False)
        assert check_no_harmful_cycles(system) == []


class TestInfoDominance:
    def test_holds_initially(self):
        _, _, system = build()
        assert check_info_dominance(system) == []

    def test_violation_detected(self):
        _, _, system = build()
        system.hosts[h("h0.1")].parent = h("h0.0")  # source is h0.0
        system.hosts[h("h0.1")].info.add(5)
        violations = check_info_dominance(system)
        assert len(violations) == 1
        assert "h0.1" in violations[0]


class TestStructureChecks:
    def converge(self, k=2, m=2, seed=1):
        sim, built, system = build(k=k, m=m, seed=seed)
        system.start()
        system.broadcast_stream(5, interval=0.5, start_at=2.0)
        assert system.run_until_delivered(5, timeout=120.0)
        assert run_to_quiescence(system, stable_window=10.0, timeout=120.0)
        return sim, built, system

    def test_quiescent_system_passes_everything(self):
        _, _, system = self.converge()
        assert check_all(system, quiescent=True) == []

    def test_tree_rooted_at_source(self):
        _, _, system = self.converge()
        assert check_is_tree_rooted_at_source(system) == []

    def test_single_leader_per_cluster(self):
        _, _, system = self.converge()
        assert check_single_leader_per_cluster(system) == []
        leaders = true_leaders(system)
        assert all(len(ls) == 1 for ls in leaders.values())

    def test_induces_cluster_tree(self):
        _, _, system = self.converge(k=3, m=3)
        assert check_induces_cluster_tree(system) == []

    def test_children_consistency(self):
        _, _, system = self.converge()
        assert check_children_consistency(system) == []

    def test_orphan_detected(self):
        _, _, system = build()
        # h1.0 claims a parent that doesn't list it.
        system.hosts[h("h1.0")].parent = h("h0.0")
        assert check_children_consistency(system)

    def test_multiple_leaders_detected(self):
        _, _, system = build(k=1, m=3)
        # Nobody has a parent yet: 3 leaders in the single cluster.
        violations = check_single_leader_per_cluster(system)
        assert len(violations) == 1


class TestQuiescence:
    def test_times_out_when_stream_keeps_flowing(self):
        sim, built, system = build()
        system.start()
        system.broadcast_stream(1000, interval=1.0, start_at=1.0)
        assert not run_to_quiescence(system, stable_window=5.0, timeout=20.0)

    def test_validates_args(self):
        _, _, system = build()
        import pytest
        with pytest.raises(ValueError):
            run_to_quiescence(system, stable_window=0.0)
