"""Tests for the opportunity auditor (relative reliability, Section 1)."""

import math

import pytest

from repro.core import BroadcastSystem, ProtocolConfig
from repro.net import wan_of_lans
from repro.scenarios import midstream_partition
from repro.sim import Simulator
from repro.verify import OpportunityAuditor


def build(seed=1, k=2, m=2, **kwargs):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m, backbone="line")
    system = BroadcastSystem(built, config=ProtocolConfig.for_scale(k * m))
    return sim, built, system


def test_validation():
    _, _, system = build()
    with pytest.raises(ValueError):
        OpportunityAuditor(system, sample_period=0.0)
    with pytest.raises(ValueError):
        OpportunityAuditor(system, required_window=0.0)


def test_healthy_run_scores_one_on_both_measures():
    sim, built, system = build()
    system.start()
    auditor = OpportunityAuditor(system, sample_period=0.5,
                                 required_window=5.0).start()
    system.broadcast_stream(8, interval=0.5, start_at=2.0)
    assert system.run_until_delivered(8, timeout=120.0)
    sim.run(until=sim.now + 10.0)
    report = auditor.report()
    assert report.relative_reliability == 1.0
    assert report.absolute_delivery == 1.0
    assert report.missed == ()


def test_permanent_partition_relative_one_absolute_below():
    """The paper's core distinction: nothing reachable was missed, yet
    absolute delivery is incomplete."""
    sim, built, system = build(seed=8, k=3)
    midstream_partition(built, cluster_index=2, start=5.0, end=10_000.0)
    system.start()
    auditor = OpportunityAuditor(system, sample_period=1.0,
                                 required_window=10.0).start()
    system.broadcast_stream(10, interval=1.0, start_at=2.0)
    sim.run(until=100.0)
    report = auditor.report()
    assert report.relative_reliability == 1.0
    assert report.absolute_delivery < 1.0
    assert report.obligated_pairs < report.total_pairs


def test_no_messages_is_nan():
    sim, built, system = build()
    system.start()
    auditor = OpportunityAuditor(system).start()
    sim.run(until=5.0)
    report = auditor.report()
    assert report.total_pairs == 0
    assert math.isnan(report.relative_reliability)
    assert math.isnan(report.absolute_delivery)


def test_sluggish_protocol_misses_obligations():
    """A protocol too slow for its windows scores below 1.0 and names
    the pairs it missed."""
    from repro.scenarios import BriefWindowSchedule, WindowSpec

    sim, built, system = None, None, None
    sim = Simulator(seed=16)
    built = wan_of_lans(sim, clusters=2, hosts_per_cluster=2, backbone="line")
    BriefWindowSchedule(sim, built, built.backbone,
                        WindowSpec(period=40.0, width=10.0, first_open=20.0),
                        until=140.0)
    config = ProtocolConfig(data_size_bits=4000).scaled(4.0)  # very slow
    system = BroadcastSystem(built, config=config).start()
    auditor = OpportunityAuditor(system, sample_period=1.0,
                                 required_window=6.0).start()
    system.broadcast_stream(10, interval=0.5, start_at=5.0)
    sim.run(until=140.0)
    report = auditor.report()
    assert report.relative_reliability < 1.0
    assert len(report.missed) > 0
    host, seq = report.missed[0]
    assert host.startswith("h1")  # the cut-off cluster
    assert 1 <= seq <= 10


def test_stop_halts_sampling():
    sim, built, system = build()
    system.start()
    auditor = OpportunityAuditor(system, sample_period=0.5).start()
    system.broadcast_stream(2, interval=0.5, start_at=1.0)
    sim.run(until=5.0)
    auditor.stop()
    before = dict(auditor._opportunity)
    sim.run(until=30.0)
    assert auditor._opportunity == before
