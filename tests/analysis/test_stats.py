"""Tests for multi-trial statistics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import Summary, aggregate_rows, summarize, t_critical_95


class TestTCritical:
    def test_known_values(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(10) == pytest.approx(2.228)
        assert t_critical_95(30) == pytest.approx(2.042)
        assert t_critical_95(1000) == pytest.approx(1.96)

    def test_rejects_zero_dof(self):
        with pytest.raises(ValueError):
            t_critical_95(0)


class TestSummarize:
    def test_single_value(self):
        s = summarize([3.5])
        assert s.n == 1
        assert s.mean == 3.5
        assert s.stddev == 0.0
        assert math.isnan(s.ci95_half_width)

    def test_known_example(self):
        s = summarize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert s.mean == pytest.approx(5.0)
        assert s.stddev == pytest.approx(2.138, abs=1e-3)
        assert s.ci95_half_width == pytest.approx(
            2.365 * 2.138 / math.sqrt(8), abs=1e-2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_interval_overlap(self):
        a = summarize([1.0, 1.1, 0.9])
        b = summarize([1.05, 1.15, 0.95])
        c = summarize([10.0, 10.1, 9.9])
        assert a.overlaps(b)
        assert not a.overlaps(c)
        assert not c.overlaps(a)

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2,
                    max_size=40))
    def test_ci_contains_mean_and_is_symmetric(self, values):
        s = summarize(values)
        assert s.ci_low <= s.mean <= s.ci_high
        assert s.ci_high - s.mean == pytest.approx(s.mean - s.ci_low, abs=1e-9)

    @given(st.floats(min_value=-50, max_value=50),
           st.integers(min_value=2, max_value=20))
    def test_constant_samples_zero_width(self, value, n):
        s = summarize([value] * n)
        # Floating-point summation can leave ~1e-17 residue; that is zero.
        assert s.stddev == pytest.approx(0.0, abs=1e-9)
        assert s.ci95_half_width == pytest.approx(0.0, abs=1e-9)


class TestAggregateRows:
    def test_groups_and_summarizes(self):
        rows = [
            {"cfg": "a", "x": 1.0},
            {"cfg": "a", "x": 3.0},
            {"cfg": "b", "x": 10.0},
        ]
        out = aggregate_rows(rows, group_by=["cfg"], measures=["x"])
        assert len(out) == 2
        assert out[0]["cfg"] == "a"
        assert out[0]["trials"] == 2
        assert out[0]["x_mean"] == 2.0
        assert out[1]["x_mean"] == 10.0

    def test_preserves_first_appearance_order(self):
        rows = [{"g": "z", "v": 1.0}, {"g": "a", "v": 2.0},
                {"g": "z", "v": 3.0}]
        out = aggregate_rows(rows, ["g"], ["v"])
        assert [r["g"] for r in out] == ["z", "a"]

    def test_multiple_measures(self):
        rows = [{"g": 1, "a": 1.0, "b": 5.0}, {"g": 1, "a": 3.0, "b": 7.0}]
        (out,) = aggregate_rows(rows, ["g"], ["a", "b"])
        assert out["a_mean"] == 2.0
        assert out["b_mean"] == 6.0
