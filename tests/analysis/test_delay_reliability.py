"""Tests for delay statistics and reliability measures."""

import math

import pytest

from repro.analysis import (
    delay_stats,
    delivery_fraction,
    out_of_order_fraction,
    recovery_locality,
    system_delay_stats,
    time_to_full_delivery,
)
from repro.core import DeliveryRecord
from repro.net import HostId, wan_of_lans
from repro.sim import Simulator

SRC, A, B = HostId("src"), HostId("a"), HostId("b")


def rec(seq, created=0.0, delivered=1.0, supplier=SRC, gapfill=False):
    return DeliveryRecord(seq=seq, content=None, created_at=created,
                          delivered_at=delivered, supplier=supplier,
                          via_gapfill=gapfill)


class TestDelayStats:
    def test_empty(self):
        stats = delay_stats([])
        assert stats.count == 0
        assert math.isnan(stats.mean)

    def test_basic_stats(self):
        stats = delay_stats([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == 2.5
        assert stats.p50 == 2.5
        assert stats.max == 4.0

    def test_empty_p999_is_nan(self):
        assert math.isnan(delay_stats([]).p999)

    def test_percentiles_are_ordered_and_serialized(self):
        stats = delay_stats([float(v) for v in range(1, 1001)])
        assert stats.p50 <= stats.p95 <= stats.p99 <= stats.p999 <= stats.max
        assert stats.p999 == pytest.approx(999.001)
        assert stats.as_dict()["p999"] == stats.p999

    def test_p999_separates_the_extreme_tail_from_p99(self):
        values = [1.0] * 998 + [50.0, 1000.0]
        stats = delay_stats(values)
        assert stats.p99 < 50.0 < stats.p999

    def test_system_stats_exclude_source(self):
        records = {
            SRC: [rec(1, delivered=0.0)],
            A: [rec(1, created=0.0, delivered=2.0)],
            B: [rec(1, created=0.0, delivered=4.0)],
        }
        stats = system_delay_stats(records, source=SRC)
        assert stats.count == 2
        assert stats.mean == 3.0

    def test_since_seq_filters(self):
        records = {A: [rec(1, delivered=100.0), rec(2, delivered=1.0)]}
        stats = system_delay_stats(records, source=SRC, since_seq=1)
        assert stats.count == 1
        assert stats.mean == 1.0


class TestOutOfOrder:
    def test_all_in_order(self):
        records = {A: [rec(1, delivered=1.0), rec(2, delivered=2.0)]}
        assert out_of_order_fraction(records, SRC) == 0.0

    def test_one_late(self):
        records = {A: [rec(2, delivered=1.0), rec(1, delivered=2.0)]}
        assert out_of_order_fraction(records, SRC) == 0.5

    def test_empty_is_nan(self):
        assert math.isnan(out_of_order_fraction({}, SRC))


class TestDeliveryFraction:
    def test_full(self):
        records = {A: [rec(1), rec(2)], B: [rec(1), rec(2)]}
        assert delivery_fraction(records, 2, source=SRC) == 1.0

    def test_partial(self):
        records = {A: [rec(1)], B: [rec(1), rec(2)]}
        assert delivery_fraction(records, 2, source=SRC) == 0.75

    def test_source_excluded(self):
        records = {SRC: [], A: [rec(1)]}
        assert delivery_fraction(records, 1, source=SRC) == 1.0

    def test_validates(self):
        with pytest.raises(ValueError):
            delivery_fraction({}, 0)


class TestTimeToFullDelivery:
    def test_complete(self):
        records = {A: [rec(1, delivered=3.0), rec(2, delivered=7.0)]}
        assert time_to_full_delivery(records, 2, source=SRC) == 7.0

    def test_incomplete_is_nan(self):
        records = {A: [rec(1)]}
        assert math.isnan(time_to_full_delivery(records, 2, source=SRC))


class TestRecoveryLocality:
    def build_network(self):
        sim = Simulator(seed=0)
        built = wan_of_lans(sim, clusters=2, hosts_per_cluster=2,
                            backbone="line", convergence_delay=0.0)
        return built.network

    def test_classification(self):
        network = self.build_network()
        src = HostId("h0.0")
        h01, h10, h11 = HostId("h0.1"), HostId("h1.0"), HostId("h1.1")
        records = {
            h01: [rec(1, supplier=src, gapfill=True)],        # same cluster + source
            h10: [rec(1, supplier=h11, gapfill=True)],        # same cluster
            h11: [rec(1, supplier=src, gapfill=True),         # other cluster + source
                  rec(2, supplier=h10, gapfill=False)],       # not a recovery
        }
        locality = recovery_locality(records, network, src)
        assert locality.total_recoveries == 3
        assert locality.from_same_cluster == 2
        assert locality.from_other_cluster == 1
        assert locality.from_source == 2
        assert locality.local_fraction == pytest.approx(2 / 3)

    def test_empty_is_nan(self):
        network = self.build_network()
        locality = recovery_locality({}, network, HostId("h0.0"))
        assert locality.total_recoveries == 0
        assert math.isnan(locality.local_fraction)
