"""Tests for cost accounting."""

import pytest

from repro.analysis import CounterSnapshot, cost_report, optimal_inter_cluster_cost
from repro.core import BroadcastSystem
from repro.net import wan_of_lans
from repro.sim import Simulator


def test_optimal_cost_is_k_minus_1():
    assert optimal_inter_cluster_cost(1) == 0
    assert optimal_inter_cluster_cost(5) == 4
    with pytest.raises(ValueError):
        optimal_inter_cluster_cost(0)


def test_cost_report_requires_positive_messages():
    sim = Simulator()
    with pytest.raises(ValueError):
        cost_report(sim, 0)


def test_cost_report_reads_counters():
    sim = Simulator()
    sim.metrics.counter("net.h2h.recv.expensive.kind.data").inc(10)
    sim.metrics.counter("net.link_tx.total").inc(40)
    report = cost_report(sim, messages=5)
    assert report.inter_cluster_data_per_msg == 2.0
    assert report.link_transmissions_per_msg == 8.0
    assert "inter_cluster_data_per_msg" in report.as_dict()


def test_snapshot_isolates_marginal_cost():
    sim = Simulator()
    counter = sim.metrics.counter("net.h2h.recv.expensive.kind.data")
    counter.inc(100)  # construction cost
    snapshot = CounterSnapshot(sim)
    counter.inc(20)   # steady-state cost
    report = cost_report(sim, messages=10, since=snapshot)
    assert report.inter_cluster_data_per_msg == 2.0


def test_end_to_end_cost_close_to_optimal():
    """The paper's headline: steady state costs ~k-1 per message."""
    sim = Simulator(seed=1)
    k = 3
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=3, backbone="line")
    system = BroadcastSystem(built).start()
    system.broadcast_stream(5, interval=1.0, start_at=2.0)
    assert system.run_until_delivered(5, timeout=120.0)
    sim.run(until=sim.now + 20.0)
    snapshot = CounterSnapshot(sim)
    system.broadcast_stream(20, interval=1.0, start_at=sim.now + 1.0)
    assert system.run_until_delivered(25, timeout=200.0)
    report = cost_report(sim, 20, since=snapshot)
    optimal = optimal_inter_cluster_cost(k)
    assert optimal <= report.inter_cluster_data_per_msg <= optimal * 1.5
