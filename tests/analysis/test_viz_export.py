"""Tests for ASCII rendering and JSON export utilities."""

import json

from repro.analysis import (
    metrics_snapshot,
    metrics_to_json,
    render_cluster_view,
    render_parent_graph,
    render_topology,
    trace_to_jsonl,
)
from repro.core import BroadcastSystem
from repro.net import HostId, wan_of_lans
from repro.sim import Simulator


def converged_system(seed=1):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=2, hosts_per_cluster=2, backbone="line")
    system = BroadcastSystem(built).start()
    system.broadcast_stream(5, interval=0.5, start_at=2.0)
    assert system.run_until_delivered(5, timeout=120.0)
    sim.run(until=sim.now + 15.0)
    return sim, built, system


class TestParentGraphRendering:
    def test_source_first_with_tags(self):
        _, _, system = converged_system()
        out = render_parent_graph(system)
        lines = out.splitlines()
        assert lines[0].startswith("h0.0")
        assert "source" in lines[0]
        assert "leader" in lines[0]
        # Every host appears exactly once.
        for host in system.built.hosts:
            assert sum(str(host) + " " in line or line.strip().startswith(str(host))
                       for line in lines) >= 1

    def test_indentation_reflects_depth(self):
        _, _, system = converged_system()
        parents = system.parent_edges()
        out = render_parent_graph(system)
        for line in out.splitlines():
            name = line.strip().split(" ")[0]
            if name == str(system.source_id):
                assert not line.startswith(" ")

    def test_cycle_members_listed_as_stranded(self):
        sim = Simulator(seed=0)
        built = wan_of_lans(sim, 1, 3, convergence_delay=0.0)
        system = BroadcastSystem(built)
        system.hosts[HostId("h0.1")].parent = HostId("h0.2")
        system.hosts[HostId("h0.2")].parent = HostId("h0.1")
        out = render_parent_graph(system)
        assert "stranded" in out
        assert "h0.1" in out and "h0.2" in out


class TestTopologyRendering:
    def test_sections_present(self):
        _, built, _ = converged_system()
        out = render_topology(built.network)
        assert "servers:" in out
        assert "cheap links:" in out
        assert "expensive links:" in out
        assert "s0<->s1" in out

    def test_down_links_marked(self):
        _, built, _ = converged_system()
        built.network.set_link_state("s0", "s1", up=False)
        assert "(DOWN)" in render_topology(built.network)


class TestClusterViewRendering:
    def test_truth_and_beliefs_shown(self):
        _, _, system = converged_system()
        out = render_cluster_view(system)
        assert "true clusters:" in out
        assert "believed clusters" in out
        assert "h1.1" in out


class TestExport:
    def test_trace_jsonl_round_trips(self, tmp_path):
        sim, _, system = converged_system()
        path = tmp_path / "trace.jsonl"
        count = trace_to_jsonl(sim, path, kind_prefix="host.deliver")
        assert count > 0
        lines = path.read_text().strip().splitlines()
        assert len(lines) == count
        record = json.loads(lines[0])
        assert record["kind"] == "host.deliver"
        assert "time" in record and "seq" in record

    def test_trace_jsonl_unfiltered_includes_everything(self, tmp_path):
        sim, _, _ = converged_system()
        path = tmp_path / "all.jsonl"
        count = trace_to_jsonl(sim, path)
        assert count == len(sim.trace)

    def test_metrics_snapshot_structure(self):
        sim, _, _ = converged_system()
        snapshot = metrics_snapshot(sim)
        assert snapshot["counters"]["proto.deliver"] > 0
        assert "proto.delay" in snapshot["histograms"]
        assert snapshot["histograms"]["proto.delay"]["count"] > 0

    def test_metrics_to_json(self, tmp_path):
        sim, _, _ = converged_system()
        path = tmp_path / "metrics.json"
        metrics_to_json(sim, path, extra={"seed": 1, "who": HostId("h0.0")})
        data = json.loads(path.read_text())
        assert data["meta"]["seed"] == 1
        assert data["meta"]["who"] == "h0.0"
        assert "counters" in data
