"""Tests for traffic decomposition, congestion reports, and tables."""

import pytest

from repro.analysis import (
    Table,
    congestion_report,
    control_data_split,
    link_transmissions,
    traffic_report,
)
from repro.baseline import BasicBroadcastSystem
from repro.core import BroadcastSystem
from repro.net import wan_of_lans
from repro.sim import Simulator


def test_traffic_report_reads_counters():
    sim = Simulator()
    sim.metrics.counter("net.h2h.sent.kind.data").inc(10)
    sim.metrics.counter("net.h2h.sent.kind.control").inc(30)
    report = traffic_report(sim)
    assert report.data_sent == 10
    assert report.control_sent == 30
    assert report.control_fraction_sent == 0.75
    assert control_data_split(sim) == (10, 30)


def test_link_transmissions_strips_prefix():
    sim = Simulator()
    sim.metrics.counter("linktx.a<->b").inc(4)
    assert link_transmissions(sim) == {"a<->b": 4}


def test_congestion_concentration_tree_vs_basic():
    def run(system_cls):
        sim = Simulator(seed=2)
        built = wan_of_lans(sim, clusters=2, hosts_per_cluster=4,
                            backbone="line")
        system = system_cls(built).start()
        system.broadcast_stream(10, interval=1.0, start_at=2.0)
        system.run_until_delivered(10, timeout=200.0)
        return congestion_report(sim, built.network, system.source_id)

    tree = run(BroadcastSystem)
    basic = run(BasicBroadcastSystem)
    # Basic funnels everything through the source's access link.
    assert basic.concentration > tree.concentration
    assert basic.source_access_tx > tree.source_access_tx


class TestTable:
    def test_render_alignment(self):
        table = Table(["name", "value"], title="T")
        table.add_row("a", 1.5)
        table.add_row("long-name", 12345.0)
        out = table.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "12,345" in out

    def test_nan_renders_as_dash(self):
        table = Table(["x"])
        table.add_row(float("nan"))
        assert "-" in table.render().splitlines()[-1]

    def test_row_arity_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table([])
