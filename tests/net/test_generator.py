"""Tests for topology generators."""

import pytest

from repro.net import (
    HostId,
    RawPayload,
    line_topology,
    random_topology,
    star_topology,
    wan_of_lans,
)
from repro.net.link import expensive_spec
from repro.sim import Simulator


@pytest.mark.parametrize("backbone", ["tree", "ring", "star", "line", "mesh"])
def test_wan_of_lans_shapes_are_connected(backbone):
    sim = Simulator(seed=2)
    built = wan_of_lans(sim, clusters=4, hosts_per_cluster=2, backbone=backbone,
                        convergence_delay=0.0)
    network = built.network
    assert len(built.hosts) == 8
    assert len(network.partitions()) == 1
    assert len(network.true_clusters()) == 4


def test_wan_of_lans_backbone_link_counts():
    sim = Simulator(seed=2)
    for backbone, expected in [("tree", 3), ("ring", 4), ("star", 3),
                               ("line", 3), ("mesh", 6)]:
        built = wan_of_lans(Simulator(seed=2), 4, 1, backbone=backbone,
                            convergence_delay=0.0)
        assert len(built.backbone) == expected, backbone


def test_wan_of_lans_backbone_is_expensive():
    sim = Simulator(seed=0)
    built = wan_of_lans(sim, 3, 1, backbone="line", convergence_delay=0.0)
    for a, b in built.backbone:
        assert built.network.link(a, b).spec.expensive


def test_wan_of_lans_source_is_first_host():
    built = wan_of_lans(Simulator(seed=0), 2, 2, convergence_delay=0.0)
    assert built.source == HostId("h0.0")


def test_wan_of_lans_validates_args():
    with pytest.raises(ValueError):
        wan_of_lans(Simulator(), 0, 1)
    with pytest.raises(ValueError):
        wan_of_lans(Simulator(), 1, 0)
    with pytest.raises(ValueError):
        wan_of_lans(Simulator(), 2, 1, backbone="donut")


def test_wan_of_lans_tree_is_deterministic_per_seed():
    first = wan_of_lans(Simulator(seed=5), 6, 1, backbone="tree").backbone
    second = wan_of_lans(Simulator(seed=5), 6, 1, backbone="tree").backbone
    third = wan_of_lans(Simulator(seed=6), 6, 1, backbone="tree").backbone
    assert first == second
    assert first != third


def test_line_topology_delivery_end_to_end():
    sim = Simulator(seed=0)
    built = line_topology(sim, 4, convergence_delay=0.0)
    got = []
    built.network.host_port(HostId("h3")).set_receiver(got.append)
    built.network.host_port(HostId("h0")).send(HostId("h3"), RawPayload())
    sim.run()
    assert len(got) == 1


def test_line_topology_cluster_layout_depends_on_spec():
    cheap_line = line_topology(Simulator(), 3)
    assert len(cheap_line.clusters) == 1
    exp_line = line_topology(Simulator(), 3, spec=expensive_spec())
    assert len(exp_line.clusters) == 3


def test_star_topology_structure():
    sim = Simulator(seed=0)
    built = star_topology(sim, 5, convergence_delay=0.0)
    assert len(built.network.servers) == 6  # hub + 5 leaves
    assert len(built.network.partitions()) == 1


def test_random_topology_is_connected_and_deterministic():
    built1 = random_topology(Simulator(seed=9), n_servers=8, n_hosts=6, extra_links=4)
    built2 = random_topology(Simulator(seed=9), n_servers=8, n_hosts=6, extra_links=4)
    assert len(built1.network.partitions()) == 1
    assert sorted(map(str, built1.network.links)) == sorted(map(str, built2.network.links))


def test_random_topology_hosts_round_robin():
    built = random_topology(Simulator(seed=1), n_servers=3, n_hosts=6)
    assert built.network.server_of(HostId("h0")) == "s0"
    assert built.network.server_of(HostId("h4")) == "s1"


def test_generators_validate_args():
    with pytest.raises(ValueError):
        line_topology(Simulator(), 0)
    with pytest.raises(ValueError):
        star_topology(Simulator(), 0)
    with pytest.raises(ValueError):
        random_topology(Simulator(), 0, 1)
