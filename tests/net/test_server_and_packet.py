"""Unit tests for packets and server forwarding behavior (TTL, drops)."""

import pytest

from repro.net import HostId, Network, RawPayload, cheap_spec, make_packet
from repro.net.message import DEFAULT_TTL, Packet
from repro.net.routing import RoutingEngine
from repro.sim import Simulator


class TestPacket:
    def test_fork_shares_id_but_not_hops_list(self):
        packet = make_packet(HostId("a"), HostId("b"))
        dup = packet.fork()
        assert dup.packet_id == packet.packet_id
        assert dup.hops is not packet.hops

    def test_record_hop_decrements_ttl(self):
        from repro.net import LinkId

        packet = make_packet(HostId("a"), HostId("b"))
        assert packet.ttl == DEFAULT_TTL
        packet.record_hop(LinkId.of("x", "y"), expensive=False)
        assert packet.ttl == DEFAULT_TTL - 1
        assert not packet.cost_bit
        packet.record_hop(LinkId.of("y", "z"), expensive=True)
        assert packet.cost_bit

    def test_size_and_kind_delegate_to_payload(self):
        packet = make_packet(HostId("a"), HostId("b"),
                             RawPayload(kind="data", size_bits=777))
        assert packet.size_bits == 777
        assert packet.kind == "data"


class _LoopRouting(RoutingEngine):
    """Pathological engine: two servers forward every packet to each other."""

    def next_hop(self, at_server, dst_server):
        return {"a": "b", "b": "a"}[at_server]

    def on_topology_change(self):
        pass


class TestForwarding:
    def build(self):
        sim = Simulator(seed=0)
        network = Network(sim)
        network.add_server("a")
        network.add_server("b")
        network.connect("a", "b", cheap_spec())
        network.add_host(HostId("x"), "a")
        network.add_host(HostId("y"), "b")
        return sim, network

    def test_routing_loop_killed_by_ttl(self):
        sim, network = self.build()
        # Destination "z" exists on neither server; the loop engine
        # bounces the packet a<->b until the TTL runs out.
        network.add_server("c")
        network.add_host(HostId("z"), "c")
        network.use_routing(_LoopRouting())
        network.host_port(HostId("x")).send(HostId("z"), RawPayload())
        sim.run(until=30.0)
        assert sim.metrics.counter("net.drop.ttl_expired").value == 1
        # The loop really did consume about TTL hops, then stopped.
        assert sim.metrics.counter("net.link_tx.total").value <= DEFAULT_TTL + 2
        assert sim.pending == 0

    def test_unknown_host_drop_reason(self):
        sim, network = self.build()
        network.use_global_routing(convergence_delay=0.0)
        network.host_port(HostId("x")).send(HostId("ghost"), RawPayload())
        sim.run()
        assert sim.metrics.counter("net.drop.unknown_host").value == 1

    def test_processing_delay_adds_per_hop_latency(self):
        sim, network = self.build()
        network.use_global_routing(convergence_delay=0.0)
        got = []
        network.host_port(HostId("y")).set_receiver(lambda p: got.append(sim.now))
        network.host_port(HostId("x")).send(HostId("y"), RawPayload())
        sim.run()
        # access + processing + trunk + access; processing delay included.
        assert got[0] > 3 * 0.002

    def test_normal_delivery_leaves_ttl_headroom(self):
        sim, network = self.build()
        network.use_global_routing(convergence_delay=0.0)
        got = []
        network.host_port(HostId("y")).set_receiver(got.append)
        network.host_port(HostId("x")).send(HostId("y"), RawPayload())
        sim.run()
        assert got[0].ttl > DEFAULT_TTL - 5
