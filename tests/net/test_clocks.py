"""Tests for the host clock-skew model and its protocol interaction."""

import pytest

from repro.core import (
    BroadcastSystem,
    CostBitMode,
    PerSenderTransitClassifier,
    ProtocolConfig,
)
from repro.net import ClockModel, HostId, wan_of_lans
from repro.sim import Simulator


class TestClockModel:
    def test_default_is_true_time(self):
        sim = Simulator()
        model = ClockModel(sim)
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert model.local_time(HostId("x")) == 5.0

    def test_offset_shifts_reading(self):
        sim = Simulator()
        model = ClockModel(sim)
        model.set_clock(HostId("x"), offset=0.25)
        sim.schedule(4.0, lambda: None)
        sim.run()
        assert model.local_time(HostId("x")) == pytest.approx(4.25)

    def test_drift_grows_with_time(self):
        sim = Simulator()
        model = ClockModel(sim)
        model.set_clock(HostId("x"), drift=0.01)
        sim.schedule(100.0, lambda: None)
        sim.run()
        assert model.local_time(HostId("x")) == pytest.approx(101.0)

    def test_offset_between(self):
        sim = Simulator()
        model = ClockModel(sim)
        model.set_clock(HostId("a"), offset=0.3)
        model.set_clock(HostId("b"), offset=-0.2)
        assert model.offset_between(HostId("a"), HostId("b")) == pytest.approx(0.5)

    def test_randomize_is_bounded_and_deterministic(self):
        hosts = [HostId(f"h{i}") for i in range(20)]

        def offsets(seed):
            sim = Simulator(seed=seed)
            model = ClockModel(sim).randomize(hosts, max_offset=0.4)
            return [model.local_time(h) for h in hosts]

        values = offsets(3)
        assert all(-0.4 <= v <= 0.4 for v in values)
        assert offsets(3) == values
        assert offsets(4) != values


class TestSkewedStamps:
    def build(self, offset):
        sim = Simulator(seed=0)
        built = wan_of_lans(sim, clusters=2, hosts_per_cluster=2,
                            backbone="line", convergence_delay=0.0)
        model = ClockModel(sim)
        model.set_clock(HostId("h0.1"), offset=offset)
        built.network.use_clocks(model)
        return sim, built

    def test_stamped_at_uses_local_clock(self):
        sim, built = self.build(offset=1.5)
        got = []
        built.network.host_port(HostId("h0.0")).set_receiver(got.append)
        from repro.net import RawPayload
        sim.schedule_at(10.0, lambda: built.network.host_port(
            HostId("h0.1")).send(HostId("h0.0"), RawPayload()))
        sim.run(until=12.0)
        (packet,) = got
        assert packet.sent_at == pytest.approx(10.0)      # true time
        assert packet.stamped_at == pytest.approx(11.5)   # skewed stamp

    def test_measurement_delay_unaffected_by_skew(self):
        sim, built = self.build(offset=5.0)
        built.network.host_port(HostId("h0.0")).set_receiver(lambda p: None)
        from repro.net import RawPayload
        sim.schedule_at(1.0, lambda: built.network.host_port(
            HostId("h0.1")).send(HostId("h0.0"), RawPayload()))
        sim.run(until=3.0)
        # net.h2h.delay uses true time; skew must not corrupt it.
        assert sim.metrics.histogram("net.h2h.delay").max < 1.0


class TestSkewAndInference:
    def run_timestamp_mode(self, max_offset, seed=0):
        sim = Simulator(seed=seed)
        built = wan_of_lans(sim, clusters=2, hosts_per_cluster=2,
                            backbone="line")
        if max_offset:
            built.network.use_clocks(
                ClockModel(sim).randomize(built.hosts, max_offset=max_offset))
        config = ProtocolConfig(cost_bit_mode=CostBitMode.TIMESTAMP)
        system = BroadcastSystem(built, config=config).start()
        system.broadcast_stream(5, interval=1.0, start_at=2.0)
        ok = system.run_until_delivered(5, timeout=300.0)
        sim.run(until=sim.now + 10.0)
        h00 = system.hosts[HostId("h0.0")]
        correct = (HostId("h0.1") in h00.cluster
                   and HostId("h1.0") not in h00.cluster
                   and HostId("h1.1") not in h00.cluster)
        return ok, correct

    def test_inference_correct_with_synchronized_clocks(self):
        ok, correct = self.run_timestamp_mode(max_offset=0.0)
        assert ok and correct

    def test_inference_tolerates_sub_transit_skew(self):
        # Offsets well below the expensive-path transit (~70 ms).
        ok, correct = self.run_timestamp_mode(max_offset=0.001)
        assert ok and correct

    def test_inference_degrades_under_large_skew_but_delivery_survives(self):
        """The paper's hidden assumption, made explicit: with offsets far
        above the cheap transit, cluster inference goes wrong — yet the
        protocol still delivers (wrong CLUSTER sets cost money, not
        correctness)."""
        ok, correct = self.run_timestamp_mode(max_offset=0.5)
        assert ok
        assert not correct


class TestPerSenderClassifier:
    def test_constant_offset_cancels_within_sender(self):
        clf = PerSenderTransitClassifier(spread_factor=5.0)
        sender = HostId("j")
        # All estimates shifted by +0.3 s of clock offset.
        assert clf.classify(sender, 0.304) is False   # cheap, calibrates
        assert clf.classify(sender, 0.450) is False   # expensive? 0.45<5*0.304
        # Within-sender discrimination still works at scale:
        clf2 = PerSenderTransitClassifier(spread_factor=5.0)
        assert clf2.classify(sender, 0.304) is False
        assert clf2.classify(sender, 2.0) is True     # clearly beyond spread

    def test_negative_transit_clamped(self):
        clf = PerSenderTransitClassifier()
        assert clf.classify(HostId("j"), -0.5) is False

    def test_documented_limitation_expensive_only_sender(self):
        """An expensive-only sender self-calibrates and looks cheap —
        the inherent price of per-sender baselines (see docstring)."""
        clf = PerSenderTransitClassifier(spread_factor=5.0)
        sender = HostId("far")
        for _ in range(10):
            assert clf.classify(sender, 0.070) is False

    def test_baseline_of(self):
        clf = PerSenderTransitClassifier()
        assert clf.baseline_of(HostId("x")) == float("inf")
        clf.classify(HostId("x"), 0.01)
        assert clf.baseline_of(HostId("x")) == pytest.approx(0.01)
