"""Tests for failure schedules, flappers, and partition scheduling."""

import pytest

from repro.net import (
    FailureSchedule,
    HostId,
    LinkFlapper,
    PartitionScheduler,
    cut_links_between,
    host_group,
    wan_of_lans,
)
from repro.sim import Simulator


def build(k=3, m=2, backbone="line"):
    sim = Simulator(seed=1)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m, backbone=backbone,
                        convergence_delay=0.0)
    return sim, built


def test_schedule_applies_changes_at_times():
    sim, built = build(k=2, m=1)
    network = built.network
    schedule = FailureSchedule(sim, network)
    schedule.outage(5.0, 10.0, "s0", "s1")
    assert network.link("s0", "s1").up
    sim.run(until=6.0)
    assert not network.link("s0", "s1").up
    sim.run(until=11.0)
    assert network.link("s0", "s1").up


def test_outage_validates_interval():
    sim, built = build(k=2, m=1)
    with pytest.raises(ValueError):
        FailureSchedule(sim, built.network).outage(5.0, 5.0, "s0", "s1")


def test_cut_links_between_finds_crossing_links():
    sim, built = build(k=3, m=1, backbone="line")
    cut = cut_links_between(built.network, ["s0", "h0.0"], ["s1", "s2", "h1.0", "h2.0"])
    assert cut == [("s0", "s1")]


def test_partition_scheduler_isolates_and_heals():
    sim, built = build(k=3, m=2, backbone="line")
    network = built.network
    scheduler = PartitionScheduler(sim, network)
    group = host_group(network, built.clusters[0])
    cut = scheduler.isolate(group, start=2.0, end=8.0)
    assert cut == [("s0", "s1")]
    sim.run(until=3.0)
    assert len(network.partitions()) == 2
    sim.run(until=9.0)
    assert len(network.partitions()) == 1


def test_partition_into_three_groups():
    sim, built = build(k=3, m=1, backbone="mesh")
    network = built.network
    scheduler = PartitionScheduler(sim, network)
    groups = [host_group(network, [h]) for h in built.hosts]
    cut = scheduler.partition(groups, start=1.0, end=5.0)
    assert len(cut) == 3  # mesh of 3 clusters
    sim.run(until=2.0)
    assert len(network.partitions()) == 3
    sim.run(until=6.0)
    assert len(network.partitions()) == 1


def test_host_group_includes_server():
    sim, built = build(k=2, m=2)
    group = host_group(built.network, [HostId("h0.0"), HostId("h0.1")])
    assert group == ["h0.0", "h0.1", "s0"]


def test_flapper_produces_transitions_and_is_deterministic():
    def run(seed):
        sim = Simulator(seed=seed)
        built = wan_of_lans(sim, 2, 1, backbone="line", convergence_delay=0.0)
        flapper = LinkFlapper(sim, built.network, [("s0", "s1")],
                              mean_up=5.0, mean_down=1.0)
        flapper.start()
        sim.run(until=100.0)
        downs = built.network.sim.trace.count("link.down")
        ups = built.network.sim.trace.count("link.up")
        return downs, ups

    downs, ups = run(3)
    assert downs > 5
    assert abs(downs - ups) <= 1
    assert run(3) == (downs, ups)


def test_flapper_stop_halts_transitions():
    sim = Simulator(seed=4)
    built = wan_of_lans(sim, 2, 1, backbone="line", convergence_delay=0.0)
    flapper = LinkFlapper(sim, built.network, [("s0", "s1")],
                          mean_up=1.0, mean_down=1.0).start()
    sim.run(until=10.0)
    flapper.stop()
    count_at_stop = sim.trace.count("link.down")
    sim.run(until=100.0)
    assert sim.trace.count("link.down") == count_at_stop


def test_flapper_validates_means():
    sim = Simulator()
    built = wan_of_lans(sim, 2, 1, convergence_delay=0.0)
    with pytest.raises(ValueError):
        LinkFlapper(sim, built.network, [("s0", "s1")], mean_up=0.0)
