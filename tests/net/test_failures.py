"""Tests for failure schedules, flappers, and partition scheduling."""

import pytest

from repro.net import (
    FailureSchedule,
    HostId,
    LinkFlapper,
    PartitionScheduler,
    ServerOutageSchedule,
    cut_links_between,
    host_group,
    wan_of_lans,
)
from repro.sim import Simulator


def build(k=3, m=2, backbone="line"):
    sim = Simulator(seed=1)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m, backbone=backbone,
                        convergence_delay=0.0)
    return sim, built


def test_schedule_applies_changes_at_times():
    sim, built = build(k=2, m=1)
    network = built.network
    schedule = FailureSchedule(sim, network)
    schedule.outage(5.0, 10.0, "s0", "s1")
    assert network.link("s0", "s1").up
    sim.run(until=6.0)
    assert not network.link("s0", "s1").up
    sim.run(until=11.0)
    assert network.link("s0", "s1").up


def test_outage_validates_interval():
    sim, built = build(k=2, m=1)
    with pytest.raises(ValueError):
        FailureSchedule(sim, built.network).outage(5.0, 5.0, "s0", "s1")


def test_overlapping_outages_compose():
    """The link stays down until the *last* covering outage ends; the
    first outage's repair must not revive it mid-way."""
    sim, built = build(k=2, m=1)
    network = built.network
    schedule = FailureSchedule(sim, network)
    schedule.outage(5.0, 10.0, "s0", "s1")
    schedule.outage(8.0, 15.0, "s0", "s1")
    sim.run(until=9.0)
    assert not network.link("s0", "s1").up
    sim.run(until=11.0)  # first outage ended; second still covers
    assert not network.link("s0", "s1").up
    sim.run(until=16.0)
    assert network.link("s0", "s1").up


def test_unmatched_repair_clamps_at_up():
    sim, built = build(k=2, m=1)
    network = built.network
    schedule = FailureSchedule(sim, network)
    schedule.up(2.0, "s0", "s1")  # repair with no matching outage
    schedule.outage(4.0, 6.0, "s0", "s1")
    sim.run(until=5.0)
    assert not network.link("s0", "s1").up
    sim.run(until=7.0)
    assert network.link("s0", "s1").up


def test_failure_schedule_emits_trace_and_counters():
    sim, built = build(k=2, m=1)
    schedule = FailureSchedule(sim, built.network)
    schedule.outage(2.0, 4.0, "s0", "s1")
    sim.run(until=5.0)
    applies = sim.trace.records(kind="failure.apply")
    assert [(r.fields["a"], r.fields["b"], r.fields["up"])
            for r in applies] == [("s0", "s1", False), ("s0", "s1", True)]
    assert sim.metrics.counter("net.failures.link.down").value == 1
    assert sim.metrics.counter("net.failures.link.up").value == 1


def test_server_outage_emits_trace_and_counters():
    sim, built = build(k=2, m=1)
    network = built.network
    schedule = ServerOutageSchedule(sim, network)
    schedule.outage(2.0, 4.0, "s1")
    sim.run(until=3.0)
    assert not network.servers["s1"].up
    sim.run(until=5.0)
    assert network.servers["s1"].up
    applies = sim.trace.records(kind="failure.apply")
    assert [(r.fields["server"], r.fields["up"]) for r in applies] == [
        ("s1", False), ("s1", True)]
    assert sim.metrics.counter("net.failures.server.down").value == 1
    assert sim.metrics.counter("net.failures.server.up").value == 1


def test_cut_links_between_finds_crossing_links():
    sim, built = build(k=3, m=1, backbone="line")
    cut = cut_links_between(built.network, ["s0", "h0.0"], ["s1", "s2", "h1.0", "h2.0"])
    assert cut == [("s0", "s1")]


def test_partition_scheduler_isolates_and_heals():
    sim, built = build(k=3, m=2, backbone="line")
    network = built.network
    scheduler = PartitionScheduler(sim, network)
    group = host_group(network, built.clusters[0])
    cut = scheduler.isolate(group, start=2.0, end=8.0)
    assert cut == [("s0", "s1")]
    sim.run(until=3.0)
    assert len(network.partitions()) == 2
    sim.run(until=9.0)
    assert len(network.partitions()) == 1


def test_partition_into_three_groups():
    sim, built = build(k=3, m=1, backbone="mesh")
    network = built.network
    scheduler = PartitionScheduler(sim, network)
    groups = [host_group(network, [h]) for h in built.hosts]
    cut = scheduler.partition(groups, start=1.0, end=5.0)
    assert len(cut) == 3  # mesh of 3 clusters
    sim.run(until=2.0)
    assert len(network.partitions()) == 3
    sim.run(until=6.0)
    assert len(network.partitions()) == 1


def test_host_group_includes_server():
    sim, built = build(k=2, m=2)
    group = host_group(built.network, [HostId("h0.0"), HostId("h0.1")])
    assert group == ["h0.0", "h0.1", "s0"]


def test_flapper_produces_transitions_and_is_deterministic():
    def run(seed):
        sim = Simulator(seed=seed)
        built = wan_of_lans(sim, 2, 1, backbone="line", convergence_delay=0.0)
        flapper = LinkFlapper(sim, built.network, [("s0", "s1")],
                              mean_up=5.0, mean_down=1.0)
        flapper.start()
        sim.run(until=100.0)
        downs = built.network.sim.trace.count("link.down")
        ups = built.network.sim.trace.count("link.up")
        return downs, ups

    downs, ups = run(3)
    assert downs > 5
    assert abs(downs - ups) <= 1
    assert run(3) == (downs, ups)


def test_flapper_same_seed_identical_event_sequence():
    """Same seed ⇒ the identical timed sequence of link transitions
    (the flapper draws from a dedicated RNG stream, so unrelated
    randomness elsewhere cannot perturb the churn)."""
    def sequence(seed):
        sim = Simulator(seed=seed)
        built = wan_of_lans(sim, 3, 1, backbone="ring", convergence_delay=0.0)
        LinkFlapper(sim, built.network, built.backbone,
                    mean_up=4.0, mean_down=2.0).start()
        sim.run(until=60.0)
        return [(round(r.time, 9), r.kind, tuple(sorted(r.fields.items())))
                for r in sim.trace.records(kind="link.")]

    first = sequence(9)
    assert first
    assert first == sequence(9)
    assert first != sequence(10)


def test_flapper_stop_halts_transitions():
    sim = Simulator(seed=4)
    built = wan_of_lans(sim, 2, 1, backbone="line", convergence_delay=0.0)
    flapper = LinkFlapper(sim, built.network, [("s0", "s1")],
                          mean_up=1.0, mean_down=1.0).start()
    sim.run(until=10.0)
    flapper.stop()
    count_at_stop = sim.trace.count("link.down")
    sim.run(until=100.0)
    assert sim.trace.count("link.down") == count_at_stop


def test_flapper_validates_means():
    sim = Simulator()
    built = wan_of_lans(sim, 2, 1, convergence_delay=0.0)
    with pytest.raises(ValueError):
        LinkFlapper(sim, built.network, [("s0", "s1")], mean_up=0.0)


def test_flapper_stop_cancels_pending_transitions():
    """stop() must cancel already-armed fail/repair timers, not just
    gate them — an armed timer could down a link after heal()."""
    sim = Simulator(seed=4)
    built = wan_of_lans(sim, 2, 1, backbone="line", convergence_delay=0.0)
    flapper = LinkFlapper(sim, built.network, [("s0", "s1")],
                          mean_up=1.0, mean_down=1.0).start()
    sim.run(until=10.0)
    pending = list(flapper._pending.values())
    assert pending
    flapper.stop()
    assert not flapper._pending
    assert all(event.cancelled for event in pending)
    downs = sim.trace.count("link.down")
    ups = sim.trace.count("link.up")
    sim.run(until=200.0)
    assert sim.trace.count("link.down") == downs
    assert sim.trace.count("link.up") == ups
