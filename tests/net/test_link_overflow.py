"""Tests for per-link, per-direction overflow accounting.

Drop-tail overflow was previously visible only as an aggregate count;
these tests pin the per-link counters, per-direction peaks, the
``link_pressure`` summary, and — the protocol-level consequence — that
a trunk saturated into drop-tail by cross traffic loses DATA packets
yet every message still arrives once the pressure lifts, via gap fill.
"""

import pytest

from repro.core import BroadcastSystem, ProtocolConfig
from repro.net import (
    CrossTrafficGenerator,
    CrossTrafficSpec,
    HostId,
    Network,
    RawPayload,
    cheap_spec,
    expensive_spec,
    link_pressure,
    wan_of_lans,
)
from repro.sim import Simulator


def build_link_pair(queue_limit=4):
    sim = Simulator(seed=3)
    network = Network(sim)
    network.add_server("a")
    network.add_server("b")
    link = network.connect("a", "b", expensive_spec(queue_limit=queue_limit))
    x, y = HostId("x"), HostId("y")
    network.add_host(x, "a")
    network.add_host(y, "b")
    network.use_global_routing(convergence_delay=0.0)
    return sim, network, link


def flood(sim, network, count, size_bits=8_000):
    port = network.host_port(HostId("x"))
    for _ in range(count):
        port.send(HostId("y"), RawPayload(size_bits=size_bits))


class TestPerDirectionAccounting:
    def test_overflow_counted_on_the_loaded_direction_only(self):
        sim, network, link = build_link_pair(queue_limit=4)
        sim.schedule_at(1.0, lambda: flood(sim, network, 20))
        sim.run(until=30.0)
        assert link.overflow_count("a") > 0
        assert link.overflow_count("b") == 0
        assert link.queue_peak("a") == 4  # pinned at the drop-tail limit
        assert link.queue_peak("b") <= 1

    def test_per_link_counter_matches_direction_sum(self):
        sim, network, link = build_link_pair(queue_limit=4)
        sim.schedule_at(1.0, lambda: flood(sim, network, 20))
        sim.run(until=30.0)
        per_link = sim.metrics.counter(
            f"net.drop.overflow.link.{link.link_id}").value
        assert per_link == link.overflow_count("a") + link.overflow_count("b")
        assert sim.metrics.counter("net.drop.overflow").value >= per_link

    def test_drop_trace_names_the_direction(self):
        sim, network, link = build_link_pair(queue_limit=4)
        sim.schedule_at(1.0, lambda: flood(sim, network, 20))
        sim.run(until=30.0)
        records = sim.trace.records(kind="link.drop_overflow")
        assert records
        assert all(r.fields["from_node"] == "a" for r in records)

    def test_no_overflow_without_pressure(self):
        sim, network, link = build_link_pair(queue_limit=4)
        sim.schedule_at(1.0, lambda: flood(sim, network, 2))
        sim.run(until=30.0)
        assert link.overflow_count("a") == 0
        assert link.queue_peak("a") <= 2


class TestLinkPressure:
    def test_rows_sorted_worst_first(self):
        sim, network, link = build_link_pair(queue_limit=4)
        sim.schedule_at(1.0, lambda: flood(sim, network, 20))
        sim.run(until=30.0)
        rows = link_pressure([link])
        assert rows[0]["from_node"] == "a"
        assert rows[0]["overflows"] == link.overflow_count("a")
        assert rows[0]["queue_peak"] == 4
        assert rows[0]["queue_limit"] == 4

    def test_idle_directions_are_omitted(self):
        sim, network, link = build_link_pair()
        assert link_pressure([link]) == []

    def test_covers_many_links(self):
        sim = Simulator(seed=9)
        built = wan_of_lans(sim, clusters=3, hosts_per_cluster=2,
                            backbone="line")
        system = BroadcastSystem(
            built, config=ProtocolConfig(data_size_bits=4_000)).start()
        system.broadcast_stream(5, interval=0.5, start_at=2.0)
        assert system.run_until_delivered(5, timeout=60.0)
        rows = link_pressure(built.network.links.values())
        assert rows  # broadcast touched multiple links
        peaks = [(row["overflows"], row["queue_peak"]) for row in rows]
        assert peaks == sorted(peaks, reverse=True)


class TestDropTailRecovery:
    """Satellite: overflow under sustained cross-traffic, then gap fill."""

    def test_saturated_trunk_drops_data_but_gap_fill_recovers(self):
        sim = Simulator(seed=13)
        built = wan_of_lans(
            sim, clusters=2, hosts_per_cluster=1, backbone="line",
            expensive=expensive_spec(queue_limit=4))
        trunk = built.network.link("s0", "s1")
        system = BroadcastSystem(
            built, config=ProtocolConfig(data_size_bits=4_000)).start()

        # Saturate the trunk (~130% utilization) for the whole stream.
        xt = CrossTrafficGenerator(sim)
        xt.load(trunk, "s0", CrossTrafficSpec(rate=9.0, size_bits=8_000))
        sim.schedule_at(2.0, xt.start)
        sim.schedule_at(40.0, xt.stop)

        n = 10
        system.broadcast_stream(n, interval=1.0, start_at=5.0)
        sim.run(until=40.0)
        assert trunk.overflow_count("s0") > 0  # drop-tail really engaged
        assert trunk.queue_peak("s0") == 4

        # Pressure gone: every message still arrives, via gap filling.
        assert system.run_until_delivered(n, timeout=200.0)
        assert sim.metrics.counter("proto.gapfill.sent").value > 0
