"""Unit tests for the global routing engine."""

import pytest

from repro.net import Network, cheap_spec, expensive_spec, hop_metric, cheap_first_metric
from repro.sim import Simulator


def build_line(n, convergence_delay=0.0):
    sim = Simulator(seed=0)
    network = Network(sim)
    for i in range(n):
        network.add_server(f"s{i}")
    for i in range(1, n):
        network.connect(f"s{i-1}", f"s{i}", cheap_spec(latency=0.01))
    engine = network.use_global_routing(convergence_delay=convergence_delay)
    return sim, network, engine


def test_next_hop_along_line():
    sim, network, engine = build_line(4)
    assert engine.next_hop("s0", "s3") == "s1"
    assert engine.next_hop("s1", "s3") == "s2"
    assert engine.next_hop("s2", "s3") == "s3"
    assert engine.next_hop("s3", "s0") == "s2"


def test_next_hop_to_self_is_absent():
    sim, network, engine = build_line(2)
    assert engine.next_hop("s0", "s0") is None


def test_unreachable_destination_has_no_route():
    sim = Simulator()
    network = Network(sim)
    network.add_server("a")
    network.add_server("b")
    engine = network.use_global_routing(convergence_delay=0.0)
    assert engine.next_hop("a", "b") is None


def test_routing_prefers_lower_latency_path():
    sim = Simulator()
    network = Network(sim)
    for name in ["a", "b", "c"]:
        network.add_server(name)
    network.connect("a", "c", cheap_spec(latency=1.0))
    network.connect("a", "b", cheap_spec(latency=0.1))
    network.connect("b", "c", cheap_spec(latency=0.1))
    engine = network.use_global_routing(convergence_delay=0.0)
    assert engine.next_hop("a", "c") == "b"


def test_hop_metric_prefers_direct_path():
    sim = Simulator()
    network = Network(sim)
    for name in ["a", "b", "c"]:
        network.add_server(name)
    network.connect("a", "c", cheap_spec(latency=1.0))
    network.connect("a", "b", cheap_spec(latency=0.1))
    network.connect("b", "c", cheap_spec(latency=0.1))
    engine = network.use_global_routing(convergence_delay=0.0, metric=hop_metric)
    assert engine.next_hop("a", "c") == "c"


def test_cheap_first_metric_avoids_expensive_links():
    sim = Simulator()
    network = Network(sim)
    for name in ["a", "b", "c", "d"]:
        network.add_server(name)
    network.connect("a", "d", expensive_spec(latency=0.01))
    network.connect("a", "b", cheap_spec(latency=1.0))
    network.connect("b", "c", cheap_spec(latency=1.0))
    network.connect("c", "d", cheap_spec(latency=1.0))
    engine = network.use_global_routing(convergence_delay=0.0, metric=cheap_first_metric)
    assert engine.next_hop("a", "d") == "b"


def test_failure_reroutes_after_convergence_delay():
    sim = Simulator()
    network = Network(sim)
    for name in ["a", "b", "c"]:
        network.add_server(name)
    network.connect("a", "b", cheap_spec(latency=0.1))
    network.connect("b", "c", cheap_spec(latency=0.1))
    network.connect("a", "c", cheap_spec(latency=1.0))
    engine = network.use_global_routing(convergence_delay=2.0)
    assert engine.next_hop("a", "c") == "b"
    network.set_link_state("a", "b", up=False)
    # Stale during convergence window:
    assert engine.next_hop("a", "c") == "b"
    sim.run(until=3.0)
    assert engine.next_hop("a", "c") == "c"


def test_repair_restores_routes():
    sim, network, engine = build_line(3, convergence_delay=0.0)
    network.set_link_state("s0", "s1", up=False)
    assert engine.next_hop("s0", "s2") is None
    network.set_link_state("s0", "s1", up=True)
    assert engine.next_hop("s0", "s2") == "s1"


def test_multiple_changes_coalesce_into_one_recompute():
    sim, network, engine = build_line(4, convergence_delay=1.0)
    network.set_link_state("s0", "s1", up=False)
    network.set_link_state("s1", "s2", up=False)
    sim.run(until=5.0)
    assert sim.trace.count("routing.converged") == 1
    assert engine.next_hop("s0", "s3") is None


def test_deterministic_tie_breaking():
    """Two equal-cost paths must resolve identically across runs."""

    def route():
        sim = Simulator(seed=1)
        network = Network(sim)
        for name in ["a", "b1", "b2", "c"]:
            network.add_server(name)
        network.connect("a", "b1", cheap_spec(latency=0.1))
        network.connect("a", "b2", cheap_spec(latency=0.1))
        network.connect("b1", "c", cheap_spec(latency=0.1))
        network.connect("b2", "c", cheap_spec(latency=0.1))
        engine = network.use_global_routing(convergence_delay=0.0)
        return engine.next_hop("a", "c")

    assert route() == route() == "b1"
