"""Unit tests for the link model: delay, failures, loss, dup, reorder."""

import pytest

from repro.net import LinkId, RawPayload, cheap_spec, expensive_spec, make_packet
from repro.net.link import Link
from repro.net.addressing import HostId
from repro.sim import Simulator


def make_link(spec, seed=0):
    sim = Simulator(seed=seed)
    link = Link(sim, LinkId.of("a", "b"), spec)
    return sim, link


def pkt(size_bits=1000):
    return make_packet(HostId("x"), HostId("y"), RawPayload(size_bits=size_bits))


def test_delivery_delay_is_latency_plus_tx_time():
    sim, link = make_link(cheap_spec(latency=0.5, bandwidth_bps=1000.0))
    got = []
    link.transmit(pkt(size_bits=1000), "a", lambda p: got.append(sim.now))
    sim.run()
    assert got == [pytest.approx(0.5 + 1.0)]


def test_serialization_queues_back_to_back_packets():
    sim, link = make_link(cheap_spec(latency=0.0, bandwidth_bps=1000.0))
    got = []
    for _ in range(3):
        link.transmit(pkt(size_bits=1000), "a", lambda p: got.append(sim.now))
    sim.run()
    assert got == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


def test_opposite_directions_do_not_serialize():
    sim, link = make_link(cheap_spec(latency=0.0, bandwidth_bps=1000.0))
    got = []
    link.transmit(pkt(1000), "a", lambda p: got.append(("ab", sim.now)))
    link.transmit(pkt(1000), "b", lambda p: got.append(("ba", sim.now)))
    sim.run()
    assert got == [("ab", pytest.approx(1.0)), ("ba", pytest.approx(1.0))]


def test_cost_bit_set_only_on_expensive_links():
    sim, link = make_link(expensive_spec())
    got = []
    link.transmit(pkt(), "a", got.append)
    sim.run()
    assert got[0].cost_bit is True

    sim2, cheap_link = make_link(cheap_spec())
    got2 = []
    cheap_link.transmit(pkt(), "a", got2.append)
    sim2.run()
    assert got2[0].cost_bit is False


def test_cost_bit_sticks_across_later_cheap_hops():
    sim = Simulator()
    exp = Link(sim, LinkId.of("a", "b"), expensive_spec())
    chp = Link(sim, LinkId.of("b", "c"), cheap_spec())
    got = []
    exp.transmit(pkt(), "a", lambda p: chp.transmit(p, "b", got.append))
    sim.run()
    assert got[0].cost_bit is True
    assert [str(h) for h in got[0].hops] == ["a<->b", "b<->c"]


def test_down_link_drops_silently():
    sim, link = make_link(cheap_spec())
    link.set_down()
    got = []
    link.transmit(pkt(), "a", got.append)
    sim.run()
    assert got == []
    assert sim.metrics.counter("net.drop.down").value == 1


def test_set_down_loses_in_flight_packets():
    sim, link = make_link(cheap_spec(latency=5.0))
    got = []
    link.transmit(pkt(), "a", got.append)
    sim.schedule(1.0, link.set_down)
    sim.run()
    assert got == []


def test_set_up_after_down_resumes_delivery():
    sim, link = make_link(cheap_spec())
    link.set_down()
    link.set_up()
    got = []
    link.transmit(pkt(), "a", got.append)
    sim.run()
    assert len(got) == 1


def test_set_down_twice_is_idempotent():
    sim, link = make_link(cheap_spec())
    link.set_down()
    link.set_down()
    link.set_up()
    link.set_up()
    assert link.up


def test_loss_probability_one_drops_everything():
    sim, link = make_link(cheap_spec(loss_prob=1.0))
    got = []
    for _ in range(10):
        link.transmit(pkt(), "a", got.append)
    sim.run()
    assert got == []
    assert sim.metrics.counter("net.drop.loss").value == 10


def test_loss_probability_statistics():
    sim, link = make_link(cheap_spec(loss_prob=0.3, queue_limit=10_000), seed=42)
    got = []
    for _ in range(1000):
        link.transmit(pkt(), "a", got.append)
    sim.run()
    assert 620 <= len(got) <= 780  # ~700 expected


def test_duplication_delivers_twice_with_same_packet_id():
    sim, link = make_link(cheap_spec(dup_prob=1.0))
    got = []
    link.transmit(pkt(), "a", got.append)
    sim.run()
    assert len(got) == 2
    assert got[0].packet_id == got[1].packet_id
    assert got[0] is not got[1]


def test_reorder_jitter_can_invert_order():
    sim, link = make_link(cheap_spec(latency=0.001, reorder_jitter=1.0), seed=7)
    order = []
    for i in range(20):
        p = pkt()
        link.transmit(p, "a", lambda q, i=i: order.append(i))
    sim.run()
    assert sorted(order) == list(range(20))
    assert order != list(range(20))  # at least one inversion with this seed


def test_transmit_from_non_endpoint_raises():
    sim, link = make_link(cheap_spec())
    with pytest.raises(ValueError):
        link.transmit(pkt(), "zzz", lambda p: None)


def test_queue_length_tracks_outstanding():
    sim, link = make_link(cheap_spec(latency=0.0, bandwidth_bps=1000.0))
    for _ in range(3):
        link.transmit(pkt(1000), "a", lambda p: None)
    assert link.queue_length("a") == 3
    sim.run()
    assert link.queue_length("a") == 0


def test_transmission_counters():
    sim, link = make_link(expensive_spec())
    link.transmit(pkt(), "a", lambda p: None)
    sim.run()
    assert sim.metrics.counter("net.link_tx.total").value == 1
    assert sim.metrics.counter("net.link_tx.expensive").value == 1
    assert sim.metrics.counter("net.link_tx.kind.raw").value == 1
