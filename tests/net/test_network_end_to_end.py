"""Integration tests: host-to-host delivery through servers."""

import pytest

from repro.net import (
    HostId,
    Network,
    RawPayload,
    cheap_spec,
    expensive_spec,
)
from repro.sim import Simulator


def build_two_cluster_network(convergence_delay=0.0):
    """Two LANs (s0: h0,h1) and (s1: h2) joined by an expensive trunk."""
    sim = Simulator(seed=0)
    network = Network(sim)
    network.add_server("s0")
    network.add_server("s1")
    network.connect("s0", "s1", expensive_spec())
    h0, h1, h2 = HostId("h0"), HostId("h1"), HostId("h2")
    network.add_host(h0, "s0")
    network.add_host(h1, "s0")
    network.add_host(h2, "s1")
    network.use_global_routing(convergence_delay=convergence_delay)
    return sim, network, (h0, h1, h2)


def collect(network, host_id):
    got = []
    network.host_port(host_id).set_receiver(got.append)
    return got


def test_same_cluster_delivery_has_clear_cost_bit():
    sim, network, (h0, h1, h2) = build_two_cluster_network()
    got = collect(network, h1)
    network.host_port(h0).send(h1, RawPayload("hello"))
    sim.run()
    assert len(got) == 1
    assert got[0].payload.content == "hello"
    assert got[0].cost_bit is False


def test_cross_cluster_delivery_sets_cost_bit():
    sim, network, (h0, h1, h2) = build_two_cluster_network()
    got = collect(network, h2)
    network.host_port(h0).send(h2, RawPayload("hi"))
    sim.run()
    assert len(got) == 1
    assert got[0].cost_bit is True


def test_multi_hop_routing_through_switch_only_server():
    """A server with no hosts acts purely as a switch (paper Section 2)."""
    sim = Simulator()
    network = Network(sim)
    for name in ["s0", "sw", "s1"]:
        network.add_server(name)
    network.connect("s0", "sw", cheap_spec())
    network.connect("sw", "s1", cheap_spec())
    a, b = HostId("a"), HostId("b")
    network.add_host(a, "s0")
    network.add_host(b, "s1")
    network.use_global_routing(convergence_delay=0.0)
    got = collect(network, b)
    network.host_port(a).send(b, RawPayload())
    sim.run()
    assert len(got) == 1
    # 4 links: a->s0, s0->sw, sw->s1, s1->b
    assert len(got[0].hops) == 4


def test_send_to_self_rejected():
    sim, network, (h0, _, _) = build_two_cluster_network()
    with pytest.raises(ValueError):
        network.host_port(h0).send(h0, RawPayload())


def test_unknown_destination_dropped_silently():
    sim, network, (h0, _, _) = build_two_cluster_network()
    network.host_port(h0).send(HostId("ghost"), RawPayload())
    sim.run()
    assert sim.metrics.counter("net.drop.unknown_host").value == 1


def test_partitioned_destination_drops_at_no_route():
    sim, network, (h0, h1, h2) = build_two_cluster_network()
    got = collect(network, h2)
    network.set_link_state("s0", "s1", up=False)
    network.host_port(h0).send(h2, RawPayload())
    sim.run()
    assert got == []
    assert sim.metrics.counter("net.drop.no_route").value == 1


def test_delivery_resumes_after_repair():
    sim, network, (h0, h1, h2) = build_two_cluster_network()
    got = collect(network, h2)
    network.set_link_state("s0", "s1", up=False)
    network.host_port(h0).send(h2, RawPayload())

    def repair_and_resend():
        network.set_link_state("s0", "s1", up=True)
        network.host_port(h0).send(h2, RawPayload())

    sim.schedule(10.0, repair_and_resend)
    sim.run()
    assert len(got) == 1


def test_down_access_link_simulates_host_crash():
    """Per the paper, a host crash is modelled by failing its access link."""
    sim, network, (h0, h1, h2) = build_two_cluster_network()
    got = collect(network, h1)
    network.set_link_state("h1", "s0", up=False)
    network.host_port(h0).send(h1, RawPayload())
    sim.run()
    assert got == []
    # h1 also cannot send:
    network.host_port(h1).send(h0, RawPayload())
    sim.run()
    assert sim.metrics.counter("net.drop.down").value >= 1


def test_h2h_metrics_and_delay_recorded():
    sim, network, (h0, h1, h2) = build_two_cluster_network()
    collect(network, h2)
    network.host_port(h0).send(h2, RawPayload())
    sim.run()
    assert sim.metrics.counter("net.h2h.sent").value == 1
    assert sim.metrics.counter("net.h2h.recv").value == 1
    assert sim.metrics.counter("net.h2h.recv.expensive").value == 1
    assert sim.metrics.histogram("net.h2h.delay").count == 1
    assert sim.metrics.histogram("net.h2h.delay").mean > 0


def test_duplicate_names_rejected():
    sim = Simulator()
    network = Network(sim)
    network.add_server("s0")
    with pytest.raises(ValueError):
        network.add_server("s0")
    network.add_host(HostId("h0"), "s0")
    with pytest.raises(ValueError):
        network.add_host(HostId("h0"), "s0")
    with pytest.raises(ValueError):
        network.add_server("h0")  # name collision with host
    with pytest.raises(ValueError):
        network.add_host(HostId("s0"), "s0")  # name collision with server
    network.add_server("s1")
    network.connect("s0", "s1")
    with pytest.raises(ValueError):
        network.connect("s1", "s0")
