"""Unit tests for identifiers."""

from repro.net import HostId, LinkId, ServerId, host_id, server_id


def test_host_and_server_ids_are_distinct_types():
    assert host_id("x") == HostId("x")
    assert server_id("x") == ServerId("x")
    assert host_id("x") != server_id("x")


def test_ids_are_hashable_and_ordered():
    ids = sorted([host_id("b"), host_id("a"), host_id("c")])
    assert [i.name for i in ids] == ["a", "b", "c"]
    assert len({host_id("a"), host_id("a")}) == 1


def test_link_id_normalizes_endpoint_order():
    assert LinkId.of("s2", "s1") == LinkId.of("s1", "s2")
    assert str(LinkId.of("b", "a")) == "a<->b"


def test_str_forms():
    assert str(host_id("h1")) == "h1"
    assert str(server_id("s1")) == "s1"
