"""Tests for route tracing diagnostics."""

import pytest

from repro.net import HostId, Network, cheap_spec, expensive_spec, wan_of_lans
from repro.net.pathdiag import routes_overview, trace_route
from repro.net.routing import RoutingEngine
from repro.sim import Simulator


def build(k=2, m=2):
    sim = Simulator(seed=0)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m, backbone="line",
                        convergence_delay=0.0)
    return sim, built


def test_complete_intra_cluster_route_is_cheap():
    sim, built = build()
    trace = trace_route(built.network, HostId("h0.0"), HostId("h0.1"))
    assert trace.complete
    assert trace.nodes == ["h0.0", "s0", "h0.1"]
    assert not trace.expensive
    assert trace.hop_count == 2
    assert trace.latency_estimate > 0


def test_cross_cluster_route_is_expensive():
    sim, built = build()
    trace = trace_route(built.network, HostId("h0.0"), HostId("h1.0"))
    assert trace.complete
    assert trace.expensive
    assert trace.nodes == ["h0.0", "s0", "s1", "h1.0"]
    assert "expensive" in str(trace)


def test_no_route_after_partition():
    sim, built = build()
    built.network.set_link_state("s0", "s1", up=False)
    trace = trace_route(built.network, HostId("h0.0"), HostId("h1.0"))
    assert trace.status == "no_route"
    assert not trace.complete


def test_link_down_detected_with_stale_tables():
    sim = Simulator(seed=0)
    built = wan_of_lans(sim, 2, 1, backbone="line", convergence_delay=100.0)
    built.network.set_link_state("s0", "s1", up=False)
    # Routing has not converged: table still says s1, but the link is down.
    trace = trace_route(built.network, HostId("h0.0"), HostId("h1.0"))
    assert trace.status == "link_down"


def test_down_access_link():
    sim, built = build()
    built.network.set_link_state("h0.0", "s0", up=False)
    trace = trace_route(built.network, HostId("h0.0"), HostId("h0.1"))
    assert trace.status == "link_down"
    assert trace.nodes == ["h0.0"]


class _LoopRouting(RoutingEngine):
    def next_hop(self, at_server, dst_server):
        return {"s0": "s1", "s1": "s0"}[at_server]

    def on_topology_change(self):
        pass


def test_loop_detected():
    sim = Simulator(seed=0)
    network = Network(sim)
    network.add_server("s0")
    network.add_server("s1")
    network.add_server("s2")
    network.connect("s0", "s1", cheap_spec())
    network.connect("s1", "s2", cheap_spec())
    network.add_host(HostId("a"), "s0")
    network.add_host(HostId("b"), "s2")
    network.use_routing(_LoopRouting())
    trace = trace_route(network, HostId("a"), HostId("b"))
    assert trace.status == "loop"


def test_unknown_host_is_no_route():
    sim, built = build()
    trace = trace_route(built.network, HostId("h0.0"), HostId("ghost"))
    assert trace.status == "no_route"


def test_routes_overview_covers_all_other_hosts():
    sim, built = build(k=2, m=2)
    traces = routes_overview(built.network, HostId("h0.0"))
    assert len(traces) == 3
    assert all(t.complete for t in traces)
    # Exactly the two cross-cluster routes are expensive.
    assert sum(t.expensive for t in traces) == 2
