"""Tests for ground-truth topology queries (clusters, partitions)."""

from repro.net import HostId, Network, cheap_spec, expensive_spec, wan_of_lans
from repro.sim import Simulator


def build_wan(k=3, m=2, backbone="line"):
    sim = Simulator(seed=0)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m, backbone=backbone,
                        convergence_delay=0.0)
    return sim, built


def test_true_clusters_match_generator_layout():
    sim, built = build_wan(k=3, m=2)
    clusters = built.network.true_clusters()
    expected = [set(c) for c in built.clusters]
    assert [set(c) for c in clusters] == expected


def test_failing_expensive_trunk_does_not_change_clusters():
    sim, built = build_wan(k=3, m=2)
    before = built.network.true_clusters()
    built.network.set_link_state("s0", "s1", up=False)
    assert built.network.true_clusters() == before


def test_cheap_link_between_clusters_merges_them():
    """Paper Section 4.1: repairing a high-bandwidth path joins clusters."""
    sim, built = build_wan(k=2, m=2)
    network = built.network
    assert len(network.true_clusters()) == 2
    # Add a cheap parallel path via a new switch (LinkId s0<->s1 already used).
    network.add_server("bridge")
    network.connect("s0", "bridge", cheap_spec())
    network.connect("bridge", "s1", cheap_spec())
    network.routing.on_topology_change()
    assert len(network.true_clusters()) == 1


def test_host_with_down_access_link_is_singleton_cluster():
    sim, built = build_wan(k=2, m=2)
    network = built.network
    network.set_link_state("h0.1", "s0", up=False)
    clusters = [set(c) for c in network.true_clusters()]
    assert {HostId("h0.1")} in clusters


def test_partitions_reflect_any_class_links():
    sim, built = build_wan(k=2, m=2)
    network = built.network
    assert len(network.partitions()) == 1  # expensive trunk still connects
    network.set_link_state("s0", "s1", up=False)
    parts = network.partitions()
    assert len(parts) == 2


def test_reachable_tracks_link_state():
    sim, built = build_wan(k=2, m=1)
    network = built.network
    a, b = built.hosts
    assert network.reachable(a, b)
    network.set_link_state("s0", "s1", up=False)
    assert not network.reachable(a, b)
    network.set_link_state("s0", "s1", up=True)
    assert network.reachable(a, b)


def test_cluster_of_single_host():
    sim, built = build_wan(k=2, m=3)
    cluster = built.network.cluster_of(HostId("h1.2"))
    assert cluster == set(built.clusters[1])
