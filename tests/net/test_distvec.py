"""Tests for the distance-vector routing engine."""

from repro.net import DistanceVectorEngine, HostId, Network, RawPayload, cheap_spec
from repro.sim import Simulator


def build_line(n, period=0.5, max_age=3.0):
    sim = Simulator(seed=0)
    network = Network(sim)
    for i in range(n):
        network.add_server(f"s{i}")
    for i in range(1, n):
        network.connect(f"s{i-1}", f"s{i}", cheap_spec(latency=0.01))
    engine = DistanceVectorEngine(sim, network, period=period, max_age=max_age)
    network.use_routing(engine)
    return sim, network, engine


def test_converges_to_shortest_paths():
    sim, network, engine = build_line(5)
    sim.run(until=5.0)  # several exchange rounds
    assert engine.next_hop("s0", "s4") == "s1"
    assert engine.next_hop("s4", "s0") == "s3"
    assert engine.next_hop("s2", "s2") == "s2" or engine.next_hop("s2", "s2") is None


def test_no_route_before_convergence():
    sim, network, engine = build_line(5, period=1.0)
    # Before any exchange round only self-routes exist.
    assert engine.next_hop("s0", "s4") is None


def test_routes_age_out_after_failure():
    sim, network, engine = build_line(3, period=0.5, max_age=2.0)
    sim.run(until=5.0)
    assert engine.next_hop("s0", "s2") == "s1"
    network.set_link_state("s1", "s2", up=False)
    sim.run(until=15.0)
    assert engine.next_hop("s0", "s2") is None


def test_routes_relearned_after_repair():
    sim, network, engine = build_line(3, period=0.5, max_age=2.0)
    sim.run(until=5.0)
    network.set_link_state("s1", "s2", up=False)
    sim.run(until=15.0)
    network.set_link_state("s1", "s2", up=True)
    sim.run(until=25.0)
    assert engine.next_hop("s0", "s2") == "s1"


def test_reroutes_around_failure_with_alternate_path():
    sim = Simulator(seed=0)
    network = Network(sim)
    for name in ["a", "b", "c"]:
        network.add_server(name)
    network.connect("a", "b", cheap_spec(latency=0.01))
    network.connect("b", "c", cheap_spec(latency=0.01))
    network.connect("a", "c", cheap_spec(latency=0.10))
    engine = DistanceVectorEngine(sim, network, period=0.5, max_age=2.0)
    network.use_routing(engine)
    sim.run(until=5.0)
    assert engine.next_hop("a", "c") == "b"
    network.set_link_state("b", "c", up=False)
    sim.run(until=20.0)
    assert engine.next_hop("a", "c") == "c"


def test_end_to_end_delivery_with_distvec():
    sim = Simulator(seed=0)
    network = Network(sim)
    for i in range(3):
        network.add_server(f"s{i}")
    network.connect("s0", "s1", cheap_spec())
    network.connect("s1", "s2", cheap_spec())
    a, b = HostId("a"), HostId("b")
    network.add_host(a, "s0")
    network.add_host(b, "s2")
    engine = DistanceVectorEngine(sim, network, period=0.2)
    network.use_routing(engine)
    got = []
    network.host_port(b).set_receiver(got.append)
    sim.schedule(3.0, lambda: network.host_port(a).send(b, RawPayload()))
    sim.run(until=5.0)
    assert len(got) == 1


def test_stop_halts_exchange():
    sim, network, engine = build_line(3)
    sim.run(until=2.0)
    engine.stop()
    rounds = sim.trace.count("routing.distvec_round")
    sim.run(until=10.0)
    assert sim.trace.count("routing.distvec_round") == rounds


def test_table_view_is_copy():
    sim, network, engine = build_line(2)
    sim.run(until=3.0)
    table = engine.table("s0")
    table.clear()
    assert engine.next_hop("s0", "s1") == "s1"
