"""Tests for the background cross-traffic generator."""

import pytest

from repro.net import (
    CrossTrafficGenerator,
    CrossTrafficSpec,
    HostId,
    Network,
    RawPayload,
    cheap_spec,
    expensive_spec,
)
from repro.sim import Simulator


def build_link_pair():
    sim = Simulator(seed=0)
    network = Network(sim)
    network.add_server("a")
    network.add_server("b")
    link = network.connect("a", "b", expensive_spec())
    x, y = HostId("x"), HostId("y")
    network.add_host(x, "a")
    network.add_host(y, "b")
    network.use_global_routing(convergence_delay=0.0)
    return sim, network, link


def test_spec_validation_and_utilization():
    with pytest.raises(ValueError):
        CrossTrafficSpec(rate=0.0)
    with pytest.raises(ValueError):
        CrossTrafficSpec(rate=1.0, size_bits=0)
    spec = CrossTrafficSpec(rate=3.5, size_bits=8_000)
    assert spec.utilization(56_000.0) == pytest.approx(0.5)


def test_injection_rate_and_absorption():
    sim, network, link = build_link_pair()
    xt = CrossTrafficGenerator(sim)
    xt.load(link, "a", CrossTrafficSpec(rate=2.0, size_bits=1_000)).start()
    sim.run(until=30.0)
    injected = sim.metrics.counter("xtraffic.injected").value
    assert 50 <= injected <= 70  # ~60 expected
    assert sim.metrics.counter("xtraffic.absorbed").value == injected


def test_load_validates_endpoint():
    sim, network, link = build_link_pair()
    with pytest.raises(ValueError):
        CrossTrafficGenerator(sim).load(link, "zzz", CrossTrafficSpec(rate=1.0))


def test_cross_traffic_delays_real_packets():
    def delay_with(rate):
        sim, network, link = build_link_pair()
        if rate:
            xt = CrossTrafficGenerator(sim)
            xt.load(link, "a", CrossTrafficSpec(rate=rate, size_bits=8_000))
            xt.start()
        got = []
        network.host_port(HostId("y")).set_receiver(
            lambda p: got.append(sim.now - p.sent_at))
        for t in range(10, 20):
            sim.schedule_at(float(t), lambda: network.host_port(
                HostId("x")).send(HostId("y"), RawPayload(size_bits=1_000)))
        sim.run(until=60.0)
        assert len(got) == 10
        return sum(got) / len(got)

    # Mild overload (~107% utilization): the queue builds and real
    # packets wait behind it.
    assert delay_with(7.5) > 3 * delay_with(0)
    # Sub-capacity load still measurably delays (occasional queueing).
    assert delay_with(6.5) > 1.5 * delay_with(0)


def test_stop_halts_injection():
    sim, network, link = build_link_pair()
    xt = CrossTrafficGenerator(sim)
    xt.load(link, "a", CrossTrafficSpec(rate=5.0)).start()
    sim.run(until=5.0)
    xt.stop()
    count = sim.metrics.counter("xtraffic.injected").value
    sim.run(until=30.0)
    assert sim.metrics.counter("xtraffic.injected").value == count


def test_load_both_ways():
    sim, network, link = build_link_pair()
    xt = CrossTrafficGenerator(sim)
    xt.load_both_ways(link, CrossTrafficSpec(rate=1.0)).start()
    sim.run(until=10.0)
    assert sim.metrics.counter("xtraffic.injected").value >= 16


def test_filler_counted_separately_from_h2h():
    sim, network, link = build_link_pair()
    xt = CrossTrafficGenerator(sim)
    xt.load(link, "a", CrossTrafficSpec(rate=5.0)).start()
    sim.run(until=10.0)
    # Filler never enters host-to-host accounting.
    assert sim.metrics.counter("net.h2h.sent").value == 0
    assert sim.metrics.counter("net.h2h.recv").value == 0
