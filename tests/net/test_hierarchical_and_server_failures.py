"""Tests for multi-server clusters and whole-server failures."""

import pytest

from repro.core import BroadcastSystem, ProtocolConfig
from repro.net import HostId, RawPayload, hierarchical_wan
from repro.sim import Simulator


class TestHierarchicalWan:
    def test_shape(self):
        sim = Simulator(seed=0)
        built = hierarchical_wan(sim, clusters=2, servers_per_cluster=3,
                                 hosts_per_server=2, backbone="line",
                                 convergence_delay=0.0)
        assert len(built.hosts) == 12
        assert len(built.network.servers) == 6
        # Cheap ring inside each cluster + 1 expensive trunk.
        clusters = built.network.true_clusters()
        assert len(clusters) == 2
        assert all(len(c) == 6 for c in clusters)

    def test_two_server_cluster_single_link(self):
        sim = Simulator(seed=0)
        built = hierarchical_wan(sim, clusters=1, servers_per_cluster=2,
                                 hosts_per_server=1, convergence_delay=0.0)
        # One intra link + two access links.
        assert len(built.network.links) == 3

    def test_multi_hop_cheap_path_keeps_cost_bit_clear(self):
        sim = Simulator(seed=0)
        built = hierarchical_wan(sim, clusters=1, servers_per_cluster=4,
                                 hosts_per_server=1, convergence_delay=0.0)
        got = []
        src, dst = HostId("h0.0.0"), HostId("h0.2.0")
        built.network.host_port(dst).set_receiver(got.append)
        built.network.host_port(src).send(dst, RawPayload())
        sim.run()
        (packet,) = got
        assert len(packet.hops) >= 4  # multi-hop
        assert packet.cost_bit is False

    def test_cross_cluster_sets_cost_bit(self):
        sim = Simulator(seed=0)
        built = hierarchical_wan(sim, clusters=2, servers_per_cluster=2,
                                 hosts_per_server=1, convergence_delay=0.0)
        got = []
        src, dst = HostId("h0.1.0"), HostId("h1.1.0")
        built.network.host_port(dst).set_receiver(got.append)
        built.network.host_port(src).send(dst, RawPayload())
        sim.run()
        assert got[0].cost_bit is True

    def test_validation(self):
        with pytest.raises(ValueError):
            hierarchical_wan(Simulator(), 0, 1, 1)
        with pytest.raises(ValueError):
            hierarchical_wan(Simulator(), 1, 1, 1, backbone="donut")

    def test_protocol_converges_over_hierarchical_clusters(self):
        sim = Simulator(seed=5)
        built = hierarchical_wan(sim, clusters=2, servers_per_cluster=3,
                                 hosts_per_server=1, backbone="line")
        system = BroadcastSystem(built,
                                 config=ProtocolConfig.for_scale(6)).start()
        system.broadcast_stream(10, interval=1.0, start_at=2.0)
        assert system.run_until_delivered(10, timeout=300.0)
        # Cluster views learned across multi-hop cheap paths.
        sim.run(until=sim.now + 15.0)
        a_host = system.hosts[HostId("h0.0.0")]
        assert HostId("h0.2.0") in a_host.cluster
        assert HostId("h1.0.0") not in a_host.cluster


class TestServerFailures:
    def build(self):
        sim = Simulator(seed=0)
        built = hierarchical_wan(sim, clusters=2, servers_per_cluster=3,
                                 hosts_per_server=1, backbone="line",
                                 convergence_delay=0.0)
        return sim, built

    def test_down_server_discards_traffic(self):
        sim, built = self.build()
        got = []
        built.network.host_port(HostId("h0.2.0")).set_receiver(got.append)
        built.network.set_server_state("s0.1", up=False)
        built.network.set_server_state("s0.2", up=False)
        built.network.host_port(HostId("h0.0.0")).send(HostId("h0.2.0"),
                                                       RawPayload())
        sim.run(until=10.0)
        assert got == []

    def test_ring_routes_around_failed_server(self):
        sim, built = self.build()
        got = []
        built.network.host_port(HostId("h0.2.0")).set_receiver(got.append)
        built.network.set_server_state("s0.1", up=False)
        # The intra-cluster ring provides the alternate path 0 -> 2.
        built.network.host_port(HostId("h0.0.0")).send(HostId("h0.2.0"),
                                                       RawPayload())
        sim.run(until=10.0)
        assert len(got) == 1

    def test_repair_restores_links_between_up_servers_only(self):
        sim, built = self.build()
        network = built.network
        network.set_server_state("s0.1", up=False)
        network.set_server_state("s0.2", up=False)
        assert not network.link("s0.1", "s0.2").up
        network.set_server_state("s0.1", up=True)
        # s0.1's link to the still-down s0.2 must stay down.
        assert not network.link("s0.1", "s0.2").up
        assert network.link("s0.0", "s0.1").up
        network.set_server_state("s0.2", up=True)
        assert network.link("s0.1", "s0.2").up

    def test_set_server_state_is_idempotent(self):
        sim, built = self.build()
        built.network.set_server_state("s0.1", up=False)
        built.network.set_server_state("s0.1", up=False)
        built.network.set_server_state("s0.1", up=True)
        assert built.network.servers["s0.1"].up


class TestLeaderServerCrash:
    def test_paper_scenario_new_leader_elected_after_server_crash(self):
        """Paper §3: 'a cluster leader (or its server) may fail, in which
        case the members of the cluster must come up with a new cluster
        leader to maintain the connectivity of the tree.'"""
        sim = Simulator(seed=5)
        built = hierarchical_wan(sim, clusters=2, servers_per_cluster=3,
                                 hosts_per_server=1, backbone="line")
        system = BroadcastSystem(built,
                                 config=ProtocolConfig.for_scale(6)).start()
        system.broadcast_stream(10, interval=1.0, start_at=2.0)
        assert system.run_until_delivered(10, timeout=300.0)
        # Find the non-source cluster's leader and crash ITS SERVER.
        leader = next(h for h in system.leaders() if h != system.source_id)
        server = built.network.server_of(leader)
        assert server != "s1.0", "test assumes the leader is not the gateway"
        built.network.set_server_state(server, up=False)
        system.broadcast_stream(10, interval=1.0, start_at=sim.now + 1.0)
        survivors = [h for h in built.hosts
                     if built.network.server_of(h) != server]
        assert system.run_until_delivered(20, timeout=400.0, hosts=survivors)
        # A new leader emerged among the survivors of that cluster.
        new_leaders = [h for h in system.leaders()
                       if str(h).startswith("h1") and h != leader]
        assert new_leaders
        # Repair: the old leader's hosts catch up on everything.
        built.network.set_server_state(server, up=True)
        assert system.run_until_delivered(20, timeout=400.0)


class TestServerOutageSchedule:
    def test_scheduled_crash_and_repair(self):
        from repro.net import ServerOutageSchedule

        sim = Simulator(seed=0)
        built = hierarchical_wan(sim, clusters=1, servers_per_cluster=3,
                                 hosts_per_server=1, convergence_delay=0.0)
        schedule = ServerOutageSchedule(sim, built.network)
        schedule.outage(5.0, 12.0, "s0.1")
        assert built.network.servers["s0.1"].up
        sim.run(until=6.0)
        assert not built.network.servers["s0.1"].up
        sim.run(until=13.0)
        assert built.network.servers["s0.1"].up

    def test_outage_validates_interval(self):
        from repro.net import ServerOutageSchedule

        sim = Simulator(seed=0)
        built = hierarchical_wan(sim, clusters=1, servers_per_cluster=2,
                                 hosts_per_server=1, convergence_delay=0.0)
        with pytest.raises(ValueError):
            ServerOutageSchedule(sim, built.network).outage(5.0, 5.0, "s0.0")

    def test_protocol_survives_mid_stream_server_outage(self):
        from repro.net import ServerOutageSchedule

        sim = Simulator(seed=7)
        built = hierarchical_wan(sim, clusters=2, servers_per_cluster=3,
                                 hosts_per_server=1, backbone="line")
        system = BroadcastSystem(built,
                                 config=ProtocolConfig.for_scale(6)).start()
        # A non-gateway server of the far cluster dies for 25 seconds.
        ServerOutageSchedule(sim, built.network).outage(10.0, 35.0, "s1.1")
        system.broadcast_stream(30, interval=1.0, start_at=2.0)
        assert system.run_until_delivered(30, timeout=400.0)
