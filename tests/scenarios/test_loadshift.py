"""Tests for the load-shift scenario (delay adaptation, Section 3)."""

import dataclasses

from repro.core import BroadcastSystem, ProtocolConfig
from repro.net import HostId
from repro.scenarios import apply_load_shift, load_shift_topology
from repro.sim import Simulator


def test_topology_shape():
    built = load_shift_topology(Simulator(seed=0), convergence_delay=0.0)
    network = built.network
    assert len(built.hosts) == 5
    assert len(network.true_clusters()) == 4
    # C reaches the source only through B1's or B2's server.
    network.set_link_state("s1", "s3", up=False)
    assert network.reachable(HostId("c0"), HostId("src"))
    network.set_link_state("s2", "s3", up=False)
    assert not network.reachable(HostId("c0"), HostId("src"))


def test_load_shift_switches_generators():
    sim = Simulator(seed=1)
    built = load_shift_topology(sim)
    shift = apply_load_shift(sim, built, shift_at=10.0)
    sim.run(until=5.0)
    early = sim.metrics.counter("xtraffic.injected").value
    assert early > 0
    sim.run(until=20.0)
    assert sim.trace.count("scenario.load_shift") == 1
    shift.generator_phase2.stop()
    assert shift.total_injected(sim) > early


def test_delay_optimization_migrates_leader_after_shift():
    """The paper's Section 3 story end to end (small version)."""

    def run(enabled):
        sim = Simulator(seed=5)
        built = load_shift_topology(sim)
        config = dataclasses.replace(
            ProtocolConfig.for_scale(5), enable_delay_optimization=enabled)
        system = BroadcastSystem(built, source=HostId("src"),
                                 config=config).start()
        shift = apply_load_shift(sim, built, shift_at=40.0)
        system.broadcast_stream(30, interval=1.0, start_at=5.0)
        sim.run(until=40.0)
        before = str(system.hosts[HostId("c1")].parent)
        system.broadcast_stream(30, interval=1.0, start_at=41.0)
        ok = system.run_until_delivered(60, timeout=600.0)
        shift.generator_phase2.stop()
        after = str(system.hosts[HostId("c1")].parent)
        return ok, before, after

    ok_on, before_on, after_on = run(True)
    ok_off, before_off, after_off = run(False)
    assert ok_on and ok_off
    assert before_on == before_off          # same starting tree
    assert after_on != before_on            # II.3 migrated the leader
    assert after_off == before_off          # ablation stayed put
