"""Edge-case tests for the Section 6 brief-window partition schedule."""

import pytest

from repro.net import wan_of_lans
from repro.scenarios.partitions import BriefWindowSchedule, WindowSpec
from repro.sim import Simulator


def build(seed=1):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=2, hosts_per_cluster=1,
                        backbone="line", convergence_delay=0.0)
    return sim, built


TRUNK = [("s0", "s1")]


def test_window_spec_rejects_degenerate_windows():
    with pytest.raises(ValueError):
        WindowSpec(period=5.0, width=0.0)     # zero-length window
    with pytest.raises(ValueError):
        WindowSpec(period=5.0, width=-1.0)
    with pytest.raises(ValueError):
        WindowSpec(period=5.0, width=5.0)     # always-open is no window
    with pytest.raises(ValueError):
        WindowSpec(period=0.0, width=1.0)


def test_schedule_rejects_horizon_before_first_window():
    sim, built = build()
    window = WindowSpec(period=5.0, width=1.0, first_open=8.0)
    with pytest.raises(ValueError):
        BriefWindowSchedule(sim, built, TRUNK, window, until=8.0)
    with pytest.raises(ValueError):
        BriefWindowSchedule(sim, built, TRUNK, window, until=3.0)


def test_window_extending_past_horizon_is_clamped():
    sim, built = build()
    # One window [8, 13) would outlive until=10: clamp it to [8, 10).
    window = WindowSpec(period=10.0, width=5.0, first_open=8.0)
    schedule = BriefWindowSchedule(sim, built, TRUNK, window, until=10.0)
    assert schedule.windows == [(8.0, 10.0)]
    assert schedule.total_open_time == 2.0
    link = built.network.link("s0", "s1")
    sim.run(until=7.0)
    assert not link.up
    sim.run(until=9.0)
    assert link.up
    sim.run(until=10.5)
    assert link.up  # the post-horizon heal keeps the trunk connected


def test_immediate_first_window_skips_initial_cut():
    sim, built = build()
    window = WindowSpec(period=5.0, width=2.0, first_open=0.0)
    schedule = BriefWindowSchedule(sim, built, TRUNK, window, until=12.0)
    assert schedule.windows == [(0.0, 2.0), (5.0, 7.0), (10.0, 12.0)]
    assert schedule.total_open_time == 6.0
    link = built.network.link("s0", "s1")
    sim.run(until=1.0)
    assert link.up      # open from t=0: no initial down event
    sim.run(until=3.0)
    assert not link.up
    sim.run(until=6.0)
    assert link.up


def test_back_to_back_windows_toggle_cleanly():
    sim, built = build()
    # Near-degenerate duty cycle: 1.999 s open out of every 2 s.
    window = WindowSpec(period=2.0, width=1.999, first_open=2.0)
    schedule = BriefWindowSchedule(sim, built, TRUNK, window, until=8.0)
    assert len(schedule.windows) == 3
    link = built.network.link("s0", "s1")
    sim.run(until=1.0)
    assert not link.up
    sim.run(until=3.0)
    assert link.up
    # Probe just inside one of the 1 ms closures between windows.
    sim.run(until=3.9995)
    assert not link.up
    sim.run(until=4.5)
    assert link.up
    sim.run(until=9.0)
    assert link.up  # healed after the horizon


def test_schedule_accepts_bare_network():
    # ChaosPlan hands BriefWindowSchedule a Network, not a BuiltTopology.
    sim, built = build()
    window = WindowSpec(period=5.0, width=1.0, first_open=2.0)
    schedule = BriefWindowSchedule(sim, built.network, TRUNK, window,
                                   until=10.0)
    link = built.network.link("s0", "s1")
    sim.run(until=1.0)
    assert not link.up
    sim.run(until=2.5)
    assert link.up
    assert schedule.windows == [(2.0, 3.0), (7.0, 8.0)]
