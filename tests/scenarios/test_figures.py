"""Tests for the paper-figure scenario topologies."""

from repro.net import HostId
from repro.scenarios import (
    BriefWindowSchedule,
    WindowSpec,
    figure_3_1,
    figure_3_2,
    figure_4_1,
    midstream_partition,
)
from repro.net import wan_of_lans
from repro.sim import Simulator

import pytest


class TestFigure31:
    def test_topology_shape(self):
        built = figure_3_1(Simulator(seed=0))
        network = built.network
        assert set(network.server_names()) == {"s1", "s2", "s3", "s4"}
        assert len(built.hosts) == 3
        assert built.source == HostId("h1")
        # s4 is a pure switch: no hosts attached.
        assert not network.servers["s4"].attached
        # 6 links: 3 trunks + 3 access links.
        assert len(network.links) == 6

    def test_single_cluster_when_cheap(self):
        built = figure_3_1(Simulator(seed=0))
        assert len(built.network.true_clusters()) == 1


class TestFigure32:
    def test_topology_shape(self):
        built = figure_3_2(Simulator(seed=0))
        assert len(built.clusters) == 4
        assert len(built.hosts) == 9
        assert len(built.network.true_clusters()) == 4
        # Cluster 3 (C) reaches both candidate parent clusters directly.
        assert ("s1", "s3") in built.backbone
        assert ("s2", "s3") in built.backbone

    def test_connected(self):
        built = figure_3_2(Simulator(seed=0))
        assert len(built.network.partitions()) == 1


class TestFigure41:
    def test_topology_shape(self):
        built = figure_4_1(Simulator(seed=0))
        assert [str(h) for h in built.hosts] == ["s", "i", "j"]
        assert len(built.network.true_clusters()) == 3

    def test_i_j_survive_source_isolation(self):
        built = figure_4_1(Simulator(seed=0))
        network = built.network
        network.set_link_state("ss", "si", up=False)
        network.set_link_state("ss", "sj", up=False)
        assert network.reachable(HostId("i"), HostId("j"))
        assert not network.reachable(HostId("s"), HostId("i"))


class TestMidstreamPartition:
    def test_cuts_and_heals(self):
        sim = Simulator(seed=0)
        built = wan_of_lans(sim, 3, 2, backbone="line", convergence_delay=0.0)
        cut = midstream_partition(built, cluster_index=2, start=5.0, end=10.0)
        assert cut == [("s1", "s2")]
        sim.run(until=6.0)
        assert len(built.network.partitions()) == 2
        sim.run(until=11.0)
        assert len(built.network.partitions()) == 1

    def test_requires_cluster_metadata(self):
        sim = Simulator(seed=0)
        built = wan_of_lans(sim, 2, 1, convergence_delay=0.0)
        built.clusters = []
        with pytest.raises(ValueError):
            midstream_partition(built, 0, 1.0, 2.0)


class TestBriefWindows:
    def test_window_spec_validation(self):
        with pytest.raises(ValueError):
            WindowSpec(period=10.0, width=10.0)
        with pytest.raises(ValueError):
            WindowSpec(period=0.0, width=1.0)

    def test_links_up_only_during_windows(self):
        sim = Simulator(seed=0)
        built = wan_of_lans(sim, 2, 1, backbone="line", convergence_delay=0.0)
        window = WindowSpec(period=20.0, width=2.0, first_open=10.0)
        schedule = BriefWindowSchedule(sim, built, built.backbone, window,
                                       until=50.0)
        link = built.network.link("s0", "s1")
        checks = []

        def probe():
            checks.append((sim.now, link.up))

        for t in [5.0, 11.0, 15.0, 31.0, 45.0, 55.0]:
            sim.schedule_at(t, probe)
        sim.run(until=60.0)
        assert checks == [(5.0, False), (11.0, True), (15.0, False),
                          (31.0, True), (45.0, False), (55.0, True)]
        assert schedule.total_open_time == pytest.approx(4.0)
