"""Smoke tests: every example runs to completion and tells its story.

Examples are documentation that executes; a protocol change that breaks
one should fail CI, not a reader.  Each example is run in-process via
runpy with a fresh __main__ namespace; stdout is checked for the
story's key line.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "delivered to every host: True" in out
    assert "(paper optimum: 2)" in out
    assert "[source, leader]" in out


def test_replicated_database(capsys):
    out = run_example("replicated_database.py", capsys)
    assert "all updates delivered everywhere: True" in out
    assert "replicas diverging from the primary: none" in out


def test_partition_recovery(capsys):
    out = run_example("partition_recovery.py", capsys)
    assert out.count("converged") >= 1
    assert "STUCK" in out  # the basic algorithm gets stuck


def test_tuning_tradeoffs(capsys):
    out = run_example("tuning_tradeoffs.py", capsys)
    assert "x0.25" in out
    assert "100%" in out


def test_adaptive_wan(capsys):
    out = run_example("adaptive_wan.py", capsys)
    assert "all 40 messages delivered : True" in out


def test_multi_source_eventlog(capsys):
    out = run_example("multi_source_eventlog.py", capsys)
    assert "delivered everywhere: True" in out
    assert "piggybacking combined" in out


def test_fuzz_and_replay(capsys):
    out = run_example("fuzz_and_replay.py", capsys)
    assert "no_eventual_delivery" in out
    assert "reproduced exactly: True" in out
    assert "tree protocol clean on all trials: True" in out


def test_paper_figures(capsys):
    out = run_example("paper_figures.py", capsys)
    assert "8.0 link traversals/msg" in out
    assert "induces-a-cluster-tree check: PASS" in out
    assert "i holds [1, 2, 3]" in out
