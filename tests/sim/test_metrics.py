"""Unit and property tests for metrics primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Histogram, Simulator


def test_counter_increments_and_rejects_negative():
    sim = Simulator()
    counter = sim.metrics.counter("sent")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_counter_registry_returns_same_object():
    sim = Simulator()
    assert sim.metrics.counter("a") is sim.metrics.counter("a")


def test_counters_snapshot_with_prefix():
    sim = Simulator()
    sim.metrics.counter("net.sent").inc(3)
    sim.metrics.counter("net.recv").inc(2)
    sim.metrics.counter("host.deliver").inc(1)
    assert sim.metrics.counters("net.") == {"net.recv": 2, "net.sent": 3}


def test_gauge_tracks_peak():
    sim = Simulator()
    gauge = sim.metrics.gauge("queue")
    gauge.set(5)
    gauge.add(-2)
    gauge.add(1)
    assert gauge.value == 4
    assert gauge.peak == 5


def test_histogram_basic_stats():
    h = Histogram("delay")
    for v in [1.0, 2.0, 3.0, 4.0]:
        h.observe(v)
    assert h.count == 4
    assert h.sum == 10.0
    assert h.mean == 2.5
    assert h.min == 1.0
    assert h.max == 4.0
    assert h.quantile(0.0) == 1.0
    assert h.quantile(1.0) == 4.0
    assert h.quantile(0.5) == 2.5


def test_histogram_empty_returns_nan():
    h = Histogram("x")
    assert math.isnan(h.mean)
    assert math.isnan(h.quantile(0.5))
    assert math.isnan(h.min)


def test_histogram_quantile_bounds_checked():
    h = Histogram("x")
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_count_above():
    h = Histogram("x")
    for v in [1.0, 2.0, 2.0, 3.0]:
        h.observe(v)
    assert h.count_above(2.0) == 1
    assert h.count_above(0.5) == 4
    assert h.count_above(3.0) == 0


def test_histogram_stddev():
    h = Histogram("x")
    for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
        h.observe(v)
    assert h.stddev() == pytest.approx(2.138, abs=1e-3)
    single = Histogram("y")
    single.observe(1.0)
    assert single.stddev() == 0.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
def test_histogram_quantiles_monotone_and_bounded(samples):
    h = Histogram("p")
    for s in samples:
        h.observe(s)
    qs = [h.quantile(q / 10) for q in range(11)]
    assert qs == sorted(qs)
    assert qs[0] == min(samples)
    assert qs[-1] == max(samples)
    assert h.mean == pytest.approx(sum(samples) / len(samples), rel=1e-9, abs=1e-6)


def test_timeseries_records_sim_time():
    sim = Simulator()
    sim.schedule(2.0, lambda: sim.metrics.record_series("q", 5))
    sim.schedule(4.0, lambda: sim.metrics.record_series("q", 1))
    sim.run()
    series = sim.metrics.series("q")
    assert series.points == [(2.0, 5), (4.0, 1)]
    assert series.max() == 5


def test_timeseries_time_average_step_interpolation():
    sim = Simulator()
    series = sim.metrics.series("q")
    series.record(0.0, 2.0)
    series.record(4.0, 6.0)
    # value 2 for 4 units, then 6 for 4 units -> average 4
    assert series.time_average(until=8.0) == pytest.approx(4.0)


def test_timeseries_empty_stats_are_nan():
    sim = Simulator()
    assert math.isnan(sim.metrics.series("empty").max())
    assert math.isnan(sim.metrics.series("empty").time_average())
