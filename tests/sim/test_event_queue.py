"""Unit tests for the event queue: ordering, cancellation, determinism."""

import pytest

from repro.sim import EventAlreadyCancelledError, EventQueue


def test_empty_queue_pops_none():
    q = EventQueue()
    assert q.pop() is None
    assert len(q) == 0
    assert not q


def test_pop_orders_by_time():
    q = EventQueue()
    q.push(3.0, lambda: None)
    q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    times = [q.pop().time for _ in range(3)]
    assert times == [1.0, 2.0, 3.0]


def test_same_time_events_pop_fifo():
    q = EventQueue()
    events = [q.push(5.0, lambda: None) for _ in range(10)]
    popped = [q.pop() for _ in range(10)]
    assert popped == events


def test_priority_breaks_time_ties():
    q = EventQueue()
    low = q.push(1.0, lambda: None, priority=5)
    high = q.push(1.0, lambda: None, priority=-5)
    assert q.pop() is high
    assert q.pop() is low


def test_cancelled_event_is_skipped():
    q = EventQueue()
    first = q.push(1.0, lambda: None)
    second = q.push(2.0, lambda: None)
    first.cancel()
    q.note_cancelled()
    assert len(q) == 1
    assert q.pop() is second
    assert q.pop() is None


def test_double_cancel_raises():
    q = EventQueue()
    event = q.push(1.0, lambda: None)
    event.cancel()
    with pytest.raises(EventAlreadyCancelledError):
        event.cancel()


def test_peek_time_skips_cancelled():
    q = EventQueue()
    first = q.push(1.0, lambda: None)
    q.push(4.0, lambda: None)
    first.cancel()
    q.note_cancelled()
    assert q.peek_time() == 4.0


def test_peek_time_empty():
    assert EventQueue().peek_time() is None


def test_len_counts_live_events_only():
    q = EventQueue()
    events = [q.push(float(i), lambda: None) for i in range(5)]
    events[2].cancel()
    q.note_cancelled()
    assert len(q) == 4
