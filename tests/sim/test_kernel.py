"""Unit tests for the Simulator: clock, scheduling, run semantics."""

import pytest

from repro.sim import SchedulingInPastError, Simulator, SimulatorFinishedError


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_and_run_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(2.5, fired.append, "a")
    sim.schedule(1.0, fired.append, "b")
    sim.run()
    assert fired == ["b", "a"]
    assert sim.now == 2.5


def test_schedule_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SchedulingInPastError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_raises():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingInPastError):
        sim.schedule_at(4.0, lambda: None)


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run(until=3.0)
    assert sim.now == 3.0
    assert sim.pending == 1
    sim.run(until=20.0)
    assert sim.pending == 0
    assert sim.now == 20.0


def test_run_until_executes_events_at_boundary():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, 1)
    sim.run(until=3.0)
    assert fired == [1]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(1.0, lambda: fired.append("inner"))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == ["outer", "inner"]
    assert sim.now == 2.0


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []

    def outer():
        sim.call_soon(lambda: times.append(sim.now))

    sim.schedule(5.0, outer)
    sim.run()
    assert times == [5.0]


def test_cancel_prevents_execution():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_try_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    assert sim.try_cancel(event) is True
    assert sim.try_cancel(event) is False
    assert sim.try_cancel(None) is False


def test_max_events_limits_execution():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_finish_prevents_further_runs():
    sim = Simulator()
    sim.finish()
    with pytest.raises(SimulatorFinishedError):
        sim.run()


def test_events_executed_counter():
    sim = Simulator()
    for i in range(7):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_executed == 7


def test_deterministic_ordering_same_time():
    """Two identical simulations interleave same-time events identically."""

    def build():
        sim = Simulator(seed=3)
        order = []
        for label in "abcde":
            sim.schedule(1.0, order.append, label)
        sim.run()
        return order

    assert build() == build() == list("abcde")
