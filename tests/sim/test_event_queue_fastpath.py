"""The call_soon FIFO fast path must be observably identical to the heap.

``EventQueue.push_soon`` keeps "run now" events in a deque merged
against the heap at pop time; the execution order must match what a
single heap would have produced, including cancellation and the
``pop_next`` time limit.
"""

from repro.sim import EventQueue, Simulator


def test_fifo_and_heap_merge_preserves_global_order():
    queue = EventQueue()
    order = []
    queue.push(1.0, order.append, ("heap-1.0",), None)
    queue.push_soon(0.0, order.append, ("soon-a",), None)
    queue.push(0.0, order.append, ("heap-0.0",), None)
    queue.push_soon(0.0, order.append, ("soon-b",), None)
    while (event := queue.pop()) is not None:
        event.callback(*event.args)
    # Sequence numbers are shared, so the interleave is pure FIFO per time.
    assert order == ["soon-a", "heap-0.0", "soon-b", "heap-1.0"]


def test_cancelled_fifo_event_is_skipped():
    queue = EventQueue()
    order = []
    keep = queue.push_soon(0.0, order.append, ("keep",), None)
    victim = queue.push_soon(0.0, order.append, ("victim",), None)
    victim.cancel()
    queue.note_cancelled()
    assert len(queue) == 1
    assert queue.pop() is keep
    assert queue.pop() is None


def test_peek_time_sees_earlier_of_fifo_and_heap():
    queue = EventQueue()
    queue.push_soon(1.0, lambda: None, (), None)
    assert queue.peek_time() == 1.0
    queue.push(0.5, lambda: None, (), None)
    assert queue.peek_time() == 0.5


def test_pop_next_respects_limit_for_both_structures():
    queue = EventQueue()
    queue.push(2.0, lambda: None, (), None)
    assert queue.pop_next(1.0) is None
    assert len(queue) == 1
    queue.push_soon(3.0, lambda: None, (), None)
    assert queue.pop_next(1.0) is None
    assert queue.pop_next(2.5) is not None  # heap event at 2.0
    assert queue.pop_next(2.5) is None      # fifo event at 3.0 beyond limit
    assert queue.pop_next(None) is not None


def test_call_soon_interleaves_like_schedule_zero():
    """A sim mixing call_soon and zero-delay schedules runs in push order."""
    sim = Simulator(seed=0)
    order = []

    def start():
        sim.call_soon(order.append, "soon-1")
        sim.schedule(0.0, order.append, "sched-1")
        sim.call_soon(order.append, "soon-2")

    sim.schedule(1.0, start)
    sim.run()
    assert order == ["soon-1", "sched-1", "soon-2"]


def test_call_soon_event_is_cancellable():
    sim = Simulator(seed=0)
    fired = []

    def start():
        event = sim.call_soon(fired.append, "nope")
        sim.cancel(event)

    sim.schedule(0.5, start)
    sim.run()
    assert fired == []
