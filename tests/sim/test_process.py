"""Unit tests for PeriodicTask and Timer."""

import pytest

from repro.sim import PeriodicTask, Simulator, Timer


class TestPeriodicTask:
    def test_ticks_at_fixed_period(self):
        sim = Simulator()
        ticks = []
        PeriodicTask(sim, 2.0, lambda: ticks.append(sim.now)).start()
        sim.run(until=10.0)
        assert ticks == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_stop_halts_ticking(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now)).start()
        sim.run(until=3.0)
        task.stop()
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]
        assert not task.running

    def test_stop_from_within_callback(self):
        sim = Simulator()
        ticks = []

        def cb():
            ticks.append(sim.now)
            if len(ticks) == 2:
                task.stop()

        task = PeriodicTask(sim, 1.0, cb).start()
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_start_is_idempotent(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        task.start()
        task.start()
        sim.run(until=2.0)
        assert ticks == [1.0, 2.0]

    def test_start_after_overrides_first_delay(self):
        sim = Simulator()
        ticks = []
        PeriodicTask(sim, 5.0, lambda: ticks.append(sim.now), start_after=0.5).start()
        sim.run(until=11.0)
        assert ticks == [0.5, 5.5, 10.5]

    def test_jitter_stays_within_bounds_and_is_deterministic(self):
        def run(seed):
            sim = Simulator(seed=seed)
            ticks = []
            PeriodicTask(
                sim, 10.0, lambda: ticks.append(sim.now), jitter=2.0, rng_stream="t"
            ).start()
            sim.run(until=200.0)
            return ticks

        ticks = run(1)
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert all(8.0 <= g <= 12.0 for g in gaps)
        assert run(1) == ticks
        assert run(2) != ticks

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTask(sim, 0.0, lambda: None)

    def test_invalid_jitter_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTask(sim, 1.0, lambda: None, jitter=1.0)


class TestTimer:
    def test_fires_once(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        sim.run(until=10.0)
        assert fired == [3.0]
        assert not timer.armed

    def test_restart_rearms(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        sim.run(until=2.0)
        timer.start(3.0)  # re-arm before it fires
        sim.run(until=10.0)
        assert fired == [5.0]

    def test_cancel_disarms(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        timer.cancel()
        timer.cancel()  # safe when already disarmed
        sim.run(until=10.0)
        assert fired == []

    def test_args_passed_through(self):
        sim = Simulator()
        got = []
        timer = Timer(sim, lambda *a: got.append(a))
        timer.start(1.0, "ctx", 42)
        sim.run()
        assert got == [("ctx", 42)]

    def test_armed_property(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        timer.start(1.0)
        assert timer.armed
        sim.run()
        assert not timer.armed
