"""Property-based tests of the event kernel's ordering guarantees."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Simulator

times = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@given(st.lists(times, min_size=1, max_size=50))
def test_events_execute_in_nondecreasing_time_order(delays):
    sim = Simulator()
    executed = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: executed.append((sim.now, d)))
    sim.run()
    observed_times = [t for t, _ in executed]
    assert observed_times == sorted(observed_times)
    # Every event ran at exactly its scheduled time.
    assert all(t == d for t, d in executed)
    assert len(executed) == len(delays)


@given(st.lists(st.tuples(times, st.integers(min_value=-3, max_value=3)),
                min_size=1, max_size=40))
def test_priority_orders_same_time_events(items):
    sim = Simulator()
    executed = []
    for time_, priority in items:
        sim.schedule(time_, lambda t=time_, p=priority: executed.append((t, p)),
                     priority=priority)
    sim.run()
    # Within each time instant, priorities must be non-decreasing.
    for (t1, p1), (t2, p2) in zip(executed, executed[1:]):
        assert t1 <= t2
        if t1 == t2:
            assert p1 <= p2


@given(st.lists(times, min_size=2, max_size=30),
       st.data())
def test_cancellation_removes_exactly_the_cancelled(delays, data):
    sim = Simulator()
    fired = []
    events = [sim.schedule(d, lambda i=i: fired.append(i))
              for i, d in enumerate(delays)]
    to_cancel = data.draw(st.sets(
        st.integers(min_value=0, max_value=len(events) - 1),
        max_size=len(events)))
    for idx in to_cancel:
        sim.cancel(events[idx])
    sim.run()
    assert sorted(fired) == [i for i in range(len(delays))
                             if i not in to_cancel]


@given(st.lists(times, min_size=1, max_size=30), times)
def test_run_until_executes_exactly_the_due_events(delays, horizon):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(d))
    sim.run(until=horizon)
    assert sorted(fired) == sorted(d for d in delays if d <= horizon)
    assert sim.now == max([horizon] + [d for d in delays if d <= horizon])


@given(st.lists(times, min_size=1, max_size=20))
def test_split_runs_equal_single_run(delays):
    """Running in two segments reaches the same state as one run."""

    def run_once():
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(d))
        sim.run(until=200.0)
        return fired

    def run_split():
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(d))
        sim.run(until=50.0)
        sim.run(until=200.0)
        return fired

    assert run_once() == run_split()
