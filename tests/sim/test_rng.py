"""Unit and property tests for the named RNG streams."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import RngRegistry, derive_seed


def test_same_name_returns_same_stream():
    rngs = RngRegistry(1)
    assert rngs.stream("a") is rngs.stream("a")


def test_streams_are_independent_of_creation_order():
    first = RngRegistry(7)
    a1 = first.stream("a").random()
    first.stream("b").random()
    a2 = first.stream("a").random()

    second = RngRegistry(7)
    second.stream("b").random()  # created in a different order
    b1 = second.stream("a").random()
    b2 = second.stream("a").random()

    assert (a1, a2) == (b1, b2)


def test_different_seeds_give_different_draws():
    assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()


def test_different_names_give_different_draws():
    rngs = RngRegistry(9)
    assert rngs.stream("x").random() != rngs.stream("y").random()


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        RngRegistry(0).stream("")


def test_names_sorted():
    rngs = RngRegistry(0)
    rngs.stream("zeta")
    rngs.stream("alpha")
    assert list(rngs.names()) == ["alpha", "zeta"]


def test_fork_is_independent():
    parent = RngRegistry(5)
    child = parent.fork("trial-1")
    parent_draw = parent.stream("x").random()
    child_draw = child.stream("x").random()
    assert parent_draw != child_draw
    # Forking again with the same name reproduces the child.
    assert RngRegistry(5).fork("trial-1").stream("x").random() == child_draw


@given(st.integers(), st.text(min_size=1, max_size=50))
def test_derive_seed_is_stable_and_in_range(seed, name):
    value = derive_seed(seed, name)
    assert value == derive_seed(seed, name)
    assert 0 <= value < 2**64


@given(st.integers(min_value=0, max_value=10**6))
def test_derive_seed_distinguishes_names(seed):
    assert derive_seed(seed, "a") != derive_seed(seed, "b")
