"""Unit tests for the tracer."""

from repro.sim import Simulator, summarize_kinds


def make_sim():
    return Simulator(seed=0)


def test_emit_records_time_kind_source_fields():
    sim = make_sim()
    sim.schedule(4.0, lambda: sim.trace.emit("host.deliver", "h1", seq=3))
    sim.run()
    (record,) = list(sim.trace)
    assert record.time == 4.0
    assert record.kind == "host.deliver"
    assert record.source == "h1"
    assert record["seq"] == 3
    assert record.get("missing", "dflt") == "dflt"


def test_records_filter_by_kind_prefix():
    sim = make_sim()
    sim.trace.emit("link.drop", "l1")
    sim.trace.emit("link.send", "l1")
    sim.trace.emit("host.deliver", "h1")
    assert len(sim.trace.records(kind="link.")) == 2
    assert sim.trace.count(kind="host.") == 1


def test_records_filter_by_source_and_fields():
    sim = make_sim()
    sim.trace.emit("host.deliver", "h1", seq=1)
    sim.trace.emit("host.deliver", "h2", seq=1)
    sim.trace.emit("host.deliver", "h1", seq=2)
    assert len(sim.trace.records(source="h1")) == 2
    assert len(sim.trace.records(kind="host.deliver", seq=1)) == 2
    assert len(sim.trace.records(source="h1", seq=2)) == 1


def test_records_filter_by_since():
    sim = make_sim()
    sim.trace.emit("a", "x")
    sim.schedule(10.0, lambda: sim.trace.emit("a", "x"))
    sim.run()
    assert len(sim.trace.records(kind="a", since=5.0)) == 1


def test_last_returns_most_recent():
    sim = make_sim()
    sim.trace.emit("k", "x", n=1)
    sim.trace.emit("k", "x", n=2)
    assert sim.trace.last("k")["n"] == 2
    assert sim.trace.last("nope") is None


def test_disabled_tracer_retains_nothing():
    sim = make_sim()
    sim.trace.enabled = False
    sim.trace.emit("k", "x")
    assert len(sim.trace) == 0


def test_subscribers_fire_even_when_disabled():
    sim = make_sim()
    sim.trace.enabled = False
    seen = []
    sim.trace.subscribe("host.", seen.append)
    sim.trace.emit("host.deliver", "h1")
    sim.trace.emit("link.drop", "l1")  # not matching prefix
    assert len(seen) == 1
    assert seen[0].kind == "host.deliver"


def test_clear_drops_records_keeps_subscribers():
    sim = make_sim()
    seen = []
    sim.trace.subscribe("", seen.append)
    sim.trace.emit("a", "x")
    sim.trace.clear()
    assert len(sim.trace) == 0
    sim.trace.emit("b", "x")
    assert len(seen) == 2


def test_summarize_kinds():
    sim = make_sim()
    sim.trace.emit("a", "x")
    sim.trace.emit("a", "x")
    sim.trace.emit("b", "x")
    assert summarize_kinds(sim.trace) == {"a": 2, "b": 1}
