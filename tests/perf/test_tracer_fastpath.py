"""Tracer fast-path contract: disabled emits must allocate nothing.

These tests pin the behavior DESIGN.md's "Tracer fast path" section
promises: a fully inactive tracer retains nothing, a disabled-but-
subscribed tracer builds a record only when a prefix actually matches,
and the ring-buffer mode bounds retention without touching subscribers.
"""

from repro.sim import Simulator, TraceRecord, Tracer


class CountingSubscriber:
    """Records every delivered record and how often it was called."""

    def __init__(self):
        self.calls = 0
        self.records = []

    def __call__(self, record):
        self.calls += 1
        self.records.append(record)


def test_disabled_tracer_retains_nothing():
    sim = Simulator(seed=0)
    sim.trace.enabled = False
    for i in range(100):
        sim.trace.emit("net.host_send", "h0", i=i)
    assert len(sim.trace) == 0
    assert sim.trace.records() == []


def test_disabled_tracer_is_inactive_without_subscribers():
    sim = Simulator(seed=0)
    assert sim.trace.active  # enabled by default
    sim.trace.enabled = False
    assert not sim.trace.active
    sim.trace.enabled = True
    assert sim.trace.active


def test_subscribe_reactivates_disabled_tracer():
    sim = Simulator(seed=0)
    sim.trace.enabled = False
    sub = CountingSubscriber()
    sim.trace.subscribe("proto.", sub)
    assert sim.trace.active
    sim.trace.emit("proto.deliver", "h1", seq=3)
    assert sub.calls == 1
    # Subscribers fire, but a disabled tracer still retains nothing.
    assert len(sim.trace) == 0


def test_prefix_miss_skips_record_construction():
    """A non-matching kind must not build a TraceRecord at all."""
    sim = Simulator(seed=0)
    sim.trace.enabled = False
    sub = CountingSubscriber()
    sim.trace.subscribe("proto.", sub)

    built = []
    original_init = TraceRecord.__init__

    def counting_init(self, *args, **kwargs):
        built.append(1)
        original_init(self, *args, **kwargs)

    TraceRecord.__init__ = counting_init
    try:
        for i in range(50):
            sim.trace.emit("net.link_tx", "l0", i=i)  # prefix miss
        assert built == []
        assert sub.calls == 0
        sim.trace.emit("proto.deliver", "h1", seq=1)  # prefix hit
        assert len(built) == 1
        assert sub.calls == 1
    finally:
        TraceRecord.__init__ = original_init
    assert len(sim.trace) == 0


def test_matching_record_shared_across_subscribers():
    """One matching emit builds exactly one record for all subscribers."""
    sim = Simulator(seed=0)
    sim.trace.enabled = False
    first, second = CountingSubscriber(), CountingSubscriber()
    sim.trace.subscribe("proto.", first)
    sim.trace.subscribe("proto.deliver", second)
    sim.trace.emit("proto.deliver", "h2", seq=9)
    assert first.calls == second.calls == 1
    assert first.records[0] is second.records[0]
    assert first.records[0]["seq"] == 9


def test_enabled_tracer_still_notifies_subscribers():
    sim = Simulator(seed=0)
    sub = CountingSubscriber()
    sim.trace.subscribe("proto.", sub)
    sim.trace.emit("proto.deliver", "h0", seq=1)
    sim.trace.emit("net.link_tx", "l0")
    assert sub.calls == 1
    assert len(sim.trace) == 2


def test_ring_buffer_bounds_retention():
    sim = Simulator(seed=0)
    tracer = Tracer(sim, retain_last=10)
    for i in range(25):
        tracer.emit("bench.tick", "k", i=i)
    assert len(tracer) == 10
    assert tracer.retention == 10
    assert [record["i"] for record in tracer] == list(range(15, 25))


def test_retain_last_rebounds_existing_records():
    sim = Simulator(seed=0)
    for i in range(8):
        sim.trace.emit("bench.tick", "k", i=i)
    sim.trace.retain_last(3)
    assert [record["i"] for record in sim.trace] == [5, 6, 7]
    sim.trace.retain_last(None)
    for i in range(8, 13):
        sim.trace.emit("bench.tick", "k", i=i)
    assert sim.trace.retention is None
    assert len(sim.trace) == 8  # 3 survivors + 5 new, unbounded again


def test_retain_last_rejects_nonpositive_limit():
    import pytest

    sim = Simulator(seed=0)
    with pytest.raises(ValueError):
        sim.trace.retain_last(0)
