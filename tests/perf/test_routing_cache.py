"""Server-side next-hop memoization and generation-stamped invalidation."""

from repro.net import Network, cheap_spec
from repro.sim import Simulator


def build_line(n, convergence_delay=0.0):
    sim = Simulator(seed=0)
    network = Network(sim)
    for i in range(n):
        network.add_server(f"s{i}")
    for i in range(1, n):
        network.connect(f"s{i-1}", f"s{i}", cheap_spec(latency=0.01))
    engine = network.use_global_routing(convergence_delay=convergence_delay)
    return sim, network, engine


def test_repeated_lookups_hit_cache_not_engine():
    sim, network, engine = build_line(4)
    server = network.servers["s0"]
    calls = []
    original = engine.next_hop

    def counting_next_hop(at_server, dst_server):
        calls.append((at_server, dst_server))
        return original(at_server, dst_server)

    engine.next_hop = counting_next_hop
    assert server._next_hop("s3") == "s1"
    assert server._next_hop("s3") == "s1"
    assert server._next_hop("s3") == "s1"
    assert calls == [("s0", "s3")]


def test_recompute_bumps_generation_and_invalidates_cache():
    sim, network, engine = build_line(3)
    server = network.servers["s0"]
    assert server._next_hop("s2") == "s1"
    before = engine.generation
    network.set_link_state("s0", "s1", up=False)  # immediate recompute
    assert engine.generation > before
    assert server._next_hop("s2") is None
    network.set_link_state("s0", "s1", up=True)
    assert server._next_hop("s2") == "s1"


def test_on_topology_change_with_delay_invalidates_after_convergence():
    sim, network, engine = build_line(3, convergence_delay=2.0)
    server = network.servers["s0"]
    assert server._next_hop("s2") == "s1"
    network.set_link_state("s0", "s1", up=False)
    # Stale during the convergence window — memo must agree with engine.
    assert server._next_hop("s2") == engine.next_hop("s0", "s2") == "s1"
    sim.run(until=3.0)
    assert server._next_hop("s2") is None


def test_no_route_answer_is_memoized():
    """None is a valid cached answer, not a cache miss."""
    sim = Simulator(seed=0)
    network = Network(sim)
    network.add_server("a")
    network.add_server("b")
    engine = network.use_global_routing(convergence_delay=0.0)
    server = network.servers["a"]
    calls = []
    original = engine.next_hop

    def counting_next_hop(at_server, dst_server):
        calls.append(dst_server)
        return original(at_server, dst_server)

    engine.next_hop = counting_next_hop
    assert server._next_hop("b") is None
    assert server._next_hop("b") is None
    assert calls == ["b"]


def test_distvec_rounds_bump_generation():
    from repro.net import DistanceVectorEngine

    sim = Simulator(seed=0)
    network = Network(sim)
    for name in ("a", "b", "c"):
        network.add_server(name)
    network.connect("a", "b", cheap_spec(latency=0.01))
    network.connect("b", "c", cheap_spec(latency=0.01))
    engine = DistanceVectorEngine(sim, network, period=1.0)
    network.use_routing(engine)
    before = engine.generation
    sim.run(until=5.0)
    assert engine.generation > before
    # Converged: server memo agrees with the engine's tables.
    assert network.servers["a"]._next_hop("c") == engine.next_hop("a", "c") == "b"
