"""The bench harness (BENCH_*.json schema) and the CI regression gate."""

import json

import pytest

from repro.perf import SCHEMA_VERSION, compare_payloads, load_bench_file
from repro.perf.compare import CompareResult, DEFAULT_THRESHOLD, main as compare_main
from repro.perf.harness import run_matrix, write_bench_file
from repro.perf.__main__ import main as perf_main


def make_payload(events_per_s, version=SCHEMA_VERSION):
    return {
        "schema_version": version,
        "created_utc": "2026-01-01T00:00:00+00:00",
        "quick": True,
        "results": [
            {"scenario": name, "wall_s": 1.0, "events": int(rate),
             "events_per_s": rate, "peak_rss_kb": 1, "trace_kinds": {},
             "meta": {}}
            for name, rate in events_per_s.items()
        ],
    }


def test_run_matrix_payload_is_schema_versioned():
    payload = run_matrix(["kernel_throughput"], quick=True)
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["quick"] is True
    (result,) = payload["results"]
    assert result["scenario"] == "kernel_throughput"
    assert result["events"] > 0
    assert result["events_per_s"] > 0
    assert result["peak_rss_kb"] > 0


def test_cli_writes_bench_file(tmp_path):
    out = tmp_path / "BENCH_test.json"
    rc = perf_main(["--quick", "--scenario", "kernel_throughput",
                    "--out", str(out)])
    assert rc == 0
    payload = load_bench_file(out)
    assert payload["schema_version"] == SCHEMA_VERSION
    assert [r["scenario"] for r in payload["results"]] == ["kernel_throughput"]


def test_cli_rejects_unknown_scenario(tmp_path):
    with pytest.raises(SystemExit):
        perf_main(["--quick", "--scenario", "nope",
                   "--out", str(tmp_path / "x.json")])


def test_load_rejects_schema_mismatch(tmp_path):
    path = tmp_path / "old.json"
    path.write_text(json.dumps(make_payload({"a": 1.0}, version=999)))
    with pytest.raises(ValueError, match="schema_version"):
        load_bench_file(path)


def test_compare_passes_within_threshold():
    old = make_payload({"kernel_throughput": 100_000.0})
    new = make_payload({"kernel_throughput": 90_000.0})  # -10% < 15%
    (result,) = compare_payloads(old, new)
    assert not result.regressed(DEFAULT_THRESHOLD)


def test_compare_fails_beyond_threshold():
    old = make_payload({"kernel_throughput": 100_000.0})
    new = make_payload({"kernel_throughput": 80_000.0})  # -20% > 15%
    (result,) = compare_payloads(old, new)
    assert result.regressed(DEFAULT_THRESHOLD)
    assert result.ratio == pytest.approx(0.8)


def test_compare_missing_scenario_fails_gate():
    old = make_payload({"kernel_throughput": 100_000.0, "e2_delay": 5_000.0})
    new = make_payload({"kernel_throughput": 100_000.0})
    by_name = {r.scenario: r for r in compare_payloads(old, new)}
    assert by_name["e2_delay"].regressed(DEFAULT_THRESHOLD)
    assert not by_name["kernel_throughput"].regressed(DEFAULT_THRESHOLD)


def test_compare_ignores_new_only_scenarios():
    old = make_payload({"kernel_throughput": 100_000.0})
    new = make_payload({"kernel_throughput": 100_000.0, "brand_new": 1.0})
    results = compare_payloads(old, new)
    assert [r.scenario for r in results] == ["kernel_throughput"]


def test_compare_cli_exit_codes(tmp_path, capsys):
    old_path = tmp_path / "old.json"
    good_path = tmp_path / "good.json"
    bad_path = tmp_path / "bad.json"
    write_bench_file(make_payload({"kernel_throughput": 100_000.0}), old_path)
    write_bench_file(make_payload({"kernel_throughput": 99_000.0}), good_path)
    write_bench_file(make_payload({"kernel_throughput": 50_000.0}), bad_path)
    assert compare_main([str(old_path), str(good_path)]) == 0
    assert compare_main([str(old_path), str(bad_path)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    # A looser threshold lets the same drop through.
    assert compare_main([str(old_path), str(bad_path), "--threshold", "0.6"]) == 0


def test_compare_result_ratio_handles_missing_sides():
    assert CompareResult("x", None, 1.0).ratio is None
    assert CompareResult("x", 0.0, 1.0).ratio is None
    assert CompareResult("x", 1.0, None).ratio is None
    assert CompareResult("x", 1.0, None).regressed(0.15)
