"""Seed-determinism guard: the regression net for all hot-path rewrites.

Every optimization in the event loop, tracer, link layer, or routing
cache must leave observable behavior bit-identical for a given seed.
These tests run the pinned perf scenarios twice with the same seed and
demand identical event counts, delivery sequences (host, seq, time,
supplier), and trace-kind histograms.  If a future "optimization" breaks
any of these, it changed semantics, not just speed.
"""

import pytest

from repro.perf.scenarios import SCENARIOS


def signature(name, seed=None):
    run = SCENARIOS[name].run(quick=True, seed=seed)
    return {
        "events_executed": run.sim.events_executed,
        "final_time": run.sim.now,
        "deliveries": run.delivery_signature(),
        "trace_kinds": run.trace_kinds(),
    }


@pytest.mark.parametrize("name", ["e2_delay", "e20_churn"])
def test_same_seed_is_bit_identical(name):
    first = signature(name)
    second = signature(name)
    assert first["events_executed"] == second["events_executed"]
    assert first["final_time"] == second["final_time"]
    assert first["deliveries"] == second["deliveries"]
    assert first["trace_kinds"] == second["trace_kinds"]


def test_e2_deliveries_are_nonempty_and_complete():
    """Guard sanity: the signature actually observes the protocol."""
    run = SCENARIOS["e2_delay"].run(quick=True)
    deliveries = run.delivery_signature()
    assert deliveries, "E2 scenario produced no deliveries to compare"
    hosts = {host for host, _seq, _t, _sup in deliveries}
    seqs = {seq for _host, seq, _t, _sup in deliveries}
    assert len(hosts) > 1
    assert seqs == set(range(1, run.meta["messages"] + 1))


def test_different_seed_changes_outcome():
    """The guard would be vacuous if the seed were ignored."""
    base = signature("e20_churn")
    other = signature("e20_churn", seed=9999)
    assert (base["events_executed"], base["deliveries"]) != (
        other["events_executed"], other["deliveries"])


def test_kernel_throughput_is_deterministic():
    first = signature("kernel_throughput")
    second = signature("kernel_throughput")
    assert first["events_executed"] == second["events_executed"]
    assert first["final_time"] == second["final_time"]
