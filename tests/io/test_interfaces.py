"""Structural conformance: every backend satisfies the two contracts."""

import pytest

from repro.core.multisource import PortMux
from repro.core.piggyback import PiggybackPort
from repro.io import (
    AsyncioRuntime,
    Runtime,
    SimRuntime,
    SimTransport,
    Transport,
    UdpTransport,
    as_runtime,
)
from repro.net import HostId, wan_of_lans
from repro.sim import Simulator


def built_network(seed=0):
    sim = Simulator(seed=seed)
    return sim, wan_of_lans(sim, clusters=1, hosts_per_cluster=3)


class TestRuntimeConformance:
    def test_sim_runtime_is_a_runtime(self):
        assert isinstance(SimRuntime(Simulator(seed=0)), Runtime)

    def test_asyncio_runtime_is_a_runtime(self):
        assert isinstance(AsyncioRuntime(seed=0), Runtime)

    def test_bare_simulator_is_not_a_runtime(self):
        # The whole point of the adapter: the kernel itself stays
        # ignorant of the protocol-facing contract.
        assert not isinstance(Simulator(seed=0), Runtime)


class TestTransportConformance:
    def test_host_port_conforms_natively(self):
        sim, built = built_network()
        port = built.network.host_port(HostId("h0.0"))
        assert isinstance(port, Transport)

    def test_piggyback_port_conforms(self):
        sim, built = built_network()
        port = PiggybackPort(built.network.host_port(HostId("h0.0")))
        assert isinstance(port, Transport)

    def test_virtual_port_conforms(self):
        sim, built = built_network()
        mux = PortMux(built.network.host_port(HostId("h0.0")))
        assert isinstance(mux.port_for("inst"), Transport)

    def test_sim_transport_conforms(self):
        sim, built = built_network()
        wrapper = SimTransport(built.network.host_port(HostId("h0.0")))
        assert isinstance(wrapper, Transport)

    def test_udp_transport_conforms(self):
        transport = UdpTransport(AsyncioRuntime(seed=0), HostId("a"),
                                 peers={})
        assert isinstance(transport, Transport)


class TestAsRuntime:
    def test_runtime_passes_through_untouched(self):
        runtime = SimRuntime(Simulator(seed=0))
        assert as_runtime(runtime) is runtime

    def test_asyncio_runtime_passes_through(self):
        runtime = AsyncioRuntime(seed=0)
        assert as_runtime(runtime) is runtime

    def test_simulator_gets_wrapped(self):
        sim = Simulator(seed=0)
        runtime = as_runtime(sim)
        assert isinstance(runtime, SimRuntime)
        assert runtime.sim is sim

    def test_rejects_other_objects(self):
        with pytest.raises(TypeError, match="Runtime or Simulator"):
            as_runtime(object())
