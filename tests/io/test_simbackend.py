"""SimRuntime/SimTransport adapter semantics over the event kernel."""

from repro.core import BroadcastSystem, ProtocolConfig
from repro.io import SimRuntime, SimTransport
from repro.net import HostId, RawPayload, wan_of_lans
from repro.sim import Simulator


def make_runtime(seed=0):
    sim = Simulator(seed=seed)
    return sim, SimRuntime(sim)


class TestClockAndScheduling:
    def test_now_tracks_virtual_time(self):
        sim, runtime = make_runtime()
        assert runtime.now() == 0.0
        sim.schedule(3.5, lambda: None)
        sim.run()
        assert runtime.now() == sim.now == 3.5

    def test_call_soon_runs_at_current_time_in_order(self):
        sim, runtime = make_runtime()
        seen = []
        runtime.call_soon(seen.append, "a")
        runtime.call_soon(seen.append, "b")
        sim.run()
        assert seen == ["a", "b"]
        assert sim.now == 0.0

    def test_trace_and_metrics_pass_through(self):
        sim, runtime = make_runtime()
        runtime.trace("unit.kind", "src", detail=7)
        assert sim.trace.count("unit.kind") == 1
        runtime.counter("unit.counter").inc(2)
        assert sim.metrics.counter("unit.counter").value == 2
        runtime.histogram("unit.hist").observe(1.5)
        assert runtime.histogram("unit.hist") is sim.metrics.histogram("unit.hist")

    def test_rng_is_the_simulator_stream(self):
        sim, runtime = make_runtime(seed=9)
        draws = [runtime.rng("unit.stream").random() for _ in range(3)]
        replay = Simulator(seed=9)
        assert draws == [replay.rng.stream("unit.stream").random()
                         for _ in range(3)]


class TestTimers:
    def test_timer_fires_once_at_delay(self):
        sim, runtime = make_runtime()
        fired = []
        runtime.start_timer(2.0, lambda: fired.append(sim.now))
        sim.run(until=10.0)
        assert fired == [2.0]

    def test_cancel_disarms(self):
        sim, runtime = make_runtime()
        fired = []
        handle = runtime.start_timer(2.0, lambda: fired.append(sim.now))
        assert handle.armed
        runtime.cancel_timer(handle)
        assert not handle.armed
        sim.run(until=10.0)
        assert fired == []

    def test_cancel_is_idempotent_and_none_safe(self):
        sim, runtime = make_runtime()
        runtime.cancel_timer(None)  # disarmed machine state: no handle
        handle = runtime.start_timer(1.0, lambda: None)
        sim.run(until=5.0)  # expires
        runtime.cancel_timer(handle)  # post-expiry cancel is a no-op
        runtime.cancel_timer(handle)

    def test_periodic_created_stopped_then_ticks(self):
        sim, runtime = make_runtime()
        ticks = []
        task = runtime.start_periodic(1.0, lambda: ticks.append(sim.now),
                                      name="unit")
        assert not task.running
        sim.run(until=5.0)
        assert ticks == []
        task.start()
        sim.run(until=8.6)
        assert ticks == [6.0, 7.0, 8.0]
        task.stop()
        assert not task.running
        sim.run(until=20.0)
        assert len(ticks) == 3


class TestHostTimerHygiene:
    """stop()/start() manage every timer through the Runtime handles."""

    def build(self, seed=3):
        sim = Simulator(seed=seed)
        built = wan_of_lans(sim, clusters=2, hosts_per_cluster=2)
        system = BroadcastSystem(
            built, config=ProtocolConfig.for_scale(4)).start()
        return sim, system

    def test_stop_disarms_all_timers_and_tasks(self):
        sim, system = self.build()
        sim.run(until=30.0)
        for host in system.hosts.values():
            host.stop()
            assert host._ack_timer is None
            assert host._parent_timer is None
            assert all(not task.running for task in host._tasks)
        events_at_stop = sim.events_executed
        sim.run(until=300.0)
        # A fully stopped system schedules nothing further.
        assert sim.events_executed == events_at_stop

    def test_restart_rearms_through_the_runtime(self):
        sim, system = self.build()
        sim.run(until=30.0)
        for host in system.hosts.values():
            host.stop()
        for host in system.hosts.values():
            host.start()
        assert all(task.running for host in system.hosts.values()
                   for task in host._tasks)
        system.broadcast_stream(2, interval=1.0, start_at=sim.now + 1.0)
        assert system.run_until_delivered(2, timeout=120.0)


class TestSimTransportWrapper:
    def build_port(self):
        sim = Simulator(seed=0)
        built = wan_of_lans(sim, clusters=1, hosts_per_cluster=2)
        return sim, built.network.host_port(HostId("h0.0")), \
            built.network.host_port(HostId("h0.1"))

    def test_wrapping_is_transparent_for_send(self):
        sim, port_a, port_b = self.build_port()
        got = []
        port_b.set_receiver(got.append)
        SimTransport(port_a).send(HostId("h0.1"), RawPayload(size_bits=64))
        sim.run(until=60.0)
        assert len(got) == 1
        assert got[0].src == HostId("h0.0")

    def test_tap_forwards_to_wrapped_port(self):
        sim, port_a, _ = self.build_port()
        wrapper = SimTransport(port_a)
        tap = lambda packet: True  # noqa: E731
        wrapper.tap = tap
        assert port_a.tap is tap
        sent = []
        wrapper.send_tap = lambda dst, payload: sent.append(dst) or True
        wrapper.send(HostId("h0.1"), RawPayload())
        assert sent == [HostId("h0.1")]
        assert wrapper.queue_length() == port_a.queue_length()
