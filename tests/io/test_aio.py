"""AsyncioRuntime semantics: clock scaling, timers, periodics, RNG.

Wall-clock sensitive assertions use generous margins (the CI box may
stall for tens of milliseconds), and every scenario is compressed with
``time_scale`` so the whole module runs in well under a second.
"""

import asyncio

import pytest

from repro.io import AsyncioRuntime
from repro.sim import Simulator


def run(coro_fn, **runtime_kwargs):
    """Drive one scenario under a fresh loop and runtime."""
    async def main():
        return await coro_fn(AsyncioRuntime(**runtime_kwargs))
    return asyncio.run(main())


class TestClock:
    def test_starts_near_zero_and_is_monotone(self):
        runtime = AsyncioRuntime(seed=0)
        first = runtime.now()
        assert 0.0 <= first < 1.0
        assert runtime.now() >= first

    def test_time_scale_stretches_protocol_seconds(self):
        async def scenario(runtime):
            before = runtime.now()
            await asyncio.sleep(0.05)  # 0.05 wall = 5 protocol seconds
            return runtime.now() - before

        elapsed = run(scenario, seed=0, time_scale=0.01)
        assert elapsed >= 5.0  # never less than the wall time implies
        assert elapsed < 60.0

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            AsyncioRuntime(seed=0, time_scale=0.0)


class TestTimers:
    def test_timer_fires_once_after_delay(self):
        async def scenario(runtime):
            fired = []
            handle = runtime.start_timer(1.0, lambda: fired.append(runtime.now()))
            assert handle.armed
            await asyncio.sleep(0.08)  # 1 protocol sec = 10ms wall
            return handle, fired

        handle, fired = run(scenario, seed=0, time_scale=0.01)
        assert len(fired) == 1
        assert fired[0] >= 1.0
        assert not handle.armed  # expired handles read as disarmed

    def test_cancel_prevents_fire(self):
        async def scenario(runtime):
            fired = []
            handle = runtime.start_timer(1.0, lambda: fired.append(1))
            runtime.cancel_timer(handle)
            runtime.cancel_timer(handle)  # idempotent
            runtime.cancel_timer(None)  # None-safe
            assert not handle.armed
            await asyncio.sleep(0.05)
            return fired

        assert run(scenario, seed=0, time_scale=0.01) == []

    def test_call_soon_runs_on_the_loop(self):
        async def scenario(runtime):
            seen = []
            runtime.call_soon(seen.append, "x")
            await asyncio.sleep(0)
            await asyncio.sleep(0)
            return seen

        assert run(scenario, seed=0) == ["x"]


class TestPeriodic:
    def test_created_stopped_ticks_after_start_stops_cleanly(self):
        async def scenario(runtime):
            ticks = []
            task = runtime.start_periodic(0.5, lambda: ticks.append(1),
                                          name="unit")
            assert not task.running
            await asyncio.sleep(0.02)
            assert ticks == []  # unstarted tasks never tick
            task.start()
            await asyncio.sleep(0.06)  # ~12 periods of wall time
            task.stop()
            assert not task.running
            count_at_stop = len(ticks)
            await asyncio.sleep(0.03)
            return ticks, count_at_stop

        ticks, count_at_stop = run(scenario, seed=0, time_scale=0.01)
        assert len(ticks) >= 2  # several ticks while running
        assert len(ticks) == count_at_stop  # none after stop()

    def test_rejects_bad_period_and_jitter(self):
        runtime = AsyncioRuntime(seed=0)
        with pytest.raises(ValueError):
            runtime.start_periodic(0.0, lambda: None)
        with pytest.raises(ValueError):
            runtime.start_periodic(1.0, lambda: None, jitter=1.0)


class TestObservability:
    def test_trace_and_metrics_share_the_protocol_clock(self):
        runtime = AsyncioRuntime(seed=0, time_scale=0.5)
        runtime.trace("unit.kind", "src", detail=1)
        records = runtime.trace_sink.records(kind="unit.kind")
        assert len(records) == 1
        assert records[0].time == pytest.approx(runtime.now(), abs=1.0)
        runtime.counter("unit.counter").inc()
        assert runtime.metrics.counter("unit.counter").value == 1

    def test_trace_false_retains_nothing(self):
        runtime = AsyncioRuntime(seed=0, trace=False)
        runtime.trace("unit.kind", "src")
        assert runtime.trace_sink.records(kind="unit.kind") == []

    def test_rng_streams_match_the_sim_registry(self):
        # Seed-matched UDP and sim runs draw identical jitter sequences.
        runtime = AsyncioRuntime(seed=21)
        sim = Simulator(seed=21)
        assert [runtime.rng("host.h0.0.attach_backoff").random()
                for _ in range(4)] == \
               [sim.rng.stream("host.h0.0.attach_backoff").random()
                for _ in range(4)]
