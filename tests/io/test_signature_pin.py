"""Delivery-signature pins: the sim backend is a pure adapter.

The sans-IO refactor (DESIGN.md §14) moved every protocol machine from
direct ``Simulator`` access onto the narrow :class:`repro.io.Runtime` /
:class:`repro.io.Transport` interfaces.  The contract is that the sim
backend is a *pure adapter*: running the exact same seeded scenario
before and after the refactor must produce byte-identical delivery
records — same sequence numbers, same timestamps, same suppliers, same
gap-fill flags, at every host.

``pinned_signatures.json`` was generated from the pre-refactor tree
(``tools: python -m tests.io.test_signature_pin`` regenerates it; only
do that for a change that *intends* to alter protocol behavior).  Each
scenario is shaped after one of the tier-1 experiments:

* ``e2_plain``   — E2-shaped: clean 2-cluster delivery, fixed timers;
* ``e20_churn``  — E20-shaped: host crash/recovery churn with stable lag;
* ``e21_chaos``  — E21-shaped: adaptive control plane under packet
  corruption/delay/replay plus two mid-stream outages.
"""

from __future__ import annotations

import json
import pathlib

from repro.baseline.basic import BasicBroadcastSystem, BasicConfig
from repro.baseline.epidemic import EpidemicBroadcastSystem, EpidemicConfig
from repro.chaos import (
    ChaosPlan,
    ChaosSpec,
    HostChurnSpec,
    HostOutageSpec,
    PacketFaultSpec,
)
from repro.core import BroadcastSystem, ProtocolConfig
from repro.fuzz.properties import delivery_signature
from repro.net import expensive_spec, wan_of_lans
from repro.sim import Simulator

PIN_FILE = pathlib.Path(__file__).with_name("pinned_signatures.json")

_DATA_BITS = 4_000


def _run_e2_plain(seed: int = 11) -> str:
    """E2-shaped: clean seed-matched delivery over 2 clusters of 2."""
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=2, hosts_per_cluster=2, backbone="line")
    config = ProtocolConfig.for_scale(4, data_size_bits=_DATA_BITS)
    system = BroadcastSystem(built, config=config).start()
    system.broadcast_stream(6, interval=1.0, start_at=2.0)
    sim.run(until=120.0)
    return delivery_signature(system)


def _run_e20_churn(seed: int = 18) -> str:
    """E20-shaped: host churn with a stable-storage lag, tree protocol."""
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=3, hosts_per_cluster=2, backbone="line")
    config = ProtocolConfig.for_scale(6, data_size_bits=_DATA_BITS,
                                      crash_stable_lag=2)
    system = BroadcastSystem(built, config=config).start()
    churned = tuple(str(h) for h in built.hosts if h != system.source_id)
    ChaosPlan(sim, system, ChaosSpec(
        heal_by=60.0,
        host_churn=(HostChurnSpec(churned, mean_up=25.0, mean_down=5.0),),
    )).start()
    system.broadcast_stream(12, interval=1.0, start_at=2.0)
    sim.run(until=150.0)
    return delivery_signature(system)


def _run_e21_chaos(seed: int = 21) -> str:
    """E21-shaped: adaptive control plane under packet chaos + outages."""
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=3, hosts_per_cluster=2, backbone="line",
                        expensive=expensive_spec(loss_prob=0.10))
    config = ProtocolConfig.for_scale(6, data_size_bits=_DATA_BITS,
                                      crash_stable_lag=1, adaptive=True)
    system = BroadcastSystem(built, config=config).start()
    victims = [str(h) for h in built.hosts if h != system.source_id]
    ChaosPlan(sim, system, ChaosSpec(
        heal_by=40.0,
        host_outages=(HostOutageSpec(victims[1], 10.0, 14.0),
                      HostOutageSpec(victims[-1], 18.0, 22.0)),
        packet_faults=(PacketFaultSpec(
            start=2.0, end=40.0, corrupt_prob=0.08, delay_prob=0.3,
            delay=0.8, replay_prob=0.05, replay_lag=2.0),),
    )).start()
    system.broadcast_stream(10, interval=1.0, start_at=2.0)
    sim.run(until=150.0)
    return delivery_signature(system)


def _run_basic_churn(seed: int = 18) -> str:
    """E20-shaped companion: the basic algorithm under identical churn."""
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=3, hosts_per_cluster=2, backbone="line")
    system = BasicBroadcastSystem(built, config=BasicConfig(
        data_size_bits=_DATA_BITS, crash_stable_lag=2)).start()
    churned = tuple(str(h) for h in built.hosts if h != system.source_id)
    ChaosPlan(sim, system, ChaosSpec(
        heal_by=60.0,
        host_churn=(HostChurnSpec(churned, mean_up=25.0, mean_down=5.0),),
    )).start()
    system.broadcast_stream(12, interval=1.0, start_at=2.0)
    sim.run(until=150.0)
    return delivery_signature(system)


def _run_epidemic_plain(seed: int = 12) -> str:
    """Clean anti-entropy run (pins the epidemic baseline's port too)."""
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=2, hosts_per_cluster=2, backbone="line")
    system = EpidemicBroadcastSystem(built, config=EpidemicConfig(
        data_size_bits=_DATA_BITS)).start()
    system.broadcast_stream(6, interval=1.0, start_at=2.0)
    sim.run(until=120.0)
    return delivery_signature(system)


SCENARIOS = {
    "e2_plain": _run_e2_plain,
    "e20_churn": _run_e20_churn,
    "e21_chaos": _run_e21_chaos,
    "basic_churn": _run_basic_churn,
    "epidemic_plain": _run_epidemic_plain,
}


def _load_pins() -> dict:
    return json.loads(PIN_FILE.read_text(encoding="utf-8"))


def test_pins_cover_every_scenario():
    pins = _load_pins()
    assert sorted(pins) == sorted(SCENARIOS)


def test_e2_plain_signature_pinned():
    assert _run_e2_plain() == _load_pins()["e2_plain"]


def test_e20_churn_signature_pinned():
    assert _run_e20_churn() == _load_pins()["e20_churn"]


def test_e21_chaos_signature_pinned():
    assert _run_e21_chaos() == _load_pins()["e21_chaos"]


def test_basic_churn_signature_pinned():
    assert _run_basic_churn() == _load_pins()["basic_churn"]


def test_epidemic_plain_signature_pinned():
    assert _run_epidemic_plain() == _load_pins()["epidemic_plain"]


if __name__ == "__main__":  # pragma: no cover - pin regeneration tool
    pins = {name: fn() for name, fn in sorted(SCENARIOS.items())}
    PIN_FILE.write_text(json.dumps(pins, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {PIN_FILE}")
    for name, value in pins.items():
        print(f"  {name}: {value}")
