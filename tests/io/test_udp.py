"""UdpTransport over real localhost sockets, and sim-vs-UDP parity."""

import asyncio
import time

import pytest

from repro.io import AsyncioRuntime, UdpTransport
from repro.io.crosscheck import CrosscheckScenario, crosscheck
from repro.net import HostId, RawPayload


async def open_pair(runtime):
    """Two transports bound to ephemeral localhost ports, peered."""
    a, b = HostId("a"), HostId("b")
    ta = UdpTransport(runtime, a, peers={})
    tb = UdpTransport(runtime, b, peers={})
    await ta.open(("127.0.0.1", 0))
    await tb.open(("127.0.0.1", 0))
    addresses = {
        a: ta._sock.get_extra_info("sockname")[:2],
        b: tb._sock.get_extra_info("sockname")[:2],
    }
    ta.peers.update(addresses)
    tb.peers.update(addresses)
    return ta, tb


async def wait_for(condition, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        await asyncio.sleep(0.005)
    return condition()


def run(coro_fn):
    async def main():
        runtime = AsyncioRuntime(seed=0, time_scale=0.05)
        ta, tb = await open_pair(runtime)
        try:
            return await coro_fn(runtime, ta, tb)
        finally:
            ta.close()
            tb.close()
    return asyncio.run(main())


class TestUdpTransportUnit:
    def test_roundtrip_preserves_payload_and_addressing(self):
        async def scenario(runtime, ta, tb):
            got = []
            tb.set_receiver(got.append)
            ta.send(HostId("b"), RawPayload(content="ping", size_bits=64))
            assert await wait_for(lambda: got)
            return got

        got = run(scenario)
        packet = got[0]
        assert packet.src == HostId("a")
        assert packet.dst == HostId("b")
        assert packet.payload.content == "ping"
        assert packet.payload.size_bits == 64
        assert packet.sent_at == packet.stamped_at

    def test_send_accounting_matches_sim_port_names(self):
        async def scenario(runtime, ta, tb):
            tb.set_receiver(lambda packet: None)
            ta.send(HostId("b"), RawPayload())
            await wait_for(
                lambda: runtime.metrics.counter("net.h2h.recv").value == 1)
            return (
                runtime.metrics.counter("net.h2h.sent").value,
                runtime.metrics.counter("net.h2h.sent.kind.raw").value,
                runtime.metrics.counter("net.h2h.recv").value,
                len(runtime.trace_sink.records(kind="net.host_send")),
                len(runtime.trace_sink.records(kind="net.host_recv")),
            )

        assert run(scenario) == (1, 1, 1, 1, 1)

    def test_self_send_rejected_unknown_peer_raises(self):
        async def scenario(runtime, ta, tb):
            with pytest.raises(ValueError, match="cannot send to itself"):
                ta.send(HostId("a"), RawPayload())
            with pytest.raises(KeyError, match="no address"):
                ta.send(HostId("stranger"), RawPayload())
            return True

        assert run(scenario)

    def test_send_after_close_is_silent_loss(self):
        async def scenario(runtime, ta, tb):
            ta.close()
            ta.send(HostId("b"), RawPayload())  # dropped, no error
            return runtime.metrics.counter("net.h2h.sent").value

        assert run(scenario) == 0

    def test_malformed_datagram_counted_not_raised(self):
        async def scenario(runtime, ta, tb):
            got = []
            tb.set_receiver(got.append)
            tb.datagram_received(b"not a frame", ("127.0.0.1", 1))
            # Frames queue and drain on the next loop iteration.
            await wait_for(lambda: tb.malformed == 1)
            return tb.malformed, got, \
                runtime.metrics.counter("net.h2h.malformed").value

        malformed, got, counted = run(scenario)
        assert malformed == 1
        assert counted == 1
        assert got == []

    def test_tap_consumes_and_inject_reenters(self):
        async def scenario(runtime, ta, tb):
            got, tapped = [], []
            tb.set_receiver(got.append)
            tb.tap = lambda packet: tapped.append(packet) or True
            ta.send(HostId("b"), RawPayload())
            assert await wait_for(lambda: tapped)
            assert got == []  # tap consumed it
            tb.inject(tapped[0])  # re-entry bypasses the tap
            return len(got), len(tapped)

        assert run(scenario) == (1, 1)

    def test_send_tap_consumes_and_send_raw_bypasses(self):
        async def scenario(runtime, ta, tb):
            got, outbound = [], []
            tb.set_receiver(got.append)
            ta.send_tap = lambda dst, payload: outbound.append(dst) or True
            ta.send(HostId("b"), RawPayload())
            assert outbound == [HostId("b")]
            ta.send_raw(HostId("b"), RawPayload())  # bypasses the tap
            assert await wait_for(lambda: got)
            return len(got), len(outbound)

        assert run(scenario) == (1, 1)


def frame_for(dst_name="b", src_name="a"):
    """A well-formed wire frame, as ``send_raw`` would emit it."""
    import pickle

    return pickle.dumps((src_name, 0.0, RawPayload()),
                        protocol=pickle.HIGHEST_PROTOCOL)


class TestUdpTransportHardening:
    def test_close_is_idempotent(self):
        async def scenario(runtime, ta, tb):
            ta.close()
            ta.close()  # second close is a no-op, not an error
            ta.close()
            return True

        assert run(scenario)

    def test_late_datagrams_after_close_counted_and_dropped(self):
        async def scenario(runtime, ta, tb):
            got = []
            tb.set_receiver(got.append)
            tb.close()
            # A datagram still crossing the loop when close() landed.
            tb.datagram_received(frame_for(), ("127.0.0.1", 1))
            # A chaos-delayed injection outliving the deployment.
            import pickle

            src, _at, payload = pickle.loads(frame_for())
            from repro.net import Packet

            tb.inject(Packet(src=HostId(src), dst=tb.host_id,
                             payload=payload, sent_at=0.0, stamped_at=0.0))
            return (tb.late_drops, got,
                    runtime.metrics.counter("net.h2h.late_dropped").value)

        late, got, counted = run(scenario)
        assert late == 2
        assert counted == 2
        assert got == []

    def test_queued_datagrams_are_dropped_and_counted_on_close(self):
        async def scenario(runtime, ta, tb):
            got = []
            tb.set_receiver(got.append)
            # Queue frames without yielding, then close before the drain.
            tb.datagram_received(frame_for(), ("127.0.0.1", 1))
            tb.datagram_received(frame_for(), ("127.0.0.1", 1))
            tb.close()
            await asyncio.sleep(0.05)  # the drain would have run by now
            return (tb.late_drops, got,
                    runtime.metrics.counter("net.h2h.late_dropped").value)

        late, got, counted = run(scenario)
        assert late == 2
        assert counted == 2
        assert got == []

    def test_transient_send_error_is_retried(self):
        class FlakySock:
            """Delegating wrapper whose sendto fails the first N times."""

            def __init__(self, inner, failures):
                self._inner = inner
                self.failures = failures

            def sendto(self, data, addr):
                if self.failures > 0:
                    self.failures -= 1
                    raise OSError(105, "No buffer space available")
                self._inner.sendto(data, addr)

            def __getattr__(self, name):
                return getattr(self._inner, name)

        async def scenario(runtime, ta, tb):
            got = []
            tb.set_receiver(got.append)
            ta._sock = FlakySock(ta._sock, failures=2)
            ta.send(HostId("b"), RawPayload())
            assert await wait_for(lambda: got)  # arrived on the 3rd try
            return (runtime.metrics.counter("net.h2h.send_retry").value,
                    ta.send_drops)

        retries, drops = run(scenario)
        assert retries == 2
        assert drops == 0

    def test_persistent_send_error_becomes_counted_loss(self):
        class DeadSock:
            def __init__(self, inner):
                self._inner = inner

            def sendto(self, data, addr):
                raise OSError(105, "No buffer space available")

            def __getattr__(self, name):
                return getattr(self._inner, name)

        async def scenario(runtime, ta, tb):
            got = []
            tb.set_receiver(got.append)
            ta._sock = DeadSock(ta._sock)
            ta.send(HostId("b"), RawPayload())
            assert await wait_for(lambda: ta.send_drops == 1)
            await asyncio.sleep(0.02)
            return (got,
                    runtime.metrics.counter("net.h2h.send_dropped").value,
                    runtime.metrics.counter("net.h2h.send_retry").value)

        got, dropped, retries = run(scenario)
        assert got == []  # the frame died, quietly
        assert dropped == 1
        assert retries == 2  # attempts 2 and 3 were retries

    def test_receive_queue_overflow_sheds_oldest(self):
        async def scenario(runtime, ta, tb):
            got = []
            tb.set_receiver(got.append)
            tb._recv_queue_limit = 4
            # Ten bursts before the loop can drain: six must be shed.
            for _ in range(10):
                tb.datagram_received(frame_for(), ("127.0.0.1", 1))
            depth = tb.queue_length()
            await wait_for(lambda: len(got) == 4)
            return (depth, len(got),
                    runtime.metrics.counter("net.h2h.recv_shed").value)

        depth, delivered, shed = run(scenario)
        assert depth == 4
        assert delivered == 4
        assert shed == 6

    def test_bind_conflict_falls_back_to_ephemeral_port(self):
        async def scenario(runtime, ta, tb):
            taken = ta._sock.get_extra_info("sockname")[:2]
            tc = UdpTransport(runtime, HostId("c"), peers={})
            await tc.open(taken)  # conflicts with ta's socket
            try:
                bound = tc._sock.get_extra_info("sockname")[:2]
                assert bound != taken
                return runtime.metrics.counter("net.h2h.bind_retry").value
            finally:
                tc.close()

        assert run(scenario) >= 1

    def test_socket_errors_counted_not_raised(self):
        async def scenario(runtime, ta, tb):
            ta.error_received(OSError(111, "Connection refused"))
            return (ta.socket_errors,
                    runtime.metrics.counter("net.h2h.socket_error").value)

        assert run(scenario) == (1, 1)


class TestSimUdpParity:
    """The tentpole acceptance check: one protocol, two worlds."""

    def test_seed_matched_two_cluster_parity(self):
        scenario = CrosscheckScenario(messages=3, seed=7, time_scale=0.05)
        started = time.monotonic()
        result = crosscheck(scenario)
        wall = time.monotonic() - started
        assert result.match, "\n" + result.report()
        assert set(result.sim_delivered) == {"h0.0", "h0.1", "h1.0", "h1.1"}
        # Bounded: the UDP side is compressed 20x, so even the full
        # 90-protocol-second budget is ~4.5s wall; parity normally
        # arrives far earlier.
        assert wall < scenario.timeout
