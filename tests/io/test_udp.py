"""UdpTransport over real localhost sockets, and sim-vs-UDP parity."""

import asyncio
import time

import pytest

from repro.io import AsyncioRuntime, UdpTransport
from repro.io.crosscheck import CrosscheckScenario, crosscheck
from repro.net import HostId, RawPayload


async def open_pair(runtime):
    """Two transports bound to ephemeral localhost ports, peered."""
    a, b = HostId("a"), HostId("b")
    ta = UdpTransport(runtime, a, peers={})
    tb = UdpTransport(runtime, b, peers={})
    await ta.open(("127.0.0.1", 0))
    await tb.open(("127.0.0.1", 0))
    addresses = {
        a: ta._sock.get_extra_info("sockname")[:2],
        b: tb._sock.get_extra_info("sockname")[:2],
    }
    ta.peers.update(addresses)
    tb.peers.update(addresses)
    return ta, tb


async def wait_for(condition, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        await asyncio.sleep(0.005)
    return condition()


def run(coro_fn):
    async def main():
        runtime = AsyncioRuntime(seed=0, time_scale=0.05)
        ta, tb = await open_pair(runtime)
        try:
            return await coro_fn(runtime, ta, tb)
        finally:
            ta.close()
            tb.close()
    return asyncio.run(main())


class TestUdpTransportUnit:
    def test_roundtrip_preserves_payload_and_addressing(self):
        async def scenario(runtime, ta, tb):
            got = []
            tb.set_receiver(got.append)
            ta.send(HostId("b"), RawPayload(content="ping", size_bits=64))
            assert await wait_for(lambda: got)
            return got

        got = run(scenario)
        packet = got[0]
        assert packet.src == HostId("a")
        assert packet.dst == HostId("b")
        assert packet.payload.content == "ping"
        assert packet.payload.size_bits == 64
        assert packet.sent_at == packet.stamped_at

    def test_send_accounting_matches_sim_port_names(self):
        async def scenario(runtime, ta, tb):
            tb.set_receiver(lambda packet: None)
            ta.send(HostId("b"), RawPayload())
            await wait_for(
                lambda: runtime.metrics.counter("net.h2h.recv").value == 1)
            return (
                runtime.metrics.counter("net.h2h.sent").value,
                runtime.metrics.counter("net.h2h.sent.kind.raw").value,
                runtime.metrics.counter("net.h2h.recv").value,
                len(runtime.trace_sink.records(kind="net.host_send")),
                len(runtime.trace_sink.records(kind="net.host_recv")),
            )

        assert run(scenario) == (1, 1, 1, 1, 1)

    def test_self_send_rejected_unknown_peer_raises(self):
        async def scenario(runtime, ta, tb):
            with pytest.raises(ValueError, match="cannot send to itself"):
                ta.send(HostId("a"), RawPayload())
            with pytest.raises(KeyError, match="no address"):
                ta.send(HostId("stranger"), RawPayload())
            return True

        assert run(scenario)

    def test_send_after_close_is_silent_loss(self):
        async def scenario(runtime, ta, tb):
            ta.close()
            ta.send(HostId("b"), RawPayload())  # dropped, no error
            return runtime.metrics.counter("net.h2h.sent").value

        assert run(scenario) == 0

    def test_malformed_datagram_counted_not_raised(self):
        async def scenario(runtime, ta, tb):
            got = []
            tb.set_receiver(got.append)
            tb.datagram_received(b"not a frame", ("127.0.0.1", 1))
            return tb.malformed, got, \
                runtime.metrics.counter("net.h2h.malformed").value

        malformed, got, counted = run(scenario)
        assert malformed == 1
        assert counted == 1
        assert got == []

    def test_tap_consumes_and_inject_reenters(self):
        async def scenario(runtime, ta, tb):
            got, tapped = [], []
            tb.set_receiver(got.append)
            tb.tap = lambda packet: tapped.append(packet) or True
            ta.send(HostId("b"), RawPayload())
            assert await wait_for(lambda: tapped)
            assert got == []  # tap consumed it
            tb.inject(tapped[0])  # re-entry bypasses the tap
            return len(got), len(tapped)

        assert run(scenario) == (1, 1)

    def test_send_tap_consumes_and_send_raw_bypasses(self):
        async def scenario(runtime, ta, tb):
            got, outbound = [], []
            tb.set_receiver(got.append)
            ta.send_tap = lambda dst, payload: outbound.append(dst) or True
            ta.send(HostId("b"), RawPayload())
            assert outbound == [HostId("b")]
            ta.send_raw(HostId("b"), RawPayload())  # bypasses the tap
            assert await wait_for(lambda: got)
            return len(got), len(outbound)

        assert run(scenario) == (1, 1)


class TestSimUdpParity:
    """The tentpole acceptance check: one protocol, two worlds."""

    def test_seed_matched_two_cluster_parity(self):
        scenario = CrosscheckScenario(messages=3, seed=7, time_scale=0.05)
        started = time.monotonic()
        result = crosscheck(scenario)
        wall = time.monotonic() - started
        assert result.match, "\n" + result.report()
        assert set(result.sim_delivered) == {"h0.0", "h0.1", "h1.0", "h1.1"}
        # Bounded: the UDP side is compressed 20x, so even the full
        # 90-protocol-second budget is ~4.5s wall; parity normally
        # arrives far earlier.
        assert wall < scenario.timeout
