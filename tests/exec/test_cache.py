"""The on-disk result cache: hit/miss, fingerprint invalidation."""

from repro.exec import ResultCache, canonical_params, code_fingerprint


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f1")
        hit, value = cache.get("E2", {"seed": 1})
        assert not hit and value is None
        cache.put("E2", {"seed": 1}, {"rows": [1, 2, 3]})
        hit, value = cache.get("E2", {"seed": 1})
        assert hit and value == {"rows": [1, 2, 3]}
        assert cache.hits == 1 and cache.misses == 1

    def test_params_key_entries_independently(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f1")
        cache.put("E2", {"seed": 1}, "a")
        cache.put("E2", {"seed": 2}, "b")
        cache.put("E5", {"seed": 1}, "c")
        assert cache.get("E2", {"seed": 1}) == (True, "a")
        assert cache.get("E2", {"seed": 2}) == (True, "b")
        assert cache.get("E5", {"seed": 1}) == (True, "c")

    def test_param_order_does_not_matter(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f1")
        cache.put("E2", {"a": 1, "b": 2}, "v")
        assert cache.get("E2", {"b": 2, "a": 1}) == (True, "v")

    def test_code_fingerprint_change_invalidates(self, tmp_path):
        before = ResultCache(tmp_path, fingerprint="sha-before")
        before.put("E2", {"seed": 1}, "old result")
        after = ResultCache(tmp_path, fingerprint="sha-after")
        hit, _ = after.get("E2", {"seed": 1})
        assert not hit  # same dir, same params, new code -> recompute

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f1")
        path = cache.put("E2", {"seed": 1}, "v")
        path.write_bytes(b"not a pickle")
        hit, value = cache.get("E2", {"seed": 1})
        assert not hit and value is None
        assert not path.exists()  # pruned, next put rewrites


class TestFingerprint:
    def test_stable_for_same_tree(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        code_fingerprint.cache_clear()
        first = code_fingerprint(str(tmp_path))
        code_fingerprint.cache_clear()
        assert code_fingerprint(str(tmp_path)) == first

    def test_moves_on_source_change(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        code_fingerprint.cache_clear()
        first = code_fingerprint(str(tmp_path))
        (tmp_path / "a.py").write_text("x = 2\n")
        code_fingerprint.cache_clear()
        assert code_fingerprint(str(tmp_path)) != first

    def test_real_package_fingerprint_is_memoized(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64


def test_canonical_params_sorted_and_repr_fallback():
    class Odd:
        def __repr__(self):
            return "Odd()"

    assert canonical_params({"b": 1, "a": Odd()}) == \
        canonical_params({"a": Odd(), "b": 1})
