"""Determinism parity: serial and parallel execution, row for row.

The acceptance gate for the execution engine: every migrated
experiment must yield an identical ``ExperimentResult`` under
``--jobs 1`` and ``--jobs N``.  Work items build their simulations
inside the worker and rows merge in submission order, so any
divergence here means state leaked between items or the merge
reordered — both bugs worth failing loudly on.

``REPRO_TEST_JOBS`` (default 2) sets the parallel side's worker count;
CI pins one matrix leg to run this suite explicitly with 2 jobs.
"""

import os

from repro.exec import make_executor
from repro.experiments import (
    run_e2_delay,
    run_e5_congestion,
    run_e20_host_churn,
    run_e21_adversarial_timing,
    run_e22_parallel_speedup,
)

JOBS = int(os.environ.get("REPRO_TEST_JOBS", "2"))

E21_SMALL = (("loss", 0.08, 0.00, 0.0, 0.0, 0.00),)


def assert_parity(runner, **kwargs):
    serial = runner(**kwargs)
    parallel = runner(executor=make_executor(JOBS), **kwargs)
    assert serial.columns == parallel.columns
    # repr() is exact for floats and, unlike ==, treats nan as itself
    # (E20 reports nan recovery times when no host crashed).
    assert repr(serial.rows) == repr(parallel.rows), (
        f"{serial.experiment_id}: serial != parallel with jobs={JOBS}")
    assert serial.notes == parallel.notes
    return serial


def test_e2_serial_equals_parallel():
    assert_parity(run_e2_delay, ks=(2,), ms=(2,), n=6, warmup=2)


def test_e5_serial_equals_parallel():
    assert_parity(run_e5_congestion, ms=(2,), n=6)


def test_e20_serial_equals_parallel():
    result = assert_parity(run_e20_host_churn, n=6, heal_by=20.0,
                           mean_up=10.0, mean_down=3.0, horizon=150.0)
    # Both protocols' row groups made it through the ordered merge.
    assert {r["protocol"] for r in result.rows} == {"tree", "basic"}


def test_e21_small_serial_equals_parallel():
    result = assert_parity(run_e21_adversarial_timing, n=8, heal_by=25.0,
                           measure_at=30.0, horizon=150.0, points=E21_SMALL)
    assert [(r["point"], r["mode"]) for r in result.rows] == [
        ("loss", "fixed"), ("loss", "adaptive")]


def test_e22_reports_parity_against_its_serial_baseline():
    result = run_e22_parallel_speedup(jobs_list=(1, JOBS), n=6,
                                      heal_by=25.0, measure_at=30.0,
                                      horizon=150.0, points=E21_SMALL)
    assert [r["jobs"] for r in result.rows] == [1, JOBS]
    assert all(r["rows_match_serial"] for r in result.rows)
    assert all(r["wall_s"] > 0 for r in result.rows)
    assert result.rows[0]["speedup"] == 1.0
