"""The execution engine: ordered merge, failures, timeouts, seeds."""

import os
import time

import pytest

from repro.exec import (
    ExecutionError,
    ProcessExecutor,
    SerialExecutor,
    WorkItem,
    canonical_key,
    derive_seed,
    make_executor,
    values_or_raise,
)


# Work functions must be module-level so they pickle by reference.

def square(x, seed=None):
    return {"x": x, "sq": x * x, "seed": seed}


def slow_square(x, seed=None):
    # Later items finish first: exposes completion-order merge bugs.
    time.sleep(0.3 if x == 0 else 0.01)
    return x * x


def explode(x):
    raise ValueError(f"bad point {x}")


def hang(x):
    time.sleep(30)
    return x


def die_hard(x):
    os._exit(7)


def items_for(fn, xs, **extra):
    return [WorkItem(key=(fn.__name__, x), fn=fn, kwargs=dict(x=x, **extra))
            for x in xs]


class TestSerialExecutor:
    def test_values_in_submission_order(self):
        outcomes = SerialExecutor().map(items_for(square, [3, 1, 2]))
        assert [o.value["sq"] for o in outcomes] == [9, 1, 4]
        assert all(o.ok for o in outcomes)
        assert [o.key for o in outcomes] == [("square", 3), ("square", 1),
                                             ("square", 2)]

    def test_exception_is_captured_not_raised(self):
        (outcome,) = SerialExecutor().map(items_for(explode, [5]))
        assert not outcome.ok
        assert outcome.failure.kind == "exception"
        assert outcome.failure.exc_type == "ValueError"
        assert "bad point 5" in outcome.failure.message
        assert "explode" in outcome.failure.traceback

    def test_derived_seed_injected_into_kwargs(self):
        item = WorkItem(key=("s",), fn=square, kwargs={"x": 1},
                        seed=derive_seed(1, "s"))
        (outcome,) = SerialExecutor().map([item])
        assert outcome.value["seed"] == derive_seed(1, "s")


class TestProcessExecutor:
    def test_matches_serial_and_preserves_order(self):
        items = items_for(slow_square, [0, 1, 2, 3])
        serial = SerialExecutor().map(items)
        parallel = ProcessExecutor(jobs=4).map(items)
        assert [o.value for o in parallel] == [o.value for o in serial]
        assert [o.key for o in parallel] == [o.key for o in serial]

    def test_worker_exception_captured_per_item(self):
        items = items_for(square, [1], seed=None) + items_for(explode, [9])
        outcomes = ProcessExecutor(jobs=2).map(items)
        assert outcomes[0].ok and outcomes[0].value["sq"] == 1
        assert not outcomes[1].ok
        assert outcomes[1].failure.kind == "exception"
        assert "bad point 9" in outcomes[1].failure.message

    def test_worker_crash_captured_as_structured_failure(self):
        items = items_for(die_hard, [1]) + items_for(square, [2], seed=None)
        outcomes = ProcessExecutor(jobs=2).map(items)
        assert not outcomes[0].ok
        assert outcomes[0].failure.kind == "crash"
        assert "7" in outcomes[0].failure.message
        # The crash did not poison the batch.
        assert outcomes[1].ok and outcomes[1].value["sq"] == 4

    def test_timeout_kills_worker_and_is_captured(self):
        items = items_for(hang, [1]) + items_for(square, [3], seed=None)
        start = time.monotonic()
        outcomes = ProcessExecutor(jobs=2, timeout=1.0).map(items)
        assert time.monotonic() - start < 15
        assert not outcomes[0].ok
        assert outcomes[0].failure.kind == "timeout"
        assert outcomes[1].ok

    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            ProcessExecutor(jobs=0)


class TestHelpers:
    def test_values_or_raise_lists_offending_keys(self):
        outcomes = SerialExecutor().map(
            items_for(square, [1], seed=None) + items_for(explode, [2]))
        with pytest.raises(ExecutionError) as err:
            values_or_raise(outcomes)
        assert "('explode', 2)" in str(err.value)
        assert len(err.value.failed) == 1

    def test_make_executor_picks_by_jobs(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(3), ProcessExecutor)
        assert make_executor(3).jobs == 3


class TestSeeds:
    def test_stable_across_calls_and_processes(self):
        local = derive_seed(42, "E2", ("k", 2))
        item = WorkItem(key=("probe",), fn=square, kwargs={"x": 0},
                        seed=derive_seed(42, "E2", ("k", 2)))
        (outcome,) = ProcessExecutor(jobs=1).map([item])
        assert outcome.value["seed"] == local

    def test_distinct_components_distinct_seeds(self):
        seeds = {derive_seed(1, "E2", i) for i in range(50)}
        assert len(seeds) == 50

    def test_base_seed_matters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_canonical_key_sorts_dicts(self):
        assert canonical_key({"b": 1, "a": 2}) == canonical_key({"a": 2, "b": 1})
