"""Property-based tests: SeqnoSet vs a model built on Python's set."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.seqnoset import SeqnoSet, info_equiv, info_less

seqnos = st.integers(min_value=1, max_value=60)
seqno_lists = st.lists(seqnos, max_size=40)
ranges_strategy = st.tuples(seqnos, seqnos).map(lambda t: (min(t), max(t)))


@given(seqno_lists)
def test_membership_matches_model(items):
    model = set(items)
    s = SeqnoSet(items)
    assert list(s) == sorted(model)
    assert len(s) == len(model)
    for x in range(0, 65):
        assert (x in s) == (x in model)


@given(seqno_lists)
def test_ranges_are_sorted_disjoint_nonadjacent(items):
    s = SeqnoSet(items)
    ranges = s.ranges()
    for lo, hi in ranges:
        assert lo <= hi
    for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
        assert hi1 + 1 < lo2  # disjoint and non-adjacent (coalesced)


@given(seqno_lists, st.lists(ranges_strategy, max_size=10))
def test_add_range_matches_model(items, extra_ranges):
    model = set(items)
    s = SeqnoSet(items)
    for lo, hi in extra_ranges:
        added = s.add_range(lo, hi)
        new = set(range(lo, hi + 1)) - model
        assert added == bool(new)
        model |= set(range(lo, hi + 1))
    assert list(s) == sorted(model)


@given(seqno_lists, seqno_lists)
def test_update_is_union(a_items, b_items):
    a = SeqnoSet(a_items)
    b = SeqnoSet(b_items)
    changed = a.update(b)
    assert changed == bool(set(b_items) - set(a_items))
    assert list(a) == sorted(set(a_items) | set(b_items))


@given(seqno_lists, seqno_lists)
def test_difference_matches_model(a_items, b_items):
    a = SeqnoSet(a_items)
    b = SeqnoSet(b_items)
    assert a.difference(b) == sorted(set(a_items) - set(b_items))


@given(seqno_lists, st.integers(min_value=1, max_value=70))
def test_missing_below_matches_model(items, limit):
    s = SeqnoSet(items)
    expected = [x for x in range(1, limit) if x not in set(items)]
    assert s.missing_below(limit) == expected


@given(seqno_lists)
def test_max_matches_model(items):
    s = SeqnoSet(items)
    assert s.max_seqno == (max(items) if items else 0)


@given(seqno_lists, seqno_lists)
def test_partial_order_matches_max_comparison(a_items, b_items):
    a, b = SeqnoSet(a_items), SeqnoSet(b_items)
    ma = max(a_items) if a_items else 0
    mb = max(b_items) if b_items else 0
    assert info_less(a, b) == (ma < mb)
    assert info_equiv(a, b) == (ma == mb)


@given(st.integers(min_value=1, max_value=40), seqno_lists)
def test_prune_preserves_membership(n, extra):
    s = SeqnoSet.range(1, n)
    for x in extra:
        s.add(x)
    model = set(range(1, n + 1)) | set(extra)
    s.prune_through(n)
    assert list(s) == sorted(model)
    for x in range(0, 70):
        assert (x in s) == (x in model)


@given(seqno_lists, st.lists(seqnos, max_size=20))
def test_adds_after_prune_match_model(base, later):
    s = SeqnoSet(base)
    model = set(base)
    prefix = 0
    while prefix + 1 in model:
        prefix += 1
    if prefix:
        s.prune_through(prefix)
    for x in later:
        assert s.add(x) == (x not in model)
        model.add(x)
    assert list(s) == sorted(model)


@given(seqno_lists, seqno_lists)
def test_issuperset_matches_model(a_items, b_items):
    a, b = SeqnoSet(a_items), SeqnoSet(b_items)
    assert a.issuperset(b) == set(a_items).issuperset(set(b_items))


@settings(max_examples=50)
@given(st.lists(st.tuples(st.sampled_from(["add", "range", "update"]),
                          ranges_strategy), max_size=30))
def test_random_operation_sequences(ops):
    s = SeqnoSet()
    model = set()
    for op, (lo, hi) in ops:
        if op == "add":
            s.add(lo)
            model.add(lo)
        elif op == "range":
            s.add_range(lo, hi)
            model |= set(range(lo, hi + 1))
        else:
            s.update(SeqnoSet.range(lo, hi))
            model |= set(range(lo, hi + 1))
    assert list(s) == sorted(model)
