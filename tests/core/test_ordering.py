"""Tests for the optional FIFO delivery adapter."""

import pytest

from repro.core import BroadcastSystem, ProtocolConfig
from repro.core.delivery import DeliveryRecord
from repro.core.ordering import FifoDeliveryAdapter
from repro.net import HostId, cheap_spec, expensive_spec, wan_of_lans
from repro.sim import Simulator

H = HostId("h")


def rec(seq, t=0.0):
    return DeliveryRecord(seq=seq, content=f"m{seq}", created_at=0.0,
                          delivered_at=t, supplier=HostId("s"),
                          via_gapfill=False)


class TestAdapterUnit:
    def test_in_order_passes_through(self):
        out = []
        adapter = FifoDeliveryAdapter(lambda h, r: out.append(r.seq))
        for seq in (1, 2, 3):
            adapter.on_deliver(H, rec(seq))
        assert out == [1, 2, 3]
        assert adapter.buffered_count(H) == 0

    def test_out_of_order_buffered_then_released(self):
        out = []
        adapter = FifoDeliveryAdapter(lambda h, r: out.append(r.seq))
        adapter.on_deliver(H, rec(2))
        adapter.on_deliver(H, rec(3))
        assert out == []
        assert adapter.holding(H) == [2, 3]
        adapter.on_deliver(H, rec(1))
        assert out == [1, 2, 3]
        assert adapter.released_through(H) == 3

    def test_hosts_independent(self):
        out = []
        adapter = FifoDeliveryAdapter(lambda h, r: out.append((str(h), r.seq)))
        a, b = HostId("a"), HostId("b")
        adapter.on_deliver(a, rec(1))
        adapter.on_deliver(b, rec(2))
        adapter.on_deliver(b, rec(1))
        assert out == [("a", 1), ("b", 1), ("b", 2)]

    def test_duplicates_rejected(self):
        adapter = FifoDeliveryAdapter(lambda h, r: None)
        adapter.on_deliver(H, rec(1))
        with pytest.raises(AssertionError):
            adapter.on_deliver(H, rec(1))
        adapter.on_deliver(H, rec(3))
        with pytest.raises(AssertionError):
            adapter.on_deliver(H, rec(3))


class TestAdapterEndToEnd:
    def test_fifo_order_under_loss(self):
        """With loss, the raw protocol delivers out of order; through the
        adapter every host sees strict 1, 2, 3, ... order."""
        released = {}

        def on_ordered(host, record):
            released.setdefault(host, []).append(record.seq)

        adapter = FifoDeliveryAdapter(on_ordered)
        sim = Simulator(seed=11)
        built = wan_of_lans(sim, clusters=3, hosts_per_cluster=2,
                            backbone="line",
                            cheap=cheap_spec(loss_prob=0.15),
                            expensive=expensive_spec(loss_prob=0.15))
        system = BroadcastSystem(built, config=ProtocolConfig.for_scale(6),
                                 deliver_callback=adapter.on_deliver).start()
        system.broadcast_stream(15, interval=0.5, start_at=2.0)
        assert system.run_until_delivered(15, timeout=500.0)
        raw_late = sum(h.deliveries.out_of_order_count()
                       for h in system.hosts.values())
        assert raw_late > 0  # the protocol really did reorder
        for host_id in built.hosts:
            assert released[host_id] == list(range(1, 16))
            assert adapter.buffered_count(host_id) == 0
