"""Host-level protocol tests: acceptance rule, handshake, liveness.

White-box tests call handlers directly on assembled-but-not-started
hosts; black-box tests run short simulations on small topologies.
"""

import pytest

from repro.core import BroadcastSystem, DataMsg, ProtocolConfig
from repro.core.wire import AttachRequest, DetachNotice, InfoMsg
from repro.core.seqnoset import SeqnoSet
from repro.net import HostId, wan_of_lans
from repro.sim import Simulator


def build_system(clusters=1, hosts=3, seed=0, config=None, backbone="line"):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=clusters, hosts_per_cluster=hosts,
                        backbone=backbone, convergence_delay=0.0)
    system = BroadcastSystem(built, config=config)
    return sim, built, system


def data(seq, origin=HostId("h0.0"), gapfill=False, created=0.0):
    return DataMsg(seq=seq, content=f"m{seq}", created_at=created,
                   origin=origin, gapfill=gapfill)


class TestAcceptanceRule:
    """The Section 4.1 rule, exercised via direct handler calls."""

    def setup_method(self):
        self.sim, self.built, self.system = build_system()
        self.host = self.system.hosts[HostId("h0.1")]
        self.parent = HostId("h0.0")
        self.other = HostId("h0.2")
        self.host.parent = self.parent

    def test_new_max_from_parent_accepted(self):
        self.host._on_data(data(1), self.parent)
        assert 1 in self.host.info
        assert 1 in self.host.deliveries

    def test_new_max_from_non_parent_discarded(self):
        self.host._on_data(data(1), self.other)
        assert 1 not in self.host.info
        assert self.sim.metrics.counter("proto.data.discard.not_parent").value == 1

    def test_duplicate_discarded(self):
        self.host._on_data(data(1), self.parent)
        self.host._on_data(data(1), self.parent)
        assert len(self.host.deliveries) == 1
        assert self.sim.metrics.counter("proto.data.discard.duplicate").value == 1

    def test_gap_below_max_accepted_from_anyone(self):
        self.host._on_data(data(3), self.parent)
        self.host._on_data(data(1), self.other)  # a hole: 1 < max 3
        assert 1 in self.host.info
        assert self.host.deliveries.get(1).via_gapfill

    def test_data_from_sender_updates_map(self):
        self.host._on_data(data(2), self.parent)
        assert 2 in self.host.maps.info_of(self.parent)

    def test_new_max_forwarded_to_children(self):
        child = HostId("h0.2")
        self.host.children.add(child)
        self.host._on_data(data(1), self.parent)
        self.sim.run()
        assert 1 in self.system.hosts[child].maps.info_of(self.host.me) or True
        # The child itself discards (host.parent is not set), but the
        # send must have happened:
        assert self.sim.metrics.counter("proto.data.forwarded").value == 1

    def test_gapfill_relayed_to_lacking_neighbors(self):
        child = HostId("h0.2")
        self.host.children.add(child)
        self.host._on_data(data(3), self.parent)
        self.sim.metrics.counter("proto.gapfill.sent").value = 0
        self.host._on_data(data(1, gapfill=True), self.parent)
        assert self.sim.metrics.counter("proto.gapfill.sent").value == 1


class TestClusterLearning:
    def test_cost_bit_maintains_cluster_sets(self):
        sim, built, system = build_system(clusters=2, hosts=2)
        system.start()
        sim.run(until=10.0)
        h00 = system.hosts[HostId("h0.0")]
        assert HostId("h0.1") in h00.cluster          # cheap path
        assert HostId("h1.0") not in h00.cluster      # expensive path
        assert HostId("h1.1") not in h00.cluster


class TestAttachmentHandshake:
    def test_tree_forms_in_single_cluster(self):
        sim, built, system = build_system(clusters=1, hosts=4)
        system.start()
        sim.run(until=15.0)
        # All non-source hosts eventually chain to the source (highest
        # order), which is the leader of the only cluster.
        parents = system.parent_edges()
        src = system.source_id
        assert parents[src] is None
        for host_id in built.hosts:
            if host_id != src:
                assert parents[host_id] is not None
        assert system.leaders() == [src]

    def test_attach_ack_timeout_tries_next_candidate(self):
        # Huge parent timeout: hosts are not started, so no heartbeats
        # flow and the freshly won parent must not be timed out again.
        sim, built, system = build_system(
            clusters=1, hosts=3,
            config=ProtocolConfig(parent_timeout_intra=1000.0,
                                  parent_timeout_inter=1000.0))
        host = system.hosts[HostId("h0.1")]
        # Fabricate two candidates: the first is unreachable (its access
        # link is down), so the ack must time out and the second be tried.
        built.network.set_link_state("h0.2", "s0", up=False)
        host.maps.apply_info(HostId("h0.2"), SeqnoSet([1, 2, 3]), None)
        host.maps.apply_info(HostId("h0.0"), SeqnoSet([1, 2]), None)
        host.cluster.observe(HostId("h0.2"), cost_bit=False)
        host.cluster.observe(HostId("h0.0"), cost_bit=False)
        host._attachment_tick()
        assert host._pending is not None
        assert host._pending.current.target == HostId("h0.2")
        sim.run(until=10.0)
        assert host.parent == HostId("h0.0")

    def test_detach_notice_sent_to_old_parent(self):
        from repro.core.host import _PendingAttach
        from repro.core.attachment import Candidate

        sim, built, system = build_system(clusters=1, hosts=3)
        host = system.hosts[HostId("h0.1")]
        old_parent = system.hosts[HostId("h0.0")]
        new_parent = HostId("h0.2")
        host.parent = old_parent.me
        old_parent.children.add(host.me)
        # Simulate a pending handshake whose ack just arrived from h0.2.
        host._pending = _PendingAttach(
            candidates=[Candidate(new_parent, "I", 1)], index=0, attempt=9)
        from repro.core.wire import AttachAck
        host._on_attach_ack(
            AttachAck(parent=new_parent, attempt=9,
                      parent_info=SeqnoSet([1]), parent_parent=None),
            new_parent)
        assert host.parent == new_parent
        sim.run(until=2.0)  # deliver the DetachNotice
        assert host.me not in old_parent.children

    def test_phantom_child_reconciled(self):
        sim, built, system = build_system(
            clusters=1, hosts=3,
            config=ProtocolConfig(child_reconcile_grace=1.0))
        parent = system.hosts[HostId("h0.0")]
        ghost = HostId("h0.1")
        parent.children.add(ghost)
        parent._child_since[ghost] = 0.0
        sim.run(until=2.0)
        # Ghost's info exchange (parent=None) must evict it after grace.
        parent._on_info(InfoMsg(sender=ghost, info=SeqnoSet(), parent=None), ghost)
        assert ghost not in parent.children

    def test_fresh_child_not_reconciled_within_grace(self):
        sim, built, system = build_system(
            clusters=1, hosts=3,
            config=ProtocolConfig(child_reconcile_grace=100.0))
        parent = system.hosts[HostId("h0.0")]
        child = HostId("h0.1")
        parent._on_attach_request(
            AttachRequest(child=child, child_info=SeqnoSet()), child)
        assert child in parent.children
        parent._on_info(InfoMsg(sender=child, info=SeqnoSet(), parent=None), child)
        assert child in parent.children  # grace protects it

    def test_detach_notice_removes_child(self):
        sim, built, system = build_system()
        parent = system.hosts[HostId("h0.0")]
        child = HostId("h0.1")
        parent.children.add(child)
        parent._on_detach(DetachNotice(child=child), child)
        assert child not in parent.children


class TestParentLiveness:
    def test_parent_timeout_clears_parent(self):
        sim, built, system = build_system(
            config=ProtocolConfig(parent_timeout_intra=1.0))
        host = system.hosts[HostId("h0.1")]
        host.parent = HostId("h0.0")
        host.cluster.observe(HostId("h0.0"), cost_bit=False)
        host._arm_parent_timer()
        # Prevent immediate re-attachment so the cleared pointer is
        # observable: cut the host off entirely.
        built.network.set_link_state("h0.1", "s0", up=False)
        sim.run(until=5.0)
        assert host.parent is None
        assert sim.metrics.counter("proto.parent.timeouts").value == 1

    def test_messages_from_parent_feed_the_watchdog(self):
        sim, built, system = build_system(clusters=1, hosts=2)
        system.start()
        system.source.broadcast("x")
        sim.run(until=30.0)
        host = system.hosts[HostId("h0.1")]
        # Routine INFO exchange keeps the parent alive: no timeouts.
        assert host.parent is not None
        assert sim.metrics.counter("proto.parent.timeouts").value == 0

    def test_parent_refresh_after_silent_drop(self):
        sim, built, system = build_system(
            clusters=1, hosts=2,
            config=ProtocolConfig(parent_refresh_timeout=2.0))
        system.start()
        src = system.source
        host = system.hosts[HostId("h0.1")]
        sim.run(until=10.0)
        assert host.parent == src.me
        src.broadcast("x")
        sim.run(until=12.0)
        # Simulate the parent silently forgetting the child.
        src.children.discard(host.me)
        src.broadcast("y")
        sim.run(until=40.0)
        assert host.me in src.children  # re-registered by refresh
        assert 2 in host.info


class TestPruning:
    def test_prune_after_global_receipt(self):
        sim, built, system = build_system(
            clusters=1, hosts=3,
            config=ProtocolConfig(info_inter_period=1.0))
        system.start()
        system.broadcast_stream(5, interval=0.2, start_at=2.0)
        assert system.run_until_delivered(5, timeout=30.0)
        sim.run(until=sim.now + 20.0)
        for host in system.hosts.values():
            assert host.info.floor == 5
            assert not host.store  # stored copies discarded

    def test_pruning_disabled_by_flag(self):
        sim, built, system = build_system(
            clusters=1, hosts=3,
            config=ProtocolConfig(enable_info_pruning=False))
        system.start()
        system.broadcast_stream(3, interval=0.2, start_at=2.0)
        assert system.run_until_delivered(3, timeout=30.0)
        sim.run(until=sim.now + 10.0)
        for host in system.hosts.values():
            assert host.info.floor == 0


class TestSource:
    def test_source_never_attaches(self):
        sim, built, system = build_system()
        src = system.source
        assert src.is_source
        assert all(t.name != "attach" for t in src._tasks)

    def test_broadcast_assigns_consecutive_seqnos(self):
        sim, built, system = build_system()
        src = system.source
        assert src.broadcast("a") == 1
        assert src.broadcast("b") == 2
        assert src.next_seq == 3
        assert list(src.info) == [1, 2]

    def test_source_delivers_to_itself(self):
        sim, built, system = build_system()
        system.source.broadcast("a")
        assert 1 in system.source.deliveries

    def test_broadcast_pushes_to_children(self):
        sim, built, system = build_system(clusters=1, hosts=2)
        system.start()
        sim.run(until=10.0)  # let h0.1 attach
        system.source.broadcast("hello")
        sim.run(until=12.0)
        other = system.hosts[HostId("h0.1")]
        assert other.deliveries.get(1).content == "hello"


class TestLifecycle:
    def test_start_is_idempotent_and_stop_halts(self):
        sim, built, system = build_system()
        system.start()
        system.start()
        sim.run(until=5.0)
        events_before = sim.events_executed
        system.stop()
        sim.run(until=100.0)
        # After stop, only already-scheduled events drain; no periodic
        # activity should persist for 95 simulated seconds.
        assert sim.events_executed - events_before < 50
