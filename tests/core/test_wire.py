"""Unit tests for wire message payloads."""

from repro.core import (
    KIND_CONTROL,
    KIND_DATA,
    AttachAck,
    AttachRequest,
    DataMsg,
    DetachNotice,
    InfoMsg,
    SeqnoSet,
)
from repro.net import HostId, Payload


def test_kinds():
    h = HostId("a")
    assert DataMsg(1, None, 0.0, h).kind == KIND_DATA
    assert InfoMsg(h, SeqnoSet(), None).kind == KIND_CONTROL
    assert AttachRequest(h, SeqnoSet()).kind == KIND_CONTROL
    assert AttachAck(h, 1, SeqnoSet(), None).kind == KIND_CONTROL
    assert DetachNotice(h).kind == KIND_CONTROL


def test_payloads_satisfy_network_protocol():
    h = HostId("a")
    for payload in [
        DataMsg(1, None, 0.0, h),
        InfoMsg(h, SeqnoSet(), None),
        AttachRequest(h, SeqnoSet()),
        AttachAck(h, 1, SeqnoSet(), None),
        DetachNotice(h),
    ]:
        assert isinstance(payload, Payload)
        assert payload.size_bits > 0


def test_info_msg_snapshots_the_set():
    """Mutating the live INFO set must not change an in-flight message."""
    live = SeqnoSet([1, 2])
    msg = InfoMsg(HostId("a"), live, None)
    live.add(99)
    assert 99 not in msg.info
    assert list(msg.info) == [1, 2]


def test_attach_request_snapshots_child_info():
    live = SeqnoSet([1])
    req = AttachRequest(HostId("c"), live)
    live.add(2)
    assert list(req.child_info) == [1]


def test_attach_ack_snapshots_parent_info():
    live = SeqnoSet([3])
    ack = AttachAck(HostId("p"), attempt=7, parent_info=live, parent_parent=HostId("g"))
    live.add(4)
    assert list(ack.parent_info) == [3]
    assert ack.attempt == 7
    assert ack.parent_parent == HostId("g")


def test_data_msg_fields():
    msg = DataMsg(seq=5, content={"x": 1}, created_at=2.5, origin=HostId("s"),
                  gapfill=True, size_bits=4_000)
    assert msg.seq == 5
    assert msg.gapfill
    assert msg.size_bits == 4_000
