"""Tests for transit-time cost inference (the paper's §2 alternative)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    BroadcastSystem,
    CostBitMode,
    ProtocolConfig,
    TransitTimeClassifier,
)
from repro.net import HostId, wan_of_lans
from repro.sim import Simulator


class TestClassifier:
    def test_first_observation_is_cheap_and_calibrates(self):
        clf = TransitTimeClassifier()
        assert clf.classify(0.01) is False
        assert clf.cheap_baseline == pytest.approx(0.01)

    def test_separates_arpanet_scale_populations(self):
        clf = TransitTimeClassifier(spread_factor=5.0)
        # LAN-class transits ~4ms, long-haul ~60-200ms.
        assert clf.classify(0.004) is False
        assert clf.classify(0.150) is True
        assert clf.classify(0.0045) is False
        assert clf.classify(0.062) is True

    def test_expensive_only_traffic_then_cheap_corrects(self):
        clf = TransitTimeClassifier(spread_factor=5.0)
        assert clf.classify(0.100) is False  # calibrates (wrongly) high
        assert clf.classify(0.110) is False  # within spread of baseline
        assert clf.classify(0.004) is False  # cheap arrival re-calibrates
        assert clf.classify(0.100) is True   # now correctly expensive

    def test_baseline_decay_forgets_anomalous_minimum(self):
        clf = TransitTimeClassifier(spread_factor=5.0, decay=1.5)
        clf.classify(0.0001)  # anomalously fast one-off
        for _ in range(20):
            clf.classify(0.004)
        assert clf.classify(0.004) is False  # decayed back to normal

    def test_queueing_noise_on_cheap_path_tolerated(self):
        clf = TransitTimeClassifier(spread_factor=5.0)
        clf.classify(0.004)
        assert clf.classify(0.012) is False  # 3x noise < spread factor

    def test_validation(self):
        with pytest.raises(ValueError):
            TransitTimeClassifier(spread_factor=1.0)
        with pytest.raises(ValueError):
            TransitTimeClassifier(decay=0.9)
        with pytest.raises(ValueError):
            TransitTimeClassifier(initial_floor=0.0)
        with pytest.raises(ValueError):
            TransitTimeClassifier().classify(-0.1)

    @given(st.lists(st.floats(min_value=0.001, max_value=0.01), min_size=1,
                    max_size=50))
    def test_pure_cheap_traffic_never_expensive(self, transits):
        """Within a 10x band below the spread factor... use 4x band."""
        clf = TransitTimeClassifier(spread_factor=11.0)
        for t in transits:
            assert clf.classify(t) is False

    @given(st.lists(st.sampled_from([0.004, 0.005, 0.15, 0.2]), min_size=2,
                    max_size=60))
    def test_mixed_traffic_classified_by_population(self, transits):
        clf = TransitTimeClassifier(spread_factor=5.0)
        clf.classify(0.004)  # calibrate cheap
        for t in transits:
            assert clf.classify(t) == (t > 0.1)


class TestTimestampModeEndToEnd:
    def build(self, seed=0):
        sim = Simulator(seed=seed)
        built = wan_of_lans(sim, clusters=2, hosts_per_cluster=2,
                            backbone="line")
        config = ProtocolConfig(cost_bit_mode=CostBitMode.TIMESTAMP)
        system = BroadcastSystem(built, config=config)
        return sim, built, system

    def test_clusters_learned_without_network_cost_bit(self):
        sim, built, system = self.build()
        system.start()
        system.broadcast_stream(5, interval=1.0, start_at=2.0)
        assert system.run_until_delivered(5, timeout=200.0)
        sim.run(until=sim.now + 10.0)
        h00 = system.hosts[HostId("h0.0")]
        assert HostId("h0.1") in h00.cluster
        assert HostId("h1.0") not in h00.cluster
        h10 = system.hosts[HostId("h1.0")]
        assert HostId("h1.1") in h10.cluster
        assert HostId("h0.0") not in h10.cluster

    def test_delivery_and_structure_with_inference(self):
        from repro.verify import check_all, run_to_quiescence

        sim, built, system = self.build(seed=3)
        system.start()
        system.broadcast_stream(10, interval=1.0, start_at=2.0)
        assert system.run_until_delivered(10, timeout=300.0)
        assert run_to_quiescence(system, stable_window=10.0, timeout=120.0)
        assert check_all(system, quiescent=True) == []
