"""Property-based tests of the attachment procedure's case analysis.

Hypothesis generates random host states (cluster views, MAP contents,
parent pointers, orders); every candidate the planner emits must
satisfy the paper's formulas for its claimed case/option, re-verified
here by an independent predicate implementation.
"""

from typing import Dict, Optional

from hypothesis import given
from hypothesis import strategies as st

from repro.core import SeqnoSet
from repro.core.attachment import AttachmentView, classify_case, plan_attachment
from repro.core.cluster import ClusterView
from repro.core.config import ClusterMode
from repro.core.mapstate import MapState
from repro.net import HostId

ME = HostId("me")
OTHERS = [HostId(f"p{i}") for i in range(5)]
ALL = [ME] + OTHERS


@st.composite
def views(draw):
    """A random, internally consistent AttachmentView."""
    in_cluster = draw(st.sets(st.sampled_from(OTHERS), max_size=4))
    my_max = draw(st.integers(min_value=0, max_value=6))
    own = SeqnoSet(range(1, my_max + 1))
    maps = MapState(ME, own)
    parents: Dict[HostId, Optional[HostId]] = {}
    for other in OTHERS:
        other_max = draw(st.integers(min_value=0, max_value=6))
        parent = draw(st.sampled_from([None] + ALL))
        parents[other] = parent
        maps.apply_info(other, SeqnoSet(range(1, other_max + 1)), parent)
    my_parent = draw(st.sampled_from([None] + OTHERS))
    orders = draw(st.permutations(range(len(ALL))))
    order_map = dict(zip(ALL, orders))
    cluster = ClusterView(ME, ClusterMode.STATIC, static_members=in_cluster)
    margin = draw(st.integers(min_value=1, max_value=3))
    return AttachmentView(
        me=ME, parent=my_parent, participants=sorted(OTHERS),
        cluster=cluster, maps=maps, order=order_map.__getitem__,
        delay_optimization=draw(st.booleans()), delay_opt_margin=margin)


def is_leader(view, j):
    return j in view.cluster and view.maps.parent_of(j) not in view.cluster


@given(views())
def test_case_matches_parent_location(view):
    case = classify_case(view)
    if view.parent is None:
        assert case == "I"
    elif view.parent in view.cluster:
        assert case == "III"
    else:
        assert case == "II"


@given(views())
def test_candidates_satisfy_their_claimed_formulas(view):
    plan = plan_attachment(view)
    my_max = view.maps.info_of(ME).max_seqno
    for candidate in plan.candidates:
        j = candidate.target
        j_max = view.maps.info_of(j).max_seqno
        assert j != ME
        assert j != view.parent
        assert candidate.case == plan.case
        if candidate.case in ("I", "II") and candidate.option == 1:
            assert is_leader(view, j)
            assert my_max < j_max
        elif candidate.case in ("I", "II") and candidate.option == 2:
            assert is_leader(view, j)
            assert my_max == j_max
            assert view.order(ME) < view.order(j)
        elif candidate.case == "I" and candidate.option == 3:
            assert j not in view.cluster
            assert my_max < j_max
        elif candidate.case == "II" and candidate.option == 3:
            assert view.delay_optimization
            assert j not in view.cluster
            parent_max = view.maps.info_of(view.parent).max_seqno
            assert j_max >= parent_max + view.delay_opt_margin
        elif candidate.case == "III":
            assert is_leader(view, j)
            ancestors, _ = view.maps.ancestors_of_me(view.parent)
            assert j in ancestors
            assert my_max <= j_max
        else:  # pragma: no cover
            raise AssertionError(f"unknown option {candidate}")


@given(views())
def test_candidate_priority_never_inverts_options(view):
    """Within a case, lower-numbered options come first."""
    plan = plan_attachment(view)
    options = [c.option for c in plan.candidates]
    seen_best: Dict[HostId, int] = {}
    # Options are emitted grouped; a later candidate can't belong to an
    # earlier option group once a higher option started.
    assert options == sorted(options)


@given(views())
def test_cycle_breaking_only_for_highest_order(view):
    plan = plan_attachment(view)
    if plan.cycle_detected:
        assert plan.case == "III"
        assert ME in plan.cycle
        highest = max(plan.cycle, key=lambda h: (view.order(h), str(h)))
        assert plan.must_break_cycle == (highest == ME)
        assert plan.candidates == []


@given(views())
def test_planner_is_deterministic(view):
    first = plan_attachment(view)
    second = plan_attachment(view)
    assert [c.target for c in first.candidates] == \
        [c.target for c in second.candidates]
    assert first.cycle_detected == second.cycle_detected


@given(views())
def test_planner_does_not_mutate_state(view):
    info_before = {h: list(view.maps.info_of(h)) for h in ALL}
    cluster_before = view.cluster.members()
    plan_attachment(view)
    assert {h: list(view.maps.info_of(h)) for h in ALL} == info_before
    assert view.cluster.members() == cluster_before
