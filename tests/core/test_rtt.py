"""Unit tests for the adaptive control-plane timing primitives."""

import random

import pytest

from repro.core import CongestionSignal, ExponentialBackoff, PeerRtt, RttEstimator
from repro.net import HostId

A = HostId("a")


# -- RttEstimator -------------------------------------------------------


def test_first_sample_initialises_srtt_and_rttvar():
    est = RttEstimator()
    assert est.rto() is None
    est.observe(0.2)
    assert est.srtt == pytest.approx(0.2)
    assert est.rttvar == pytest.approx(0.1)
    # RFC 6298: RTO = SRTT + 4 * RTTVAR
    assert est.rto() == pytest.approx(0.2 + 4 * 0.1)


def test_smoothing_follows_rfc6298_gains():
    est = RttEstimator()
    est.observe(0.2)
    est.observe(0.4)
    assert est.rttvar == pytest.approx(0.75 * 0.1 + 0.25 * abs(0.2 - 0.4))
    assert est.srtt == pytest.approx(0.875 * 0.2 + 0.125 * 0.4)


def test_negative_and_nonfinite_samples_ignored():
    est = RttEstimator()
    est.observe(-1.0)
    est.observe(float("nan"))
    est.observe(float("inf"))
    assert est.samples == 0
    assert est.rto() is None


def test_karn_backoff_doubles_and_resets_on_sample():
    est = RttEstimator()
    est.observe(0.1)
    base = est.rto()
    est.on_timeout()
    assert est.rto() == pytest.approx(2 * base)
    est.on_timeout()
    assert est.rto() == pytest.approx(4 * base)
    est.observe(0.1)  # valid sample ends the backoff
    assert est.rto() == pytest.approx(est.srtt + 4 * est.rttvar)


def test_backoff_multiplier_is_capped():
    est = RttEstimator()
    est.observe(0.1)
    base = est.rto()
    for _ in range(100):
        est.on_timeout()
    assert est.rto() <= 64 * base + 1e-9


def test_rttvar_floor_keeps_rto_above_srtt():
    est = RttEstimator()
    for _ in range(50):
        est.observe(0.25)  # variance decays toward zero
    assert est.rto() >= est.srtt + 0.001


# -- PeerRtt ------------------------------------------------------------


def test_unmeasured_peer_returns_the_ceiling():
    rtt = PeerRtt()
    assert rtt.rto(A, floor=0.1, ceiling=2.0) == 2.0
    assert rtt.samples(A) == 0
    assert rtt.srtt(A) is None


def test_measured_peer_is_clamped_to_floor_and_ceiling():
    rtt = PeerRtt()
    rtt.observe(A, 0.01)
    assert rtt.rto(A, floor=0.2, ceiling=2.0) == 0.2
    rtt.observe(A, 100.0)
    assert rtt.rto(A, floor=0.2, ceiling=2.0) == 2.0
    assert rtt.samples(A) == 2


def test_peer_timeout_before_any_sample_is_harmless():
    rtt = PeerRtt()
    rtt.on_timeout(A)
    assert rtt.rto(A, floor=0.1, ceiling=2.0) == 2.0


# -- ExponentialBackoff -------------------------------------------------


def test_backoff_doubles_up_to_the_cap():
    bo = ExponentialBackoff(base=1.0, cap=8.0, jitter_frac=0.0,
                            rng=random.Random(0))
    assert [bo.next_delay() for _ in range(5)] == [1.0, 2.0, 4.0, 8.0, 8.0]
    bo.reset()
    assert bo.next_delay() == 1.0


def test_backoff_jitter_stays_within_band():
    bo = ExponentialBackoff(base=1.0, cap=64.0, jitter_frac=0.25,
                            rng=random.Random(7))
    for k in range(6):
        nominal = min(2.0 ** k, 64.0)
        delay = bo.next_delay()
        assert 0.75 * nominal <= delay <= 1.25 * nominal


def test_backoff_rejects_bad_parameters():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        ExponentialBackoff(base=0.0, cap=1.0, jitter_frac=0.0, rng=rng)
    with pytest.raises(ValueError):
        ExponentialBackoff(base=2.0, cap=1.0, jitter_frac=0.0, rng=rng)
    with pytest.raises(ValueError):
        ExponentialBackoff(base=1.0, cap=2.0, jitter_frac=1.0, rng=rng)


# -- CongestionSignal ---------------------------------------------------


def test_congestion_level_is_recent_bad_fraction():
    sig = CongestionSignal(window=10.0)
    for _ in range(3):
        sig.note_good(0.0)
    sig.note_bad(0.0)
    assert sig.level(0.0) == pytest.approx(0.25)


def test_congestion_quiet_signal_reads_zero():
    sig = CongestionSignal(window=10.0)
    assert sig.level(5.0) == 0.0
    sig.note_bad(0.0)
    # One half-life later the single tally has decayed below the
    # one-receive evidence threshold.
    assert sig.level(10.0) == 0.0


def test_congestion_decays_with_half_life():
    sig = CongestionSignal(window=10.0)
    for _ in range(8):
        sig.note_bad(0.0)
    for _ in range(8):
        sig.note_good(20.0)  # two half-lives: bad tally now 2
    assert sig.level(20.0) == pytest.approx(2.0 / 10.0)


def test_congestion_rejects_nonpositive_window():
    with pytest.raises(ValueError):
        CongestionSignal(window=0.0)
