"""Tests for bounded host resources: limits, shedding, admission.

The load-bearing guarantee is byte-identity: with ``resources=None``
(the default) or an all-zero :class:`ResourceConfig`, delivery behavior
is exactly what it was before the resource model existed.
"""

import pytest

from repro.core import (
    BroadcastSystem,
    ProtocolConfig,
    ResourceConfig,
    ShedPolicy,
    TokenBucket,
)
from repro.net import HostId, wan_of_lans
from repro.sim import Simulator


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)

    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, burst=3, now=0.0)
        assert all(bucket.try_take(0.0) for _ in range(3))
        assert not bucket.try_take(0.0)

    def test_refills_with_time(self):
        bucket = TokenBucket(rate=2.0, burst=1, now=0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.1)
        assert bucket.try_take(1.0)  # 0.9s * 2/s refilled past 1 token

    def test_brake_scales_refill(self):
        bucket = TokenBucket(rate=2.0, burst=1, now=0.0)
        assert bucket.try_take(0.0)
        # 0.6s at half rate = 0.6 tokens: braked refill stays short.
        assert not bucket.try_take(0.6, brake=0.5)
        assert bucket.try_take(1.0, brake=0.5)

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2, now=0.0)
        bucket.try_take(1000.0)
        assert bucket.tokens <= 2.0

    def test_reset_restores_burst(self):
        bucket = TokenBucket(rate=0.001, burst=2, now=0.0)
        assert bucket.try_take(0.0) and bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        bucket.reset(0.0)
        assert bucket.try_take(0.0)


class TestResourceConfigValidation:
    def test_defaults_disable_everything(self):
        config = ResourceConfig()
        assert not config.bounds_store
        assert not config.bounds_fill_table
        assert not config.bounds_outbound
        assert not config.admission_enabled

    @pytest.mark.parametrize("kwargs", [
        dict(store_limit=-1),
        dict(fill_table_limit=-1),
        dict(outbound_queue_limit=-1),
        dict(admission_rate=-0.1),
        dict(admission_burst=0),
        dict(congestion_brake=0.0),
        dict(congestion_brake=1.5),
        dict(store_policy=ShedPolicy.REJECT_AT_SOURCE),
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ResourceConfig(**kwargs)

    def test_enabled_flags(self):
        config = ResourceConfig(store_limit=4, fill_table_limit=8,
                                outbound_queue_limit=2, admission_rate=1.0)
        assert config.bounds_store and config.bounds_fill_table
        assert config.bounds_outbound and config.admission_enabled


def build_system(resources, seed=11, clusters=2, hosts_per_cluster=2):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=clusters,
                        hosts_per_cluster=hosts_per_cluster, backbone="line")
    config = ProtocolConfig(data_size_bits=4_000, resources=resources)
    return sim, BroadcastSystem(built, config=config).start()


class TestStoreShedding:
    def fill_store(self, policy):
        _, system = build_system(
            ResourceConfig(store_limit=3, store_policy=policy))
        host = system.hosts[HostId("h1.0")]
        for seq in range(1, 8):
            host.store[seq] = object()
        host._shed_store()
        return sorted(host.store), system

    def test_drop_oldest_keeps_newest(self):
        kept, system = self.fill_store(ShedPolicy.DROP_OLDEST)
        assert kept == [5, 6, 7]
        assert system.sim.metrics.counter("proto.shed.store").value == 4

    def test_drop_newest_keeps_oldest(self):
        kept, _ = self.fill_store(ShedPolicy.DROP_NEWEST)
        assert kept == [1, 2, 3]

    def test_sheds_are_traced(self):
        _, system = self.fill_store(ShedPolicy.DROP_OLDEST)
        records = [r for r in system.sim.trace.records(kind="host.shed")
                   if r.fields["buffer"] == "store"]
        assert len(records) == 4
        assert records[0].fields["policy"] == "drop_oldest"

    def test_source_store_is_never_shed(self):
        _, system = build_system(ResourceConfig(store_limit=2))
        source = system.source
        for seq in range(1, 10):
            source.store[seq] = object()
        source._shed_store()
        assert len(source.store) == 9

    def test_bounded_store_still_delivers_everything(self):
        sim, system = build_system(ResourceConfig(store_limit=4))
        n = 12
        system.broadcast_stream(n, interval=0.5, start_at=2.0)
        assert system.run_until_delivered(n, timeout=120.0)
        for host_id, host in system.hosts.items():
            if host_id != system.source_id:
                assert len(host.store) <= 4


class TestFillTableShedding:
    def test_evicts_oldest_entries_first(self):
        _, system = build_system(ResourceConfig(fill_table_limit=2))
        host = system.hosts[HostId("h1.0")]
        target_a, target_b = HostId("h0.0"), HostId("h0.1")
        host._recent_fills = {target_a: {1: 1.0, 2: 5.0}, target_b: {1: 3.0}}
        host._fill_entries = 3
        host._shed_fill_table()
        assert host._fill_entries == 2
        assert host._recent_fills[target_a] == {2: 5.0}  # stamp 1.0 evicted
        assert host._recent_fills[target_b] == {1: 3.0}
        assert system.sim.metrics.counter("proto.shed.fill_table").value == 1

    def test_fill_table_stays_bounded_under_load(self):
        sim, system = build_system(ResourceConfig(fill_table_limit=5))
        n = 10
        system.broadcast_stream(n, interval=0.5, start_at=2.0)
        assert system.run_until_delivered(n, timeout=120.0)
        for host in system.hosts.values():
            total = sum(len(f) for f in host._recent_fills.values())
            assert total <= 5


class TestOutboundShedding:
    def test_deep_queue_sheds_data_send(self):
        _, system = build_system(ResourceConfig(outbound_queue_limit=2))
        host = system.hosts[HostId("h1.0")]
        host.store[1] = type("Stored", (), {
            "seq": 1, "content": "x", "created_at": 0.0, "origin": None})()
        host.port.queue_length = lambda: 5  # saturated access link
        before = host.sim.metrics.counter("proto.shed.outbound").value
        host._send_data(HostId("h1.1"), 1, gapfill=False)
        assert host.sim.metrics.counter("proto.shed.outbound").value == before + 1
        records = [r for r in host.sim.trace.records(kind="host.shed")
                   if r.fields["buffer"] == "outbound"]
        assert records and records[-1].fields["policy"] == "drop_newest"

    def test_shallow_queue_sends_normally(self):
        _, system = build_system(ResourceConfig(outbound_queue_limit=5))
        host = system.hosts[HostId("h1.0")]
        assert host.port.queue_length() == 0
        host.store[1] = type("Stored", (), {
            "seq": 1, "content": "x", "created_at": 0.0, "origin": None})()
        host._send_data(HostId("h1.1"), 1, gapfill=False)
        assert host.sim.metrics.counter("proto.shed.outbound").value == 0
        assert host.sim.metrics.counter("proto.data.forwarded").value == 1


class TestAdmissionControl:
    def test_rejects_past_burst_and_recovers_with_time(self):
        sim, system = build_system(
            ResourceConfig(admission_rate=1.0, admission_burst=2))
        source = system.source
        sim.run(until=2.0)
        assert source.broadcast("a") == 1
        assert source.broadcast("b") == 2
        assert source.broadcast("c") == 0  # bucket empty: rejected
        rejected = sim.metrics.counter("proto.source.admission_rejected")
        assert rejected.value == 1
        sim.run(until=4.0)
        assert source.broadcast("d") == 3  # refilled

    def test_rejection_does_not_consume_seqnos(self):
        sim, system = build_system(
            ResourceConfig(admission_rate=0.01, admission_burst=1))
        source = system.source
        assert source.broadcast("a") == 1
        assert source.broadcast("b") == 0
        assert source.broadcast("c") == 0
        sim.run(until=200.0)
        assert source.broadcast("d") == 2  # seqnos stay contiguous

    def test_recover_resets_the_bucket(self):
        sim, system = build_system(
            ResourceConfig(admission_rate=0.001, admission_burst=1))
        source = system.source
        assert source.broadcast("a") == 1
        assert source.broadcast("b") == 0
        source.crash()
        source.recover()
        assert source.broadcast("c") == 2


def delivery_signature(system):
    return [
        (str(host_id), r.seq, r.delivered_at, str(r.supplier))
        for host_id in sorted(system.hosts, key=str)
        for r in system.hosts[host_id].deliveries.records()
    ]


class TestByteIdentity:
    """resources=None, ResourceConfig() all-zero: same bytes out."""

    def run_one(self, resources, seed):
        sim, system = build_system(resources, seed=seed,
                                   clusters=3, hosts_per_cluster=2)
        system.broadcast_stream(8, interval=1.0, start_at=2.0)
        system.run_until_delivered(8, timeout=120.0)
        return delivery_signature(system), sim.now

    @pytest.mark.parametrize("seed", [7, 23])
    def test_disabled_config_is_byte_identical(self, seed):
        baseline = self.run_one(None, seed)
        all_zero = self.run_one(ResourceConfig(), seed)
        assert baseline == all_zero

    def test_crash_recovery_path_is_byte_identical(self):
        def run(resources):
            sim, system = build_system(resources, seed=5,
                                       clusters=3, hosts_per_cluster=2)
            victim = HostId("h1.0")
            system.broadcast_stream(8, interval=1.0, start_at=2.0)
            sim.schedule_at(4.0, lambda: system.crash_host(victim))
            sim.schedule_at(12.0, lambda: system.recover_host(victim))
            system.run_until_delivered(8, timeout=200.0)
            return delivery_signature(system), sim.now

        assert run(None) == run(ResourceConfig())
