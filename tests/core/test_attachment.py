"""Unit tests for the attachment procedure's case analysis (Section 4.2)."""

from typing import Dict, Iterable, Optional

from repro.core import SeqnoSet
from repro.core.attachment import AttachmentView, classify_case, plan_attachment
from repro.core.cluster import ClusterView
from repro.core.config import ClusterMode
from repro.core.mapstate import MapState
from repro.net import HostId

ME = HostId("me")


def build_view(
    parent: Optional[str] = None,
    cluster: Iterable[str] = (),
    infos: Optional[Dict[str, int]] = None,
    parents: Optional[Dict[str, Optional[str]]] = None,
    my_info: int = 0,
    order: Optional[Dict[str, int]] = None,
    participants: Optional[Iterable[str]] = None,
    delay_optimization: bool = True,
    delay_opt_margin: int = 1,
) -> AttachmentView:
    """Build an AttachmentView from compact string-based specs.

    ``infos`` maps host name -> INFO max (represented as {1..max});
    ``parents`` maps host name -> its parent's name (or None).
    """
    infos = infos or {}
    parents = parents or {}
    all_names = set(infos) | set(parents) | set(cluster)
    if participants is not None:
        all_names |= set(participants)
    own = SeqnoSet(range(1, my_info + 1))
    maps = MapState(ME, own)
    cl = ClusterView(ME, ClusterMode.STATIC,
                     static_members={HostId(c) for c in cluster})
    for name in sorted(all_names):
        info = SeqnoSet(range(1, infos.get(name, 0) + 1))
        parent_id = parents.get(name)
        maps.apply_info(HostId(name), info,
                        HostId(parent_id) if parent_id else None)
    order = order or {}
    default_order = {name: idx for idx, name in enumerate(sorted(all_names))}
    default_order["me"] = order.get("me", -1)

    def order_fn(h: HostId) -> int:
        return order.get(h.name, default_order.get(h.name, 0))

    return AttachmentView(
        me=ME,
        parent=HostId(parent) if parent else None,
        participants=sorted(HostId(n) for n in all_names),
        cluster=cl,
        maps=maps,
        order=order_fn,
        delay_optimization=delay_optimization,
        delay_opt_margin=delay_opt_margin,
    )


def names(plan):
    return [(c.target.name, c.case, c.option) for c in plan.candidates]


class TestCaseClassification:
    def test_no_parent_is_case_i(self):
        assert classify_case(build_view()) == "I"

    def test_out_of_cluster_parent_is_case_ii(self):
        view = build_view(parent="p", cluster=["a"])
        assert classify_case(view) == "II"

    def test_in_cluster_parent_is_case_iii(self):
        view = build_view(parent="a", cluster=["a"])
        assert classify_case(view) == "III"


class TestCaseI:
    def test_option1_in_cluster_leader_with_greater_info(self):
        view = build_view(cluster=["a"], infos={"a": 3}, parents={"a": "x"},
                         my_info=1)
        plan = plan_attachment(view)
        assert ("a", "I", 1) in names(plan)

    def test_option1_requires_greater_info(self):
        view = build_view(cluster=["a"], infos={"a": 1}, parents={"a": "x"},
                         my_info=1)
        plan = plan_attachment(view)
        assert all(opt != 1 for _, _, opt in names(plan))

    def test_option1_requires_candidate_to_be_leader(self):
        # a's parent b is inside my cluster -> a is not a leader.
        view = build_view(cluster=["a", "b"], infos={"a": 3}, parents={"a": "b"},
                         my_info=1)
        plan = plan_attachment(view)
        assert ("a", "I", 1) not in names(plan)

    def test_option2_equal_info_higher_order(self):
        view = build_view(cluster=["a"], infos={"a": 2}, my_info=2,
                         order={"me": 0, "a": 5})
        plan = plan_attachment(view)
        assert ("a", "I", 2) in names(plan)

    def test_option2_rejects_lower_order(self):
        view = build_view(cluster=["a"], infos={"a": 2}, my_info=2,
                         order={"me": 9, "a": 5})
        plan = plan_attachment(view)
        assert names(plan) == []

    def test_option3_out_of_cluster_greater_info(self):
        view = build_view(cluster=[], infos={"z": 4}, my_info=2)
        plan = plan_attachment(view)
        assert ("z", "I", 3) in names(plan)

    def test_option3_rejects_equal_info(self):
        view = build_view(cluster=[], infos={"z": 2}, my_info=2)
        plan = plan_attachment(view)
        assert names(plan) == []

    def test_options_are_prioritized_in_order(self):
        view = build_view(
            cluster=["a", "b"],
            infos={"a": 5, "b": 2, "z": 9},
            parents={"a": "x"},
            my_info=2,
            order={"me": 0, "b": 3},
        )
        plan = plan_attachment(view)
        got = names(plan)
        # option1 (a) before option2 (b) before option3 (z)
        assert got.index(("a", "I", 1)) < got.index(("b", "I", 2)) < got.index(("z", "I", 3))

    def test_candidates_within_option_sorted_by_info_then_order(self):
        view = build_view(
            cluster=["a", "b", "c"],
            infos={"a": 3, "b": 5, "c": 5},
            parents={"a": "x", "b": "x", "c": "x"},
            my_info=1,
            order={"b": 2, "c": 1},
        )
        plan = plan_attachment(view)
        opt1 = [n for n, _, o in names(plan) if o == 1]
        assert opt1 == ["c", "b", "a"]  # 5-max first; order(c) < order(b)

    def test_never_proposes_self(self):
        view = build_view(cluster=["me"], infos={"me": 9}, my_info=0)
        plan = plan_attachment(view)
        assert all(n != "me" for n, _, _ in names(plan))


class TestCaseII:
    def test_options_1_and_2_reused(self):
        view = build_view(parent="p", cluster=["a"], my_info=1,
                         infos={"a": 3, "p": 3}, parents={"a": "x"})
        plan = plan_attachment(view)
        assert plan.case == "II"
        assert ("a", "II", 1) in names(plan)

    def test_option3_candidate_ahead_of_parent(self):
        view = build_view(parent="p", cluster=[], my_info=2,
                         infos={"p": 3, "z": 4}, delay_opt_margin=1)
        plan = plan_attachment(view)
        assert ("z", "II", 3) in names(plan)

    def test_option3_compares_against_parent_not_self(self):
        # z is ahead of me but NOT ahead of my parent -> no candidate.
        view = build_view(parent="p", cluster=[], my_info=1,
                         infos={"p": 5, "z": 4}, delay_opt_margin=1)
        plan = plan_attachment(view)
        assert names(plan) == []

    def test_option3_margin_hysteresis(self):
        view = build_view(parent="p", cluster=[], my_info=2,
                         infos={"p": 3, "z": 4}, delay_opt_margin=2)
        assert names(plan_attachment(view)) == []
        view2 = build_view(parent="p", cluster=[], my_info=2,
                          infos={"p": 3, "z": 5}, delay_opt_margin=2)
        assert ("z", "II", 3) in names(plan_attachment(view2))

    def test_option3_disabled_by_ablation_flag(self):
        view = build_view(parent="p", cluster=[], my_info=2,
                         infos={"p": 3, "z": 9}, delay_optimization=False)
        assert names(plan_attachment(view)) == []

    def test_option3_never_proposes_current_parent(self):
        view = build_view(parent="p", cluster=[], my_info=1, infos={"p": 5})
        assert names(plan_attachment(view)) == []


class TestCaseIII:
    def test_attaches_to_leader_ancestor(self):
        # me -> a -> L, L's parent x outside the cluster, L INFO >= mine.
        view = build_view(parent="a", cluster=["a", "L"], my_info=2,
                         infos={"a": 2, "L": 2}, parents={"a": "L", "L": "x"})
        plan = plan_attachment(view)
        assert plan.case == "III"
        assert names(plan) == [("L", "III", 1)]

    def test_rejects_ancestor_with_smaller_info(self):
        view = build_view(parent="a", cluster=["a", "L"], my_info=5,
                         infos={"a": 5, "L": 2}, parents={"a": "L", "L": "x"})
        assert names(plan_attachment(view)) == []

    def test_rejects_non_leader_ancestor(self):
        # L's parent is inside my cluster -> L is not a leader.
        view = build_view(parent="a", cluster=["a", "L", "q"], my_info=1,
                         infos={"a": 1, "L": 3}, parents={"a": "L", "L": "q"})
        assert names(plan_attachment(view)) == []

    def test_never_proposes_current_parent(self):
        view = build_view(parent="a", cluster=["a"], my_info=1,
                         infos={"a": 3}, parents={"a": "x"})
        assert names(plan_attachment(view)) == []

    def test_out_of_cluster_ancestors_not_candidates(self):
        view = build_view(parent="a", cluster=["a"], my_info=1,
                         infos={"a": 1, "z": 5}, parents={"a": "z", "z": None})
        assert names(plan_attachment(view)) == []


class TestCycleBreaking:
    def cycle_view(self, my_order, a_order=1, b_order=2):
        return build_view(parent="a", cluster=["a", "b"], my_info=2,
                         infos={"a": 2, "b": 2},
                         parents={"a": "b", "b": "me"},
                         order={"me": my_order, "a": a_order, "b": b_order})

    def test_cycle_detected(self):
        plan = plan_attachment(self.cycle_view(my_order=0))
        assert plan.cycle_detected
        assert [h.name for h in plan.cycle] == ["me", "a", "b"]

    def test_highest_order_member_must_break(self):
        plan = plan_attachment(self.cycle_view(my_order=9))
        assert plan.must_break_cycle

    def test_lower_order_member_waits(self):
        plan = plan_attachment(self.cycle_view(my_order=0))
        assert not plan.must_break_cycle
        assert plan.candidates == []

    def test_cycle_not_through_me_is_not_my_problem(self):
        view = build_view(parent="a", cluster=["a", "b", "c"], my_info=1,
                         infos={"a": 1}, parents={"a": "b", "b": "c", "c": "b"})
        plan = plan_attachment(view)
        assert not plan.cycle_detected
