"""Unit tests for CLUSTER-set maintenance."""

import pytest

from repro.core import ClusterMode, ClusterView
from repro.net import HostId

ME = HostId("me")
J = HostId("j")
K = HostId("k")


def test_initializes_to_self_only():
    view = ClusterView(ME)
    assert view.members() == {ME}
    assert ME in view
    assert J not in view
    assert len(view) == 1


def test_cheap_message_admits_sender():
    view = ClusterView(ME)
    assert view.observe(J, cost_bit=False) is True
    assert J in view
    assert view.observe(J, cost_bit=False) is False  # already in


def test_expensive_message_evicts_sender():
    view = ClusterView(ME)
    view.observe(J, cost_bit=False)
    assert view.observe(J, cost_bit=True) is True
    assert J not in view
    assert view.observe(J, cost_bit=True) is False  # already out


def test_self_is_never_evicted():
    view = ClusterView(ME)
    assert view.observe(ME, cost_bit=True) is False
    assert ME in view


def test_none_is_never_a_member():
    view = ClusterView(ME)
    assert None not in view


def test_neighbors_excludes_self():
    view = ClusterView(ME)
    view.observe(J, cost_bit=False)
    view.observe(K, cost_bit=False)
    assert view.neighbors() == {J, K}
    assert view.members() == {ME, J, K}


def test_members_returns_copy():
    view = ClusterView(ME)
    members = view.members()
    members.add(J)
    assert J not in view


def test_static_mode_requires_members_and_ignores_observations():
    with pytest.raises(ValueError):
        ClusterView(ME, ClusterMode.STATIC)
    view = ClusterView(ME, ClusterMode.STATIC, static_members={J})
    assert view.members() == {ME, J}
    assert view.observe(K, cost_bit=False) is False
    assert K not in view
    assert view.observe(J, cost_bit=True) is False
    assert J in view  # static knowledge never changes


def test_singleton_mode_never_learns():
    view = ClusterView(ME, ClusterMode.SINGLETON)
    assert view.observe(J, cost_bit=False) is False
    assert view.members() == {ME}
