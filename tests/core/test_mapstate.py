"""Unit tests for MAP / parent-pointer state."""

from repro.core import MapState, SeqnoSet
from repro.net import HostId

ME, A, B, C = (HostId(x) for x in "mabc")


def make_state():
    own = SeqnoSet([1, 2, 3])
    return MapState(ME, own), own


def test_own_view_aliases_info():
    state, own = make_state()
    assert state.info_of(ME) is own
    own.add(4)
    assert 4 in state.info_of(ME)


def test_unknown_host_has_empty_view():
    state, _ = make_state()
    assert state.info_of(A).max_seqno == 0
    assert state.parent_of(A) is None
    assert state.authoritative_prefix(A) == 0


def test_apply_info_replaces_view():
    state, _ = make_state()
    state.note_sent(A, [5, 6])  # optimistic
    state.apply_info(A, SeqnoSet([1, 2]), parent=B)
    assert list(state.info_of(A)) == [1, 2]  # marks wiped
    assert state.parent_of(A) == B


def test_apply_info_for_self_is_ignored():
    state, own = make_state()
    state.apply_info(ME, SeqnoSet([99]), parent=A)
    assert 99 not in own
    assert state.parent_of(ME) is None


def test_note_has_adds_single_seq():
    state, _ = make_state()
    state.note_has(A, 7)
    assert 7 in state.info_of(A)
    state.note_has(ME, 9)  # self no-op through this path
    assert 9 in state.info_of(ME) or True


def test_authoritative_prefix_tracks_snapshots_not_marks():
    state, _ = make_state()
    state.note_sent(A, [1, 2, 3])
    assert state.authoritative_prefix(A) == 0  # optimistic marks don't count
    state.apply_info(A, SeqnoSet([1, 2]), parent=None)
    assert state.authoritative_prefix(A) == 2
    # A stale snapshot cannot regress the proven prefix.
    state.apply_info(A, SeqnoSet([1]), parent=None)
    assert state.authoritative_prefix(A) == 2


def test_authoritative_prefix_of_self():
    state, own = make_state()
    assert state.authoritative_prefix(ME) == 3


def test_known_hosts():
    state, _ = make_state()
    state.apply_info(A, SeqnoSet(), None)
    assert state.known_hosts() == {ME, A}


class TestAncestorWalks:
    def test_simple_chain(self):
        state, _ = make_state()
        state.set_parent_view(A, B)
        state.set_parent_view(B, C)
        chain, through_me = state.ancestors_of_me(A)
        assert chain == [A, B, C]
        assert not through_me

    def test_chain_ends_at_unknown_parent(self):
        state, _ = make_state()
        chain, through_me = state.ancestors_of_me(A)
        assert chain == [A]
        assert not through_me

    def test_no_parent_no_ancestors(self):
        state, _ = make_state()
        chain, through_me = state.ancestors_of_me(None)
        assert chain == []
        assert not through_me

    def test_cycle_through_me_detected(self):
        state, _ = make_state()
        state.set_parent_view(A, B)
        state.set_parent_view(B, ME)
        chain, through_me = state.ancestors_of_me(A)
        assert through_me
        assert chain == [A, B]
        assert state.cycle_members(A) == [ME, A, B]

    def test_cycle_not_through_me_terminates(self):
        state, _ = make_state()
        state.set_parent_view(A, B)
        state.set_parent_view(B, C)
        state.set_parent_view(C, B)  # B <-> C loop, me outside
        chain, through_me = state.ancestors_of_me(A)
        assert not through_me
        assert chain == [A, B, C]
        assert state.cycle_members(A) == []

    def test_set_parent_view_ignores_self(self):
        state, _ = make_state()
        state.set_parent_view(ME, A)
        assert state.parent_of(ME) is None


class TestPersistentHoles:
    def test_no_snapshots_means_no_persistent_hole(self):
        state, _ = make_state()
        assert not state.persistent_hole(A, 1)

    def test_single_snapshot_is_not_persistent(self):
        state, _ = make_state()
        state.apply_info(A, SeqnoSet([2, 3]), None)  # hole at 1
        assert not state.persistent_hole(A, 1)

    def test_hole_across_two_snapshots_is_persistent(self):
        state, _ = make_state()
        state.apply_info(A, SeqnoSet([2, 3]), None)
        state.apply_info(A, SeqnoSet([2, 3, 4]), None)
        assert state.persistent_hole(A, 1)

    def test_repaired_hole_stops_being_persistent(self):
        state, _ = make_state()
        state.apply_info(A, SeqnoSet([2, 3]), None)
        state.apply_info(A, SeqnoSet([1, 2, 3]), None)
        assert not state.persistent_hole(A, 1)

    def test_frontier_is_never_a_hole(self):
        state, _ = make_state()
        state.apply_info(A, SeqnoSet([1, 2]), None)
        state.apply_info(A, SeqnoSet([1, 2]), None)
        # 3 is beyond A's max in both snapshots: frontier, not a hole.
        assert not state.persistent_hole(A, 3)

    def test_new_hole_needs_two_sightings(self):
        state, _ = make_state()
        state.apply_info(A, SeqnoSet([1, 2]), None)
        state.apply_info(A, SeqnoSet([1, 2, 4]), None)  # hole at 3 appears
        assert not state.persistent_hole(A, 3)
        state.apply_info(A, SeqnoSet([1, 2, 4, 5]), None)
        assert state.persistent_hole(A, 3)

    def test_optimistic_marks_do_not_affect_persistence(self):
        state, _ = make_state()
        state.apply_info(A, SeqnoSet([2, 3]), None)
        state.apply_info(A, SeqnoSet([2, 3]), None)
        state.note_sent(A, [1])  # optimistic; not authoritative
        assert state.persistent_hole(A, 1)
