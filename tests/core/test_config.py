"""Unit tests for ProtocolConfig validation and derivation helpers."""

import dataclasses

import pytest

from repro.core import ClusterMode, ProtocolConfig


def test_defaults_are_valid():
    cfg = ProtocolConfig()
    assert cfg.cluster_mode is ClusterMode.DYNAMIC
    assert cfg.enable_delay_optimization


@pytest.mark.parametrize("field,value", [
    ("attachment_period", 0.0),
    ("attachment_period", -1.0),
    ("attach_ack_timeout", 0.0),
    ("info_intra_period", 0.0),
    ("info_inter_period", -2.0),
    ("parent_timeout_intra", 0.0),
    ("parent_timeout_inter", 0.0),
    ("gapfill_neighbor_intra_period", 0.0),
    ("gapfill_neighbor_inter_period", 0.0),
    ("gapfill_nonneighbor_period", 0.0),
    ("gapfill_batch_limit", 0),
    ("gapfill_batch_limit_inter", 0),
    ("gapfill_suppression", -1.0),
    ("child_reconcile_grace", -1.0),
    ("parent_refresh_timeout", 0.0),
    ("delay_opt_margin", 0),
    ("info_jitter_frac", 1.0),
    ("data_size_bits", 0),
    ("control_size_bits", -5),
])
def test_invalid_values_rejected(field, value):
    with pytest.raises(ValueError):
        dataclasses.replace(ProtocolConfig(), **{field: value})


def test_jitter_must_be_less_than_period():
    with pytest.raises(ValueError):
        ProtocolConfig(attachment_period=1.0, attachment_jitter=1.0)


def test_config_is_frozen():
    cfg = ProtocolConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.attachment_period = 5.0  # type: ignore[misc]


class TestScaled:
    def test_scales_all_periods(self):
        base = ProtocolConfig()
        fast = base.scaled(0.5)
        assert fast.attachment_period == base.attachment_period * 0.5
        assert fast.info_intra_period == base.info_intra_period * 0.5
        assert fast.info_inter_period == base.info_inter_period * 0.5
        assert fast.gapfill_nonneighbor_period == base.gapfill_nonneighbor_period * 0.5
        assert fast.parent_timeout_inter == base.parent_timeout_inter * 0.5

    def test_does_not_scale_sizes_or_flags(self):
        slow = ProtocolConfig().scaled(3.0)
        assert slow.data_size_bits == ProtocolConfig().data_size_bits
        assert slow.enable_delay_optimization

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            ProtocolConfig().scaled(0.0)


class TestForScale:
    def test_small_systems_keep_floor(self):
        cfg = ProtocolConfig.for_scale(4)
        assert cfg.info_inter_period == 6.0

    def test_large_systems_stretch_inter_period(self):
        small = ProtocolConfig.for_scale(10)
        large = ProtocolConfig.for_scale(60)
        assert large.info_inter_period > small.info_inter_period
        assert large.parent_timeout_inter > large.info_inter_period

    def test_overrides_win(self):
        cfg = ProtocolConfig.for_scale(60, info_inter_period=2.0)
        assert cfg.info_inter_period == 2.0

    def test_rejects_nonpositive_hosts(self):
        with pytest.raises(ValueError):
            ProtocolConfig.for_scale(0)
