"""Tests for BroadcastSystem assembly and workload helpers."""

import pytest

from repro.core import BroadcastSystem, ClusterMode, ProtocolConfig
from repro.net import HostId, wan_of_lans
from repro.sim import Simulator


def build(k=2, m=2, seed=0, **kwargs):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m,
                        convergence_delay=0.0)
    return sim, built, BroadcastSystem(built, **kwargs)


def test_default_source_is_first_host():
    _, built, system = build()
    assert system.source_id == built.hosts[0]
    assert system.source.is_source


def test_explicit_source_selection():
    _, built, system = build(source=HostId("h1.0"))
    assert system.source_id == HostId("h1.0")
    assert system.hosts[HostId("h0.0")].is_source is False


def test_unknown_source_rejected():
    sim = Simulator(seed=0)
    built = wan_of_lans(sim, 2, 1, convergence_delay=0.0)
    with pytest.raises(ValueError):
        BroadcastSystem(built, source=HostId("nope"))


def test_source_has_highest_static_order():
    _, built, system = build()
    source_order = system._order[system.source_id]
    assert all(system._order[h] < source_order
               for h in built.hosts if h != system.source_id)


def test_broadcast_stream_validation():
    _, _, system = build()
    with pytest.raises(ValueError):
        system.broadcast_stream(5, interval=0.0)
    with pytest.raises(ValueError):
        system.broadcast_stream(-1, interval=1.0)


def test_broadcast_stream_custom_content():
    sim, _, system = build()
    system.broadcast_stream(3, interval=0.5, start_at=1.0,
                            content=lambda k: {"update": k})
    sim.run(until=3.0)
    assert system.source.deliveries.get(2).content == {"update": 2}


def test_run_until_delivered_times_out_honestly():
    sim, built, system = build()
    # Not started: nothing will ever deliver.
    system.broadcast_stream(1, interval=1.0, start_at=1.0)
    assert system.run_until_delivered(1, timeout=5.0) is False
    assert sim.now <= 6.0


def test_static_cluster_mode_seeds_ground_truth():
    _, built, system = build(
        config=ProtocolConfig(cluster_mode=ClusterMode.STATIC))
    h00 = system.hosts[HostId("h0.0")]
    assert HostId("h0.1") in h00.cluster
    assert HostId("h1.0") not in h00.cluster


def test_delivered_counts_and_children_view():
    sim, built, system = build()
    system.start()
    system.broadcast_stream(3, interval=0.5, start_at=1.0)
    assert system.run_until_delivered(3, timeout=60.0)
    counts = system.delivered_counts()
    assert all(v == 3 for v in counts.values())
    children = system.children_view()
    assert sum(len(c) for c in children.values()) >= len(built.hosts) - 1
