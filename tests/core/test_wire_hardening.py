"""Unit tests for wire hardening: checksums, uids, corruption helpers."""

import dataclasses

from repro.core import (
    AttachAck,
    AttachRequest,
    DataMsg,
    DetachNotice,
    InfoMsg,
    SeqnoSet,
    checksum_ok,
    corrupted_copy,
)
from repro.core.wire import compute_checksum

from repro.net import HostId

H = HostId("h")


def _payloads():
    return [
        DataMsg(1, None, 0.0, H),
        InfoMsg(H, SeqnoSet([1, 2]), None),
        AttachRequest(H, SeqnoSet()),
        AttachAck(H, 1, SeqnoSet(), None),
        DetachNotice(H),
    ]


def test_checksum_is_computed_automatically_and_validates():
    for payload in _payloads():
        assert payload.checksum != -1
        assert checksum_ok(payload), payload


def test_checksum_is_deterministic_for_identical_fields():
    # The uid is inside the checksum (it protects the dedup key too),
    # so determinism is checked with the uid pinned.
    a = InfoMsg(H, SeqnoSet([1, 2, 5]), HostId("p"), uid=77)
    b = InfoMsg(H, SeqnoSet([1, 2, 5]), HostId("p"), uid=77)
    assert a.checksum == b.checksum


def test_checksum_covers_the_info_set():
    a = InfoMsg(H, SeqnoSet([1, 2]), None, uid=77)
    b = InfoMsg(H, SeqnoSet([1, 3]), None, uid=77)
    assert a.checksum != b.checksum


def test_corrupted_copy_fails_validation():
    for payload in _payloads():
        bad = corrupted_copy(payload)
        assert bad is not None
        assert not checksum_ok(bad), bad
        assert checksum_ok(payload)  # original untouched


def test_checksum_ok_forgives_payloads_without_checksums():
    class Legacy:
        size_bits = 10

    assert checksum_ok(Legacy())
    assert corrupted_copy(Legacy()) is None


def test_tampered_field_fails_validation():
    msg = DataMsg(3, "payload", 0.0, H)
    forged = dataclasses.replace(msg, seq=4)  # keeps the old checksum
    assert not checksum_ok(forged)


def test_control_uids_are_unique_per_construction():
    a = InfoMsg(H, SeqnoSet(), None)
    b = InfoMsg(H, SeqnoSet(), None)
    assert a.uid != b.uid
    assert AttachRequest(H, SeqnoSet()).uid != AttachAck(H, 1, SeqnoSet(),
                                                        None).uid


def test_packet_forks_share_the_uid():
    """A duplicated/replayed packet carries the *same* control payload,
    so its uid must match — that is what receive-side dedup keys on."""
    original = AttachAck(H, 1, SeqnoSet(), None)
    fork = dataclasses.replace(original)
    assert fork.uid == original.uid
    assert fork.checksum == original.checksum


def test_compute_checksum_is_stable_for_equal_canonicals():
    assert compute_checksum((1, "x")) == compute_checksum((1, "x"))
    assert compute_checksum((1, "x")) != compute_checksum((2, "x"))
