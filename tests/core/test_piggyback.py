"""Tests for control-message piggybacking (Section 6 optimization)."""

import pytest

from repro.core import BroadcastSystem, MultiSourceBroadcastSystem, ProtocolConfig
from repro.core.piggyback import ControlBundle, PiggybackPort
from repro.core.wire import DetachNotice, InfoMsg
from repro.core.seqnoset import SeqnoSet
from repro.net import HostId, RawPayload, wan_of_lans
from repro.sim import Simulator


def build_ports(seed=0):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=1, hosts_per_cluster=3,
                        convergence_delay=0.0)
    a = PiggybackPort(built.network.host_port(HostId("h0.0")), window=0.1)
    got = []
    built.network.host_port(HostId("h0.1")).set_receiver(got.append)
    return sim, built, a, got


def ctl(sender="h0.0"):
    return InfoMsg(sender=HostId(sender), info=SeqnoSet([1]), parent=None)


class TestBundleSizes:
    def test_bundle_amortizes_header(self):
        messages = (ctl(), ctl(), ctl())
        bundle = ControlBundle(messages, header_bits=400)
        separate = sum(m.size_bits for m in messages)
        assert bundle.size_bits == 400 + 3 * (1000 - 400)
        assert bundle.size_bits < separate
        assert bundle.kind == "control"

    def test_tiny_messages_never_go_negative(self):
        small = DetachNotice(child=HostId("x"), size_bits=100)
        bundle = ControlBundle((small, small), header_bits=400)
        assert bundle.size_bits == 400 + 2


class TestPortBehavior:
    def test_single_control_message_sent_unbundled(self):
        sim, built, port, got = build_ports()
        port.send(HostId("h0.1"), ctl())
        sim.run(until=1.0)
        assert len(got) == 1
        assert isinstance(got[0].payload, InfoMsg)

    def test_two_messages_in_window_bundle(self):
        sim, built, port, got = build_ports()
        port.send(HostId("h0.1"), ctl())
        port.send(HostId("h0.1"), DetachNotice(child=HostId("h0.0")))
        sim.run(until=1.0)
        assert len(got) == 1
        assert isinstance(got[0].payload, ControlBundle)
        assert len(got[0].payload.messages) == 2

    def test_messages_outside_window_do_not_bundle(self):
        sim, built, port, got = build_ports()
        port.send(HostId("h0.1"), ctl())
        sim.schedule(0.5, lambda: port.send(HostId("h0.1"), ctl()))
        sim.run(until=2.0)
        assert len(got) == 2

    def test_different_destinations_not_bundled(self):
        sim, built, port, got = build_ports()
        got2 = []
        built.network.host_port(HostId("h0.2")).set_receiver(got2.append)
        port.send(HostId("h0.1"), ctl())
        port.send(HostId("h0.2"), ctl())
        sim.run(until=1.0)
        assert len(got) == 1 and len(got2) == 1
        assert not isinstance(got[0].payload, ControlBundle)

    def test_data_flushes_pending_control_first(self):
        sim, built, port, got = build_ports()
        port.send(HostId("h0.1"), ctl())
        port.send(HostId("h0.1"), RawPayload("data", kind="data"))
        sim.run(until=1.0)
        kinds = [p.payload.kind for p in got]
        assert kinds == ["control", "data"]
        assert isinstance(got[0].payload, InfoMsg)  # not delayed

    def test_receive_side_unpacks_for_the_protocol(self):
        sim, built, _, _ = build_ports()
        receiver_port = PiggybackPort(built.network.host_port(HostId("h0.2")),
                                      window=0.1)
        got = []
        receiver_port.set_receiver(got.append)
        # Send a bundle directly at the network level.
        built.network.host_port(HostId("h0.1")).send(
            HostId("h0.2"), ControlBundle((ctl("h0.1"), ctl("h0.1"))))
        sim.run(until=1.0)
        assert len(got) == 2
        assert all(isinstance(p.payload, InfoMsg) for p in got)
        assert got[0].packet_id == got[1].packet_id  # same physical packet

    def test_validation(self):
        sim, built, _, _ = build_ports()
        with pytest.raises(ValueError):
            PiggybackPort(built.network.host_port(HostId("h0.2")), window=0.0)


class TestEndToEnd:
    def test_single_source_protocol_correct_with_piggybacking(self):
        sim = Simulator(seed=3)
        built = wan_of_lans(sim, clusters=2, hosts_per_cluster=2,
                            backbone="line")
        config = ProtocolConfig(enable_piggybacking=True)
        system = BroadcastSystem(built, config=config).start()
        system.broadcast_stream(10, interval=0.5, start_at=2.0)
        assert system.run_until_delivered(10, timeout=200.0)

    def test_multisource_piggybacking_reduces_control_packets(self):
        def run(piggy):
            sim = Simulator(seed=2)
            built = wan_of_lans(sim, clusters=2, hosts_per_cluster=3,
                                backbone="line")
            sources = [HostId("h0.0"), HostId("h0.1"), HostId("h1.0")]
            config = ProtocolConfig.for_scale(6, enable_piggybacking=piggy)
            system = MultiSourceBroadcastSystem(built, sources=sources,
                                                config=config).start()
            for idx, src in enumerate(sources):
                system.broadcast_stream(src, 5, interval=1.0,
                                        start_at=2.0 + 0.3 * idx)
            ok = system.run_until_delivered({s: 5 for s in sources},
                                            timeout=300.0)
            assert ok
            return sim.metrics.counter("net.h2h.sent.kind.control").value

        plain = run(False)
        bundled = run(True)
        assert bundled < 0.9 * plain
