"""Targeted tests for less-traveled host code paths."""

import pytest

from repro.core import BroadcastSystem, ProtocolConfig
from repro.core.attachment import Candidate
from repro.core.host import _PendingAttach
from repro.core.seqnoset import SeqnoSet
from repro.core.wire import AttachAck, AttachRequest, DataMsg, DetachNotice
from repro.net import HostId, wan_of_lans
from repro.sim import Simulator


def build(clusters=1, hosts=3, seed=0, config=None):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=clusters, hosts_per_cluster=hosts,
                        convergence_delay=0.0)
    system = BroadcastSystem(built, config=config)
    return sim, built, system


class TestStaleAcks:
    def test_stale_ack_triggers_detach_notice(self):
        """An ack arriving after we moved on must not leave us registered
        as that host's child."""
        sim, built, system = build()
        host = system.hosts[HostId("h0.1")]
        stale_sender = system.hosts[HostId("h0.2")]
        stale_sender.children.add(host.me)
        # No pending handshake: the ack is stale by definition.
        host._on_attach_ack(
            AttachAck(parent=stale_sender.me, attempt=99,
                      parent_info=SeqnoSet([1]), parent_parent=None),
            stale_sender.me)
        assert host.parent is None  # not adopted
        sim.run(until=2.0)           # DetachNotice delivered
        assert host.me not in stale_sender.children

    def test_stale_ack_from_current_parent_keeps_child_registered(self):
        sim, built, system = build()
        host = system.hosts[HostId("h0.1")]
        parent = system.hosts[HostId("h0.0")]
        host.parent = parent.me
        parent.children.add(host.me)
        host._on_attach_ack(
            AttachAck(parent=parent.me, attempt=42,
                      parent_info=SeqnoSet([1]), parent_parent=None),
            parent.me)
        sim.run(until=2.0)
        assert host.me in parent.children  # no self-inflicted detach

    def test_stale_ack_still_updates_map(self):
        sim, built, system = build()
        host = system.hosts[HostId("h0.1")]
        other = HostId("h0.2")
        host._on_attach_ack(
            AttachAck(parent=other, attempt=7,
                      parent_info=SeqnoSet([1, 2, 3]),
                      parent_parent=HostId("h0.0")),
            other)
        assert host.maps.info_of(other).max_seqno == 3
        assert host.maps.parent_of(other) == HostId("h0.0")

    def test_mismatched_attempt_is_stale(self):
        sim, built, system = build()
        host = system.hosts[HostId("h0.1")]
        target = HostId("h0.2")
        host._pending = _PendingAttach(
            candidates=[Candidate(target, "I", 1)], index=0, attempt=5)
        host._on_attach_ack(
            AttachAck(parent=target, attempt=4,  # older attempt
                      parent_info=SeqnoSet(), parent_parent=None),
            target)
        assert host.parent is None
        assert host._pending is not None  # still waiting for attempt 5


class TestCandidateExhaustion:
    def test_all_candidates_timing_out_clears_pending(self):
        sim, built, system = build(
            config=ProtocolConfig(attach_ack_timeout=0.5,
                                  parent_timeout_intra=1000.0,
                                  parent_timeout_inter=1000.0))
        host = system.hosts[HostId("h0.1")]
        # Two candidates, both unreachable.
        built.network.set_link_state("h0.0", "s0", up=False)
        built.network.set_link_state("h0.2", "s0", up=False)
        for name, n in (("h0.0", 3), ("h0.2", 2)):
            host.maps.apply_info(HostId(name), SeqnoSet(range(1, n + 1)), None)
            host.cluster.observe(HostId(name), cost_bit=False)
        host._attachment_tick()
        assert host._pending is not None
        assert len(host._pending.candidates) == 2
        sim.run(until=5.0)
        assert host._pending is None
        assert host.parent is None
        assert sim.metrics.counter("proto.attach.timeouts").value == 2


class TestGapfillBatching:
    def test_intra_batch_limit_respected(self):
        sim, built, system = build(
            config=ProtocolConfig(gapfill_batch_limit=5,
                                  gapfill_suppression=1000.0))
        parent = system.hosts[HostId("h0.0")]
        child = HostId("h0.1")
        parent.cluster.observe(child, cost_bit=False)  # same cluster
        parent.children.add(child)
        for seq in range(1, 21):
            parent.info.add(seq)
            parent.store[seq] = DataMsg(seq=seq, content=None, created_at=0.0,
                                        origin=parent.me)
        sent = parent._fill_gaps_of(child, include_frontier=True)
        assert sent == 5
        assert sorted(parent._recent_fills[child]) == [1, 2, 3, 4, 5]
        # Suppression is per sequence number: the next action continues
        # with the next batch instead of re-sending the first one.
        assert parent._fill_gaps_of(child, include_frontier=True) == 5
        assert sorted(parent._recent_fills[child]) == list(range(1, 11))

    def test_inter_batch_limit_for_out_of_cluster_targets(self):
        sim, built, system = build(
            config=ProtocolConfig(gapfill_batch_limit=10,
                                  gapfill_batch_limit_inter=2,
                                  gapfill_suppression=1000.0))
        parent = system.hosts[HostId("h0.0")]
        child = HostId("h0.1")  # NOT observed as in-cluster
        parent.children.add(child)
        for seq in range(1, 9):
            parent.info.add(seq)
            parent.store[seq] = DataMsg(seq=seq, content=None, created_at=0.0,
                                        origin=parent.me)
        assert parent._fill_gaps_of(child, include_frontier=True) == 2

    def test_fill_skips_pruned_store_entries(self):
        sim, built, system = build(
            config=ProtocolConfig(gapfill_suppression=0.0))
        parent = system.hosts[HostId("h0.0")]
        target = HostId("h0.1")
        parent.children.add(target)
        parent.info.add_range(1, 4)
        parent.store[4] = DataMsg(seq=4, content=None, created_at=0.0,
                                  origin=parent.me)
        # 1..3 are in INFO but no longer stored (pruned elsewhere).
        assert parent._fill_gaps_of(target, include_frontier=True) == 1


class TestSourceEdgeCases:
    def test_source_ignores_foreign_new_max(self):
        sim, built, system = build()
        src = system.source
        src.broadcast("a")
        foreign = DataMsg(seq=5, content="forged", created_at=0.0,
                          origin=HostId("h0.1"))
        src._on_data(foreign, HostId("h0.1"))
        assert 5 not in src.info  # source has no parent; new-max refused

    def test_source_accepts_gapfill_of_own_message_as_duplicate(self):
        sim, built, system = build()
        src = system.source
        src.broadcast("a")
        echo = DataMsg(seq=1, content="a", created_at=0.0, origin=src.me,
                       gapfill=True)
        src._on_data(echo, HostId("h0.1"))
        assert len(src.deliveries) == 1  # no duplicate delivery


class TestDetachEdgeCases:
    def test_detach_from_unknown_child_is_harmless(self):
        sim, built, system = build()
        host = system.hosts[HostId("h0.0")]
        host._on_detach(DetachNotice(child=HostId("h0.2")), HostId("h0.2"))
        assert HostId("h0.2") not in host.children

    def test_repeat_attach_request_is_idempotent(self):
        sim, built, system = build()
        host = system.hosts[HostId("h0.0")]
        child_host = system.hosts[HostId("h0.1")]
        child = child_host.me
        # The child already considers us its parent, so the acks our
        # handler sends are absorbed instead of answered with a detach.
        child_host.parent = host.me
        request = AttachRequest(child=child, child_info=SeqnoSet([1]))
        host._on_attach_request(request, child)
        first_since = host._child_since[child]
        sim.run(until=3.0)
        host._on_attach_request(request, child)
        assert host.children == {child}
        # Registration time preserved so the reconcile grace can elapse.
        assert host._child_since[child] == first_since

    def test_unsolicited_ack_is_answered_with_detach(self):
        """The behavior the previous test works around: a child that
        never asked rejects the ack and deregisters itself."""
        sim, built, system = build()
        host = system.hosts[HostId("h0.0")]
        child = HostId("h0.1")
        host._on_attach_request(
            AttachRequest(child=child, child_info=SeqnoSet([1])), child)
        assert child in host.children
        sim.run(until=3.0)  # ack delivered; child answers with a detach
        assert child not in host.children
