"""End-to-end tests of intra-cluster cycle detection and breaking.

The paper (Section 4.3): a cycle within one cluster is detected when a
host walking its ancestors finds itself; "the host with the highest
static order number on the cycle shall detach from its parent and go
through the appropriate options for finding a new one."
"""

from repro.core import BroadcastSystem, ProtocolConfig
from repro.net import HostId, wan_of_lans
from repro.sim import Simulator
from repro.verify import find_parent_cycles


def engineer_cycle(system, names):
    """Force a parent cycle among the named hosts (in one cluster).

    Sets both the real parent pointers and everyone's p_i[] views so the
    very next attachment tick can detect it without waiting for INFO
    exchange to distribute the pointers.
    """
    hosts = [system.hosts[HostId(n)] for n in names]
    ring = {hosts[i].me: hosts[(i + 1) % len(hosts)].me
            for i in range(len(hosts))}
    for host in hosts:
        host.parent = ring[host.me]
        host._arm_parent_timer()
        for other in hosts:
            if other.me != host.me:
                host.maps.set_parent_view(other.me, ring[other.me])
        # Everyone is (correctly) believed to be in the same cluster.
        for other in hosts:
            host.cluster.observe(other.me, cost_bit=False)
    for host in hosts:
        system.hosts[ring[host.me]].children.add(host.me)


def test_cycle_broken_by_highest_order_member():
    sim = Simulator(seed=3)
    built = wan_of_lans(sim, clusters=2, hosts_per_cluster=4, backbone="line")
    system = BroadcastSystem(built, config=ProtocolConfig.for_scale(8))
    # Cycle among three non-source hosts of cluster 1.
    names = ["h1.0", "h1.1", "h1.2"]
    engineer_cycle(system, names)
    assert find_parent_cycles(system)
    # Run the attachment tick on every cycle member once.
    breakers = []
    for name in names:
        host = system.hosts[HostId(name)]
        before = host.parent
        host._attachment_tick()
        if host.parent != before or host._pending is not None or \
                host.parent is None:
            breakers.append(name)
    # Exactly the highest-order member acted (detached and re-planned).
    orders = {n: system._order[HostId(n)] for n in names}
    highest = max(names, key=orders.get)
    assert breakers == [highest]
    assert sim.metrics.counter("proto.cycle.detected").value >= 1
    assert sim.metrics.counter("proto.cycle.broken").value == 1


def test_cycle_resolves_end_to_end_and_broadcast_continues():
    sim = Simulator(seed=3)
    built = wan_of_lans(sim, clusters=2, hosts_per_cluster=4, backbone="line")
    system = BroadcastSystem(built, config=ProtocolConfig.for_scale(8))
    system.start()
    # Let the system converge, then sabotage cluster 1 with a cycle.
    system.broadcast_stream(5, interval=0.5, start_at=2.0)
    assert system.run_until_delivered(5, timeout=200.0)
    engineer_cycle(system, ["h1.0", "h1.1", "h1.2"])
    assert find_parent_cycles(system)
    # The protocol must dissolve the cycle and keep delivering.
    system.broadcast_stream(10, interval=1.0, start_at=sim.now + 1.0)
    assert system.run_until_delivered(15, timeout=300.0)
    sim.run(until=sim.now + 30.0)
    assert find_parent_cycles(system) == []


def test_lower_order_members_wait():
    sim = Simulator(seed=3)
    built = wan_of_lans(sim, clusters=2, hosts_per_cluster=4, backbone="line")
    system = BroadcastSystem(built, config=ProtocolConfig.for_scale(8))
    names = ["h1.0", "h1.1", "h1.2"]
    engineer_cycle(system, names)
    orders = {n: system._order[HostId(n)] for n in names}
    lowest = min(names, key=orders.get)
    host = system.hosts[HostId(lowest)]
    parent_before = host.parent
    host._attachment_tick()
    assert host.parent == parent_before  # waiting for the highest-order host
    assert host._pending is None
