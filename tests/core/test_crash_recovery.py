"""Host crash/recovery: stable-storage semantics and catch-up.

The failure model (paper Section 2): a crashing host loses all volatile
protocol state — only the stable prefix of delivered messages survives
— and its neighbors are never notified.  On recovery it re-enters the
attachment procedure as a fresh orphan and catches up via gap filling.
"""

import pytest

from repro.core import BroadcastSystem, ProtocolConfig
from repro.net import HostId, wan_of_lans
from repro.sim import Simulator


def build_system(seed=1, k=2, m=2, **overrides):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m, backbone="line",
                        convergence_delay=0.0)
    system = BroadcastSystem(
        built, config=ProtocolConfig.for_scale(k * m, **overrides))
    return sim, built, system.start()


def settle_stream(system, n, timeout=200.0):
    system.broadcast_stream(n, interval=0.5, start_at=1.0)
    assert system.run_until_delivered(n, timeout=timeout)


def test_crash_wipes_volatile_state_keeps_stable_prefix():
    sim, built, system = build_system(crash_stable_lag=2)
    settle_stream(system, 8)
    victim = system.hosts[HostId("h1.1")]
    assert victim.parent is not None
    victim.crash()
    assert victim.crashed
    # Stable storage keeps the contiguous prefix minus the lag.
    assert victim.info.max_seqno == 6
    assert len(victim.deliveries) == 6
    assert 7 not in victim.store and 8 not in victim.store
    # All volatile protocol state is gone: the host is a fresh orphan
    # (and hence, by the Section 4.1 reading, its own trivial leader).
    assert victim.parent is None
    assert victim.children == set()
    assert victim.is_cluster_leader


def test_repeated_crashes_never_lose_already_flushed_messages():
    """Regression: the stable prefix is a monotone flush point.  Each
    crash used to subtract crash_stable_lag from the *current* prefix,
    so rapid crash/recover cycles ratcheted a host below what the rest
    of the network had already pruned, leaving permanent gaps."""
    sim, built, system = build_system(crash_stable_lag=2)
    settle_stream(system, 8)
    victim = system.hosts[HostId("h1.1")]
    victim.crash()
    first_stable = victim.info.max_seqno
    assert first_stable == 6
    for _ in range(3):  # no redelivery in between: nothing new to lose
        victim.recover()
        victim.crash()
    assert victim.info.max_seqno == first_stable
    assert len(victim.deliveries) == first_stable


def test_crash_is_idempotent_and_recover_is_noop_when_up():
    sim, built, system = build_system()
    victim = system.hosts[HostId("h0.1")]
    victim.recover()  # up: no-op
    assert not victim.crashed
    victim.crash()
    victim.crash()  # second crash: no-op
    assert sim.metrics.counter("proto.host.crash").value == 1


def test_crashed_host_drops_inbound_packets():
    sim, built, system = build_system()
    victim = HostId("h1.0")
    system.crash_host(victim)
    system.broadcast_stream(4, interval=0.5, start_at=1.0)
    sim.run(until=30.0)
    assert len(system.hosts[victim].deliveries) == 0
    assert sim.metrics.counter("proto.host.drop_crashed").value > 0


def test_recovered_host_reattaches_and_delivers_full_stream():
    """The acceptance scenario: crash a non-source host mid-stream; after
    recovery it re-attaches to the tree and delivers every message."""
    sim, built, system = build_system(k=3, m=2, crash_stable_lag=1)
    victim = HostId("h2.0")
    system.broadcast_stream(12, interval=1.0, start_at=1.0)
    sim.schedule_at(4.0, lambda: system.crash_host(victim))
    sim.schedule_at(10.0, lambda: system.recover_host(victim))
    assert system.run_until_delivered(12, timeout=400.0)
    host = system.hosts[victim]
    assert not host.crashed
    assert host.parent is not None  # re-attached
    assert host.deliveries.has_all(12)
    # Exactly one recovery, with its time-to-first-delivery measured.
    recoveries = sim.trace.records(kind="host.recovery_delivery")
    assert [r.source for r in recoveries] == [str(victim)]
    assert recoveries[0].fields["elapsed"] > 0
    assert sim.metrics.histogram("proto.host.recovery_time").count == 1


def test_crash_during_attachment_handshake_recovers():
    """Crashing while an attach handshake is pending must not wedge the
    host after recovery (the pending state is volatile)."""
    sim, built, system = build_system(k=3, m=2)
    victim = HostId("h1.1")
    sim.schedule_at(0.3, lambda: system.crash_host(victim))
    sim.schedule_at(5.0, lambda: system.recover_host(victim))
    system.broadcast_stream(6, interval=1.0, start_at=1.0)
    assert system.run_until_delivered(6, timeout=400.0)
    assert system.hosts[victim].parent is not None


def test_source_crash_keeps_outbox_and_stream_resumes():
    """The source's outbox is stable storage: messages broadcast while
    it is down reach everyone after it recovers."""
    sim, built, system = build_system()
    source = system.source
    sim.schedule_at(3.0, source.crash)
    sim.schedule_at(9.0, source.recover)
    system.broadcast_stream(8, interval=1.0, start_at=1.0)
    assert system.run_until_delivered(8, timeout=400.0)
    # Sequence numbering survived the crash: no renumbering, no gaps.
    assert source.info.max_seqno == 8
    crashed_issues = [r for r in sim.trace.records(kind="source.broadcast")
                      if r.fields["while_crashed"]]
    assert crashed_issues  # some messages were issued while down


def test_stop_start_is_a_safe_restart_pair():
    """Regression: stop() used to leave a dangling pending-attach state
    whose ack timer had been cancelled, so a restarted host never ran
    its attachment procedure again."""
    sim, built, system = build_system(k=3, m=2)
    victim = system.hosts[HostId("h1.0")]
    sim.run(until=0.5)  # mid-handshake territory
    victim.stop()
    sim.run(until=3.0)
    victim.start()
    system.broadcast_stream(6, interval=1.0, start_at=sim.now + 1.0)
    assert system.run_until_delivered(6, timeout=400.0)
    assert victim.parent is not None


def test_stop_start_twice_keeps_timers_armed():
    sim, built, system = build_system()
    host = system.hosts[HostId("h0.1")]
    host.stop()
    host.start()
    host.stop()
    host.start()
    settle_stream(system, 4)


def test_pruning_leaves_crash_margin():
    """INFO pruning stays crash_stable_lag behind the global minimum, so
    a post-prune crash can never roll a host below every store."""
    lag = 3
    sim, built, system = build_system(crash_stable_lag=lag)
    settle_stream(system, 10)
    sim.run(until=sim.now + 120.0)  # plenty of exchange/prune ticks
    for host in system.hosts.values():
        assert host.info.floor <= 10 - lag
    # Without the margin the default config prunes all the way.
    sim2, built2, system2 = build_system(seed=2)
    settle_stream(system2, 10)
    sim2.run(until=sim2.now + 120.0)
    assert any(host.info.floor > 0 for host in system2.hosts.values())


def test_crash_stable_lag_validated():
    with pytest.raises(ValueError):
        ProtocolConfig(crash_stable_lag=-1)
