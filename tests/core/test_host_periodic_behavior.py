"""Tests for the host's periodic activities: exchange targeting,
heartbeat timeout selection, and pruning across partial views."""

import pytest

from repro.core import BroadcastSystem, ProtocolConfig
from repro.core.seqnoset import SeqnoSet
from repro.net import DistanceVectorEngine, HostId, LinkFlapper, wan_of_lans
from repro.sim import Simulator


def build(k=2, m=2, seed=0, config=None):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m,
                        convergence_delay=0.0)
    system = BroadcastSystem(built, config=config)
    return sim, built, system


class TestInfoExchangeTargeting:
    def test_intra_tick_sends_only_to_believed_cluster(self):
        sim, built, system = build()
        host = system.hosts[HostId("h0.0")]
        host.cluster.observe(HostId("h0.1"), cost_bit=False)
        host._info_intra_tick()
        sends = sim.trace.records(kind="net.host_send", source="h0.0")
        assert [r["dst"] for r in sends] == ["h0.1"]

    def test_inter_tick_sends_to_everyone_else(self):
        sim, built, system = build()
        host = system.hosts[HostId("h0.0")]
        host.cluster.observe(HostId("h0.1"), cost_bit=False)
        host._info_inter_tick()
        sends = sim.trace.records(kind="net.host_send", source="h0.0")
        assert sorted(r["dst"] for r in sends) == ["h1.0", "h1.1"]

    def test_exchange_rates_differ_between_scopes(self):
        config = ProtocolConfig(info_intra_period=0.5, info_inter_period=5.0,
                                info_jitter_frac=0.0)
        sim, built, system = build(config=config)
        system.start()
        sim.run(until=20.0)
        intra = sim.metrics.counter("proto.info.sent.intra").value
        inter = sim.metrics.counter("proto.info.sent.inter").value
        # Cluster views form quickly; intra rate must dominate per target.
        assert intra > inter


class TestParentTimeoutSelection:
    def test_in_cluster_parent_uses_intra_timeout(self):
        config = ProtocolConfig(parent_timeout_intra=1.5,
                                parent_timeout_inter=50.0)
        sim, built, system = build(config=config)
        host = system.hosts[HostId("h0.1")]
        host.cluster.observe(HostId("h0.0"), cost_bit=False)
        host.parent = HostId("h0.0")
        host._arm_parent_timer()
        built.network.set_link_state("h0.1", "s0", up=False)  # isolate
        sim.run(until=3.0)
        assert host.parent is None  # intra timeout (1.5 s) fired

    def test_out_of_cluster_parent_uses_inter_timeout(self):
        config = ProtocolConfig(parent_timeout_intra=1.5,
                                parent_timeout_inter=50.0)
        sim, built, system = build(config=config)
        host = system.hosts[HostId("h0.1")]
        host.parent = HostId("h1.0")  # not in (believed) cluster
        host._arm_parent_timer()
        built.network.set_link_state("h0.1", "s0", up=False)
        sim.run(until=10.0)
        assert host.parent == HostId("h1.0")  # inter timeout not yet due
        sim.run(until=60.0)
        assert host.parent is None


class TestPruningAcrossViews:
    def test_prefix_limited_by_slowest_peer(self):
        config = ProtocolConfig(enable_info_pruning=True)
        sim, built, system = build(config=config)
        host = system.hosts[HostId("h0.0")]
        for seq in range(1, 11):
            host.info.add(seq)
        # Two peers proved 1..10, one only 1..4, one never heard from.
        host.maps.apply_info(HostId("h0.1"), SeqnoSet.range(1, 10), None)
        host.maps.apply_info(HostId("h1.0"), SeqnoSet.range(1, 4), None)
        host._maybe_prune()
        assert host.info.floor == 0  # h1.1 unknown -> no pruning at all
        host.maps.apply_info(HostId("h1.1"), SeqnoSet.range(1, 10), None)
        host._maybe_prune()
        assert host.info.floor == 4  # limited by h1.0's proven prefix

    def test_pruning_never_uses_optimistic_marks(self):
        sim, built, system = build()
        host = system.hosts[HostId("h0.0")]
        for seq in range(1, 6):
            host.info.add(seq)
        for peer in ("h0.1", "h1.0", "h1.1"):
            host.maps.note_sent(HostId(peer), range(1, 6))  # marks only
        host._maybe_prune()
        assert host.info.floor == 0


class TestProtocolOverDistanceVector:
    def test_delivery_with_message_driven_routing_and_churn(self):
        """The full stack the paper assumes: a real distributed routing
        protocol below, link churn, and the broadcast protocol above."""
        sim = Simulator(seed=13)
        built = wan_of_lans(sim, clusters=3, hosts_per_cluster=2,
                            backbone="ring")
        engine = DistanceVectorEngine(sim, built.network, period=0.5,
                                      max_age=3.0)
        built.network.use_routing(engine)
        flapper = LinkFlapper(sim, built.network, built.backbone,
                              mean_up=25.0, mean_down=5.0).start()
        system = BroadcastSystem(built,
                                 config=ProtocolConfig.for_scale(6)).start()
        system.broadcast_stream(20, interval=1.0, start_at=5.0)
        ok = system.run_until_delivered(20, timeout=500.0)
        flapper.stop()
        engine.stop()
        assert ok
