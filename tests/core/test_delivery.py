"""Unit tests for the delivery log."""

import pytest

from repro.core import DeliveryLog, DeliveryRecord
from repro.net import HostId

ME = HostId("me")
SRC = HostId("src")


def rec(seq, created=0.0, delivered=1.0, gapfill=False):
    return DeliveryRecord(seq=seq, content=f"m{seq}", created_at=created,
                          delivered_at=delivered, supplier=SRC,
                          via_gapfill=gapfill)


def test_record_and_query():
    log = DeliveryLog(ME)
    log.record(rec(1))
    log.record(rec(2, delivered=3.0))
    assert len(log) == 2
    assert 1 in log
    assert 3 not in log
    assert log.get(2).delivered_at == 3.0
    assert log.get(9) is None


def test_duplicate_delivery_is_a_bug():
    log = DeliveryLog(ME)
    log.record(rec(1))
    with pytest.raises(AssertionError):
        log.record(rec(1))


def test_records_sorted_by_seq():
    log = DeliveryLog(ME)
    log.record(rec(3))
    log.record(rec(1))
    assert [r.seq for r in log.records()] == [1, 3]


def test_has_all():
    log = DeliveryLog(ME)
    for seq in (1, 2, 4):
        log.record(rec(seq))
    assert log.has_all(2)
    assert not log.has_all(3)
    assert log.has_all(0)


def test_delay_and_delays():
    log = DeliveryLog(ME)
    log.record(rec(1, created=1.0, delivered=3.5))
    assert log.get(1).delay == 2.5
    assert log.delays() == [2.5]


def test_callback_invoked():
    seen = []
    log = DeliveryLog(ME, callback=lambda owner, r: seen.append((owner, r.seq)))
    log.record(rec(7))
    assert seen == [(ME, 7)]


def test_out_of_order_count():
    log = DeliveryLog(ME)
    log.record(rec(1, delivered=1.0))
    log.record(rec(3, delivered=2.0))
    log.record(rec(2, delivered=3.0))  # late: arrives after 3
    log.record(rec(4, delivered=4.0))
    assert log.out_of_order_count() == 1


def test_out_of_order_count_in_order_is_zero():
    log = DeliveryLog(ME)
    for i in range(1, 5):
        log.record(rec(i, delivered=float(i)))
    assert log.out_of_order_count() == 0
