"""Unit tests for SeqnoSet (the INFO-set data structure)."""

import pytest

from repro.core.seqnoset import SeqnoSet, info_equiv, info_leq, info_less


def test_empty_set_properties():
    s = SeqnoSet()
    assert len(s) == 0
    assert not s
    assert s.max_seqno == 0
    assert 1 not in s
    assert list(s) == []
    assert s.gaps() == []


def test_add_and_contains():
    s = SeqnoSet()
    assert s.add(3) is True
    assert s.add(3) is False
    assert 3 in s
    assert 2 not in s
    assert 0 not in s
    assert -1 not in s


def test_constructor_from_iterable():
    s = SeqnoSet([5, 1, 3, 1])
    assert list(s) == [1, 3, 5]
    assert len(s) == 3


def test_ranges_coalesce():
    s = SeqnoSet([1, 2, 3, 5, 6, 10])
    assert s.ranges() == [(1, 3), (5, 6), (10, 10)]
    s.add(4)
    assert s.ranges() == [(1, 6), (10, 10)]
    s.add_range(7, 9)
    assert s.ranges() == [(1, 10)]


def test_add_range_overlapping_variants():
    s = SeqnoSet.range(5, 10)
    assert s.add_range(1, 4) is True      # adjacent left
    assert s.ranges() == [(1, 10)]
    assert s.add_range(2, 8) is False     # fully inside
    assert s.add_range(8, 15) is True     # overlapping right
    assert s.ranges() == [(1, 15)]


def test_add_range_spanning_multiple_ranges():
    s = SeqnoSet([1, 5, 9])
    assert s.add_range(2, 10) is True
    assert s.ranges() == [(1, 10)]


def test_add_range_validates():
    s = SeqnoSet()
    with pytest.raises(ValueError):
        s.add(0)
    with pytest.raises(ValueError):
        s.add_range(3, 2)


def test_max_seqno_tracks_largest():
    s = SeqnoSet([2, 7, 4])
    assert s.max_seqno == 7


def test_missing_below_and_gaps():
    s = SeqnoSet([1, 2, 5, 8])
    assert s.missing_below(9) == [3, 4, 6, 7]
    assert s.missing_below(5) == [3, 4]
    assert s.gaps() == [3, 4, 6, 7]
    assert SeqnoSet([1, 2, 3]).gaps() == []
    assert SeqnoSet().missing_below(4) == [1, 2, 3]


def test_update_unions():
    a = SeqnoSet([1, 2])
    b = SeqnoSet([2, 5])
    assert a.update(b) is True
    assert list(a) == [1, 2, 5]
    assert a.update(b) is False


def test_difference_with_limit():
    a = SeqnoSet([1, 2, 3, 4, 5])
    b = SeqnoSet([2, 4])
    assert a.difference(b) == [1, 3, 5]
    assert a.difference(b, limit=2) == [1, 3]
    assert b.difference(a) == []


def test_issuperset():
    a = SeqnoSet([1, 2, 3])
    assert a.issuperset(SeqnoSet([1, 3]))
    assert not SeqnoSet([1, 3]).issuperset(a)
    assert a.issuperset(SeqnoSet())


def test_copy_is_independent():
    a = SeqnoSet([1, 2])
    b = a.copy()
    b.add(9)
    assert 9 not in a
    assert 9 in b


def test_equality_by_membership():
    assert SeqnoSet([1, 2, 3]) == SeqnoSet.range(1, 3)
    assert SeqnoSet([1]) != SeqnoSet([2])
    assert SeqnoSet() == SeqnoSet()
    assert SeqnoSet([1]).__eq__(42) is NotImplemented


class TestPruning:
    def test_prune_keeps_membership(self):
        s = SeqnoSet.range(1, 10)
        s.prune_through(7)
        assert s.floor == 7
        assert 5 in s
        assert 10 in s
        assert len(s) == 10
        assert s.max_seqno == 10

    def test_prune_with_gap_raises(self):
        s = SeqnoSet([1, 2, 4])
        with pytest.raises(ValueError):
            s.prune_through(4)
        s_ok = SeqnoSet([1, 2, 4])
        s_ok.prune_through(2)  # 1..2 contiguous is fine
        assert s_ok.floor == 2

    def test_prune_is_idempotent_and_monotone(self):
        s = SeqnoSet.range(1, 10)
        s.prune_through(5)
        s.prune_through(3)  # lower than floor: no-op
        assert s.floor == 5
        s.prune_through(10)
        assert s.floor == 10
        assert s.ranges() == []
        assert s.max_seqno == 10

    def test_add_below_floor_is_noop(self):
        s = SeqnoSet.range(1, 5)
        s.prune_through(5)
        assert s.add(3) is False
        assert s.add(6) is True

    def test_update_from_pruned_set(self):
        pruned = SeqnoSet.range(1, 6)
        pruned.prune_through(6)
        target = SeqnoSet([2])
        assert target.update(pruned) is True
        assert list(target) == [1, 2, 3, 4, 5, 6]

    def test_iter_and_gaps_respect_floor(self):
        s = SeqnoSet.range(1, 4)
        s.prune_through(4)
        s.add(7)
        assert list(s) == [1, 2, 3, 4, 7]
        assert s.gaps() == [5, 6]


class TestPartialOrder:
    def test_info_less_uses_max_only(self):
        # The paper's order ignores membership below the max.
        a = SeqnoSet([1, 2, 3])
        b = SeqnoSet([5])
        assert info_less(a, b)
        assert not info_less(b, a)

    def test_info_equiv(self):
        assert info_equiv(SeqnoSet([1, 5]), SeqnoSet([2, 3, 5]))
        assert not info_equiv(SeqnoSet([1]), SeqnoSet([2]))
        assert info_equiv(SeqnoSet(), SeqnoSet())

    def test_empty_set_is_least(self):
        assert info_less(SeqnoSet(), SeqnoSet([1]))
        assert info_leq(SeqnoSet(), SeqnoSet())

    def test_info_leq(self):
        assert info_leq(SeqnoSet([3]), SeqnoSet([3]))
        assert info_leq(SeqnoSet([2]), SeqnoSet([3]))
        assert not info_leq(SeqnoSet([4]), SeqnoSet([3]))


def test_repr_readable():
    s = SeqnoSet.range(1, 3)
    s.prune_through(2)
    assert "1..2*" in repr(s)
    assert "3" in repr(s)
