"""Tests for multiple-source broadcast (Section 2's prescription)."""

import pytest

from repro.core import MultiSourceBroadcastSystem, ProtocolConfig
from repro.core.multisource import PortMux, TaggedPayload
from repro.net import HostId, RawPayload, wan_of_lans
from repro.sim import Simulator


def build(k=2, m=2, sources=("h0.0", "h1.0"), seed=2, config=None):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m, backbone="line")
    if config is None:
        config = ProtocolConfig.for_scale(k * m)
    system = MultiSourceBroadcastSystem(
        built, sources=[HostId(s) for s in sources], config=config)
    return sim, built, system


class TestConstruction:
    def test_requires_sources(self):
        sim = Simulator(seed=0)
        built = wan_of_lans(sim, 2, 1)
        with pytest.raises(ValueError):
            MultiSourceBroadcastSystem(built, sources=[])

    def test_rejects_duplicate_sources(self):
        sim = Simulator(seed=0)
        built = wan_of_lans(sim, 2, 1)
        with pytest.raises(ValueError):
            MultiSourceBroadcastSystem(
                built, sources=[HostId("h0.0"), HostId("h0.0")])

    def test_rejects_unknown_source(self):
        sim = Simulator(seed=0)
        built = wan_of_lans(sim, 2, 1)
        with pytest.raises(ValueError):
            MultiSourceBroadcastSystem(built, sources=[HostId("ghost")])

    def test_one_instance_per_source(self):
        _, _, system = build()
        assert set(system.instances) == {HostId("h0.0"), HostId("h1.0")}
        # Each instance is rooted at its own source.
        for source, instance in system.instances.items():
            assert instance.source_id == source


class TestDelivery:
    def test_both_streams_delivered_everywhere(self):
        sim, built, system = build()
        system.start()
        a, b = HostId("h0.0"), HostId("h1.0")
        system.broadcast_stream(a, 5, interval=1.0, start_at=2.0)
        system.broadcast_stream(b, 5, interval=1.0, start_at=2.5)
        assert system.run_until_delivered({a: 5, b: 5}, timeout=300.0)

    def test_streams_are_independent(self):
        """Sequence numbers are per-source; instances do not interfere."""
        sim, built, system = build()
        system.start()
        a, b = HostId("h0.0"), HostId("h1.0")
        assert system.broadcast(a, "a1") == 1
        assert system.broadcast(b, "b1") == 1  # b's own numbering
        assert system.broadcast(a, "a2") == 2
        assert system.run_until_delivered({a: 2, b: 1}, timeout=200.0)
        # Every host holds both streams, with the right contents.
        for host_id in built.hosts:
            a_log = system.instances[a].hosts[host_id].deliveries
            b_log = system.instances[b].hosts[host_id].deliveries
            assert a_log.get(1).content == "a1"
            assert a_log.get(2).content == "a2"
            assert b_log.get(1).content == "b1"

    def test_instances_build_independent_trees(self):
        sim, built, system = build()
        system.start()
        a, b = HostId("h0.0"), HostId("h1.0")
        system.broadcast_stream(a, 3, interval=0.5, start_at=2.0)
        system.broadcast_stream(b, 3, interval=0.5, start_at=2.0)
        assert system.run_until_delivered({a: 3, b: 3}, timeout=200.0)
        sim.run(until=sim.now + 30.0)
        parents_a = system.instances[a].parent_edges()
        parents_b = system.instances[b].parent_edges()
        # Each tree is rooted at its own source.
        assert parents_a[a] is None
        assert parents_b[b] is None
        assert parents_a[b] is not None
        assert parents_b[a] is not None

    def test_survives_partition(self):
        from repro.scenarios import midstream_partition

        sim, built, system = build(seed=5)
        midstream_partition(built, cluster_index=1, start=5.0, end=25.0)
        system.start()
        a, b = HostId("h0.0"), HostId("h1.0")
        system.broadcast_stream(a, 10, interval=1.0, start_at=2.0)
        system.broadcast_stream(b, 10, interval=1.0, start_at=2.0)
        assert system.run_until_delivered({a: 10, b: 10}, timeout=400.0)


class TestDeliveryCallback:
    def test_callback_identifies_the_stream_source(self):
        seen = []
        sim = Simulator(seed=2)
        built = wan_of_lans(sim, clusters=2, hosts_per_cluster=2,
                            backbone="line")
        sources = [HostId("h0.0"), HostId("h1.0")]
        system = MultiSourceBroadcastSystem(
            built, sources=sources,
            config=ProtocolConfig.for_scale(4),
            deliver_callback=lambda src, host, record:
                seen.append((src, host, record.seq))).start()
        system.broadcast_stream(sources[0], 2, interval=0.5, start_at=2.0)
        system.broadcast_stream(sources[1], 2, interval=0.5, start_at=2.0)
        assert system.run_until_delivered({s: 2 for s in sources},
                                          timeout=200.0)
        by_stream = {src: {(h, s) for x, h, s in seen if x == src}
                     for src in sources}
        for src in sources:
            # every host delivered seq 1 and 2 of this stream
            for host in built.hosts:
                assert (host, 1) in by_stream[src]
                assert (host, 2) in by_stream[src]


class TestMux:
    def test_duplicate_instance_registration_rejected(self):
        sim = Simulator(seed=0)
        built = wan_of_lans(sim, 2, 1)
        mux = PortMux(built.network.host_port(HostId("h0.0")))
        mux.port_for("x")
        with pytest.raises(ValueError):
            mux.port_for("x")

    def test_untagged_packets_ignored(self):
        sim = Simulator(seed=0)
        built = wan_of_lans(sim, 2, 1, convergence_delay=0.0)
        mux = PortMux(built.network.host_port(HostId("h0.0")))
        got = []
        mux.port_for("x").set_receiver(got.append)
        built.network.host_port(HostId("h1.0")).send(HostId("h0.0"),
                                                     RawPayload("plain"))
        sim.run()
        assert got == []
        assert sim.trace.count("mux.untagged") == 1

    def test_unknown_instance_dropped(self):
        sim = Simulator(seed=0)
        built = wan_of_lans(sim, 2, 1, convergence_delay=0.0)
        PortMux(built.network.host_port(HostId("h0.0")))
        built.network.host_port(HostId("h1.0")).send(
            HostId("h0.0"), TaggedPayload("nobody", RawPayload()))
        sim.run()
        assert sim.trace.count("mux.unknown_instance") == 1

    def test_tag_preserves_kind_and_size(self):
        tagged = TaggedPayload("x", RawPayload(size_bits=1234))
        assert tagged.kind == "raw"
        assert tagged.size_bits == 1234

    def test_cost_bit_passes_through_mux(self):
        sim, built, system = build()
        system.start()
        sim.run(until=20.0)
        a = HostId("h0.0")
        instance = system.instances[a]
        h00 = instance.hosts[a]
        # Cluster learning still works through the mux (cost bits intact).
        assert HostId("h0.1") in h00.cluster
        assert HostId("h1.0") not in h00.cluster
