"""Exactly-once delivery under link-level packet duplication.

Runs whole systems over links with ``dup_prob > 0`` on every hop and
asserts the end-to-end guarantee the paper's host protocol (and the
basic baseline) must provide: each sequence number is *delivered*
exactly once per host, however many copies the network manufactures,
and the duplicates show up in the dedup counters rather than in the
application.
"""

from repro.baseline import BasicBroadcastSystem, BasicConfig
from repro.core import BroadcastSystem, ProtocolConfig
from repro.net import cheap_spec, expensive_spec, wan_of_lans
from repro.sim import Simulator

N = 12


def _build(seed, dup):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=3, hosts_per_cluster=2, backbone="line",
                        cheap=cheap_spec(dup_prob=dup),
                        expensive=expensive_spec(dup_prob=dup))
    return sim, built


def _assert_exactly_once(system, n):
    for host_id, records in system.delivery_records().items():
        seqs = sorted(r.seq for r in records)
        assert seqs == sorted(set(seqs)), (host_id, seqs)
        assert set(range(1, n + 1)) <= set(seqs), (host_id, seqs)


def test_tree_delivers_exactly_once_under_duplication():
    sim, built = _build(seed=3, dup=0.3)
    system = BroadcastSystem(
        built, config=ProtocolConfig.for_scale(6, data_size_bits=4_000)).start()
    system.broadcast_stream(N, interval=1.0, start_at=2.0)
    assert system.run_until_delivered(N, timeout=300.0)
    _assert_exactly_once(system, N)
    # The network really did duplicate, and the hosts really did discard.
    assert sim.metrics.counter("net.dup").value > 0
    assert sim.metrics.counter("proto.data.discard.duplicate").value > 0


def test_tree_dedup_also_covers_control_traffic():
    sim, built = _build(seed=5, dup=0.4)
    system = BroadcastSystem(
        built, config=ProtocolConfig.for_scale(6, data_size_bits=4_000)).start()
    system.broadcast_stream(N, interval=1.0, start_at=2.0)
    assert system.run_until_delivered(N, timeout=300.0)
    _assert_exactly_once(system, N)
    # Duplicated control messages (INFO, attach traffic) are suppressed
    # by uid, not re-processed.
    assert sim.metrics.counter("proto.wire.dup_suppressed").value > 0


def test_basic_baseline_delivers_exactly_once_under_duplication():
    sim, built = _build(seed=7, dup=0.3)
    system = BasicBroadcastSystem(
        built, config=BasicConfig(data_size_bits=4_000)).start()
    system.broadcast_stream(N, interval=1.0, start_at=2.0)
    assert system.run_until_delivered(N, timeout=300.0)
    _assert_exactly_once(system, N)
    assert sim.metrics.counter("net.dup").value > 0


def _equivocator(sim, system, host="h0.1"):
    from repro.chaos import AdversarySpec, ChaosPlan, ChaosSpec

    ChaosPlan(sim, system, ChaosSpec(heal_by=5.0, adversaries=(
        AdversarySpec(host=host, persona="equivocate", lie_ahead=4),
    ))).start()
    return host


def _assert_exactly_once_correct(system, n, adversary):
    for host_id, records in system.delivery_records().items():
        seqs = sorted(r.seq for r in records)
        assert seqs == sorted(set(seqs)), (host_id, seqs)
        if str(host_id) != adversary:
            assert set(range(1, n + 1)) <= set(seqs), (host_id, seqs)


def test_tree_delivers_exactly_once_with_equivocating_neighbor():
    # A neighbor that tells half its peers an INFO claim inflated by
    # phantom seqnos baits them into asking for messages that do not
    # exist; the gap-fill machinery must neither deliver phantoms nor
    # deliver real messages twice while recovering from the bait.
    sim, built = _build(seed=3, dup=0.2)
    system = BroadcastSystem(
        built, config=ProtocolConfig.for_scale(6, data_size_bits=4_000)).start()
    adv = _equivocator(sim, system)
    system.broadcast_stream(N, interval=1.0, start_at=2.0)
    correct = [h for h in built.hosts if str(h) != adv]
    assert system.run_until_delivered(N, timeout=300.0, hosts=correct)
    _assert_exactly_once_correct(system, N, adv)
    assert sim.metrics.counter("chaos.adversary.equivocated").value > 0
    # Nobody delivered a phantom seqno the equivocator invented.
    for _host_id, records in system.delivery_records().items():
        assert all(r.seq <= N for r in records)


def test_basic_delivers_exactly_once_with_equivocating_neighbor():
    sim, built = _build(seed=7, dup=0.2)
    system = BasicBroadcastSystem(
        built, config=BasicConfig(data_size_bits=4_000)).start()
    adv = _equivocator(sim, system)
    system.broadcast_stream(N, interval=1.0, start_at=2.0)
    correct = [h for h in built.hosts if str(h) != adv]
    assert system.run_until_delivered(N, timeout=300.0, hosts=correct)
    _assert_exactly_once_correct(system, N, adv)
    for _host_id, records in system.delivery_records().items():
        assert all(r.seq <= N for r in records)
