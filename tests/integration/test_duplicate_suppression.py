"""Exactly-once delivery under link-level packet duplication.

Runs whole systems over links with ``dup_prob > 0`` on every hop and
asserts the end-to-end guarantee the paper's host protocol (and the
basic baseline) must provide: each sequence number is *delivered*
exactly once per host, however many copies the network manufactures,
and the duplicates show up in the dedup counters rather than in the
application.
"""

from repro.baseline import BasicBroadcastSystem, BasicConfig
from repro.core import BroadcastSystem, ProtocolConfig
from repro.net import cheap_spec, expensive_spec, wan_of_lans
from repro.sim import Simulator

N = 12


def _build(seed, dup):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=3, hosts_per_cluster=2, backbone="line",
                        cheap=cheap_spec(dup_prob=dup),
                        expensive=expensive_spec(dup_prob=dup))
    return sim, built


def _assert_exactly_once(system, n):
    for host_id, records in system.delivery_records().items():
        seqs = sorted(r.seq for r in records)
        assert seqs == sorted(set(seqs)), (host_id, seqs)
        assert set(range(1, n + 1)) <= set(seqs), (host_id, seqs)


def test_tree_delivers_exactly_once_under_duplication():
    sim, built = _build(seed=3, dup=0.3)
    system = BroadcastSystem(
        built, config=ProtocolConfig.for_scale(6, data_size_bits=4_000)).start()
    system.broadcast_stream(N, interval=1.0, start_at=2.0)
    assert system.run_until_delivered(N, timeout=300.0)
    _assert_exactly_once(system, N)
    # The network really did duplicate, and the hosts really did discard.
    assert sim.metrics.counter("net.dup").value > 0
    assert sim.metrics.counter("proto.data.discard.duplicate").value > 0


def test_tree_dedup_also_covers_control_traffic():
    sim, built = _build(seed=5, dup=0.4)
    system = BroadcastSystem(
        built, config=ProtocolConfig.for_scale(6, data_size_bits=4_000)).start()
    system.broadcast_stream(N, interval=1.0, start_at=2.0)
    assert system.run_until_delivered(N, timeout=300.0)
    _assert_exactly_once(system, N)
    # Duplicated control messages (INFO, attach traffic) are suppressed
    # by uid, not re-processed.
    assert sim.metrics.counter("proto.wire.dup_suppressed").value > 0


def test_basic_baseline_delivers_exactly_once_under_duplication():
    sim, built = _build(seed=7, dup=0.3)
    system = BasicBroadcastSystem(
        built, config=BasicConfig(data_size_bits=4_000)).start()
    system.broadcast_stream(N, interval=1.0, start_at=2.0)
    assert system.run_until_delivered(N, timeout=300.0)
    _assert_exactly_once(system, N)
    assert sim.metrics.counter("net.dup").value > 0
