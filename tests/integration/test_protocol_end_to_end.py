"""End-to-end protocol integration tests across failure modes.

Each test drives a full simulation (network + protocol + workload) and
asserts eventual delivery plus the Section 4.3 invariants.
"""

import pytest

from repro.core import BroadcastSystem, ProtocolConfig
from repro.net import (
    HostId,
    LinkFlapper,
    PartitionScheduler,
    cheap_spec,
    expensive_spec,
    host_group,
    wan_of_lans,
)
from repro.scenarios import midstream_partition
from repro.sim import Simulator
from repro.verify import check_all, run_to_quiescence


def build(k, m, seed=1, backbone="line", config=None, **spec_kwargs):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m,
                        backbone=backbone, **spec_kwargs)
    if config is None:
        config = ProtocolConfig.for_scale(k * m)
    system = BroadcastSystem(built, config=config)
    return sim, built, system


class TestFailureFree:
    def test_full_delivery_and_invariants(self):
        sim, built, system = build(3, 3)
        system.start()
        system.broadcast_stream(20, interval=1.0, start_at=5.0)
        assert system.run_until_delivered(20, timeout=200.0)
        assert run_to_quiescence(system, stable_window=10.0, timeout=100.0)
        assert check_all(system, quiescent=True) == []

    def test_deliveries_unique_per_host(self):
        sim, built, system = build(2, 3)
        system.start()
        system.broadcast_stream(15, interval=0.5, start_at=5.0)
        assert system.run_until_delivered(15, timeout=200.0)
        for records in system.delivery_records().values():
            seqs = [r.seq for r in records]
            assert len(seqs) == len(set(seqs))

    def test_determinism_across_runs(self):
        def run():
            sim, built, system = build(3, 2, seed=9)
            system.start()
            system.broadcast_stream(10, interval=1.0, start_at=5.0)
            system.run_until_delivered(10, timeout=200.0)
            return (sim.metrics.counter("net.h2h.sent").value,
                    {str(k): str(v) for k, v in system.parent_edges().items()})

        assert run() == run()

    @pytest.mark.parametrize("backbone", ["tree", "ring", "star", "mesh"])
    def test_all_backbone_shapes(self, backbone):
        sim, built, system = build(4, 2, backbone=backbone, seed=2)
        system.start()
        system.broadcast_stream(10, interval=1.0, start_at=5.0)
        assert system.run_until_delivered(10, timeout=300.0)


class TestLossDupReorder:
    def test_delivery_under_chaos(self):
        sim, built, system = build(
            3, 3, seed=4,
            cheap=cheap_spec(loss_prob=0.05, dup_prob=0.03, reorder_jitter=0.05),
            expensive=expensive_spec(loss_prob=0.05, dup_prob=0.03,
                                     reorder_jitter=0.2))
        system.start()
        system.broadcast_stream(20, interval=0.5, start_at=5.0)
        assert system.run_until_delivered(20, timeout=400.0)
        assert check_all(system) == []

    def test_heavy_loss_eventually_delivers(self):
        sim, built, system = build(
            2, 2, seed=5,
            cheap=cheap_spec(loss_prob=0.25),
            expensive=expensive_spec(loss_prob=0.25))
        system.start()
        system.broadcast_stream(10, interval=1.0, start_at=5.0)
        assert system.run_until_delivered(10, timeout=600.0)


class TestPartitions:
    def test_cluster_cut_off_and_healed(self):
        sim, built, system = build(3, 2, seed=8)
        midstream_partition(built, cluster_index=2, start=10.0, end=40.0)
        system.start()
        system.broadcast_stream(30, interval=1.0, start_at=5.0)
        assert system.run_until_delivered(30, timeout=400.0)

    def test_partitioned_hosts_catch_up_after_heal_only(self):
        sim, built, system = build(3, 2, seed=8)
        midstream_partition(built, cluster_index=2, start=10.0, end=40.0)
        system.start()
        system.broadcast_stream(30, interval=1.0, start_at=5.0)
        sim.run(until=39.0)
        cut = built.clusters[2]
        # During the partition the cut hosts must be missing messages.
        assert not system.all_delivered(25, hosts=cut)
        assert system.run_until_delivered(30, timeout=400.0)

    def test_source_isolated_rest_converges(self):
        """Hosts that got the message spread it while the source is cut
        off — the scenario motivating shared responsibility (Section 1)."""
        sim, built, system = build(3, 2, seed=6)
        system.start()
        system.broadcast_stream(10, interval=0.5, start_at=5.0)
        # Let the stream reach at least the source cluster, then cut the
        # source's own access link.
        sim.run(until=10.5)
        scheduler = PartitionScheduler(sim, built.network)
        scheduler.isolate(["h0.0"], start=10.5, end=200.0)
        others = [h for h in built.hosts if h != system.source_id]
        assert system.run_until_delivered(10, timeout=300.0, hosts=others)

    def test_repeated_partition_flaps(self):
        sim, built, system = build(2, 2, seed=7)
        scheduler = PartitionScheduler(sim, built.network)
        group = host_group(built.network, built.clusters[1]) + ["s1"]
        for start in (10.0, 30.0, 50.0):
            scheduler.isolate(group, start, start + 10.0)
        system.start()
        system.broadcast_stream(40, interval=1.5, start_at=5.0)
        assert system.run_until_delivered(40, timeout=500.0)


class TestChurn:
    def test_backbone_flapping(self):
        sim, built, system = build(3, 2, backbone="ring", seed=3,
                                   config=ProtocolConfig())
        flapper = LinkFlapper(sim, built.network, built.backbone,
                              mean_up=20.0, mean_down=4.0).start()
        system.start()
        system.broadcast_stream(40, interval=1.0, start_at=5.0)
        ok = system.run_until_delivered(40, timeout=500.0)
        flapper.stop()
        assert ok

    def test_leader_host_crash_and_recovery(self):
        """Failing a leader's access link forces a new leader; the old
        one rejoins after repair (host crash per the paper's model)."""
        sim, built, system = build(2, 3, seed=2, config=ProtocolConfig())
        system.start()
        system.broadcast_stream(10, interval=1.0, start_at=5.0)
        assert system.run_until_delivered(10, timeout=200.0)
        # Find the non-source cluster's leader and crash it.
        leaders = [h for h in system.leaders() if h != system.source_id]
        assert leaders
        victim = leaders[0]
        built.network.set_link_state(str(victim), built.network.server_of(victim),
                                     up=False)
        system.broadcast_stream(10, interval=1.0, start_at=sim.now + 1.0)
        survivors = [h for h in built.hosts if h != victim]
        assert system.run_until_delivered(20, timeout=300.0, hosts=survivors)
        # Repair: the victim catches up on everything it missed.
        built.network.set_link_state(str(victim), built.network.server_of(victim),
                                     up=True)
        assert system.run_until_delivered(20, timeout=300.0)


class TestOrderingSemantics:
    def test_out_of_order_delivery_allowed_and_happens_under_loss(self):
        sim, built, system = build(
            3, 2, seed=11,
            cheap=cheap_spec(loss_prob=0.15),
            expensive=expensive_spec(loss_prob=0.15))
        system.start()
        system.broadcast_stream(20, interval=0.5, start_at=5.0)
        assert system.run_until_delivered(20, timeout=500.0)
        total_late = sum(h.deliveries.out_of_order_count()
                         for h in system.hosts.values())
        assert total_late > 0  # the paper's relaxed ordering in action


class TestScale:
    def test_thirty_six_hosts_deliver_and_stay_near_optimal(self):
        """A 6x6 WAN (36 hosts) with scale-adjusted control rates."""
        from repro.analysis import CounterSnapshot, cost_report

        sim = Simulator(seed=2)
        built = wan_of_lans(sim, clusters=6, hosts_per_cluster=6,
                            backbone="tree")
        sim.trace.enabled = False  # too chatty to retain at this size
        system = BroadcastSystem(built,
                                 config=ProtocolConfig.for_scale(36)).start()
        system.broadcast_stream(8, interval=2.0, start_at=2.0)
        assert system.run_until_delivered(8, timeout=400.0)
        sim.run(until=sim.now + 25.0)
        snapshot = CounterSnapshot(sim)
        system.broadcast_stream(15, interval=2.0, start_at=sim.now + 1.0)
        assert system.run_until_delivered(23, timeout=400.0)
        report = cost_report(sim, 15, since=snapshot)
        # Optimal is k-1 = 5; stay within 2x at this scale.
        assert report.inter_cluster_data_per_msg <= 10.0
