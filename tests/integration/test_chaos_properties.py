"""Property-based chaos testing: eventual delivery under random failures.

Hypothesis generates failure schedules (random backbone/access-link
outages that all heal before a horizon) and random loss/duplication
rates; the protocol must always deliver the full stream once the
network stays connected.  This is the paper's core reliability claim
("eventually deliver all messages to all destinations") exercised over
a whole space of adversarial-but-fair runs.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosPlan, ChaosSpec, HostChurnSpec, LinkChurnSpec
from repro.core import BroadcastSystem, ProtocolConfig
from repro.net import FailureSchedule, cheap_spec, expensive_spec, wan_of_lans
from repro.sim import Simulator
from repro.verify import InvariantMonitor

#: random outages: (backbone link index, start, duration)
outage_strategy = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.floats(min_value=5.0, max_value=35.0),
    st.floats(min_value=1.0, max_value=10.0),
)

#: CI's non-blocking chaos job raises this for a deeper sweep
CHAOS_SETTINGS = settings(
    max_examples=int(os.environ.get("CHAOS_MAX_EXAMPLES", "12")),
    deadline=None)


@CHAOS_SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000),
       outages=st.lists(outage_strategy, max_size=4))
def test_eventual_delivery_despite_backbone_outages(seed, outages):
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=3, hosts_per_cluster=2, backbone="ring")
    schedule = FailureSchedule(sim, built.network)
    for link_index, start, duration in outages:
        a, b = built.backbone[link_index % len(built.backbone)]
        # Overlapping windows on the same link compose: the schedule
        # counts down-depth, so the link is up only once every covering
        # outage has ended.
        schedule.outage(start, start + duration, a, b)
    system = BroadcastSystem(built, config=ProtocolConfig.for_scale(6)).start()
    system.broadcast_stream(10, interval=1.0, start_at=2.0)
    assert system.run_until_delivered(10, timeout=400.0), {
        "seed": seed, "outages": outages,
        "missing": {str(h): host.info.gaps() or host.info.max_seqno
                    for h, host in system.hosts.items()
                    if not host.deliveries.has_all(10)},
    }


@CHAOS_SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000),
       loss=st.floats(min_value=0.0, max_value=0.15),
       dup=st.floats(min_value=0.0, max_value=0.05))
def test_eventual_delivery_under_random_loss_and_duplication(seed, loss, dup):
    sim = Simulator(seed=seed)
    built = wan_of_lans(
        sim, clusters=2, hosts_per_cluster=2, backbone="line",
        cheap=cheap_spec(loss_prob=loss, dup_prob=dup),
        expensive=expensive_spec(loss_prob=loss, dup_prob=dup))
    system = BroadcastSystem(built, config=ProtocolConfig.for_scale(4)).start()
    system.broadcast_stream(8, interval=1.0, start_at=2.0)
    assert system.run_until_delivered(8, timeout=500.0)
    # Exactly-once delivery at every host, whatever the duplication.
    for records in system.delivery_records().values():
        seqs = [r.seq for r in records]
        assert len(seqs) == len(set(seqs))


@CHAOS_SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000),
       crash_at=st.floats(min_value=4.0, max_value=12.0),
       heal_after=st.floats(min_value=5.0, max_value=20.0))
def test_host_crash_model_recovers(seed, crash_at, heal_after):
    """Failing any host's access link (the paper's host-crash model) and
    repairing it later never prevents full delivery."""
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=2, hosts_per_cluster=2, backbone="line")
    victim = built.hosts[seed % len(built.hosts)]
    if victim == built.source:
        victim = built.hosts[1]
    server = built.network.server_of(victim)
    schedule = FailureSchedule(sim, built.network)
    schedule.outage(crash_at, crash_at + heal_after, str(victim), server)
    system = BroadcastSystem(built, config=ProtocolConfig.for_scale(4)).start()
    system.broadcast_stream(8, interval=1.0, start_at=2.0)
    assert system.run_until_delivered(8, timeout=400.0)


@CHAOS_SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000),
       host_mean_up=st.floats(min_value=6.0, max_value=20.0),
       host_mean_down=st.floats(min_value=1.0, max_value=5.0),
       link_mean_up=st.floats(min_value=6.0, max_value=20.0),
       link_mean_down=st.floats(min_value=1.0, max_value=5.0),
       lag=st.integers(min_value=0, max_value=3))
def test_combined_host_and_link_churn_heals_and_delivers(
        seed, host_mean_up, host_mean_down, link_mean_up, link_mean_down,
        lag):
    """Real host crashes (volatile state lost) plus link churn, all
    healing before the horizon: the full stream is still delivered and
    the invariant monitor reports no stable violation."""
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=3, hosts_per_cluster=2, backbone="ring")
    system = BroadcastSystem(
        built,
        config=ProtocolConfig.for_scale(6, crash_stable_lag=lag)).start()
    monitor = InvariantMonitor(system, sample_period=1.0,
                               stable_window=25.0).start()
    hosts = tuple(str(h) for h in built.hosts if h != system.source_id)
    spec = ChaosSpec(
        heal_by=45.0,
        host_churn=(HostChurnSpec(hosts, mean_up=host_mean_up,
                                  mean_down=host_mean_down),),
        link_churn=(LinkChurnSpec(tuple(built.backbone),
                                  mean_up=link_mean_up,
                                  mean_down=link_mean_down),),
    )
    plan = ChaosPlan(sim, system, spec).start()
    system.broadcast_stream(10, interval=1.0, start_at=2.0)
    sim.run(until=46.0)
    assert plan.healed
    assert system.crashed_hosts() == []
    assert system.run_until_delivered(10, timeout=500.0), {
        "seed": seed,
        "missing": {str(h): sorted(set(range(1, 11))
                                   - {r.seq for r in host.deliveries.records()})
                    for h, host in system.hosts.items()
                    if not host.deliveries.has_all(10)},
    }
    monitor.stop()
    report = monitor.report()
    assert report.clean, report.stable_violations
