"""Adversary schedules through the fuzz pipeline: generate, shrink, replay."""

import json

from repro.exec import derive_seed
from repro.fuzz import FuzzOptions, generate_trial, run_trial, shrink_trial
from repro.fuzz.artifact import (ReproArtifact, load_artifact, replay,
                                 save_artifact, spec_from_dict, spec_to_dict)
from repro.fuzz.shrinker import fault_events

#: a campaign point known (and pinned by test) to fail only because of
#: its adversary: derive_seed(5, "fuzz", 9) draws an ack_no_deliver
#: persona on an interior host; the same seed without adversaries runs
#: clean.  If generator draw order ever changes, re-scout with a quick
#: campaign sweep (see ISSUE 6) and update the pin.
KNOWN_BAD_SEED = derive_seed(5, "fuzz", 9)
ADV_OPTIONS = FuzzOptions(max_adversaries=2)


def test_zero_adversaries_is_the_default_and_changes_nothing():
    for seed in (1, 7, 12345):
        base = generate_trial(seed)
        assert base.chaos.adversaries == ()
        with_flag = generate_trial(seed, FuzzOptions(max_adversaries=2))
        # The adversary draws happen after every benign draw, so the
        # benign schedule is byte-identical with the flag on or off.
        assert with_flag.topology == base.topology
        assert with_flag.workload == base.workload
        assert with_flag.adaptive == base.adaptive
        assert with_flag.crash_stable_lag == base.crash_stable_lag
        assert with_flag.chaos.host_outages == base.chaos.host_outages
        assert with_flag.chaos.packet_faults == base.chaos.packet_faults


def test_adversary_generation_is_deterministic_and_valid():
    seen_any = False
    for seed in range(20):
        a = generate_trial(seed, ADV_OPTIONS)
        b = generate_trial(seed, ADV_OPTIONS)
        assert a == b
        for spec in a.chaos.adversaries:
            seen_any = True
            assert spec.end == float("inf")
            assert spec.host != "h0.0"  # the generator never picks the source
    assert seen_any, "20 seeds should draw at least one adversary"


def test_persona_subset_option_is_respected():
    options = FuzzOptions(max_adversaries=3,
                          personas=("selective_forward",))
    for seed in range(20):
        for spec in generate_trial(seed, options).chaos.adversaries:
            assert spec.persona == "selective_forward"


def test_artifact_round_trips_open_ended_adversary_windows(tmp_path):
    spec = generate_trial(KNOWN_BAD_SEED, ADV_OPTIONS)
    assert spec.chaos.adversaries, "the pinned seed must draw adversaries"
    rebuilt = spec_from_dict(json.loads(json.dumps(spec_to_dict(spec))))
    assert rebuilt == spec  # end=Infinity survives the JSON round trip
    path = tmp_path / "repro.json"
    save_artifact(ReproArtifact(spec=spec, expected_classification="x",
                                expected_signature="y"), str(path))
    assert load_artifact(str(path)).spec == spec


def test_known_adversary_failure_shrinks_to_minimal_schedule_and_replays():
    spec = generate_trial(KNOWN_BAD_SEED, ADV_OPTIONS)
    # Without its adversaries, the very same trial is clean: the
    # failure is attributable to misbehavior, not to the benign chaos.
    clean = run_trial(generate_trial(KNOWN_BAD_SEED, FuzzOptions()))
    assert clean.classification == "clean"

    outcome = run_trial(spec)
    assert outcome.failed
    assert outcome.adversaries  # verdict names the misbehaving hosts
    shrunk = shrink_trial(spec, outcome, max_evals=60)
    events = fault_events(shrunk.spec.chaos)
    # ddmin deletes every benign rider: what remains is adversary-only.
    assert events and all(name == "adversaries" for name, _ in events)
    assert len(events) < len(fault_events(spec.chaos))
    # ... and the minimal schedule replays byte-identically.
    artifact = ReproArtifact(
        spec=shrunk.spec,
        expected_classification=shrunk.outcome.classification,
        expected_signature=shrunk.outcome.signature)
    replayed, reproduced = replay(artifact)
    assert reproduced, (replayed.classification, replayed.signature)


def test_outcome_reports_contained_violations_separately():
    spec = generate_trial(KNOWN_BAD_SEED, ADV_OPTIONS)
    outcome = run_trial(spec)
    # Any violation span touching an adversary is reported as contained,
    # never in the failing `violations` tuple.
    adversaries = set(outcome.adversaries)
    for key in outcome.contained_violations:
        assert any(h in adversaries for h in key.split("/")[1:])
    for key in outcome.violations:
        assert not any(h in adversaries for h in key.split("/")[1:])
