"""Tests for seed-deterministic fuzz trial generation."""

import pytest

from repro.fuzz import FuzzOptions, generate_trial
from repro.fuzz.generator import topology_names
from repro.fuzz.properties import build_system
from repro.fuzz.shrinker import EVENT_FIELDS, fault_event_count


def test_same_seed_same_trial():
    assert generate_trial(42) == generate_trial(42)
    assert generate_trial(42) != generate_trial(43)


def test_options_validation():
    with pytest.raises(ValueError):
        FuzzOptions(protocol="gossip")
    with pytest.raises(ValueError):
        FuzzOptions(adaptive_frac=1.5)
    with pytest.raises(ValueError):
        FuzzOptions(max_clusters=1)
    with pytest.raises(ValueError):
        FuzzOptions(min_fault_events=5, max_fault_events=4)
    with pytest.raises(ValueError):
        FuzzOptions(horizon=0.0)


def test_trials_stay_within_option_bounds():
    options = FuzzOptions(min_fault_events=3, max_fault_events=8,
                          max_clusters=3, max_hosts_per_cluster=2)
    for seed in range(30):
        spec = generate_trial(seed, options)
        assert 3 <= fault_event_count(spec.chaos) <= 8
        assert 2 <= spec.topology.clusters <= 3
        assert 1 <= spec.topology.hosts_per_cluster <= 2
        assert spec.protocol == "tree"


def test_every_generated_trial_builds():
    # The generated spec must name only nodes/links that exist; the
    # cheapest full check is deploying the system for many seeds.
    for seed in range(25):
        sim, built, system = build_system(generate_trial(seed))
        assert built.hosts


def test_faults_respect_heal_by_guarantee():
    for seed in range(30):
        spec = generate_trial(seed)
        heal_by = spec.chaos.heal_by
        for field_name in EVENT_FIELDS:
            for event in getattr(spec.chaos, field_name):
                end = getattr(event, "end", None)
                if end is not None:
                    assert end <= heal_by
                until = getattr(event, "until", None)
                if until is not None:  # windowed partitions end earlier
                    assert until < heal_by


def test_never_crashes_the_source():
    for seed in range(30):
        spec = generate_trial(seed)
        names = topology_names(spec.topology, spec.seed)
        for outage in spec.chaos.host_outages:
            assert outage.host != names.source
        for churn in spec.chaos.host_churn:
            assert names.source not in churn.hosts


def test_two_cluster_ring_is_normalized_to_line():
    # wan_of_lans rejects a two-cluster ring (it duplicates the single
    # trunk); the generator must never emit that combination.
    for seed in range(60):
        spec = generate_trial(seed)
        if spec.topology.clusters == 2:
            assert spec.topology.backbone != "ring"


def test_basic_protocol_is_never_adaptive():
    options = FuzzOptions(protocol="basic", adaptive_frac=1.0)
    for seed in range(10):
        spec = generate_trial(seed, options)
        assert spec.protocol == "basic"
        assert spec.adaptive is False
