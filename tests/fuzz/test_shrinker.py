"""Tests for fault-schedule delta debugging."""

import pytest

from repro.fuzz import fault_event_count, fault_events, run_trial, shrink_trial
from repro.fuzz.shrinker import _Budget, _ddmin, rebuild_chaos

from .test_properties import known_bad_spec


def test_ddmin_finds_minimal_failing_subset():
    # The failure needs events 3 AND 7 together; everything else is noise.
    events = [("host_outages", i) for i in range(10)]

    def test_fn(subset):
        values = {event for _, event in subset}
        return {3, 7} <= values

    result = _ddmin(events, test_fn, _Budget(200))
    assert sorted(event for _, event in result) == [3, 7]


def test_ddmin_tries_empty_first():
    evals = []

    def test_fn(subset):
        evals.append(len(subset))
        return True  # fails even with no chaos at all

    result = _ddmin([("host_outages", 1), ("link_outages", 2)],
                    test_fn, _Budget(10))
    assert result == []
    assert evals == [0]


def test_ddmin_respects_budget():
    events = [("host_outages", i) for i in range(8)]
    budget = _Budget(3)
    _ddmin(events, lambda subset: False, budget)
    assert budget.evals <= 3


def test_rebuild_chaos_roundtrips():
    spec = known_bad_spec()
    rebuilt = rebuild_chaos(spec.chaos, fault_events(spec.chaos))
    assert rebuilt == spec.chaos


def test_shrink_requires_a_failing_outcome():
    spec = known_bad_spec()
    outcome = run_trial(spec)
    clean = outcome.__class__(
        classification="clean", delivered_fraction=1.0, missing=(),
        violations=(), signature=outcome.signature,
        end_time=outcome.end_time)
    with pytest.raises(ValueError):
        shrink_trial(spec, clean)


def test_shrink_known_bad_meets_the_bar():
    spec = known_bad_spec()
    outcome = run_trial(spec)
    assert outcome.failed
    result = shrink_trial(spec, outcome, max_evals=120)
    # The acceptance bar: the minimal repro keeps at most a quarter of
    # the original fault events, still reproducing the same class.
    assert result.ratio <= 0.25, (
        f"shrunk {result.original_events} -> {result.events} events")
    assert result.outcome.classification == outcome.classification
    assert result.evals <= 120
    # The shrunk spec re-runs to the exact recorded outcome.
    assert run_trial(result.spec) == result.outcome


def test_shrink_is_deterministic():
    spec = known_bad_spec()
    outcome = run_trial(spec)
    first = shrink_trial(spec, outcome, max_evals=120)
    second = shrink_trial(spec, outcome, max_evals=120)
    assert first.spec == second.spec
    assert first.evals == second.evals


def test_shrink_also_reduces_workload_and_topology():
    spec = known_bad_spec()
    result = shrink_trial(spec, run_trial(spec), max_evals=120)
    assert result.spec.workload.n <= spec.workload.n
    shrunk_hosts = (result.spec.topology.clusters
                    * result.spec.topology.hosts_per_cluster)
    original_hosts = spec.topology.clusters * spec.topology.hosts_per_cluster
    assert shrunk_hosts <= original_hosts
    assert result.spec.chaos.heal_by <= spec.chaos.heal_by
