"""Tests for JSON repro artifacts: roundtrip, byte-stability, replay."""

import json

import pytest

from repro.fuzz import (
    FuzzOptions,
    ReproArtifact,
    generate_trial,
    load_artifact,
    replay,
    run_trial,
    save_artifact,
    spec_from_dict,
    spec_to_dict,
)
from repro.fuzz.artifact import artifact_from_dict

from .test_properties import known_bad_spec


def test_spec_json_roundtrip_many_seeds():
    # Every generated spec survives dict -> JSON -> dict -> spec intact,
    # including nested chaos events and windowed partitions.
    for seed in range(40):
        for options in (FuzzOptions(), FuzzOptions(protocol="basic")):
            spec = generate_trial(seed, options)
            blob = json.dumps(spec_to_dict(spec))
            assert spec_from_dict(json.loads(blob)) == spec


def make_artifact():
    spec = known_bad_spec()
    outcome = run_trial(spec)
    return ReproArtifact(
        spec=spec,
        expected_classification=outcome.classification,
        expected_signature=outcome.signature,
        original_events=7,
        shrink_evals=12,
        note="test artifact")


def test_artifact_file_roundtrip(tmp_path):
    artifact = make_artifact()
    path = save_artifact(artifact, str(tmp_path / "repro.json"))
    assert load_artifact(path) == artifact


def test_artifact_saves_are_byte_identical(tmp_path):
    artifact = make_artifact()
    first = save_artifact(artifact, str(tmp_path / "a.json"))
    second = save_artifact(artifact, str(tmp_path / "b.json"))
    with open(first, "rb") as a, open(second, "rb") as b:
        assert a.read() == b.read()


def test_artifact_rejects_unknown_schema():
    with pytest.raises(ValueError):
        artifact_from_dict({"schema": "repro.fuzz.artifact/v999"})


def test_replay_reproduces_recorded_failure():
    artifact = make_artifact()
    outcome, reproduced = replay(artifact)
    assert reproduced
    assert outcome.classification == artifact.expected_classification
    assert outcome.signature == artifact.expected_signature


def test_replay_detects_signature_mismatch():
    import dataclasses

    artifact = dataclasses.replace(make_artifact(),
                                   expected_signature="0" * 64)
    _, reproduced = replay(artifact)
    assert not reproduced
