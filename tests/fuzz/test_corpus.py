"""Tests for fuzz campaigns: determinism, parity, artifact output."""

import json
import os

import pytest

from repro.exec import make_executor
from repro.fuzz import (
    CLEAN,
    NO_EVENTUAL_DELIVERY,
    FuzzOptions,
    load_artifact,
    replay,
    run_campaign,
)

JOBS = int(os.environ.get("REPRO_TEST_JOBS", "2"))

#: seed 7 over the basic protocol finds real failures within 2 trials
BASIC = FuzzOptions(protocol="basic")


def test_campaign_requires_trials():
    with pytest.raises(ValueError):
        run_campaign(trials=0, base_seed=1)


def test_campaign_finds_and_shrinks_basic_failures(tmp_path):
    summary = run_campaign(trials=2, base_seed=7, options=BASIC,
                           artifact_dir=str(tmp_path))
    assert summary.counts()[NO_EVENTUAL_DELIVERY] >= 1
    for record in summary.failures:
        assert record.shrunk_events is not None
        assert record.shrink_ratio <= 0.25
        assert record.artifact is not None
        # The archived artifact replays to its recorded failure.
        _, reproduced = replay(load_artifact(record.artifact))
        assert reproduced


def test_campaign_clean_on_tree_protocol():
    summary = run_campaign(trials=3, base_seed=3, shrink=False)
    assert summary.clean == 3
    assert not summary.failures
    assert summary.counts() == {CLEAN: 3}


def test_campaign_serial_equals_parallel(tmp_path):
    serial = run_campaign(trials=3, base_seed=7, options=BASIC,
                          artifact_dir=str(tmp_path / "serial"))
    parallel = run_campaign(trials=3, base_seed=7, options=BASIC,
                            executor=make_executor(JOBS),
                            artifact_dir=str(tmp_path / "parallel"))
    for a, b in zip(serial.records, parallel.records):
        assert (a.seed, a.classification, a.signature,
                a.fault_events, a.shrunk_events) == \
               (b.seed, b.classification, b.signature,
                b.fault_events, b.shrunk_events)
    # Artifact files are byte-identical across the two runs.
    names = sorted(os.listdir(tmp_path / "serial"))
    assert names == sorted(os.listdir(tmp_path / "parallel"))
    for name in names:
        with open(tmp_path / "serial" / name, "rb") as a, \
                open(tmp_path / "parallel" / name, "rb") as b:
            assert a.read() == b.read()


def test_summary_render_and_dict(tmp_path):
    summary = run_campaign(trials=2, base_seed=7, options=BASIC,
                           artifact_dir=str(tmp_path))
    text = summary.render()
    assert "fuzz campaign: 2 trial(s), base seed 7" in text
    assert "shrink ratio mean" in text
    data = summary.as_dict()
    json.dumps(data)  # JSON-serializable throughout
    assert data["trials"] == 2
    assert data["options"]["protocol"] == "basic"
    assert len(data["records"]) == 2
