"""Tests for trial execution, classification, and delivery signatures."""

from repro.exec import derive_seed
from repro.fuzz import (
    CLEAN,
    NO_EVENTUAL_DELIVERY,
    FuzzOptions,
    generate_trial,
    run_trial,
)

#: seed 7 / trial 0 of a basic-protocol campaign: a known failing trial
#: (acked-then-lost messages under a host crash are never retransmitted)
KNOWN_BAD_SEED = derive_seed(7, "fuzz", 0)


def known_bad_spec():
    return generate_trial(KNOWN_BAD_SEED, FuzzOptions(protocol="basic"))


def test_run_trial_is_deterministic():
    spec = generate_trial(11)
    first = run_trial(spec)
    second = run_trial(spec)
    assert first == second
    assert first.signature == second.signature


def test_tree_protocol_survives_generated_chaos():
    # The paper's protocol must eventually deliver under any generated
    # fault schedule (all faults heal by construction).
    for index in range(4):
        spec = generate_trial(derive_seed(3, "fuzz", index))
        outcome = run_trial(spec)
        assert outcome.classification == CLEAN, (
            f"trial {index}: {outcome.classification}, "
            f"missing {outcome.missing[:5]}")
        assert outcome.delivered_fraction == 1.0
        assert not outcome.missing
        assert not outcome.failed


def test_basic_protocol_fails_known_bad_trial():
    outcome = run_trial(known_bad_spec())
    assert outcome.classification == NO_EVENTUAL_DELIVERY
    assert outcome.failed
    assert outcome.delivered_fraction < 1.0
    assert outcome.missing  # names the undelivered (host, seq) pairs


def test_signature_distinguishes_different_trials():
    a = run_trial(generate_trial(11))
    b = run_trial(generate_trial(12))
    assert a.signature != b.signature
    assert len(a.signature) == 64  # SHA-256 hex
