"""Real-socket backend: a :class:`Transport` over asyncio UDP.

Each host gets one :class:`UdpTransport` bound to its own localhost UDP
socket; a static ``peers`` map (host id → socket address) plays the role
the routing tables play in-sim.  The service model is faithfully the
paper's: fire-and-forget unicast datagrams, no delivery feedback, no
topology information — and UDP genuinely loses, reorders, and (rarely)
duplicates, which is exactly the environment the protocol's checksum /
dedup / gap-fill machinery exists for.

Framing is a pickled ``(src_name, stamped_at, payload)`` triple.  The
wire payloads (:mod:`repro.core.wire`) are frozen dataclasses whose
checksums hash stable numeric tuples, so a checksum computed by the
sender verifies after unpickling on the receiver.

The chaos/adversary surface is identical to the sim port: ``tap`` /
``send_tap`` attributes with ``inject`` / ``send_raw`` as the
tap-bypassing re-entry points, and the same trace kinds and metric
names, so injectors and the analysis layer work unchanged on real
sockets.

Cost bits do not exist on real networks (no programmable servers to set
them), so UDP deployments run the protocol in
:class:`~repro.core.cluster.ClusterMode.STATIC` with an a-priori cluster
map — the paper's "manual configuration" deployment option.
"""

from __future__ import annotations

import asyncio
import pickle
from typing import Dict, Optional, Tuple

from ..net.addressing import HostId
from ..net.message import Packet, Payload
from .aio import AsyncioRuntime
from .interfaces import ReceiveFn, SendTapFn, TapFn

#: (ip, port) socket address.
SockAddr = Tuple[str, int]


class UdpTransport(asyncio.DatagramProtocol):
    """One host's attachment point: one UDP socket, a static peer map."""

    def __init__(
        self,
        runtime: AsyncioRuntime,
        host_id: HostId,
        peers: Dict[HostId, SockAddr],
    ) -> None:
        self.runtime = runtime
        self.host_id = host_id
        self.peers = dict(peers)
        self._name = str(host_id)
        self._on_receive: Optional[ReceiveFn] = None
        #: optional inbound tap (chaos injection hook)
        self.tap: Optional[TapFn] = None
        #: optional outbound tap (adversary persona hook)
        self.send_tap: Optional[SendTapFn] = None
        self._sock: Optional[asyncio.DatagramTransport] = None
        self._c_sent = None
        self._c_recv = None
        self._h_delay = None
        #: datagrams that failed to parse (wrong pickle, bad frame shape)
        self.malformed = 0

    # -- socket lifecycle ----------------------------------------------

    async def open(self, local_addr: SockAddr) -> "UdpTransport":
        """Bind the UDP socket on ``local_addr`` and start receiving."""
        loop = asyncio.get_running_loop()
        sock, _ = await loop.create_datagram_endpoint(
            lambda: self, local_addr=local_addr)
        self._sock = sock  # type: ignore[assignment]
        return self

    def close(self) -> None:
        """Close the socket; pending inbound datagrams are dropped."""
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def connection_made(self, transport) -> None:  # pragma: no cover - asyncio
        self._sock = transport

    def connection_lost(self, exc) -> None:  # pragma: no cover - asyncio
        self._sock = None

    # -- Transport contract --------------------------------------------

    def set_receiver(self, callback: ReceiveFn) -> None:
        """Register the application callback for inbound packets."""
        self._on_receive = callback

    def local_time(self) -> float:
        """This host's clock: the shared runtime's protocol clock."""
        return self.runtime.now()

    def queue_length(self) -> int:
        """Always 0: the kernel socket buffer is not observable."""
        return 0

    def send(self, dst: HostId, payload: Payload) -> None:
        """Fire-and-forget unicast (runs the send tap first)."""
        if dst == self.host_id:
            raise ValueError(f"host {self.host_id} cannot send to itself")
        send_tap = self.send_tap
        if send_tap is not None and send_tap(dst, payload):
            return
        self.send_raw(dst, payload)

    def send_raw(self, dst: HostId, payload: Payload) -> None:
        """Frame and transmit, bypassing the send tap.

        Sends before ``open()`` or after ``close()`` are dropped
        silently — indistinguishable from datagram loss, which the
        protocol tolerates by design.
        """
        sock = self._sock
        if sock is None:
            return
        addr = self.peers.get(dst)
        if addr is None:
            raise KeyError(f"host {self.host_id} has no address for {dst}")
        now = self.runtime.now()
        frame = pickle.dumps((self._name, now, payload),
                             protocol=pickle.HIGHEST_PROTOCOL)
        runtime = self.runtime
        if runtime.trace_sink.active:
            runtime.trace("net.host_send", self._name, dst=str(dst),
                          payload_kind=payload.kind, bytes=len(frame))
        sent = self._c_sent
        if sent is None:
            sent = self._c_sent = runtime.counter("net.h2h.sent")
        sent.inc()
        runtime.counter(f"net.h2h.sent.kind.{payload.kind}").inc()
        sock.sendto(frame, addr)

    # -- receiving ------------------------------------------------------

    def datagram_received(self, data: bytes, addr: SockAddr) -> None:
        """Parse a frame into a :class:`Packet` and run the tap chain."""
        try:
            src_name, stamped_at, payload = pickle.loads(data)
            src = HostId(src_name)
        except Exception:
            self.malformed += 1
            self.runtime.counter("net.h2h.malformed").inc()
            return
        packet = Packet(src=src, dst=self.host_id, payload=payload,
                        sent_at=float(stamped_at),
                        stamped_at=float(stamped_at))
        tap = self.tap
        if tap is not None and tap(packet):
            return
        self.inject(packet)

    def inject(self, packet: Packet) -> None:
        """Deliver ``packet`` to the host, bypassing the tap."""
        runtime = self.runtime
        if runtime.trace_sink.active:
            runtime.trace("net.host_recv", self._name, src=str(packet.src),
                          payload_kind=packet.kind, cost_bit=packet.cost_bit,
                          packet=packet.packet_id)
        recv = self._c_recv
        if recv is None:
            recv = self._c_recv = runtime.counter("net.h2h.recv")
            self._h_delay = runtime.histogram("net.h2h.delay")
        recv.inc()
        runtime.counter(f"net.h2h.recv.kind.{packet.kind}").inc()
        self._h_delay.observe(  # type: ignore[union-attr]
            max(0.0, runtime.now() - packet.sent_at))
        if self._on_receive is not None:
            self._on_receive(packet)
