"""Real-socket backend: a :class:`Transport` over asyncio UDP.

Each host gets one :class:`UdpTransport` bound to its own localhost UDP
socket; a static ``peers`` map (host id → socket address) plays the role
the routing tables play in-sim.  The service model is faithfully the
paper's: fire-and-forget unicast datagrams, no delivery feedback, no
topology information — and UDP genuinely loses, reorders, and (rarely)
duplicates, which is exactly the environment the protocol's checksum /
dedup / gap-fill machinery exists for.

Framing is a pickled ``(src_name, stamped_at, payload)`` triple.  The
wire payloads (:mod:`repro.core.wire`) are frozen dataclasses whose
checksums hash stable numeric tuples, so a checksum computed by the
sender verifies after unpickling on the receiver.

The chaos/adversary surface is identical to the sim port: ``tap`` /
``send_tap`` attributes with ``inject`` / ``send_raw`` as the
tap-bypassing re-entry points, and the same trace kinds and metric
names, so injectors and the analysis layer work unchanged on real
sockets.

Real-world hardening the sim never needs (every failure mode below is
converted into *datagram loss*, which the protocol already tolerates,
plus a counter so the harness can see it happening):

* **Transient send errors** (``ENOBUFS``/``EAGAIN``-style ``OSError``
  out of ``sendto``) are retried with exponential wall-clock backoff
  (``net.h2h.send_retry``); a send that exhausts its attempts is
  dropped and counted (``net.h2h.send_dropped``), never raised into
  the protocol machine.
* **Bind conflicts** at ``open()`` retry and fall back to an ephemeral
  port (``net.h2h.bind_retry``) so parallel harnesses never abort on a
  racing port claim.
* **Receive overload**: inbound datagrams queue in a bounded buffer
  drained on the next loop iteration; overflow is shed oldest-first
  (``net.h2h.recv_shed``) instead of letting an inbound burst starve
  every other host sharing the loop.
* **Late datagrams**: ``close()`` is idempotent, and frames still in
  flight when it lands are counted and dropped
  (``net.h2h.late_dropped``) rather than raised into the event loop.

Cost bits do not exist on real networks (no programmable servers to set
them), so UDP deployments run the protocol in
:class:`~repro.core.cluster.ClusterMode.STATIC` with an a-priori cluster
map — the paper's "manual configuration" deployment option.
"""

from __future__ import annotations

import asyncio
import pickle
from collections import deque
from typing import Deque, Dict, Optional, Set, Tuple

from ..net.addressing import HostId
from ..net.message import Packet, Payload
from .aio import AsyncioRuntime, AsyncioTimer
from .interfaces import ReceiveFn, SendTapFn, TapFn

#: (ip, port) socket address.
SockAddr = Tuple[str, int]


class UdpTransport(asyncio.DatagramProtocol):
    """One host's attachment point: one UDP socket, a static peer map.

    Args:
        runtime: the shared wall-clock runtime (clock, timers, metrics).
        host_id: this host's name.
        peers: host id → socket address map (usually filled in after
            every deployment socket has bound, see
            :meth:`~repro.io.node.UdpBroadcastSystem.open`).
        max_send_attempts: total ``sendto`` tries per frame before the
            frame is dropped and counted.
        send_backoff: wall-clock seconds before the first retry;
            doubles per subsequent attempt.
        recv_queue_limit: bounded inbound buffer depth; overflow sheds
            the oldest queued datagram.
    """

    def __init__(
        self,
        runtime: AsyncioRuntime,
        host_id: HostId,
        peers: Dict[HostId, SockAddr],
        *,
        max_send_attempts: int = 3,
        send_backoff: float = 0.002,
        recv_queue_limit: int = 1024,
    ) -> None:
        if max_send_attempts < 1:
            raise ValueError("max_send_attempts must be at least 1")
        if send_backoff < 0 or recv_queue_limit < 1:
            raise ValueError("send_backoff must be >= 0 and "
                             "recv_queue_limit >= 1")
        self.runtime = runtime
        self.host_id = host_id
        self.peers = dict(peers)
        self._name = str(host_id)
        self._on_receive: Optional[ReceiveFn] = None
        #: optional inbound tap (chaos injection hook)
        self.tap: Optional[TapFn] = None
        #: optional outbound tap (adversary persona hook)
        self.send_tap: Optional[SendTapFn] = None
        self._sock: Optional[asyncio.DatagramTransport] = None
        self._closed = False
        self._c_sent = None
        self._c_recv = None
        self._h_delay = None
        #: datagrams that failed to parse (wrong pickle, bad frame shape)
        self.malformed = 0
        #: datagrams that arrived after :meth:`close`
        self.late_drops = 0
        #: frames dropped after exhausting every send attempt
        self.send_drops = 0
        #: socket-level errors reported by the loop (ICMP unreachable...)
        self.socket_errors = 0
        self.max_send_attempts = max_send_attempts
        self.send_backoff = send_backoff
        #: in-flight retry timers, cancelled on close
        self._retry_timers: Set[AsyncioTimer] = set()
        #: bounded inbound buffer, drained via ``call_soon``
        self._recv_queue: Deque[Tuple[bytes, SockAddr]] = deque()
        self._recv_queue_limit = recv_queue_limit
        self._drain_scheduled = False

    # -- socket lifecycle ----------------------------------------------

    async def open(self, local_addr: SockAddr,
                   bind_attempts: int = 5) -> "UdpTransport":
        """Bind the UDP socket on ``local_addr`` and start receiving.

        A bind conflict (another process raced us to the port, or a
        previous run's socket lingers) is retried up to
        ``bind_attempts`` times, falling back to an OS-picked ephemeral
        port after the first failure; each retry bumps
        ``net.h2h.bind_retry``.
        """
        loop = asyncio.get_running_loop()
        addr = local_addr
        last_error: Optional[OSError] = None
        for _attempt in range(max(1, bind_attempts)):
            try:
                sock, _ = await loop.create_datagram_endpoint(
                    lambda: self, local_addr=addr)
            except OSError as exc:
                last_error = exc
                self.runtime.counter("net.h2h.bind_retry").inc()
                self.runtime.trace("net.bind_retry", self._name,
                                   addr=f"{addr[0]}:{addr[1]}",
                                   error=str(exc))
                addr = (local_addr[0], 0)  # let the OS pick instead
                continue
            self._sock = sock  # type: ignore[assignment]
            self._closed = False
            return self
        assert last_error is not None
        raise last_error

    def close(self) -> None:
        """Close the socket; idempotent.

        Pending inbound datagrams — queued locally or still crossing
        the loop — are dropped and counted, never raised: a datagram
        racing a close is ordinary in-flight traffic, not an error.
        """
        if self._closed:
            return
        self._closed = True
        for timer in self._retry_timers:
            timer.cancel()
        self._retry_timers.clear()
        if self._recv_queue:
            self.late_drops += len(self._recv_queue)
            self.runtime.counter("net.h2h.late_dropped").inc(
                len(self._recv_queue))
            self._recv_queue.clear()
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def connection_made(self, transport) -> None:  # pragma: no cover - asyncio
        self._sock = transport

    def connection_lost(self, exc) -> None:  # pragma: no cover - asyncio
        self._sock = None

    def error_received(self, exc: Exception) -> None:
        """Socket-level error from the loop (e.g. ICMP port unreachable).

        Counted and swallowed: to a fire-and-forget sender this is just
        evidence a datagram died, which UDP never promised otherwise.
        """
        self.socket_errors += 1
        self.runtime.counter("net.h2h.socket_error").inc()

    # -- Transport contract --------------------------------------------

    def set_receiver(self, callback: ReceiveFn) -> None:
        """Register the application callback for inbound packets."""
        self._on_receive = callback

    def local_time(self) -> float:
        """This host's clock: the shared runtime's protocol clock."""
        return self.runtime.now()

    def queue_length(self) -> int:
        """Locally queued inbound datagrams awaiting drain.

        The kernel send buffer is not observable; the receive side's
        bounded buffer is, and it is the congestion signal overload
        tooling cares about.
        """
        return len(self._recv_queue)

    def send(self, dst: HostId, payload: Payload) -> None:
        """Fire-and-forget unicast (runs the send tap first)."""
        if dst == self.host_id:
            raise ValueError(f"host {self.host_id} cannot send to itself")
        send_tap = self.send_tap
        if send_tap is not None and send_tap(dst, payload):
            return
        self.send_raw(dst, payload)

    def send_raw(self, dst: HostId, payload: Payload) -> None:
        """Frame and transmit, bypassing the send tap.

        Sends before ``open()`` or after ``close()`` are dropped
        silently — indistinguishable from datagram loss, which the
        protocol tolerates by design.
        """
        if self._sock is None:
            return
        addr = self.peers.get(dst)
        if addr is None:
            raise KeyError(f"host {self.host_id} has no address for {dst}")
        now = self.runtime.now()
        frame = pickle.dumps((self._name, now, payload),
                             protocol=pickle.HIGHEST_PROTOCOL)
        runtime = self.runtime
        if runtime.trace_sink.active:
            runtime.trace("net.host_send", self._name, dst=str(dst),
                          payload_kind=payload.kind, bytes=len(frame))
        sent = self._c_sent
        if sent is None:
            sent = self._c_sent = runtime.counter("net.h2h.sent")
        sent.inc()
        runtime.counter(f"net.h2h.sent.kind.{payload.kind}").inc()
        self._transmit(frame, addr, attempt=1)

    def _transmit(self, frame: bytes, addr: SockAddr, attempt: int) -> None:
        """One ``sendto`` try; transient ``OSError`` arms a backoff retry.

        asyncio's datagram transport normally buffers, but a saturated
        kernel buffer surfaces ``ENOBUFS``/``EAGAIN`` on some platforms;
        the retry ladder converts a transient stall into a short delay
        and a persistent one into counted datagram loss.
        """
        sock = self._sock
        if sock is None:
            return  # closed while a retry was pending: counted loss
        try:
            sock.sendto(frame, addr)
        except OSError as exc:
            if attempt >= self.max_send_attempts:
                self.send_drops += 1
                self.runtime.counter("net.h2h.send_dropped").inc()
                self.runtime.trace("net.send_dropped", self._name,
                                   attempts=attempt, error=str(exc))
                return
            self.runtime.counter("net.h2h.send_retry").inc()
            backoff_wall = self.send_backoff * (2 ** (attempt - 1))
            time_scale = getattr(self.runtime, "time_scale", 1.0)

            def retry() -> None:
                self._retry_timers.discard(timer)
                self._transmit(frame, addr, attempt + 1)

            timer = self.runtime.start_timer(backoff_wall / time_scale,
                                             retry)
            self._retry_timers.add(timer)

    # -- receiving ------------------------------------------------------

    def datagram_received(self, data: bytes, addr: SockAddr) -> None:
        """Queue one raw frame; drained on the next loop iteration.

        The bounded queue decouples kernel-speed arrival from
        Python-speed protocol processing: a burst beyond the limit
        sheds the *oldest* queued frame (the protocol recovers lost
        data either way; fresher frames carry fresher state).
        """
        if self._closed:
            self.late_drops += 1
            self.runtime.counter("net.h2h.late_dropped").inc()
            return
        if len(self._recv_queue) >= self._recv_queue_limit:
            self._recv_queue.popleft()
            self.runtime.counter("net.h2h.recv_shed").inc()
        self._recv_queue.append((data, addr))
        if not self._drain_scheduled:
            self._drain_scheduled = True
            self.runtime.call_soon(self._drain_recv)

    def _drain_recv(self) -> None:
        """Process every queued frame (one scheduled drain at a time)."""
        self._drain_scheduled = False
        while self._recv_queue:
            data, _addr = self._recv_queue.popleft()
            self._process_datagram(data)

    def _process_datagram(self, data: bytes) -> None:
        """Parse a frame into a :class:`Packet` and run the tap chain."""
        try:
            src_name, stamped_at, payload = pickle.loads(data)
            src = HostId(src_name)
        except Exception:
            self.malformed += 1
            self.runtime.counter("net.h2h.malformed").inc()
            return
        packet = Packet(src=src, dst=self.host_id, payload=payload,
                        sent_at=float(stamped_at),
                        stamped_at=float(stamped_at))
        tap = self.tap
        if tap is not None and tap(packet):
            return
        self.inject(packet)

    def inject(self, packet: Packet) -> None:
        """Deliver ``packet`` to the host, bypassing the tap.

        Injections landing after :meth:`close` (a chaos-delayed copy
        outliving its deployment) are counted and dropped.
        """
        if self._closed:
            self.late_drops += 1
            self.runtime.counter("net.h2h.late_dropped").inc()
            return
        runtime = self.runtime
        if runtime.trace_sink.active:
            runtime.trace("net.host_recv", self._name, src=str(packet.src),
                          payload_kind=packet.kind, cost_bit=packet.cost_bit,
                          packet=packet.packet_id)
        recv = self._c_recv
        if recv is None:
            recv = self._c_recv = runtime.counter("net.h2h.recv")
            self._h_delay = runtime.histogram("net.h2h.delay")
        recv.inc()
        runtime.counter(f"net.h2h.recv.kind.{packet.kind}").inc()
        self._h_delay.observe(  # type: ignore[union-attr]
            max(0.0, runtime.now() - packet.sent_at))
        if self._on_receive is not None:
            self._on_receive(packet)
