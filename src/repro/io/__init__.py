"""Pluggable runtime/transport backends for the sans-IO protocol core.

This package is the seam between the pure protocol machines
(:mod:`repro.core`, :mod:`repro.baseline`) and the world:

* :mod:`repro.io.interfaces` — the :class:`Runtime` and
  :class:`Transport` contracts the machines are written against;
* :mod:`repro.io.simbackend` — the deterministic discrete-event
  backend (adapters over :class:`repro.sim.Simulator`);
* :mod:`repro.io.aio` / :mod:`repro.io.udp` / :mod:`repro.io.node` —
  the real-time backend: asyncio timers, localhost UDP sockets, and
  full-system assembly;
* :mod:`repro.io.crosscheck` — the seed-matched sim-vs-UDP parity
  harness behind ``python -m repro demo udp``.

See DESIGN.md §14 for the architecture and the per-backend guarantees.
"""

from .interfaces import (
    CounterLike,
    HistogramLike,
    PeriodicHandle,
    ReceiveFn,
    Runtime,
    SendTapFn,
    TapFn,
    TimerHandle,
    Transport,
    as_runtime,
)
from .simbackend import SimRuntime, SimTransport

# Only the contracts and the sim adapters load eagerly.  Everything
# else resolves lazily (PEP 562), for two reasons: the real-time
# backend (aio/udp) would drag ``asyncio`` into every sim-only run —
# measurably slowing the event loop by inflating the GC-tracked heap —
# and the assembly/harness layer (node/crosscheck) imports repro.core,
# which itself depends on the interfaces above, so laziness keeps the
# import graph acyclic.
_LAZY = {
    "AsyncioPeriodic": "aio",
    "AsyncioRuntime": "aio",
    "AsyncioTimer": "aio",
    "UdpTransport": "udp",
    "UdpBroadcastSystem": "node",
    "cluster_names": "node",
    "ChaosCrosscheckResult": "crosscheck",
    "ChaosCrosscheckScenario": "crosscheck",
    "CrosscheckResult": "crosscheck",
    "CrosscheckScenario": "crosscheck",
    "chaos_crosscheck": "crosscheck",
    "crosscheck": "crosscheck",
    "demo_udp": "crosscheck",
    "demo_udp_chaos": "crosscheck",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module_name}", __name__), name)


__all__ = [
    "AsyncioPeriodic",
    "AsyncioRuntime",
    "AsyncioTimer",
    "ChaosCrosscheckResult",
    "ChaosCrosscheckScenario",
    "CounterLike",
    "CrosscheckResult",
    "CrosscheckScenario",
    "HistogramLike",
    "PeriodicHandle",
    "ReceiveFn",
    "Runtime",
    "SendTapFn",
    "SimRuntime",
    "SimTransport",
    "TapFn",
    "TimerHandle",
    "Transport",
    "UdpBroadcastSystem",
    "UdpTransport",
    "as_runtime",
    "chaos_crosscheck",
    "cluster_names",
    "crosscheck",
    "demo_udp",
    "demo_udp_chaos",
]
