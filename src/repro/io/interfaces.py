"""The sans-IO runtime and transport contracts (DESIGN.md §14).

The protocol machines in :mod:`repro.core` and :mod:`repro.baseline`
are pure state machines: events in (packets, timer fires), messages out
(unicast sends), plus observability side effects (trace records,
metrics).  Everything they need from their environment is collected in
two narrow structural interfaces:

* :class:`Runtime` — clock, one-shot timers, periodic tasks, named RNG
  streams, tracing, and metrics.  The discrete-event backend is
  :class:`repro.io.simbackend.SimRuntime` (virtual time, deterministic);
  the real-socket backend is
  :class:`repro.io.aio.AsyncioRuntime` (wall clock, asyncio timers).
* :class:`Transport` — the host's single attachment point to a network:
  fire-and-forget unicast, an inbound-packet callback, the local clock
  reading, local send-queue depth, and the chaos/adversary tap points.
  The discrete-event backend is :class:`repro.net.hostiface.HostPort`
  (and its wrappers :class:`repro.core.piggyback.PiggybackPort` and
  :class:`repro.core.multisource.VirtualPort`); the real-socket backend
  is :class:`repro.io.udp.UdpTransport`.

Both are :func:`typing.runtime_checkable` Protocols, so conformance is
structural — a backend never imports the protocol machines, and the
machines never import a backend.

Contract notes (what every backend must guarantee):

* ``now()`` is monotonically non-decreasing and starts near 0.0; all
  protocol timing config (:class:`repro.core.config.ProtocolConfig`) is
  expressed in these *protocol seconds*.
* ``start_timer`` returns a handle that fires the callback exactly once
  after ``delay`` protocol seconds unless cancelled; ``cancel_timer``
  is safe to call with ``None``, an expired handle, or an already
  cancelled handle (idempotent disarm).
* ``start_periodic`` returns the handle *unstarted*; the first tick
  fires one (jittered) period after ``start()``.  ``stop()`` must
  guarantee no further ticks.  Jitter draws come from the named RNG
  stream so seeded backends replay identically.
* ``trace``/``counter``/``histogram`` must never affect protocol
  behavior — observability is write-only from the machine's view.
* ``Transport.send`` is fire-and-forget unicast with no delivery
  feedback (the paper's nonprogrammable-server service model).
  ``send``/``deliver`` route through the installed taps;
  ``send_raw``/``inject`` are the tap re-entry points that bypass them.
"""

from __future__ import annotations

import random
from typing import (
    Any,
    Callable,
    Optional,
    Protocol,
    runtime_checkable,
)

from ..net.addressing import HostId
from ..net.message import Packet, Payload

#: Inbound-packet callback an application registers on a transport.
ReceiveFn = Callable[[Packet], None]

#: A delivery tap: sees each inbound packet *before* receive accounting;
#: returning True consumes the packet (the tap is responsible for any
#: later re-injection via :meth:`Transport.inject`).
TapFn = Callable[[Packet], bool]

#: A send tap: sees each outbound (dst, payload) pair *before*
#: packetisation and send accounting; returning True consumes the send
#: (the tap is responsible for any substitute via
#: :meth:`Transport.send_raw`).
SendTapFn = Callable[[HostId, Payload], bool]


@runtime_checkable
class CounterLike(Protocol):
    """A monotonically increasing metric."""

    value: float

    def inc(self, amount: float = 1.0) -> None: ...


@runtime_checkable
class HistogramLike(Protocol):
    """A sample-recording metric."""

    def observe(self, value: float) -> None: ...


@runtime_checkable
class TimerHandle(Protocol):
    """A one-shot timer armed by :meth:`Runtime.start_timer`."""

    @property
    def armed(self) -> bool: ...

    def cancel(self) -> None: ...


@runtime_checkable
class PeriodicHandle(Protocol):
    """A periodic task created by :meth:`Runtime.start_periodic`.

    Created stopped; ``start()`` begins ticking (first tick after one
    jittered period), ``stop()`` guarantees no further ticks.  Both are
    idempotent.
    """

    name: str

    @property
    def running(self) -> bool: ...

    def start(self) -> "PeriodicHandle": ...

    def stop(self) -> None: ...


@runtime_checkable
class Runtime(Protocol):
    """Everything a protocol machine may ask of its execution substrate."""

    def now(self) -> float:
        """Current protocol time in seconds (monotone, starts near 0)."""
        ...

    def rng(self, name: str) -> random.Random:
        """The named seed-derived RNG stream (stable per name)."""
        ...

    def call_soon(self, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback`` as soon as possible, after pending work."""
        ...

    def start_timer(self, delay: float,
                    callback: Callable[[], None]) -> TimerHandle:
        """Arm a one-shot timer ``delay`` protocol seconds from now."""
        ...

    def cancel_timer(self, handle: Optional[TimerHandle]) -> None:
        """Disarm a timer; safe on None / expired / already cancelled."""
        ...

    def start_periodic(
        self,
        period: float,
        callback: Callable[[], None],
        *,
        jitter: float = 0.0,
        rng_stream: str = "periodic.jitter",
        name: str = "",
    ) -> PeriodicHandle:
        """Create an (unstarted) periodic task ticking every ``period``."""
        ...

    def trace(self, kind: str, source: str, /, **fields: Any) -> None:
        """Emit one structured trace record (observability only)."""
        ...

    @property
    def trace_sink(self) -> Any:
        """The tracer behind ``trace`` — the *read* side of the trace
        stream (``records(kind=...)``), consumed by oracles such as
        :class:`repro.verify.monitor.InvariantMonitor`."""
        ...

    def counter(self, name: str) -> CounterLike:
        """The named counter, created on first use."""
        ...

    def histogram(self, name: str) -> HistogramLike:
        """The named histogram, created on first use."""
        ...


@runtime_checkable
class Transport(Protocol):
    """A host's single attachment point onto some network.

    The attribute pair ``tap``/``send_tap`` and the method pair
    ``inject``/``send_raw`` form the uniform chaos/adversary surface:
    an injector installs the same tap callable on any backend, and
    re-enters substituted traffic through the same bypass methods.
    """

    host_id: HostId
    tap: Optional[TapFn]
    send_tap: Optional[SendTapFn]

    def set_receiver(self, callback: ReceiveFn) -> None:
        """Register the application callback for inbound packets."""
        ...

    def send(self, dst: HostId, payload: Payload) -> None:
        """Fire-and-forget unicast (runs the send tap first)."""
        ...

    def send_raw(self, dst: HostId, payload: Payload) -> None:
        """Transmit bypassing the send tap (the tap's re-entry point)."""
        ...

    def inject(self, packet: Packet) -> None:
        """Deliver inbound bypassing the tap (the tap's re-entry point)."""
        ...

    def local_time(self) -> float:
        """This host's local clock reading (protocol seconds)."""
        ...

    def queue_length(self) -> int:
        """Outbound packets queued or in flight on the local send path."""
        ...


def as_runtime(runtime_or_sim: object) -> Runtime:
    """Coerce either a :class:`Runtime` or a bare ``Simulator``.

    Protocol machines accept both so existing call sites (and tests)
    that pass a ``Simulator`` keep working: a simulator is wrapped in a
    :class:`~repro.io.simbackend.SimRuntime` on the fly; anything
    already satisfying :class:`Runtime` passes through untouched.
    """
    if isinstance(runtime_or_sim, Runtime):
        return runtime_or_sim
    from ..sim import Simulator

    if isinstance(runtime_or_sim, Simulator):
        from .simbackend import SimRuntime

        return SimRuntime(runtime_or_sim)
    raise TypeError(
        f"expected a Runtime or Simulator, got {type(runtime_or_sim).__name__}")
