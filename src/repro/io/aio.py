"""Real-time backend: asyncio as a :class:`Runtime`.

One :class:`AsyncioRuntime` is shared by every protocol machine in the
process, mirroring how one :class:`~repro.sim.kernel.Simulator` serves
all hosts in a simulation: a single protocol clock, one seed-derived
:class:`~repro.sim.rng.RngRegistry`, one :class:`~repro.sim.trace.Tracer`
and one :class:`~repro.sim.metrics.MetricsRegistry` — the same
observability objects the sim uses, fed by a wall-clock shim instead of
the virtual clock, so the analysis layer reads UDP runs and sim runs
identically.

Time model: the runtime has its own *protocol clock* that starts at 0.0
when the runtime is constructed.  ``time_scale`` maps protocol seconds
to wall seconds (wall = protocol × scale), so a demo configured with the
paper's multi-second timers can run 10–50× faster than real time without
touching :class:`~repro.core.config.ProtocolConfig`.  All Runtime-facing
delays are protocol seconds; the scaling happens only at the
``loop.call_later`` boundary.

Construction needs no event loop — machines can be built up front; the
loop is resolved lazily the first time a timer/periodic/call_soon
actually needs it (i.e. once ``asyncio.run`` is driving).
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Callable, Optional

from ..sim.metrics import MetricsRegistry
from ..sim.rng import RngRegistry
from ..sim.trace import Tracer


class _ProtocolClock:
    """Duck-types the one simulator attribute Tracer/Metrics read: ``now``."""

    __slots__ = ("_runtime",)

    def __init__(self, runtime: "AsyncioRuntime") -> None:
        self._runtime = runtime

    @property
    def now(self) -> float:
        return self._runtime.now()


class AsyncioTimer:
    """One-shot timer handle over ``loop.call_later``."""

    __slots__ = ("_handle", "callback", "name")

    def __init__(self, callback: Callable[[], None], name: str = "") -> None:
        self._handle: Optional[asyncio.TimerHandle] = None
        self.callback = callback
        self.name = name

    @property
    def armed(self) -> bool:
        """True until the timer fires or is cancelled."""
        return self._handle is not None

    def cancel(self) -> None:
        """Disarm without firing; safe when already disarmed/expired."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self.callback()


class AsyncioPeriodic:
    """Periodic task over chained ``loop.call_later`` calls.

    Same semantics as :class:`~repro.sim.process.PeriodicTask`: created
    stopped, first tick one (jittered) period after ``start()``, jitter
    uniform in ``[-jitter, +jitter]`` from a named RNG stream.
    """

    __slots__ = ("_runtime", "period", "jitter", "callback", "name",
                 "_rng", "_handle", "_running")

    def __init__(
        self,
        runtime: "AsyncioRuntime",
        period: float,
        callback: Callable[[], None],
        *,
        jitter: float = 0.0,
        rng_stream: str = "periodic.jitter",
        name: str = "",
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if jitter < 0 or jitter >= period:
            raise ValueError(f"jitter must be in [0, period), got {jitter}")
        self._runtime = runtime
        self.period = period
        self.jitter = jitter
        self.callback = callback
        self.name = name
        self._rng = runtime.rng(rng_stream)
        self._handle: Optional[asyncio.TimerHandle] = None
        self._running = False

    @property
    def running(self) -> bool:
        """True while the task is ticking."""
        return self._running

    def start(self) -> "AsyncioPeriodic":
        """Begin ticking.  The first tick fires after one (jittered) period."""
        if self._running:
            return self
        self._running = True
        self._schedule()
        return self

    def stop(self) -> None:
        """Stop ticking; safe to call when already stopped."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _delay(self) -> float:
        if self.jitter == 0.0:
            return self.period
        return self.period + self._rng.uniform(-self.jitter, self.jitter)

    def _schedule(self) -> None:
        loop = self._runtime._loop_for_scheduling()
        self._handle = loop.call_later(
            self._delay() * self._runtime.time_scale, self._tick)

    def _tick(self) -> None:
        self._handle = None
        if not self._running:
            return
        self.callback()
        if self._running:  # callback may have stopped us
            self._schedule()


class AsyncioRuntime:
    """Wall-clock :class:`~repro.io.interfaces.Runtime` over asyncio.

    Args:
        seed: master seed for the named RNG streams (jitter, backoff).
            The same protocol-side streams exist under the same names as
            in-sim, so seed-matched runs draw comparable jitter.
        time_scale: wall seconds per protocol second.  ``0.05`` runs a
            scenario 20× faster than real time.
        trace: whether the shared :class:`~repro.sim.trace.Tracer`
            retains records (disable for long runs).
    """

    def __init__(self, seed: int = 0, *, time_scale: float = 1.0,
                 trace: bool = True) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self.seed = int(seed)
        self.time_scale = float(time_scale)
        self._epoch = time.monotonic()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        clock = _ProtocolClock(self)
        #: shared observability, same objects the simulator exposes
        self.trace_sink = Tracer(clock, enabled=trace)  # type: ignore[arg-type]
        self.metrics = MetricsRegistry(clock)  # type: ignore[arg-type]
        self._rngs = RngRegistry(self.seed)
        # Contract-conformant bound shortcuts (mirrors SimRuntime).
        self.trace = self.trace_sink.emit
        self.counter = self.metrics.counter
        self.histogram = self.metrics.histogram
        self.rng = self._rngs.stream

    # -- clock ---------------------------------------------------------

    def now(self) -> float:
        """Protocol seconds since the runtime was constructed."""
        return (time.monotonic() - self._epoch) / self.time_scale

    def _loop_for_scheduling(self) -> asyncio.AbstractEventLoop:
        loop = self._loop
        if loop is None or loop.is_closed():
            loop = self._loop = asyncio.get_running_loop()
        return loop

    # -- scheduling ----------------------------------------------------

    def call_soon(self, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback`` on the next loop iteration."""
        self._loop_for_scheduling().call_soon(callback, *args)

    def start_timer(self, delay: float,
                    callback: Callable[[], None]) -> AsyncioTimer:
        """Arm a one-shot timer ``delay`` protocol seconds from now."""
        loop = self._loop_for_scheduling()
        timer = AsyncioTimer(callback)
        timer._handle = loop.call_later(delay * self.time_scale, timer._fire)
        return timer

    def cancel_timer(self, handle: Optional[AsyncioTimer]) -> None:
        """Disarm; safe on None, expired, or already cancelled handles."""
        if handle is not None:
            handle.cancel()

    def start_periodic(
        self,
        period: float,
        callback: Callable[[], None],
        *,
        jitter: float = 0.0,
        rng_stream: str = "periodic.jitter",
        name: str = "",
    ) -> AsyncioPeriodic:
        """An unstarted periodic task ticking every ``period`` seconds."""
        return AsyncioPeriodic(self, period, callback, jitter=jitter,
                               rng_stream=rng_stream, name=name)

    # -- typing conveniences (mypy sees attributes, not the bindings) --

    if False:  # pragma: no cover - never executed, aids static analysis

        def trace(self, kind: str, source: str, /, **fields: Any) -> None: ...

        def counter(self, name: str): ...

        def histogram(self, name: str): ...

        def rng(self, name: str) -> random.Random: ...
