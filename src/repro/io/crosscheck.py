"""Seed-matched sim-vs-UDP cross-check (the `demo udp` harness).

The sans-IO contract in one sentence: the protocol machines validated
deterministically in simulation are the machines deployed over real
sockets.  This harness makes that checkable end to end — run the same
seed-matched 2-cluster scenario once on the discrete-event backend and
once over localhost UDP, and compare the per-host delivered sequence
number sets.

The comparison unit is deliberately the *delivered seqno set*, not the
delivery signature: timestamps and suppliers legitimately differ
between virtual and wall-clock time (UDP reorders, timers jitter in
real time), but a reliable broadcast must hand every host exactly
messages 1..n on both backends.

Both runs use ``ClusterMode.STATIC`` with the same cluster map — the
UDP side has no cost bits, so the sim side gets the same a-priori
knowledge to keep the scenarios genuinely matched.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List

from ..core.config import ClusterMode, ProtocolConfig
from ..core.engine import BroadcastSystem
from ..net.generator import wan_of_lans
from ..sim import Simulator
from .node import UdpBroadcastSystem, cluster_names


@dataclass(frozen=True)
class CrosscheckScenario:
    """One seed-matched scenario shape, shared by both backends."""

    clusters: int = 2
    hosts_per_cluster: int = 2
    messages: int = 5
    interval: float = 1.0
    start_at: float = 2.0
    seed: int = 7
    #: protocol-seconds budget for full delivery on either backend
    timeout: float = 90.0
    #: UDP wall-clock compression (0.05 = 20x faster than real time)
    time_scale: float = 0.05

    def config(self) -> ProtocolConfig:
        n = self.clusters * self.hosts_per_cluster
        return ProtocolConfig.for_scale(
            n, cluster_mode=ClusterMode.STATIC, data_size_bits=4_000)


@dataclass(frozen=True)
class CrosscheckResult:
    """Per-host delivered seqno sets from both backends."""

    sim_delivered: Dict[str, List[int]]
    udp_delivered: Dict[str, List[int]]
    expected: List[int]

    @property
    def match(self) -> bool:
        """Did every host deliver exactly 1..n on both backends?"""
        return (all(v == self.expected for v in self.sim_delivered.values())
                and all(v == self.expected for v in self.udp_delivered.values())
                and sorted(self.sim_delivered) == sorted(self.udp_delivered))

    def report(self) -> str:
        """Human-readable comparison table."""
        lines = [f"{'host':>8}  {'sim':<24} {'udp':<24}"]
        for name in sorted(self.sim_delivered):
            sim_v = self.sim_delivered[name]
            udp_v = self.udp_delivered.get(name, [])
            mark = "ok" if sim_v == udp_v == self.expected else "MISMATCH"
            lines.append(f"{name:>8}  {str(sim_v):<24} {str(udp_v):<24} {mark}")
        verdict = "PARITY" if self.match else "MISMATCH"
        lines.append(f"verdict: {verdict} "
                     f"(expected 1..{len(self.expected)} everywhere)")
        return "\n".join(lines)


def run_sim_reference(scenario: CrosscheckScenario) -> Dict[str, List[int]]:
    """The scenario on the discrete-event backend."""
    sim = Simulator(seed=scenario.seed)
    built = wan_of_lans(sim, clusters=scenario.clusters,
                        hosts_per_cluster=scenario.hosts_per_cluster,
                        backbone="line")
    system = BroadcastSystem(built, config=scenario.config()).start()
    system.broadcast_stream(scenario.messages, interval=scenario.interval,
                            start_at=scenario.start_at)
    system.run_until_delivered(scenario.messages, timeout=scenario.timeout)
    return {str(h): sorted(r.seq for r in records)
            for h, records in system.delivery_records().items()}


async def run_udp_async(scenario: CrosscheckScenario) -> Dict[str, List[int]]:
    """The scenario over localhost UDP sockets (call under a loop)."""
    system = UdpBroadcastSystem(
        cluster_names(scenario.clusters, scenario.hosts_per_cluster),
        config=scenario.config(), seed=scenario.seed,
        time_scale=scenario.time_scale, trace=False)
    await system.open()
    try:
        system.broadcast_stream(scenario.messages, interval=scenario.interval,
                                start_at=scenario.start_at)
        await system.run_until_delivered(scenario.messages,
                                         timeout=scenario.timeout)
        return system.delivered_seqnos()
    finally:
        system.close()


def run_udp(scenario: CrosscheckScenario) -> Dict[str, List[int]]:
    """The scenario over localhost UDP sockets (blocking)."""
    return asyncio.run(run_udp_async(scenario))


def crosscheck(scenario: CrosscheckScenario | None = None) -> CrosscheckResult:
    """Run both backends and compare delivered seqno sets per host."""
    scenario = scenario or CrosscheckScenario()
    sim_delivered = run_sim_reference(scenario)
    udp_delivered = run_udp(scenario)
    return CrosscheckResult(
        sim_delivered=sim_delivered, udp_delivered=udp_delivered,
        expected=list(range(1, scenario.messages + 1)))


def demo_udp(messages: int = 5, time_scale: float = 0.05,
             seed: int = 7) -> CrosscheckResult:
    """The ``python -m repro demo udp`` entry point."""
    scenario = CrosscheckScenario(messages=messages, time_scale=time_scale,
                                  seed=seed)
    result = crosscheck(scenario)
    print(result.report())
    return result


# ----------------------------------------------------------------------
# Chaos parity: the same seeded ChaosSpec over both backends
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosCrosscheckScenario:
    """One seed-matched *faulted* scenario shape for both backends.

    The fault plan is the backend-agnostic ChaosSpec subset — one host
    outage (never the source) plus a window of packet loss and
    corruption — injected by :class:`~repro.chaos.plan.ChaosPlan`
    in-sim and :class:`~repro.chaos.nemesis.ChaosNemesis` over UDP.

    Parity semantics under faults: the *sets* of delivered seqnos must
    still agree exactly in the common case, but packet faults are
    timing-dependent on a wall clock (which datagrams the chaos RNG
    hits depends on arrival order), so the harness also accepts a
    per-host delivery-ratio gap within ``tolerance`` — while the hard
    requirements (full post-heal delivery everywhere on the UDP side,
    zero stable invariant violations) stay exact.
    """

    clusters: int = 2
    hosts_per_cluster: int = 2
    messages: int = 8
    interval: float = 1.0
    start_at: float = 2.0
    seed: int = 7
    #: crashed host and its outage window (must not be the source)
    crash_host: str = "h1.1"
    crash_start: float = 6.0
    crash_end: float = 12.0
    #: packet-fault mix and window
    drop_prob: float = 0.08
    corrupt_prob: float = 0.05
    fault_start: float = 2.0
    fault_end: float = 18.0
    #: the heal-by horizon (all benign faults repaired by then)
    heal_by: float = 20.0
    #: protocol-seconds budget for full delivery on either backend
    timeout: float = 150.0
    #: UDP wall-clock compression (0.05 = 20x faster than real time)
    time_scale: float = 0.05
    #: accepted per-host delivery-ratio gap between the backends
    tolerance: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.tolerance <= 1.0:
            raise ValueError(f"tolerance must be in [0, 1], "
                             f"got {self.tolerance}")

    def config(self) -> ProtocolConfig:
        n = self.clusters * self.hosts_per_cluster
        return ProtocolConfig.for_scale(
            n, cluster_mode=ClusterMode.STATIC, data_size_bits=4_000,
            crash_stable_lag=2)

    def chaos_spec(self):
        """The shared fault plan (constructed lazily: chaos layer)."""
        from ..chaos import ChaosSpec, HostOutageSpec, PacketFaultSpec

        return ChaosSpec(
            heal_by=self.heal_by,
            host_outages=(HostOutageSpec(
                host=self.crash_host, start=self.crash_start,
                end=self.crash_end),),
            packet_faults=(PacketFaultSpec(
                drop_prob=self.drop_prob, corrupt_prob=self.corrupt_prob,
                start=self.fault_start, end=self.fault_end),))


@dataclass(frozen=True)
class ChaosCrosscheckResult:
    """Faulted parity verdict: delivery sets plus the safety oracle."""

    sim_delivered: Dict[str, List[int]]
    udp_delivered: Dict[str, List[int]]
    expected: List[int]
    tolerance: float
    #: invariant violations that persisted past the stable window (UDP)
    udp_stable_violations: int
    #: violations still open when the UDP monitor stopped
    udp_unresolved_violations: int
    #: observed (host, seconds) post-recovery catch-up times (UDP)
    udp_recoveries: List[tuple]

    @property
    def udp_complete(self) -> bool:
        """Every UDP host delivered exactly 1..n after the heal."""
        return all(v == self.expected for v in self.udp_delivered.values())

    @property
    def parity(self) -> bool:
        """Exact per-host delivered-set equality across the backends."""
        return (sorted(self.sim_delivered) == sorted(self.udp_delivered)
                and all(self.sim_delivered[h] == self.udp_delivered[h]
                        for h in self.sim_delivered))

    @property
    def within_tolerance(self) -> bool:
        """Per-host delivery-ratio gap within the accepted band."""
        if sorted(self.sim_delivered) != sorted(self.udp_delivered):
            return False
        total = max(1, len(self.expected))
        return all(
            abs(len(self.sim_delivered[h]) - len(self.udp_delivered[h]))
            / total <= self.tolerance
            for h in self.sim_delivered)

    @property
    def ok(self) -> bool:
        """The chaos-parity verdict (the demo's exit status).

        Hard requirements: the UDP run reached full post-heal delivery
        on every host and the invariant monitor saw zero stable
        violations.  On top of that, the backends must agree — exactly,
        or within the delivery-ratio tolerance band.
        """
        return (self.udp_complete and self.udp_stable_violations == 0
                and (self.parity or self.within_tolerance))

    def report(self) -> str:
        """Human-readable comparison table plus the oracle verdict."""
        lines = [f"{'host':>8}  {'sim':<28} {'udp':<28}"]
        for name in sorted(self.sim_delivered):
            sim_v = self.sim_delivered[name]
            udp_v = self.udp_delivered.get(name, [])
            mark = "ok" if sim_v == udp_v == self.expected else "DIFFERS"
            lines.append(f"{name:>8}  {str(sim_v):<28} {str(udp_v):<28} "
                         f"{mark}")
        lines.append(
            f"udp invariants: {self.udp_stable_violations} stable, "
            f"{self.udp_unresolved_violations} unresolved at end")
        if self.udp_recoveries:
            times = ", ".join(f"{host}={seconds:.1f}s"
                              for host, seconds in self.udp_recoveries)
            lines.append(f"udp recoveries: {times}")
        verdict = ("CHAOS-PARITY" if self.ok and self.parity
                   else "CHAOS-TOLERANT" if self.ok
                   else "FAILED")
        lines.append(
            f"verdict: {verdict} (expected 1..{len(self.expected)} on "
            f"every UDP host post-heal; backend gap tolerance "
            f"{self.tolerance:.0%})")
        return "\n".join(lines)


def run_sim_chaos(scenario: ChaosCrosscheckScenario) -> Dict[str, List[int]]:
    """The faulted scenario on the discrete-event backend."""
    from ..chaos import ChaosPlan

    sim = Simulator(seed=scenario.seed)
    built = wan_of_lans(sim, clusters=scenario.clusters,
                        hosts_per_cluster=scenario.hosts_per_cluster,
                        backbone="line")
    system = BroadcastSystem(built, config=scenario.config()).start()
    ChaosPlan(sim, system, scenario.chaos_spec()).start()
    system.broadcast_stream(scenario.messages, interval=scenario.interval,
                            start_at=scenario.start_at)
    system.run_until_delivered(scenario.messages, timeout=scenario.timeout)
    return {str(h): sorted(r.seq for r in records)
            for h, records in system.delivery_records().items()}


async def run_udp_chaos_async(scenario: ChaosCrosscheckScenario):
    """The faulted scenario over localhost UDP (call under a loop).

    Returns ``(delivered, report)``: the per-host delivered seqnos and
    the invariant monitor's
    :class:`~repro.verify.monitor.MonitorReport`.
    """
    from ..chaos import ChaosNemesis

    system = UdpBroadcastSystem(
        cluster_names(scenario.clusters, scenario.hosts_per_cluster),
        config=scenario.config(), seed=scenario.seed,
        time_scale=scenario.time_scale)
    await system.open()
    nemesis = ChaosNemesis(system, scenario.chaos_spec())
    try:
        nemesis.start()
        system.broadcast_stream(scenario.messages,
                                interval=scenario.interval,
                                start_at=scenario.start_at)
        await nemesis.wait_healed()
        await system.run_until_delivered(scenario.messages,
                                         timeout=scenario.timeout)
        delivered = system.delivered_seqnos()
    finally:
        nemesis.stop()
        system.close()
    return delivered, nemesis.report()


def chaos_crosscheck(
    scenario: ChaosCrosscheckScenario | None = None,
) -> ChaosCrosscheckResult:
    """Run the same seeded ChaosSpec on both backends and compare."""
    scenario = scenario or ChaosCrosscheckScenario()
    sim_delivered = run_sim_chaos(scenario)
    udp_delivered, report = asyncio.run(run_udp_chaos_async(scenario))
    return ChaosCrosscheckResult(
        sim_delivered=sim_delivered, udp_delivered=udp_delivered,
        expected=list(range(1, scenario.messages + 1)),
        tolerance=scenario.tolerance,
        udp_stable_violations=len(report.stable_violations),
        udp_unresolved_violations=len(report.unresolved_violations),
        udp_recoveries=list(report.recoveries))


def demo_udp_chaos(messages: int = 8, time_scale: float = 0.05,
                   seed: int = 7) -> ChaosCrosscheckResult:
    """The ``python -m repro demo udp-chaos`` entry point."""
    scenario = ChaosCrosscheckScenario(messages=messages,
                                       time_scale=time_scale, seed=seed)
    result = chaos_crosscheck(scenario)
    print(result.report())
    return result


__all__ = [
    "ChaosCrosscheckResult",
    "ChaosCrosscheckScenario",
    "CrosscheckResult",
    "CrosscheckScenario",
    "chaos_crosscheck",
    "crosscheck",
    "demo_udp",
    "demo_udp_chaos",
    "run_sim_chaos",
    "run_sim_reference",
    "run_udp",
    "run_udp_async",
    "run_udp_chaos_async",
]
