"""Seed-matched sim-vs-UDP cross-check (the `demo udp` harness).

The sans-IO contract in one sentence: the protocol machines validated
deterministically in simulation are the machines deployed over real
sockets.  This harness makes that checkable end to end — run the same
seed-matched 2-cluster scenario once on the discrete-event backend and
once over localhost UDP, and compare the per-host delivered sequence
number sets.

The comparison unit is deliberately the *delivered seqno set*, not the
delivery signature: timestamps and suppliers legitimately differ
between virtual and wall-clock time (UDP reorders, timers jitter in
real time), but a reliable broadcast must hand every host exactly
messages 1..n on both backends.

Both runs use ``ClusterMode.STATIC`` with the same cluster map — the
UDP side has no cost bits, so the sim side gets the same a-priori
knowledge to keep the scenarios genuinely matched.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List

from ..core.config import ClusterMode, ProtocolConfig
from ..core.engine import BroadcastSystem
from ..net.generator import wan_of_lans
from ..sim import Simulator
from .node import UdpBroadcastSystem, cluster_names


@dataclass(frozen=True)
class CrosscheckScenario:
    """One seed-matched scenario shape, shared by both backends."""

    clusters: int = 2
    hosts_per_cluster: int = 2
    messages: int = 5
    interval: float = 1.0
    start_at: float = 2.0
    seed: int = 7
    #: protocol-seconds budget for full delivery on either backend
    timeout: float = 90.0
    #: UDP wall-clock compression (0.05 = 20x faster than real time)
    time_scale: float = 0.05

    def config(self) -> ProtocolConfig:
        n = self.clusters * self.hosts_per_cluster
        return ProtocolConfig.for_scale(
            n, cluster_mode=ClusterMode.STATIC, data_size_bits=4_000)


@dataclass(frozen=True)
class CrosscheckResult:
    """Per-host delivered seqno sets from both backends."""

    sim_delivered: Dict[str, List[int]]
    udp_delivered: Dict[str, List[int]]
    expected: List[int]

    @property
    def match(self) -> bool:
        """Did every host deliver exactly 1..n on both backends?"""
        return (all(v == self.expected for v in self.sim_delivered.values())
                and all(v == self.expected for v in self.udp_delivered.values())
                and sorted(self.sim_delivered) == sorted(self.udp_delivered))

    def report(self) -> str:
        """Human-readable comparison table."""
        lines = [f"{'host':>8}  {'sim':<24} {'udp':<24}"]
        for name in sorted(self.sim_delivered):
            sim_v = self.sim_delivered[name]
            udp_v = self.udp_delivered.get(name, [])
            mark = "ok" if sim_v == udp_v == self.expected else "MISMATCH"
            lines.append(f"{name:>8}  {str(sim_v):<24} {str(udp_v):<24} {mark}")
        verdict = "PARITY" if self.match else "MISMATCH"
        lines.append(f"verdict: {verdict} "
                     f"(expected 1..{len(self.expected)} everywhere)")
        return "\n".join(lines)


def run_sim_reference(scenario: CrosscheckScenario) -> Dict[str, List[int]]:
    """The scenario on the discrete-event backend."""
    sim = Simulator(seed=scenario.seed)
    built = wan_of_lans(sim, clusters=scenario.clusters,
                        hosts_per_cluster=scenario.hosts_per_cluster,
                        backbone="line")
    system = BroadcastSystem(built, config=scenario.config()).start()
    system.broadcast_stream(scenario.messages, interval=scenario.interval,
                            start_at=scenario.start_at)
    system.run_until_delivered(scenario.messages, timeout=scenario.timeout)
    return {str(h): sorted(r.seq for r in records)
            for h, records in system.delivery_records().items()}


async def run_udp_async(scenario: CrosscheckScenario) -> Dict[str, List[int]]:
    """The scenario over localhost UDP sockets (call under a loop)."""
    system = UdpBroadcastSystem(
        cluster_names(scenario.clusters, scenario.hosts_per_cluster),
        config=scenario.config(), seed=scenario.seed,
        time_scale=scenario.time_scale, trace=False)
    await system.open()
    try:
        system.broadcast_stream(scenario.messages, interval=scenario.interval,
                                start_at=scenario.start_at)
        await system.run_until_delivered(scenario.messages,
                                         timeout=scenario.timeout)
        return system.delivered_seqnos()
    finally:
        system.close()


def run_udp(scenario: CrosscheckScenario) -> Dict[str, List[int]]:
    """The scenario over localhost UDP sockets (blocking)."""
    return asyncio.run(run_udp_async(scenario))


def crosscheck(scenario: CrosscheckScenario | None = None) -> CrosscheckResult:
    """Run both backends and compare delivered seqno sets per host."""
    scenario = scenario or CrosscheckScenario()
    sim_delivered = run_sim_reference(scenario)
    udp_delivered = run_udp(scenario)
    return CrosscheckResult(
        sim_delivered=sim_delivered, udp_delivered=udp_delivered,
        expected=list(range(1, scenario.messages + 1)))


def demo_udp(messages: int = 5, time_scale: float = 0.05,
             seed: int = 7) -> CrosscheckResult:
    """The ``python -m repro demo udp`` entry point."""
    scenario = CrosscheckScenario(messages=messages, time_scale=time_scale,
                                  seed=seed)
    result = crosscheck(scenario)
    print(result.report())
    return result


__all__ = [
    "CrosscheckResult",
    "CrosscheckScenario",
    "crosscheck",
    "demo_udp",
    "run_sim_reference",
    "run_udp",
    "run_udp_async",
]
