"""UDP deployment assembly: the protocol over real sockets.

:class:`UdpBroadcastSystem` mirrors :class:`repro.core.engine.BroadcastSystem`
— same order assignment, same host construction, same workload and
convergence helpers — but deploys every host over its own localhost UDP
socket driven by one shared :class:`~repro.io.aio.AsyncioRuntime`.  The
protocol machines are byte-for-byte the classes validated in-sim; only
the Runtime/Transport objects handed to them differ.

Deployment model notes:

* Clusters are **static**: real networks stamp no cost bits, so hosts
  get a-priori cluster knowledge (the paper's manual-configuration
  option, Section 6).  Any config passed in is coerced to
  ``ClusterMode.STATIC``.
* Sockets bind ephemeral ports (the OS picks), so parallel CI jobs
  never collide; the full peer address map is distributed to every
  transport after all sockets are bound — playing the role of the
  routing tables the sim network maintains.
* All hosts run in one process on one event loop.  That is a harness
  simplification (one Python process is the "network"), not a protocol
  one: hosts still communicate exclusively through their sockets.
"""

from __future__ import annotations

import asyncio
import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..core.config import ClusterMode, ProtocolConfig
from ..core.delivery import DeliverCallback
from ..core.engine import BroadcastSystem
from ..core.host import BroadcastHost
from ..core.source import SourceHost
from ..net.addressing import HostId
from .aio import AsyncioRuntime
from .udp import UdpTransport


def cluster_names(clusters: int, hosts_per_cluster: int) -> List[List[str]]:
    """The host-name grid :func:`repro.net.generator.wan_of_lans` uses.

    Seed-matched sim-vs-UDP comparisons need identical host names on
    both sides; this reproduces the generator's ``h{c}.{h}`` scheme.
    """
    return [[f"h{c}.{h}" for h in range(hosts_per_cluster)]
            for c in range(clusters)]


class UdpBroadcastSystem:
    """A complete broadcast deployment over localhost UDP sockets.

    Args:
        clusters: host names grouped by cluster, e.g.
            ``[["h0.0", "h0.1"], ["h1.0", "h1.1"]]``.
        config: protocol tuning; cluster mode is forced to STATIC.
        source: source host name (defaults to the first host).
        seed: master seed for the runtime's RNG streams.
        time_scale: wall seconds per protocol second (see
            :class:`~repro.io.aio.AsyncioRuntime`); ``0.05`` runs the
            paper's multi-second timers 20× faster than real time.
        deliver_callback: invoked on every delivery at every host.
        trace: retain trace records on the shared runtime.
    """

    def __init__(
        self,
        clusters: Sequence[Sequence[str]],
        config: Optional[ProtocolConfig] = None,
        source: Optional[str] = None,
        *,
        seed: int = 0,
        time_scale: float = 1.0,
        deliver_callback: Optional[DeliverCallback] = None,
        trace: bool = True,
    ) -> None:
        names = [name for cluster in clusters for name in cluster]
        if not names:
            raise ValueError("need at least one host")
        if len(set(names)) != len(names):
            raise ValueError("host names must be distinct")
        self.host_ids: List[HostId] = [HostId(n) for n in names]
        self.source_id = HostId(source) if source is not None else self.host_ids[0]
        if self.source_id not in self.host_ids:
            raise ValueError(f"source {self.source_id} is not a deployment host")

        config = config or ProtocolConfig.for_scale(len(names))
        if config.cluster_mode is not ClusterMode.STATIC:
            # No cost bits on real sockets: cluster knowledge is a-priori.
            config = dataclasses.replace(config,
                                         cluster_mode=ClusterMode.STATIC)
        self.config = config

        self.runtime = AsyncioRuntime(seed=seed, time_scale=time_scale,
                                      trace=trace)
        self._order = BroadcastSystem._assign_order(self.host_ids, self.source_id)

        static_clusters: Dict[HostId, Set[HostId]] = {}
        for cluster in clusters:
            members = {HostId(n) for n in cluster}
            for name in cluster:
                static_clusters[HostId(name)] = members

        self.transports: Dict[HostId, UdpTransport] = {
            h: UdpTransport(self.runtime, h, peers={}) for h in self.host_ids}
        self.hosts: Dict[HostId, BroadcastHost] = {}
        for host_id in self.host_ids:
            cls = SourceHost if host_id == self.source_id else BroadcastHost
            self.hosts[host_id] = cls(
                sim=self.runtime,
                port=self.transports[host_id],
                participants=self.host_ids,
                order=self._order.__getitem__,
                config=self.config,
                static_cluster=static_clusters.get(host_id),
                deliver_callback=deliver_callback,
            )
        self._opened = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def source(self) -> SourceHost:
        """The source host agent (root of the broadcast)."""
        host = self.hosts[self.source_id]
        assert isinstance(host, SourceHost)
        return host

    async def open(self, host: str = "127.0.0.1") -> "UdpBroadcastSystem":
        """Bind every socket, distribute the peer map, start the hosts."""
        if self._opened:
            return self
        self._opened = True
        addresses = {}
        for host_id, transport in self.transports.items():
            await transport.open((host, 0))
            sock = transport._sock
            assert sock is not None
            addresses[host_id] = sock.get_extra_info("sockname")[:2]
        for transport in self.transports.values():
            transport.peers.update(addresses)
        for host_id in self.host_ids:
            self.hosts[host_id].start()
        return self

    def close(self) -> None:
        """Stop all hosts and close every socket."""
        for host in self.hosts.values():
            host.stop()
        for transport in self.transports.values():
            transport.close()
        self._opened = False

    # ------------------------------------------------------------------
    # Failure lifecycle (the surface the chaos injectors drive)
    # ------------------------------------------------------------------

    def crash_host(self, host_id: HostId) -> None:
        """Crash one host (volatile state lost, silent; idempotent).

        The socket stays bound — a crashed host drops inbound datagrams
        itself, exactly like the sim model (the network keeps routing to
        a dead host; it just answers nothing).
        """
        self.hosts[host_id].crash()

    def recover_host(self, host_id: HostId) -> None:
        """Recover a crashed host (no-op when it is up)."""
        self.hosts[host_id].recover()

    def crashed_hosts(self) -> List[HostId]:
        """Hosts currently down, sorted."""
        return sorted(h for h, host in self.hosts.items() if host.crashed)

    def parent_edges(self) -> Dict[HostId, Optional[HostId]]:
        """Current host parent graph as child -> parent (oracle view)."""
        return {host_id: host.parent for host_id, host in self.hosts.items()}

    # ------------------------------------------------------------------
    # Workload and convergence (API parity with BroadcastSystem)
    # ------------------------------------------------------------------

    def broadcast_stream(
        self,
        count: int,
        interval: float,
        start_at: float = 0.0,
        content: Callable[[int], object] = lambda seq: f"msg-{seq}",
    ) -> None:
        """Schedule ``count`` broadcasts, one every ``interval`` protocol
        seconds, through the runtime's timers."""
        if count < 0 or interval <= 0:
            raise ValueError("count must be >= 0 and interval positive")
        now = self.runtime.now()
        for k in range(count):
            delay = max(0.0, start_at + k * interval - now)
            self.runtime.start_timer(
                delay, lambda k=k: self.source.broadcast(content(k + 1)))

    def all_delivered(self, n: int,
                      hosts: Optional[List[HostId]] = None) -> bool:
        """True when every (given) host has delivered messages 1..n."""
        targets = hosts if hosts is not None else self.host_ids
        return all(self.hosts[h].deliveries.has_all(n) for h in targets)

    async def run_until_delivered(self, n: int, timeout: float,
                                  hosts: Optional[List[HostId]] = None,
                                  check_period: float = 0.25) -> bool:
        """Wait until 1..n reach all (given) hosts; times in protocol
        seconds."""
        deadline = self.runtime.now() + timeout
        while self.runtime.now() < deadline:
            if self.all_delivered(n, hosts):
                return True
            await asyncio.sleep(check_period * self.runtime.time_scale)
        return self.all_delivered(n, hosts)

    def delivered_seqnos(self) -> Dict[str, List[int]]:
        """Per-host sorted delivered sequence numbers (the parity unit)."""
        return {str(h): sorted(r.seq for r in self.hosts[h].deliveries.records())
                for h in self.host_ids}
