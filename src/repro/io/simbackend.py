"""Discrete-event backend: the simulator as a :class:`Runtime`.

:class:`SimRuntime` adapts one :class:`~repro.sim.kernel.Simulator` to
the :class:`~repro.io.interfaces.Runtime` contract.  It is a *pure
adapter*: every call delegates to exactly the simulator primitive the
protocol machines used before the sans-IO refactor, in the same order,
so seeded runs are byte-identical to the pre-refactor tree (pinned by
``tests/io/test_signature_pin.py``).

Hot-path note: ``trace``/``counter``/``histogram``/``call_soon``/``rng``
are bound straight to the simulator's own methods at construction, so
the adapter adds **zero** per-call indirection on the protocol's
hottest paths — ``runtime.trace(...)`` *is* ``sim.trace.emit(...)``.

:class:`SimTransport` wraps any sim-side port (a raw
:class:`~repro.net.hostiface.HostPort`, a
:class:`~repro.core.piggyback.PiggybackPort`, or a multi-source
:class:`~repro.core.multisource.VirtualPort`) behind the
:class:`~repro.io.interfaces.Transport` contract.  All three port
classes already satisfy the contract natively — the wrapper exists for
call sites that want an explicit adapter object (and for tests proving
that wrapping is transparent); system assembly passes the ports
directly to avoid a delegation layer on the send path.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from ..net.addressing import HostId
from ..net.message import Packet, Payload
from ..sim import PeriodicTask, Simulator, Timer
from .interfaces import ReceiveFn, SendTapFn, TapFn


class SimRuntime:
    """One simulator exposed as a :class:`~repro.io.interfaces.Runtime`.

    Shared by every protocol machine deployed over the same simulator,
    exactly as the simulator itself was before the refactor.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        # Direct bindings: these four satisfy the Runtime contract with
        # the simulator's own bound methods (no wrapper frame).
        self.trace = sim.trace.emit
        self.counter = sim.metrics.counter
        self.histogram = sim.metrics.histogram
        self.rng = sim.rng.stream

    @property
    def trace_sink(self):
        """The shared :class:`~repro.sim.trace.Tracer` (read side of
        ``trace``; uniform with ``AsyncioRuntime.trace_sink`` so
        monitors can consume the trace stream on either backend)."""
        return self.sim.trace

    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    def call_soon(self, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback`` at the current virtual time (FIFO)."""
        self.sim.call_soon(callback, *args)

    # -- timers --------------------------------------------------------

    def start_timer(self, delay: float,
                    callback: Callable[[], None]) -> Timer:
        """Arm a fresh one-shot :class:`~repro.sim.process.Timer`."""
        timer = Timer(self.sim, callback)
        timer.start(delay)
        return timer

    def cancel_timer(self, handle: Optional[Timer]) -> None:
        """Disarm; safe on None, expired, or already cancelled handles."""
        if handle is not None:
            handle.cancel()

    def start_periodic(
        self,
        period: float,
        callback: Callable[[], None],
        *,
        jitter: float = 0.0,
        rng_stream: str = "periodic.jitter",
        name: str = "",
    ) -> PeriodicTask:
        """An unstarted :class:`~repro.sim.process.PeriodicTask`."""
        return PeriodicTask(self.sim, period, callback, jitter=jitter,
                            rng_stream=rng_stream, name=name)

    # -- typing conveniences (mypy sees attributes, not the bindings) --

    if False:  # pragma: no cover - never executed, aids static analysis

        def trace(self, kind: str, source: str, /, **fields: Any) -> None: ...

        def counter(self, name: str): ...

        def histogram(self, name: str): ...

        def rng(self, name: str) -> random.Random: ...


class SimTransport:
    """Explicit Transport adapter over any sim-side port.

    Pure delegation — including the tap attributes, which forward to
    the wrapped port so an injector tapping either object taps both.
    """

    def __init__(self, port: Any) -> None:
        self.port = port

    @property
    def host_id(self) -> HostId:
        """The host this transport belongs to."""
        return self.port.host_id

    @property
    def tap(self) -> Optional[TapFn]:
        """Inbound delivery tap (forwards to the wrapped port)."""
        return self.port.tap

    @tap.setter
    def tap(self, value: Optional[TapFn]) -> None:
        self.port.tap = value

    @property
    def send_tap(self) -> Optional[SendTapFn]:
        """Outbound send tap (forwards to the wrapped port)."""
        return self.port.send_tap

    @send_tap.setter
    def send_tap(self, value: Optional[SendTapFn]) -> None:
        self.port.send_tap = value

    def set_receiver(self, callback: ReceiveFn) -> None:
        """Register the application callback for inbound packets."""
        self.port.set_receiver(callback)

    def send(self, dst: HostId, payload: Payload) -> None:
        """Fire-and-forget unicast (runs the send tap first)."""
        self.port.send(dst, payload)

    def send_raw(self, dst: HostId, payload: Payload) -> None:
        """Transmit bypassing the send tap."""
        self.port.send_raw(dst, payload)

    def inject(self, packet: Packet) -> None:
        """Deliver inbound bypassing the tap."""
        self.port.inject(packet)

    def local_time(self) -> float:
        """This host's local clock reading."""
        return self.port.local_time()

    def queue_length(self) -> int:
        """Outbound queue depth of the wrapped port."""
        return self.port.queue_length()
