"""Measurement harness: run the scenario matrix, write ``BENCH_*.json``.

The output schema is versioned (:data:`SCHEMA_VERSION`); the compare
tool refuses to diff files with mismatched versions.  Results record,
per scenario: wall time, simulated events executed, events/second, peak
process RSS, and the retained trace-kind histogram.
"""

from __future__ import annotations

import datetime as _dt
import gc
import json
import platform
import resource
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from .scenarios import SCENARIOS, Scenario

#: Bump whenever the result schema or the pinned scenario matrix
#: changes incompatibly; compare refuses cross-version diffs.
SCHEMA_VERSION = 1


def _peak_rss_kb() -> int:
    """Peak resident set size of this process, in KiB.

    ``ru_maxrss`` is the lifetime peak, so per-scenario values are
    nondecreasing across a matrix run; treat them as an envelope, not a
    per-scenario measurement.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        rss //= 1024
    return int(rss)


@dataclass
class BenchResult:
    """One scenario's measurements."""

    scenario: str
    wall_s: float
    events: int
    events_per_s: float
    peak_rss_kb: int
    trace_kinds: Dict[str, int] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "wall_s": self.wall_s,
            "events": self.events,
            "events_per_s": self.events_per_s,
            "peak_rss_kb": self.peak_rss_kb,
            "trace_kinds": self.trace_kinds,
            "meta": self.meta,
        }


def run_scenario(scenario: Scenario, quick: bool = False,
                 seed: Optional[int] = None) -> BenchResult:
    """Run one scenario under measurement."""
    gc.collect()
    start = time.perf_counter()
    run = scenario.run(quick=quick, seed=seed)
    wall = time.perf_counter() - start
    events = run.sim.events_executed
    return BenchResult(
        scenario=scenario.name,
        wall_s=wall,
        events=events,
        events_per_s=(events / wall) if wall > 0 else float("inf"),
        peak_rss_kb=_peak_rss_kb(),
        trace_kinds=run.trace_kinds(),
        meta=run.meta,
    )


def _run_scenario_json(name: str, quick: bool = False) -> Dict[str, Any]:
    """Worker-process entry point: measure one scenario by name.

    Module-level (picklable by reference) so the parallel matrix can
    ship it to :class:`repro.exec.ProcessExecutor` workers; wall time
    and RSS are measured *inside* the worker.
    """
    return run_scenario(SCENARIOS[name], quick=quick).to_json()


def run_matrix(names: Optional[Iterable[str]] = None, quick: bool = False,
               echo: bool = False, jobs: int = 1) -> Dict[str, Any]:
    """Run the (sub)matrix and return the full bench payload.

    With ``jobs > 1`` scenarios run in worker processes (results merged
    in matrix order).  Simulated outcomes are unaffected — scenarios
    are seed-deterministic — but co-scheduled workers share cores, so
    wall-clock comparisons against serial baselines are only valid for
    serial runs; the payload records ``jobs`` so the compare tool's
    users can tell.
    """
    selected: List[Scenario] = []
    for name in (names if names is not None else SCENARIOS):
        try:
            selected.append(SCENARIOS[name])
        except KeyError:
            raise SystemExit(
                f"unknown scenario {name!r}; available: {', '.join(SCENARIOS)}")
    results = []
    if jobs > 1:
        from ..exec import ProcessExecutor, WorkItem, values_or_raise

        items = [WorkItem(key=(scenario.name,), fn=_run_scenario_json,
                          kwargs=dict(name=scenario.name, quick=quick))
                 for scenario in selected]
        results = values_or_raise(ProcessExecutor(jobs=jobs).map(items))
        if echo:
            for result in results:
                print(f"  {result['scenario']:<20} {result['events']:>9} "
                      f"events  {result['wall_s']:8.3f}s  "
                      f"{result['events_per_s']:>12,.0f} ev/s  "
                      f"rss {result['peak_rss_kb']} KiB")
    else:
        for scenario in selected:
            result = run_scenario(scenario, quick=quick)
            results.append(result.to_json())
            if echo:
                print(f"  {result.scenario:<20} {result.events:>9} events  "
                      f"{result.wall_s:8.3f}s  "
                      f"{result.events_per_s:>12,.0f} ev/s  "
                      f"rss {result.peak_rss_kb} KiB")
    return {
        "schema_version": SCHEMA_VERSION,
        "created_utc": _dt.datetime.now(_dt.timezone.utc).isoformat(),
        "quick": quick,
        "jobs": jobs,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "results": results,
    }


def default_output_path(base_dir: Optional[Path] = None) -> Path:
    """``BENCH_<YYYY-MM-DD>.json`` in ``base_dir`` (default: cwd)."""
    stamp = _dt.date.today().isoformat()
    return (base_dir or Path.cwd()) / f"BENCH_{stamp}.json"


def write_bench_file(payload: Dict[str, Any], path: Path) -> Path:
    """Write a bench payload as stable, sorted JSON."""
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_bench_file(path: Path) -> Dict[str, Any]:
    """Read a bench payload, validating the schema version."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} != supported {SCHEMA_VERSION}")
    return payload
