"""The pinned benchmark scenario matrix.

Each scenario is a deterministic, self-contained simulation run.  The
harness (:mod:`repro.perf.harness`) wraps these in wall-clock and RSS
measurement; the seed-determinism guard tests run them twice and demand
bit-identical outcomes.

Scenario parameters are **pinned**: changing them invalidates every
recorded ``BENCH_*.json`` comparison, so treat edits like a schema bump
(see ``SCHEMA_VERSION`` in :mod:`repro.perf.harness`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim import Simulator, summarize_kinds

#: Smaller data payloads, matching the experiment sweeps' convention
#: (keeps 56 kbit/s trunks out of saturation under the basic algorithm).
_DATA_BITS = 4_000


@dataclass
class ScenarioRun:
    """A finished scenario: the simulator plus optional protocol system."""

    sim: Simulator
    system: Optional[Any] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    def trace_kinds(self) -> Dict[str, int]:
        """Histogram of retained trace-record kinds."""
        return summarize_kinds(self.sim.trace)

    def delivery_signature(self) -> List[Tuple[str, int, float, str]]:
        """Canonical, order-stable list of every delivery that happened.

        Entries are ``(host, seq, delivered_at, supplier)``.  Two runs
        of the same seeded scenario must produce byte-identical
        signatures — this is what the determinism guard compares.
        """
        if self.system is None:
            return []
        out: List[Tuple[str, int, float, str]] = []
        for host_id, records in sorted(self.system.delivery_records().items(),
                                       key=lambda kv: str(kv[0])):
            for record in records:
                out.append((str(host_id), record.seq, record.delivered_at,
                            str(record.supplier)))
        return out


RunFn = Callable[[bool, int], ScenarioRun]


@dataclass(frozen=True)
class Scenario:
    """One named entry in the benchmark matrix."""

    name: str
    description: str
    _run: RunFn
    default_seed: int

    def run(self, quick: bool = False, seed: Optional[int] = None) -> ScenarioRun:
        """Execute the scenario; ``quick`` shrinks it for CI."""
        return self._run(quick, self.default_seed if seed is None else seed)


# ----------------------------------------------------------------------
# kernel_throughput — synthetic event-loop micro-benchmark
# ----------------------------------------------------------------------


def _run_kernel_throughput(quick: bool, seed: int) -> ScenarioRun:
    """Pure kernel stress: deep heap, call_soon FIFO, cancels, dead emits.

    Tracing is disabled (the tracer's zero-cost path is itself part of
    what is measured).  The workload keeps ~``width`` events pending so
    heap sifts dominate, mixes in ``call_soon`` hops, and cancels a
    fraction of events — the three shapes protocol code actually
    produces.
    """
    n_events = 100_000 if quick else 400_000
    width = 2_000
    sim = Simulator(seed=seed)
    sim.trace.enabled = False
    state = {"count": 0, "victim": None}

    def tick(i: int) -> None:
        state["count"] += 1
        sim.trace.emit("bench.tick", "kernel", i=i)  # exercises the dead path
        if state["count"] >= n_events:
            return
        step = state["count"] & 7
        if step == 0:
            sim.call_soon(hop, i)
        else:
            sim.schedule(0.0001 * (1 + (i * 7919) % 97), tick, i)
            if step == 3:
                # Cancel-and-replace, the timer-refresh idiom hosts use.
                victim = state["victim"]
                if victim is not None:
                    sim.try_cancel(victim)
                state["victim"] = sim.schedule(5.0, noop)

    def hop(i: int) -> None:
        state["count"] += 1
        if state["count"] < n_events:
            sim.schedule(0.0001 * (1 + (i * 31) % 89), tick, i)

    def noop() -> None:
        state["count"] += 1

    for i in range(width):
        sim.schedule(0.0001 * (1 + (i * 7919) % 97), tick, i)
    sim.run(max_events=n_events)
    return ScenarioRun(sim=sim, meta={"n_events": n_events, "width": width})


# ----------------------------------------------------------------------
# Experiment-shaped scenarios (tree protocol on wan-of-LANs topologies)
# ----------------------------------------------------------------------


def _tree_system(sim: Simulator, clusters: int, hosts_per_cluster: int,
                 backbone: str):
    from ..core import BroadcastSystem, ProtocolConfig
    from ..net import wan_of_lans

    built = wan_of_lans(sim, clusters=clusters,
                        hosts_per_cluster=hosts_per_cluster,
                        backbone=backbone)
    config = ProtocolConfig.for_scale(clusters * hosts_per_cluster,
                                      data_size_bits=_DATA_BITS)
    return BroadcastSystem(built, config=config).start(), built


def _run_e2_delay(quick: bool, seed: int) -> ScenarioRun:
    """E2-shaped workload: failure-free stream on a line backbone."""
    clusters, hosts = (3, 2) if quick else (4, 4)
    n = 10 if quick else 20
    sim = Simulator(seed=seed)
    system, _ = _tree_system(sim, clusters, hosts, "line")
    system.broadcast_stream(n, interval=1.0, start_at=2.0)
    system.run_until_delivered(n, timeout=600.0)
    return ScenarioRun(sim=sim, system=system,
                       meta={"clusters": clusters, "hosts_per_cluster": hosts,
                             "messages": n})


def _run_e5_congestion(quick: bool, seed: int) -> ScenarioRun:
    """E5-shaped workload: star backbone concentrating source load."""
    clusters, hosts = (3, 4) if quick else (4, 8)
    n = 10 if quick else 20
    sim = Simulator(seed=seed)
    system, _ = _tree_system(sim, clusters, hosts, "star")
    system.broadcast_stream(n, interval=1.0, start_at=2.0)
    system.run_until_delivered(n, timeout=600.0)
    return ScenarioRun(sim=sim, system=system,
                       meta={"clusters": clusters, "hosts_per_cluster": hosts,
                             "messages": n})


def _run_e20_churn(quick: bool, seed: int) -> ScenarioRun:
    """E20-shaped workload: host crash/recovery churn while streaming."""
    from ..chaos import ChaosPlan, ChaosSpec, HostChurnSpec

    clusters, hosts = (2, 2) if quick else (3, 2)
    n = 10 if quick else 20
    heal_by = 30.0 if quick else 60.0
    sim = Simulator(seed=seed)
    system, built = _tree_system(sim, clusters, hosts, "line")
    churned = tuple(str(h) for h in built.hosts if h != system.source_id)
    ChaosPlan(sim, system, ChaosSpec(
        heal_by=heal_by,
        host_churn=(HostChurnSpec(churned, mean_up=25.0, mean_down=5.0),),
    )).start()
    system.broadcast_stream(n, interval=1.0, start_at=2.0)
    sim.run(until=heal_by + 1.0)
    system.run_until_delivered(n, timeout=400.0)
    return ScenarioRun(sim=sim, system=system,
                       meta={"clusters": clusters, "hosts_per_cluster": hosts,
                             "messages": n, "heal_by": heal_by})


def _run_e21_adversarial(quick: bool, seed: int) -> ScenarioRun:
    """E21-shaped workload: adaptive control plane under packet chaos.

    Exercises the RTT estimators, backoff paths, checksum validation,
    and the PacketChaos tap — the code this scenario exists to keep
    honest.  Trunk loss plus corruption/delay/replay faults, adaptive
    timeouts on.
    """
    from ..chaos import ChaosPlan, ChaosSpec, HostOutageSpec, PacketFaultSpec
    from ..core import BroadcastSystem, ProtocolConfig
    from ..net import expensive_spec, wan_of_lans

    clusters, hosts = (2, 2) if quick else (3, 2)
    n = 10 if quick else 20
    heal_by = 20.0 if quick else 40.0
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=clusters, hosts_per_cluster=hosts,
                        backbone="line",
                        expensive=expensive_spec(loss_prob=0.10))
    config = ProtocolConfig.for_scale(clusters * hosts,
                                      data_size_bits=_DATA_BITS,
                                      crash_stable_lag=1, adaptive=True)
    system = BroadcastSystem(built, config=config).start()
    victims = [str(h) for h in built.hosts if h != system.source_id]
    ChaosPlan(sim, system, ChaosSpec(
        heal_by=heal_by,
        host_outages=(HostOutageSpec(victims[-1], 8.0, 12.0),),
        packet_faults=(PacketFaultSpec(
            start=2.0, end=heal_by, corrupt_prob=0.08, delay_prob=0.2,
            delay=0.6, replay_prob=0.05, replay_lag=2.0),),
    )).start()
    system.broadcast_stream(n, interval=1.0, start_at=2.0)
    sim.run(until=heal_by + 1.0)
    system.run_until_delivered(n, timeout=400.0)
    return ScenarioRun(sim=sim, system=system,
                       meta={"clusters": clusters, "hosts_per_cluster": hosts,
                             "messages": n, "heal_by": heal_by})


def _run_e25_saturation(quick: bool, seed: int) -> ScenarioRun:
    """E25-shaped workload: open-loop overload on the shedding tree.

    Bursty arrivals at roughly twice the trunk's sustainable rate, with
    bounded buffers, load shedding, and admission control all switched
    on — the hot paths this scenario keeps honest are the per-send
    queue-depth check, store/fill-table eviction, and the token bucket.
    """
    from ..core import BroadcastSystem, ProtocolConfig, ResourceConfig
    from ..experiments.saturation import CountingSource, schedule_open_loop
    from ..net import wan_of_lans

    clusters, hosts = (2, 2) if quick else (3, 2)
    duration = 10.0 if quick else 25.0
    rate = 12.0  # the tree sustains ~6 msg/s on 56 kbit/s trunks
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=clusters, hosts_per_cluster=hosts,
                        backbone="line")
    config = ProtocolConfig.for_scale(
        clusters * hosts, data_size_bits=_DATA_BITS,
        resources=ResourceConfig(store_limit=64, fill_table_limit=512,
                                 outbound_queue_limit=32,
                                 admission_rate=6.0, admission_burst=8))
    system = BroadcastSystem(built, config=config).start()
    counting = CountingSource(system.source)
    schedule_open_loop(sim, counting, "bursty", rate=rate,
                       duration=duration, start_at=2.0)
    sim.run(until=2.0 + duration)
    system.run_until_delivered(counting.admitted, timeout=240.0)
    return ScenarioRun(sim=sim, system=system,
                       meta={"clusters": clusters, "hosts_per_cluster": hosts,
                             "offered": counting.offered,
                             "admitted": counting.admitted,
                             "rate": rate, "duration": duration})


#: the pinned matrix, in execution order
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario("kernel_throughput",
                 "synthetic event-loop stress (deep heap + call_soon + cancels)",
                 _run_kernel_throughput, default_seed=1),
        Scenario("e2_delay",
                 "failure-free broadcast stream, line backbone (E2 shape)",
                 _run_e2_delay, default_seed=1),
        Scenario("e5_congestion",
                 "source-congestion stream, star backbone (E5 shape)",
                 _run_e5_congestion, default_seed=4),
        Scenario("e20_churn",
                 "host crash/recovery churn while streaming (E20 shape)",
                 _run_e20_churn, default_seed=18),
        Scenario("e21_adversarial",
                 "adaptive control plane under packet chaos (E21 shape)",
                 _run_e21_adversarial, default_seed=21),
        Scenario("e25_saturation",
                 "open-loop overload on the shedding tree (E25 shape)",
                 _run_e25_saturation, default_seed=25),
    )
}
