"""Diff two bench files; fail on throughput regressions.

Usage::

    python -m repro.perf.compare baseline.json new.json [--threshold 0.15]

Exit status 1 when any scenario present in both files regressed by more
than ``threshold`` (relative drop in events/second), or when a baseline
scenario is missing from the new file.  This is the CI regression gate.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from .harness import load_bench_file

#: default allowed relative drop in events/second before failing
DEFAULT_THRESHOLD = 0.15


@dataclass
class CompareResult:
    """Outcome of comparing one scenario across two bench files."""

    scenario: str
    old_events_per_s: Optional[float]
    new_events_per_s: Optional[float]

    @property
    def ratio(self) -> Optional[float]:
        """new/old throughput, or None when either side is missing."""
        if not self.old_events_per_s or self.new_events_per_s is None:
            return None
        return self.new_events_per_s / self.old_events_per_s

    def regressed(self, threshold: float) -> bool:
        """True when this scenario fails the gate at ``threshold``."""
        if self.new_events_per_s is None:
            return True  # vanished scenarios fail the gate
        ratio = self.ratio
        return ratio is not None and ratio < (1.0 - threshold)


def _by_scenario(payload: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    return {entry["scenario"]: entry for entry in payload.get("results", [])}


def compare_payloads(old: Dict[str, Any], new: Dict[str, Any]) -> List[CompareResult]:
    """Compare two loaded bench payloads, keyed on the baseline's scenarios.

    Scenarios only present in ``new`` are ignored (adding benchmarks is
    never a regression).
    """
    old_results = _by_scenario(old)
    new_results = _by_scenario(new)
    out = []
    for name, old_entry in sorted(old_results.items()):
        new_entry = new_results.get(name)
        out.append(CompareResult(
            scenario=name,
            old_events_per_s=old_entry.get("events_per_s"),
            new_events_per_s=(new_entry.get("events_per_s")
                              if new_entry is not None else None),
        ))
    return out


def compare_bench_files(old_path: Path, new_path: Path) -> List[CompareResult]:
    """Load and compare two bench files (schema versions must match)."""
    return compare_payloads(load_bench_file(old_path), load_bench_file(new_path))


def format_table(results: List[CompareResult], threshold: float) -> str:
    """Human-readable comparison table with a PASS/FAIL verdict per row."""
    lines = [f"{'scenario':<20} {'old ev/s':>14} {'new ev/s':>14} "
             f"{'ratio':>7}  verdict"]
    for result in results:
        old = (f"{result.old_events_per_s:,.0f}"
               if result.old_events_per_s is not None else "-")
        new = (f"{result.new_events_per_s:,.0f}"
               if result.new_events_per_s is not None else "MISSING")
        ratio = f"{result.ratio:.3f}" if result.ratio is not None else "-"
        verdict = "FAIL" if result.regressed(threshold) else "ok"
        lines.append(f"{result.scenario:<20} {old:>14} {new:>14} "
                     f"{ratio:>7}  {verdict}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.compare",
        description="Diff two BENCH_*.json files; exit 1 on regression.")
    parser.add_argument("baseline", type=Path, help="baseline bench file")
    parser.add_argument("new", type=Path, help="candidate bench file")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed relative events/s drop "
                             "(default %(default)s)")
    args = parser.parse_args(argv)
    results = compare_bench_files(args.baseline, args.new)
    print(format_table(results, args.threshold))
    failed = [r.scenario for r in results if r.regressed(args.threshold)]
    if failed:
        print(f"\nREGRESSION (> {args.threshold:.0%} drop): {', '.join(failed)}")
        return 1
    print(f"\nno regression beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
