"""Performance benchmarking harness (``python -m repro.perf``).

The perf subsystem pins a small matrix of scenarios — a synthetic
kernel-throughput micro-benchmark plus representative experiment
workloads (E2 delay, E5 congestion, E20 host churn) — runs them under a
wall-clock/RSS harness, and records the results in a schema-versioned
``BENCH_<date>.json`` file.  :mod:`repro.perf.compare` diffs two bench
files and fails (exit status 1) on throughput regressions beyond a
threshold, which is what CI's regression gate runs on pull requests.

Every scenario is deterministic for a given seed: the same seed must
produce the same ``events_executed``, delivery sequences, and
trace-kind summary on every run (the seed-determinism guard test in
``tests/perf`` enforces this — it is the regression net for all
hot-path rewrites).
"""

from .compare import CompareResult, compare_bench_files, compare_payloads
from .harness import (
    SCHEMA_VERSION,
    BenchResult,
    default_output_path,
    load_bench_file,
    run_matrix,
    write_bench_file,
)
from .scenarios import SCENARIOS, Scenario, ScenarioRun

__all__ = [
    "SCENARIOS",
    "SCHEMA_VERSION",
    "BenchResult",
    "CompareResult",
    "Scenario",
    "ScenarioRun",
    "compare_bench_files",
    "compare_payloads",
    "default_output_path",
    "load_bench_file",
    "run_matrix",
    "write_bench_file",
]
