"""CLI entry point: ``python -m repro.perf`` (shim) and the shared
implementation behind ``python -m repro perf``.

Runs the pinned benchmark matrix and writes a schema-versioned
``BENCH_<date>.json``.  See ``--help`` for options and
:mod:`repro.perf.compare` for the regression gate.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from .harness import default_output_path, run_matrix, write_bench_file
from .scenarios import SCENARIOS


def add_perf_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help="shrunken matrix for CI / smoke runs")
    parser.add_argument("--out", "--json", type=Path, default=None,
                        dest="out", metavar="PATH",
                        help="output path (default: ./BENCH_<date>.json)")
    parser.add_argument("--scenario", action="append", dest="scenarios",
                        metavar="NAME",
                        help="run only NAME (repeatable; default: all)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run scenarios in N worker processes (each "
                             "scenario is timed inside its own worker; "
                             "co-scheduled workers share cores, so use "
                             "serial runs for regression-gated numbers)")
    parser.add_argument("--list", action="store_true",
                        help="list available scenarios and exit")


def run_perf(args: argparse.Namespace) -> int:
    if args.list:
        for scenario in SCENARIOS.values():
            print(f"{scenario.name:<20} {scenario.description}")
        return 0

    print(f"running {len(args.scenarios or SCENARIOS)} scenario(s)"
          f"{' (quick)' if args.quick else ''}:")
    payload = run_matrix(args.scenarios, quick=args.quick, echo=True,
                         jobs=max(1, args.jobs))
    out = args.out if args.out is not None else default_output_path()
    write_bench_file(payload, out)
    print(f"wrote {out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Run the pinned perf scenario matrix and record "
                    "BENCH_<date>.json.")
    add_perf_args(parser)
    return run_perf(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
