"""CLI entry point: ``python -m repro.perf``.

Runs the pinned benchmark matrix and writes a schema-versioned
``BENCH_<date>.json``.  See ``--help`` for options and
:mod:`repro.perf.compare` for the regression gate.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from .harness import default_output_path, run_matrix, write_bench_file
from .scenarios import SCENARIOS


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Run the pinned perf scenario matrix and record "
                    "BENCH_<date>.json.")
    parser.add_argument("--quick", action="store_true",
                        help="shrunken matrix for CI / smoke runs")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: ./BENCH_<date>.json)")
    parser.add_argument("--scenario", action="append", dest="scenarios",
                        metavar="NAME",
                        help="run only NAME (repeatable; default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available scenarios and exit")
    args = parser.parse_args(argv)

    if args.list:
        for scenario in SCENARIOS.values():
            print(f"{scenario.name:<20} {scenario.description}")
        return 0

    print(f"running {len(args.scenarios or SCENARIOS)} scenario(s)"
          f"{' (quick)' if args.quick else ''}:")
    payload = run_matrix(args.scenarios, quick=args.quick, echo=True)
    out = args.out if args.out is not None else default_output_path()
    write_bench_file(payload, out)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
