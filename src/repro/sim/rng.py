"""Named, seed-derived random-number streams.

Every source of randomness in a simulation (per-link loss decisions,
workload inter-arrival times, failure schedules, ...) draws from its own
named stream.  Streams are derived from a single master seed with a
stable hash, so

* one integer seed reproduces an entire simulation bit-for-bit, and
* adding a new consumer of randomness does not perturb the draws seen
  by existing consumers (streams are independent).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterator


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a child seed from ``master_seed`` and a stream ``name``.

    Uses SHA-256 so derivation is stable across Python versions and
    processes (unlike the built-in ``hash``).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory for named :class:`random.Random` streams.

    Example:
        >>> rngs = RngRegistry(42)
        >>> a = rngs.stream("link.loss")
        >>> b = rngs.stream("workload")
        >>> rngs.stream("link.loss") is a
        True
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if not name:
            raise ValueError("stream name must be non-empty")
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        rng = random.Random(derive_seed(self.master_seed, name))
        self._streams[name] = rng
        return rng

    def names(self) -> Iterator[str]:
        """Iterate over the names of all streams created so far."""
        return iter(sorted(self._streams))

    def fork(self, name: str) -> "RngRegistry":
        """Create an independent registry derived from this one.

        Useful for sub-simulations (e.g. per-trial registries inside a
        parameter sweep) that must not consume draws from the parent.
        """
        return RngRegistry(derive_seed(self.master_seed, f"fork:{name}"))
