"""Structured event tracing.

Components emit :class:`TraceRecord` instances through the simulator's
tracer.  Records carry the virtual timestamp, a dotted ``kind`` (e.g.
``"host.deliver"``, ``"link.drop"``), the emitting component's name, and
free-form fields.  Tests and the analysis layer query the recorded
stream; subscribers can also react to records as they are emitted.

Recording is opt-in per ``kind`` prefix so long benchmarks can run with
tracing disabled (the default records everything, which is what unit and
integration tests want).

Fast-path contract (see DESIGN.md "Tracer fast path"):

* when the tracer is fully inactive (``enabled`` is False and no
  subscribers are registered) :meth:`Tracer.emit` returns after a single
  attribute test and allocates *nothing*;
* when disabled but subscribers exist, a :class:`TraceRecord` is built
  only if at least one subscriber's prefix matches the kind — a miss
  allocates nothing;
* hot emit sites may additionally guard with the plain ``active``
  attribute (``if sim.trace.active: sim.trace.emit(...)``) to also skip
  building the keyword-argument dict.  ``active`` is maintained by the
  tracer; treat it as read-only.

For long chaos runs, :meth:`Tracer.retain_last` bounds retention to a
ring buffer of the most recent N records instead of disabling tracing
outright.
"""

from __future__ import annotations

from collections import deque
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .kernel import Simulator


class TraceRecord:
    """One traced occurrence inside a simulation.

    A plain ``__slots__`` class (not a dataclass): record construction
    sits on the simulator's hot path, and slot assignment is several
    times cheaper than a frozen dataclass's ``object.__setattr__``
    dance.  Treat instances as immutable.
    """

    __slots__ = ("time", "kind", "source", "fields")

    def __init__(self, time: float, kind: str, source: str,
                 fields: Optional[Dict[str, Any]] = None) -> None:
        self.time = time
        self.kind = kind
        self.source = source
        self.fields: Dict[str, Any] = fields if fields is not None else {}

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        """The value of field ``key``, or ``default`` when absent."""
        return self.fields.get(key, default)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (self.time == other.time and self.kind == other.kind
                and self.source == other.source and self.fields == other.fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceRecord(time={self.time!r}, kind={self.kind!r}, "
                f"source={self.source!r}, fields={self.fields!r})")


Subscriber = Callable[[TraceRecord], None]


class Tracer:
    """Collects :class:`TraceRecord` objects and notifies subscribers."""

    __slots__ = ("_sim", "_enabled", "_records", "_subscribers", "active")

    def __init__(self, sim: "Simulator", enabled: bool = True,
                 retain_last: Optional[int] = None) -> None:
        self._sim = sim
        self._enabled = enabled
        self._records: Union[List[TraceRecord], "deque[TraceRecord]"]
        self._records = deque(maxlen=retain_last) if retain_last else []
        self._subscribers: List[Tuple[str, Subscriber]] = []
        #: fast-path guard, kept equal to ``enabled or bool(subscribers)``
        self.active = bool(enabled)

    # -- configuration --------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether records are retained (subscribers fire regardless)."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        self.active = self._enabled or bool(self._subscribers)

    def retain_last(self, limit: Optional[int]) -> None:
        """Bound retention to a ring buffer of the newest ``limit`` records.

        Existing records are preserved (the oldest are dropped if they
        exceed the new bound); ``None`` restores unbounded retention.
        """
        if limit is None:
            self._records = list(self._records)
        else:
            if limit <= 0:
                raise ValueError(f"retention limit must be positive, got {limit}")
            self._records = deque(self._records, maxlen=limit)

    @property
    def retention(self) -> Optional[int]:
        """The ring-buffer bound, or None when retention is unbounded."""
        if isinstance(self._records, deque):
            return self._records.maxlen
        return None

    # -- emission ------------------------------------------------------

    def emit(self, kind: str, source: str, /, **fields: Any) -> None:
        """Record an occurrence of ``kind`` from ``source``.

        Subscribers matching the kind prefix are always notified;
        records are retained only while ``enabled`` is True.
        """
        if not self.active:
            return
        if self._enabled:
            record = TraceRecord(self._sim.now, kind, source, fields)
            self._records.append(record)
            for prefix, subscriber in self._subscribers:
                if kind.startswith(prefix):
                    subscriber(record)
            return
        # Disabled but subscribed: allocate the record only if some
        # subscriber actually wants this kind.
        record = None
        for prefix, subscriber in self._subscribers:
            if kind.startswith(prefix):
                if record is None:
                    record = TraceRecord(self._sim.now, kind, source, fields)
                subscriber(record)

    # -- subscription ---------------------------------------------------

    def subscribe(self, prefix: str, subscriber: Subscriber) -> None:
        """Call ``subscriber`` for every record whose kind starts with ``prefix``."""
        self._subscribers.append((prefix, subscriber))
        self.active = True

    # -- querying -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def records(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        since: float = float("-inf"),
        **field_filters: Any,
    ) -> List[TraceRecord]:
        """Return records filtered by kind prefix, source, time, and fields."""
        out = []
        for record in self._records:
            if kind is not None and not record.kind.startswith(kind):
                continue
            if source is not None and record.source != source:
                continue
            if record.time < since:
                continue
            if any(record.get(key) != value for key, value in field_filters.items()):
                continue
            out.append(record)
        return out

    def count(self, kind: Optional[str] = None, **field_filters: Any) -> int:
        """Number of records matching the given filters."""
        return len(self.records(kind=kind, **field_filters))

    def last(self, kind: str) -> Optional[TraceRecord]:
        """Most recent record with the given kind prefix, if any."""
        for record in reversed(self._records):
            if record.kind.startswith(kind):
                return record
        return None

    def clear(self) -> None:
        """Drop all retained records (subscribers are kept)."""
        self._records.clear()


def summarize_kinds(records: Iterable[TraceRecord]) -> Dict[str, int]:
    """Histogram of record kinds — handy in test failure messages."""
    out: Dict[str, int] = {}
    for record in records:
        out[record.kind] = out.get(record.kind, 0) + 1
    return out
