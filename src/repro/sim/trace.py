"""Structured event tracing.

Components emit :class:`TraceRecord` instances through the simulator's
tracer.  Records carry the virtual timestamp, a dotted ``kind`` (e.g.
``"host.deliver"``, ``"link.drop"``), the emitting component's name, and
free-form fields.  Tests and the analysis layer query the recorded
stream; subscribers can also react to records as they are emitted.

Recording is opt-in per ``kind`` prefix so long benchmarks can run with
tracing disabled (the default records everything, which is what unit and
integration tests want).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .kernel import Simulator


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence inside a simulation."""

    time: float
    kind: str
    source: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        """The record for ``seq``, or None if not delivered."""
        return self.fields.get(key, default)


Subscriber = Callable[[TraceRecord], None]


class Tracer:
    """Collects :class:`TraceRecord` objects and notifies subscribers."""

    def __init__(self, sim: "Simulator", enabled: bool = True) -> None:
        self._sim = sim
        self.enabled = enabled
        self._records: List[TraceRecord] = []
        self._subscribers: List[Tuple[str, Subscriber]] = []

    # -- emission ------------------------------------------------------

    def emit(self, kind: str, source: str, /, **fields: Any) -> None:
        """Record an occurrence of ``kind`` from ``source``.

        Subscribers matching the kind prefix are always notified;
        records are retained only while ``enabled`` is True.
        """
        if not self.enabled and not self._subscribers:
            return
        record = TraceRecord(self._sim.now, kind, source, fields)
        if self.enabled:
            self._records.append(record)
        for prefix, subscriber in self._subscribers:
            if record.kind.startswith(prefix):
                subscriber(record)

    # -- subscription ---------------------------------------------------

    def subscribe(self, prefix: str, subscriber: Subscriber) -> None:
        """Call ``subscriber`` for every record whose kind starts with ``prefix``."""
        self._subscribers.append((prefix, subscriber))

    # -- querying -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def records(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        since: float = float("-inf"),
        **field_filters: Any,
    ) -> List[TraceRecord]:
        """Return records filtered by kind prefix, source, time, and fields."""
        out = []
        for record in self._records:
            if kind is not None and not record.kind.startswith(kind):
                continue
            if source is not None and record.source != source:
                continue
            if record.time < since:
                continue
            if any(record.get(key) != value for key, value in field_filters.items()):
                continue
            out.append(record)
        return out

    def count(self, kind: Optional[str] = None, **field_filters: Any) -> int:
        """Number of records matching the given filters."""
        return len(self.records(kind=kind, **field_filters))

    def last(self, kind: str) -> Optional[TraceRecord]:
        """Most recent record with the given kind prefix, if any."""
        for record in reversed(self._records):
            if record.kind.startswith(kind):
                return record
        return None

    def clear(self) -> None:
        """Drop all retained records (subscribers are kept)."""
        self._records.clear()


def summarize_kinds(records: Iterable[TraceRecord]) -> Dict[str, int]:
    """Histogram of record kinds — handy in test failure messages."""
    out: Dict[str, int] = {}
    for record in records:
        out[record.kind] = out.get(record.kind, 0) + 1
    return out
