"""Periodic tasks and restartable timers on top of the kernel.

The broadcast protocol is built almost entirely from periodic activities
(attachment scans, INFO exchange, gap filling) and one-shot timeouts
(attach-ack timeout, parent heartbeat timeout).  These two helpers keep
that code free of manual event bookkeeping.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .event import Event
from .kernel import Simulator


class PeriodicTask:
    """Runs ``callback`` every ``period`` time units until stopped.

    Optional per-tick jitter (uniform in ``[-jitter, +jitter]``) drawn
    from a named RNG stream desynchronizes identical tasks on different
    hosts — exactly what real protocol implementations do to avoid
    message storms.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        *,
        jitter: float = 0.0,
        rng_stream: str = "periodic.jitter",
        start_after: Optional[float] = None,
        name: str = "",
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if jitter < 0 or jitter >= period:
            raise ValueError(f"jitter must be in [0, period), got {jitter}")
        self._sim = sim
        self.period = period
        self.jitter = jitter
        self.callback = callback
        self.name = name
        self._rng = sim.rng.stream(rng_stream)
        self._event: Optional[Event] = None
        self._running = False
        self._start_after = start_after

    @property
    def running(self) -> bool:
        """True while the task is ticking."""
        return self._running

    def start(self) -> "PeriodicTask":
        """Begin ticking.  The first tick fires after one (jittered) period."""
        if self._running:
            return self
        self._running = True
        first = self._start_after if self._start_after is not None else self._delay()
        self._event = self._sim.schedule(first, self._tick)
        return self

    def stop(self) -> None:
        """Stop ticking; safe to call when already stopped."""
        self._running = False
        self._sim.try_cancel(self._event)
        self._event = None

    def _delay(self) -> float:
        if self.jitter == 0.0:
            return self.period
        return self.period + self._rng.uniform(-self.jitter, self.jitter)

    def _tick(self) -> None:
        if not self._running:
            return
        self.callback()
        if self._running:  # callback may have stopped us
            self._event = self._sim.schedule(self._delay(), self._tick)


class Timer:
    """A restartable one-shot timeout.

    ``start`` arms (or re-arms) the timer; ``cancel`` disarms it.  When
    it fires, ``callback`` runs once and the timer returns to the
    disarmed state.
    """

    def __init__(self, sim: Simulator, callback: Callable[..., None], name: str = "") -> None:
        self._sim = sim
        self.callback = callback
        self.name = name
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        """True while the timer is armed."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float, *args: Any) -> None:
        """Arm the timer to fire after ``delay``; re-arms if already armed."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire, *args)

    def cancel(self) -> None:
        """Disarm without firing; safe when already disarmed."""
        self._sim.try_cancel(self._event)
        self._event = None

    def _fire(self, *args: Any) -> None:
        self._event = None
        self.callback(*args)
