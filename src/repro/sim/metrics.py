"""Simulation metrics: counters, gauges, histograms, and time series.

The metrics registry is owned by the simulator so every sample is
implicitly stamped with virtual time.  The analysis layer
(:mod:`repro.analysis`) builds the paper's cost/delay tables from these
primitives plus the trace.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .kernel import Simulator


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter (amount must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (amount={amount})")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can move both ways, with peak tracking."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        """Set the gauge value, tracking the peak."""
        self.value = value
        if value > self.peak:
            self.peak = value

    def add(self, amount: float) -> None:
        """Add to the gauge value, tracking the peak."""
        self.set(self.value + amount)


class Histogram:
    """Exact histogram of observed samples with quantile queries.

    Samples are kept sorted; suitable for the sample counts seen in
    these simulations (up to a few hundred thousand observations).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[float] = []
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation; see class docs for semantics."""
        insort(self._samples, value)
        self._sum += value

    @property
    def count(self) -> int:
        """Number of records/samples matching."""
        return len(self._samples)

    @property
    def sum(self) -> float:
        """Sum of all recorded samples."""
        return self._sum

    @property
    def mean(self) -> float:
        """Arithmetic mean (NaN when empty)."""
        if not self._samples:
            return math.nan
        return self._sum / len(self._samples)

    @property
    def min(self) -> float:
        """Smallest recorded value (NaN when empty)."""
        return self._samples[0] if self._samples else math.nan

    @property
    def max(self) -> float:
        """Largest recorded value (NaN when empty)."""
        return self._samples[-1] if self._samples else math.nan

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile, q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return math.nan
        if len(self._samples) == 1:
            return self._samples[0]
        pos = q * (len(self._samples) - 1)
        low = int(math.floor(pos))
        high = int(math.ceil(pos))
        low_val, high_val = self._samples[low], self._samples[high]
        if low == high or low_val == high_val:
            return low_val
        frac = pos - low
        return low_val + frac * (high_val - low_val)

    def stddev(self) -> float:
        """Sample standard deviation (0 for fewer than two samples)."""
        if len(self._samples) < 2:
            return 0.0
        mean = self.mean
        var = sum((s - mean) ** 2 for s in self._samples) / (len(self._samples) - 1)
        return math.sqrt(var)

    def count_above(self, threshold: float) -> int:
        """Number of samples strictly greater than ``threshold``."""
        return len(self._samples) - bisect_left(self._samples, math.nextafter(threshold, math.inf))


class TimeSeries:
    """(time, value) samples, e.g. queue length over time."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        """Record one delivery; duplicate sequence numbers are a bug."""
        self.points.append((time, value))

    def values(self) -> List[float]:
        """The recorded values, in order."""
        return [value for _, value in self.points]

    def max(self) -> float:
        """Largest recorded value (NaN when empty)."""
        return max(self.values()) if self.points else math.nan

    def time_average(self, until: Optional[float] = None) -> float:
        """Time-weighted average assuming step interpolation."""
        if not self.points:
            return math.nan
        end = until if until is not None else self.points[-1][0]
        total = 0.0
        for (t0, v0), (t1, _) in zip(self.points, self.points[1:]):
            total += v0 * (min(t1, end) - t0)
        last_t, last_v = self.points[-1]
        if end > last_t:
            total += last_v * (end - last_t)
        span = end - self.points[0][0]
        return total / span if span > 0 else self.points[0][1]


class MetricsRegistry:
    """Namespace of metrics owned by one simulator."""

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        """The named histogram, created on first use."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def series(self, name: str) -> TimeSeries:
        """The named time series, created on first use."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def record_series(self, name: str, value: float) -> None:
        """Append a point stamped with the current virtual time."""
        self.series(name).record(self._sim.now, value)

    def counters(self, prefix: str = "") -> Dict[str, float]:
        """Snapshot of all counter values whose name starts with ``prefix``."""
        return {
            name: counter.value
            for name, counter in sorted(self._counters.items())
            if name.startswith(prefix)
        }
