"""Events and the pending-event queue.

The queue is a binary heap ordered by ``(time, priority, sequence)``.
The monotonically increasing sequence number makes ordering of
same-time, same-priority events deterministic (FIFO in scheduling
order), which is what makes whole simulations bit-reproducible for a
given seed.

Cancellation is *lazy*: a cancelled event stays in the heap but is
skipped when popped.  This keeps `cancel` O(1) and is the standard
technique for discrete-event simulators.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from .errors import EventAlreadyCancelledError

Callback = Callable[..., None]

#: Default event priority.  Lower values run first among same-time events.
DEFAULT_PRIORITY = 0


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.sim.kernel.Simulator.schedule`
    and should be treated as opaque handles by callers; the only useful
    public operations are :meth:`cancel` (via the simulator) and the
    read-only properties below.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "kwargs", "_cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callback,
        args: Tuple[Any, ...],
        kwargs: Optional[dict],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs or {}
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        """True once the event has been cancelled."""
        return self._cancelled

    def cancel(self) -> None:
        """Mark the event as cancelled.

        Raises:
            EventAlreadyCancelledError: if cancelled twice.
        """
        if self._cancelled:
            raise EventAlreadyCancelledError(f"event {self!r} already cancelled")
        self._cancelled = True

    def sort_key(self) -> Tuple[float, int, int]:
        """Heap ordering key: (time, priority, sequence)."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self._cancelled else ""
        return f"<Event t={self.time:.6f} prio={self.priority} #{self.seq} {name}{state}>"


class EventQueue:
    """Deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of live (not cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callback,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[dict] = None,
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Add an event and return its handle."""
        event = Event(time, priority, next(self._counter), callback, args, kwargs)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def note_cancelled(self) -> None:
        """Account for an event that was cancelled via its handle."""
        self._live -= 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
