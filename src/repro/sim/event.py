"""Events and the pending-event queue.

The queue is a binary heap ordered by ``(time, priority, sequence)``.
The monotonically increasing sequence number makes ordering of
same-time, same-priority events deterministic (FIFO in scheduling
order), which is what makes whole simulations bit-reproducible for a
given seed.

Hot-path layout (see DESIGN.md "Event-loop fast path"):

* heap entries are plain ``(time, priority, seq, event)`` tuples, so
  every sift comparison is a C-level tuple compare — the unique ``seq``
  guarantees the :class:`Event` object itself is never compared;
* :meth:`push_soon` appends "run at the current time" events to a FIFO
  deque instead of the heap.  Because virtual time never goes backward
  and sequence numbers only grow, the deque is sorted by the same
  ``(time, priority, seq)`` key by construction, and :meth:`pop_next`
  merges the two structures without ever reordering anything.  The
  observable execution order is *identical* to a heap-only queue.

Cancellation is *lazy*: a cancelled event stays in its structure but is
skipped when popped.  This keeps `cancel` O(1) and is the standard
technique for discrete-event simulators.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, List, Optional, Tuple

from .errors import EventAlreadyCancelledError

Callback = Callable[..., None]

#: Default event priority.  Lower values run first among same-time events.
DEFAULT_PRIORITY = 0

#: Shared kwargs object for the (overwhelmingly common) no-kwargs case,
#: so pushing an event does not allocate a fresh empty dict.  Treat as
#: immutable.
_NO_KWARGS: dict = {}


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.sim.kernel.Simulator.schedule`
    and should be treated as opaque handles by callers; the only useful
    public operations are :meth:`cancel` (via the simulator) and the
    read-only properties below.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "kwargs", "_cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callback,
        args: Tuple[Any, ...],
        kwargs: Optional[dict],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs if kwargs else _NO_KWARGS
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        """True once the event has been cancelled."""
        return self._cancelled

    def cancel(self) -> None:
        """Mark the event as cancelled.

        Raises:
            EventAlreadyCancelledError: if cancelled twice.
        """
        if self._cancelled:
            raise EventAlreadyCancelledError(f"event {self!r} already cancelled")
        self._cancelled = True

    def sort_key(self) -> Tuple[float, int, int]:
        """Queue ordering key: (time, priority, sequence)."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self._cancelled else ""
        return f"<Event t={self.time:.6f} prio={self.priority} #{self.seq} {name}{state}>"


class EventQueue:
    """Deterministic priority queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_fifo", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._fifo: "deque[Event]" = deque()
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of live (not cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callback,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[dict] = None,
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Add an event and return its handle."""
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, args, kwargs)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def push_soon(
        self,
        time: float,
        callback: Callback,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[dict] = None,
    ) -> Event:
        """Add a "run at the current time" event, bypassing the heap.

        ``time`` must be the simulator's current time: the FIFO stays
        key-sorted only because successive pushes carry non-decreasing
        times (and strictly increasing sequence numbers).  Priority is
        always :data:`DEFAULT_PRIORITY`.
        """
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, DEFAULT_PRIORITY, seq, callback, args, kwargs)
        self._fifo.append(event)
        self._live += 1
        return event

    def note_cancelled(self) -> None:
        """Account for an event that was cancelled via its handle."""
        self._live -= 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        return self.pop_next(None)

    def pop_next(self, limit: Optional[float] = None) -> Optional[Event]:
        """Pop the earliest live event with ``time <= limit`` (None = any).

        Returns None — leaving the queue untouched — when the queue is
        drained or the earliest live event lies beyond ``limit``.
        """
        heap = self._heap
        fifo = self._fifo
        while fifo and fifo[0]._cancelled:
            fifo.popleft()
        while heap and heap[0][3]._cancelled:
            heapq.heappop(heap)
        if fifo:
            event = fifo[0]
            if heap:
                head = heap[0]
                # seq is unique, so equality is impossible; this total
                # order is exactly the old single-heap order.
                if head[0] < event.time or (
                    head[0] == event.time
                    and (head[1], head[2]) < (event.priority, event.seq)
                ):
                    event = head[3]
                    if limit is not None and event.time > limit:
                        return None
                    heapq.heappop(heap)
                    self._live -= 1
                    return event
            if limit is not None and event.time > limit:
                return None
            fifo.popleft()
            self._live -= 1
            return event
        if heap:
            event = heap[0][3]
            if limit is not None and event.time > limit:
                return None
            heapq.heappop(heap)
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        heap = self._heap
        fifo = self._fifo
        while fifo and fifo[0]._cancelled:
            fifo.popleft()
        while heap and heap[0][3]._cancelled:
            heapq.heappop(heap)
        if fifo:
            if heap and heap[0][0] < fifo[0].time:
                return heap[0][0]
            return fifo[0].time
        if heap:
            return heap[0][0]
        return None
