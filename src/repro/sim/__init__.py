"""Deterministic discrete-event simulation kernel.

The kernel is protocol-agnostic: it provides a virtual clock with a
pending-event queue (:class:`Simulator`), periodic tasks and one-shot
timers (:class:`PeriodicTask`, :class:`Timer`), named seed-derived RNG
streams (:class:`RngRegistry`), structured tracing (:class:`Tracer`),
and metrics (:class:`MetricsRegistry`).
"""

from .errors import (
    EventAlreadyCancelledError,
    SchedulingInPastError,
    SimulationError,
    SimulatorFinishedError,
)
from .event import DEFAULT_PRIORITY, Event, EventQueue
from .kernel import Simulator
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries
from .process import PeriodicTask, Timer
from .rng import RngRegistry, derive_seed
from .trace import TraceRecord, Tracer, summarize_kinds

__all__ = [
    "DEFAULT_PRIORITY",
    "Counter",
    "Event",
    "EventAlreadyCancelledError",
    "EventQueue",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PeriodicTask",
    "RngRegistry",
    "SchedulingInPastError",
    "SimulationError",
    "Simulator",
    "SimulatorFinishedError",
    "TimeSeries",
    "Timer",
    "TraceRecord",
    "Tracer",
    "derive_seed",
    "summarize_kinds",
]
