"""The discrete-event simulator core.

A :class:`Simulator` owns the virtual clock, the pending-event queue, a
registry of named RNG streams, a tracer, and a metrics registry.  All
higher layers (network substrate, protocol hosts, workloads) schedule
callbacks on it and never touch wall-clock time or global randomness.

Typical use::

    sim = Simulator(seed=7)
    sim.schedule(1.5, my_callback, arg1, arg2)
    sim.run(until=100.0)
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .errors import SchedulingInPastError, SimulatorFinishedError
from .event import DEFAULT_PRIORITY, Event, EventQueue
from .metrics import MetricsRegistry
from .rng import RngRegistry
from .trace import Tracer

Callback = Callable[..., None]


class Simulator:
    """Deterministic discrete-event simulator.

    Args:
        seed: master seed; all randomness in the simulation derives
            from it through named streams (see :class:`RngRegistry`).
        trace: optional pre-built tracer; a fresh one is created when
            omitted.
    """

    def __init__(self, seed: int = 0, trace: Optional[Tracer] = None) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._finished = False
        self._events_executed = 0
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else Tracer(self)
        self.metrics = MetricsRegistry(self)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of live scheduled events."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callback,
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SchedulingInPastError(self._now, self._now + delay)
        return self._queue.push(self._now + delay, callback, args, kwargs, priority)

    def schedule_at(
        self,
        when: float,
        callback: Callback,
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SchedulingInPastError(self._now, when)
        return self._queue.push(when, callback, args, kwargs, priority)

    def call_soon(self, callback: Callback, *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback`` at the current time (after pending same-time events).

        Uses the queue's FIFO fast path: the event never touches the
        heap, but runs in exactly the position a heap push would have
        given it.
        """
        return self._queue.push_soon(self._now, callback, args, kwargs)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        event.cancel()
        self._queue.note_cancelled()

    def try_cancel(self, event: Optional[Event]) -> bool:
        """Cancel ``event`` if it is still live; return whether it was."""
        if event is None or event.cancelled:
            return False
        self.cancel(event)
        return True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single earliest event.  Returns False when idle."""
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        self._events_executed += 1
        event.callback(*event.args, **event.kwargs)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        When ``until`` is given the clock is advanced to exactly
        ``until`` on return even if the queue drained earlier, so
        successive ``run`` calls compose naturally.

        Returns:
            The virtual time at which execution stopped.
        """
        if self._finished:
            raise SimulatorFinishedError("simulator already finished")
        # Hot loop: one merged pop per event, locals bound outside the
        # loop, kwargs expansion skipped for the common no-kwargs case.
        pop_next = self._queue.pop_next
        executed = 0
        remaining = max_events if max_events is not None else float("inf")
        while executed < remaining:
            event = pop_next(until)
            if event is None:
                break
            self._now = event.time
            self._events_executed += 1
            executed += 1
            if event.kwargs:
                event.callback(*event.args, **event.kwargs)
            else:
                event.callback(*event.args)
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def finish(self) -> None:
        """Mark the simulation finished; further ``run`` calls raise."""
        self._finished = True
