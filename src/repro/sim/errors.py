"""Exceptions raised by the simulation kernel.

The kernel keeps its failure modes explicit: scheduling into the past,
running a finished simulator, or cancelling an event twice are all
programming errors in the caller and raise dedicated exception types so
tests can assert on them precisely.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation-kernel errors."""


class SchedulingInPastError(SimulationError):
    """An event was scheduled at a time earlier than the current clock."""

    def __init__(self, now: float, when: float) -> None:
        super().__init__(f"cannot schedule event at t={when!r}; clock is already at t={now!r}")
        self.now = now
        self.when = when


class EventAlreadyCancelledError(SimulationError):
    """`cancel` was called on an event that is already cancelled."""


class SimulatorFinishedError(SimulationError):
    """`run` was called on a simulator that has already been stopped."""


class StreamNameError(SimulationError):
    """A random-number stream name was invalid or already registered."""
