"""Nonprogrammable communication servers.

A server is a pure store-and-forward switch: it accepts an individually
addressed packet, looks up the destination host's server, and forwards
the packet one hop along the path chosen by the routing engine.  It
**cannot** be programmed by the broadcast application — it never
duplicates a packet toward multiple destinations, never inspects
payloads, and offers hosts exactly one service: "deliver this message
to that single destination" (paper, Section 2).

The only concession the network makes to the application is the *cost
bit*, stamped by :class:`repro.net.link.Link` when a packet traverses
an expensive link; the paper explicitly proposes this mechanism.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from typing import Optional

from ..sim import Simulator
from .addressing import HostId
from .link import Link
from .message import Packet
from .routing import RoutingEngine

if TYPE_CHECKING:  # pragma: no cover
    from .topology import Network

#: cache-miss sentinel (``None`` is a valid memoized answer: "no route")
_MISS = object()


class Server:
    """One communication server (switch) in the subnetwork."""

    #: per-packet forwarding (IMP processing) delay in seconds
    PROCESSING_DELAY = 0.0005

    def __init__(self, sim: Simulator, name: str, network: "Network") -> None:
        self.sim = sim
        self.name = name
        self.network = network
        #: a failed server silently discards everything (paper §2: hosts
        #: are reliable, servers can fail)
        self.up = True
        #: hosts directly attached to this server, with their access links
        self.attached: Dict[HostId, Link] = {}
        #: links to neighboring servers, keyed by neighbor name
        self.trunks: Dict[str, Link] = {}
        # Memoized next-hop answers, invalidated whenever the routing
        # engine's generation stamp moves (or the engine is swapped).
        self._route_cache: Dict[str, object] = {}
        self._route_engine: Optional[RoutingEngine] = None
        self._route_gen = -1

    # -- wiring (done by Network during construction) ---------------------

    def attach_host(self, host_id: HostId, access_link: Link) -> None:
        """Attach a host's access link to this server."""
        if host_id in self.attached:
            raise ValueError(f"host {host_id} already attached to {self.name}")
        self.attached[host_id] = access_link

    def add_trunk(self, neighbor: str, link: Link) -> None:
        """Register a trunk link to a neighbor server."""
        if neighbor in self.trunks:
            raise ValueError(f"trunk {self.name}<->{neighbor} already exists")
        self.trunks[neighbor] = link

    # -- forwarding --------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Handle a packet arriving at this server (from a host or a trunk).

        Forwarding pays a small processing delay (the IMP's per-packet
        work) and decrements the packet's hop limit — packets caught in
        a transient routing loop (stale tables during convergence) are
        discarded instead of circulating forever.
        """
        if not self.up:
            self._drop(packet, "server_down")
            return
        if packet.ttl <= 0:
            self._drop(packet, "ttl_expired")
            return
        dst_server = self.network.server_of(packet.dst)
        if dst_server is None:
            self._drop(packet, "unknown_host")
            return
        if dst_server == self.name:
            self._deliver_locally(packet)
            return
        next_hop = self._next_hop(dst_server)
        if next_hop is None:
            self._drop(packet, "no_route")
            return
        trunk = self.trunks.get(next_hop)
        if trunk is None:
            self._drop(packet, "no_trunk")
            return
        neighbor_server = self.network.servers[next_hop]
        if self.PROCESSING_DELAY > 0:
            self.sim.schedule(self.PROCESSING_DELAY, trunk.transmit, packet,
                              self.name, neighbor_server.receive)
        else:
            trunk.transmit(packet, self.name, neighbor_server.receive)

    def _next_hop(self, dst_server: str) -> Optional[str]:
        """Memoized ``routing.next_hop`` lookup (generation-stamped)."""
        routing = self.network.routing
        if routing is not self._route_engine or routing.generation != self._route_gen:
            self._route_cache.clear()
            self._route_engine = routing
            self._route_gen = routing.generation
        hop = self._route_cache.get(dst_server, _MISS)
        if hop is _MISS:
            hop = routing.next_hop(self.name, dst_server)
            self._route_cache[dst_server] = hop
        return hop  # type: ignore[return-value]

    def _deliver_locally(self, packet: Packet) -> None:
        access = self.attached.get(packet.dst)
        if access is None:
            self._drop(packet, "host_not_here")
            return
        port = self.network.host_port(packet.dst)
        access.transmit(packet, self.name, port.deliver_from_network)

    def _drop(self, packet: Packet, reason: str) -> None:
        """Silently drop; the application is never notified (per paper)."""
        self.sim.trace.emit("server.drop", self.name, reason=reason,
                            packet=packet.packet_id, dst=str(packet.dst))
        self.sim.metrics.counter(f"net.drop.{reason}").inc()
