"""Topology generators.

The workhorse is :func:`wan_of_lans`, modelling the environment the
paper motivates (Section 2): local clusters of hosts joined by cheap
links, interconnected by an expensive long-haul backbone.  Also
provided: lines, stars, and seeded random topologies for robustness
tests.

Generators return a :class:`BuiltTopology` carrying the network, the
host list, and the ground-truth cluster layout (for oracles — the
protocol never reads it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..sim import Simulator
from .addressing import HostId
from .link import LinkSpec, cheap_spec, expensive_spec
from .topology import Network


@dataclass
class BuiltTopology:
    """A constructed network plus ground-truth metadata."""

    network: Network
    hosts: List[HostId]
    #: ground-truth clusters as laid out by the generator
    clusters: List[List[HostId]] = field(default_factory=list)
    #: expensive backbone links as (a, b) server-name pairs
    backbone: List[tuple] = field(default_factory=list)

    @property
    def source(self) -> HostId:
        """By convention the first host is the broadcast source."""
        return self.hosts[0]


def wan_of_lans(
    sim: Simulator,
    clusters: int,
    hosts_per_cluster: int,
    backbone: str = "tree",
    cheap: Optional[LinkSpec] = None,
    expensive: Optional[LinkSpec] = None,
    convergence_delay: float = 0.5,
    rng_stream: str = "topology.wan_of_lans",
) -> BuiltTopology:
    """k LAN clusters joined by an expensive backbone.

    Each cluster is one server with ``hosts_per_cluster`` hosts on cheap
    access links.  Cluster servers are joined by expensive trunks in the
    chosen ``backbone`` shape:

    * ``"tree"`` — random spanning tree (default; deterministic per seed)
    * ``"ring"`` — cycle
    * ``"star"`` — all clusters hang off cluster 0
    * ``"line"`` — path
    * ``"mesh"`` — complete graph
    """
    if clusters < 1:
        raise ValueError("need at least one cluster")
    if hosts_per_cluster < 1:
        raise ValueError("need at least one host per cluster")
    cheap = cheap or cheap_spec()
    expensive = expensive or expensive_spec()
    network = Network(sim)
    rng = sim.rng.stream(rng_stream)

    cluster_servers = []
    host_clusters: List[List[HostId]] = []
    hosts: List[HostId] = []
    for c in range(clusters):
        server_name = f"s{c}"
        network.add_server(server_name)
        cluster_servers.append(server_name)
        members = []
        for h in range(hosts_per_cluster):
            host_id = HostId(f"h{c}.{h}")
            network.add_host(host_id, server_name, access_spec=cheap)
            members.append(host_id)
            hosts.append(host_id)
        host_clusters.append(members)

    backbone_links: List[tuple] = []

    def trunk(a: str, b: str) -> None:
        network.connect(a, b, expensive)
        backbone_links.append((a, b))

    if clusters > 1:
        if backbone == "tree":
            for idx in range(1, clusters):
                parent = cluster_servers[rng.randrange(idx)]
                trunk(parent, cluster_servers[idx])
        elif backbone == "ring":
            for idx in range(clusters):
                trunk(cluster_servers[idx], cluster_servers[(idx + 1) % clusters])
        elif backbone == "star":
            for idx in range(1, clusters):
                trunk(cluster_servers[0], cluster_servers[idx])
        elif backbone == "line":
            for idx in range(1, clusters):
                trunk(cluster_servers[idx - 1], cluster_servers[idx])
        elif backbone == "mesh":
            for i in range(clusters):
                for j in range(i + 1, clusters):
                    trunk(cluster_servers[i], cluster_servers[j])
        else:
            raise ValueError(f"unknown backbone style {backbone!r}")

    network.use_global_routing(convergence_delay=convergence_delay)
    return BuiltTopology(network=network, hosts=hosts, clusters=host_clusters,
                         backbone=backbone_links)


def hierarchical_wan(
    sim: Simulator,
    clusters: int,
    servers_per_cluster: int,
    hosts_per_server: int,
    backbone: str = "line",
    cheap: Optional[LinkSpec] = None,
    expensive: Optional[LinkSpec] = None,
    convergence_delay: float = 0.5,
) -> BuiltTopology:
    """Clusters that are themselves multi-server LANs.

    Each cluster is a *ring* of ``servers_per_cluster`` servers joined
    by cheap links (a two-server cluster gets a single link), each
    carrying ``hosts_per_server`` hosts; intra-cluster paths can be
    several cheap hops long.  Cluster gateways (each cluster's server 0)
    are joined by expensive trunks in the given ``backbone`` shape
    (``"line"``, ``"ring"``, or ``"star"``).

    This exercises what :func:`wan_of_lans` cannot: cost bits must stay
    0 across multi-hop cheap paths, and clusters survive internal link
    failures through their ring redundancy.
    """
    if clusters < 1 or servers_per_cluster < 1 or hosts_per_server < 1:
        raise ValueError("clusters, servers, and hosts must all be positive")
    if backbone not in ("line", "ring", "star"):
        raise ValueError(f"unknown backbone style {backbone!r}")
    cheap = cheap or cheap_spec()
    expensive = expensive or expensive_spec()
    network = Network(sim)
    hosts: List[HostId] = []
    host_clusters: List[List[HostId]] = []
    gateways: List[str] = []
    for c in range(clusters):
        names = [f"s{c}.{i}" for i in range(servers_per_cluster)]
        for name in names:
            network.add_server(name)
        gateways.append(names[0])
        if servers_per_cluster == 2:
            network.connect(names[0], names[1], cheap)
        elif servers_per_cluster > 2:
            for i in range(servers_per_cluster):
                network.connect(names[i], names[(i + 1) % servers_per_cluster],
                                cheap)
        members = []
        for i, server_name in enumerate(names):
            for h in range(hosts_per_server):
                host_id = HostId(f"h{c}.{i}.{h}")
                network.add_host(host_id, server_name, access_spec=cheap)
                members.append(host_id)
                hosts.append(host_id)
        host_clusters.append(members)

    backbone_links: List[tuple] = []
    if clusters > 1:
        if backbone == "line":
            pairs = [(gateways[i - 1], gateways[i]) for i in range(1, clusters)]
        elif backbone == "ring":
            pairs = [(gateways[i], gateways[(i + 1) % clusters])
                     for i in range(clusters)]
        elif backbone == "star":
            pairs = [(gateways[0], gateways[i]) for i in range(1, clusters)]
        else:
            raise ValueError(f"unknown backbone style {backbone!r}")
        for a, b in pairs:
            network.connect(a, b, expensive)
            backbone_links.append((a, b))

    network.use_global_routing(convergence_delay=convergence_delay)
    return BuiltTopology(network=network, hosts=hosts, clusters=host_clusters,
                         backbone=backbone_links)


def line_topology(
    sim: Simulator,
    n_hosts: int,
    spec: Optional[LinkSpec] = None,
    convergence_delay: float = 0.5,
) -> BuiltTopology:
    """n servers in a path, one host each; all trunks share ``spec``."""
    if n_hosts < 1:
        raise ValueError("need at least one host")
    spec = spec or cheap_spec()
    network = Network(sim)
    hosts = []
    for i in range(n_hosts):
        network.add_server(f"s{i}")
        host_id = HostId(f"h{i}")
        network.add_host(host_id, f"s{i}")
        hosts.append(host_id)
        if i > 0:
            network.connect(f"s{i-1}", f"s{i}", spec)
    network.use_global_routing(convergence_delay=convergence_delay)
    clusters = ([[h for h in hosts]] if not spec.expensive
                else [[h] for h in hosts])
    return BuiltTopology(network=network, hosts=hosts, clusters=clusters)


def star_topology(
    sim: Simulator,
    n_hosts: int,
    spec: Optional[LinkSpec] = None,
    convergence_delay: float = 0.5,
) -> BuiltTopology:
    """A hub server with n leaf servers, one host per leaf."""
    if n_hosts < 1:
        raise ValueError("need at least one host")
    spec = spec or cheap_spec()
    network = Network(sim)
    network.add_server("hub")
    hosts = []
    for i in range(n_hosts):
        network.add_server(f"s{i}")
        network.connect("hub", f"s{i}", spec)
        host_id = HostId(f"h{i}")
        network.add_host(host_id, f"s{i}")
        hosts.append(host_id)
    network.use_global_routing(convergence_delay=convergence_delay)
    clusters = ([[h for h in hosts]] if not spec.expensive
                else [[h] for h in hosts])
    return BuiltTopology(network=network, hosts=hosts, clusters=clusters)


def random_topology(
    sim: Simulator,
    n_servers: int,
    n_hosts: int,
    extra_links: int = 0,
    expensive_fraction: float = 0.3,
    convergence_delay: float = 0.5,
    rng_stream: str = "topology.random",
) -> BuiltTopology:
    """A seeded random connected server graph with hosts spread round-robin.

    A random spanning tree guarantees connectivity; ``extra_links``
    additional random links add redundancy.  Each trunk is expensive
    with probability ``expensive_fraction``.
    """
    if n_servers < 1 or n_hosts < 1:
        raise ValueError("need at least one server and one host")
    rng = sim.rng.stream(rng_stream)
    network = Network(sim)
    names = [f"s{i}" for i in range(n_servers)]
    for name in names:
        network.add_server(name)

    def random_spec() -> LinkSpec:
        return expensive_spec() if rng.random() < expensive_fraction else cheap_spec()

    for idx in range(1, n_servers):
        network.connect(names[rng.randrange(idx)], names[idx], random_spec())
    added = 0
    attempts = 0
    while added < extra_links and attempts < extra_links * 20 + 20:
        attempts += 1
        a, b = rng.sample(names, 2) if n_servers > 1 else (names[0], names[0])
        if a == b or network.links.get(_lid(a, b)) is not None:
            continue
        network.connect(a, b, random_spec())
        added += 1

    hosts = []
    for i in range(n_hosts):
        host_id = HostId(f"h{i}")
        network.add_host(host_id, names[i % n_servers])
        hosts.append(host_id)
    network.use_global_routing(convergence_delay=convergence_delay)
    built = BuiltTopology(network=network, hosts=hosts)
    built.clusters = [sorted(c) for c in network.true_clusters()]
    return built


def _lid(a: str, b: str):
    from .addressing import LinkId

    return LinkId.of(a, b)
