"""Point-to-point bidirectional links.

Links implement the paper's failure model exactly (Section 2):

* links can fail and recover at any time, *undetected* by the
  application — a packet sent over a down link simply vanishes;
* packets can be lost at any point even when the link is perceived to
  be operational (``loss_prob``);
* packets can be spontaneously duplicated (``dup_prob``);
* packets can arrive out of order (``reorder_jitter`` adds a random
  extra delay drawn per packet);
* delays are otherwise latency + transmission time, with per-direction
  serialization (a transmitter sends one packet at a time), which is
  what produces the source-server congestion the paper discusses in
  Section 5.

Links come in two **bandwidth classes** — *cheap* (high bandwidth, e.g.
a LAN) and *expensive* (low bandwidth, e.g. a long-haul trunk).  A
server forwarding a packet over an expensive link sets the packet's
cost bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..sim import Counter, Event, Simulator, TimeSeries
from .addressing import LinkId
from .message import Packet

DeliverFn = Callable[[Packet], None]


class BandwidthClass(Enum):
    """The paper's two-way division of links by bandwidth."""

    CHEAP = "cheap"
    EXPENSIVE = "expensive"


@dataclass(frozen=True)
class LinkSpec:
    """Static link parameters.

    Defaults model a LAN-class link; :func:`expensive_spec` models an
    ARPANET-era long-haul trunk.
    """

    latency: float = 0.002
    bandwidth_bps: float = 10_000_000.0
    klass: BandwidthClass = BandwidthClass.CHEAP
    loss_prob: float = 0.0
    dup_prob: float = 0.0
    reorder_jitter: float = 0.0
    #: drop-tail limit on packets queued per direction (switch buffer)
    queue_limit: int = 128

    def __post_init__(self) -> None:
        # Out-of-range probabilities do not fail loudly on their own —
        # loss_prob=1.2 silently drops everything, dup_prob=-1 silently
        # never duplicates — so reject them at construction.
        for name in ("loss_prob", "dup_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} must be a probability in [0, 1], got {value}")
        if self.reorder_jitter < 0.0:
            raise ValueError(
                f"reorder_jitter must be non-negative, got {self.reorder_jitter}")
        if self.latency < 0.0:
            raise ValueError(f"latency must be non-negative, got {self.latency}")
        if self.bandwidth_bps <= 0.0:
            raise ValueError(
                f"bandwidth_bps must be positive, got {self.bandwidth_bps}")
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be at least 1, got {self.queue_limit}")

    @property
    def expensive(self) -> bool:
        """True for low-bandwidth (long-haul) links."""
        return self.klass is BandwidthClass.EXPENSIVE


def cheap_spec(**overrides: object) -> LinkSpec:
    """A cheap (high-bandwidth, low-latency) link spec."""
    return LinkSpec(**{"latency": 0.002, "bandwidth_bps": 10_000_000.0,
                       "klass": BandwidthClass.CHEAP, **overrides})  # type: ignore[arg-type]


def expensive_spec(**overrides: object) -> LinkSpec:
    """An expensive (low-bandwidth, high-latency) link spec."""
    return LinkSpec(**{"latency": 0.050, "bandwidth_bps": 56_000.0,
                       "klass": BandwidthClass.EXPENSIVE, **overrides})  # type: ignore[arg-type]


@dataclass
class _Direction:
    """Per-direction transmitter state."""

    busy_until: float = 0.0
    outstanding: int = 0
    #: high-water mark of ``outstanding`` over the link's lifetime
    peak: int = 0
    #: packets dropped by this direction's drop-tail queue
    overflows: int = 0
    #: in-flight delivery events; a dict (not a set) so removal is O(1)
    #: while iteration order stays deterministic (insertion order)
    pending: Dict[Event, None] = field(default_factory=dict)
    #: queue-length series name, resolved to the TimeSeries on first use
    series_name: str = ""
    series: Optional[TimeSeries] = None


class Link:
    """One bidirectional link between two nodes (servers or host access).

    The link does not know about routing; callers (servers, host
    interfaces) hand it a packet, the name of the sending endpoint, and
    a delivery function for the far end.
    """

    def __init__(self, sim: Simulator, link_id: LinkId, spec: LinkSpec) -> None:
        self.sim = sim
        self.link_id = link_id
        self.spec = spec
        self.up = True
        self._rng = sim.rng.stream(f"link.{link_id}")
        self._directions: Dict[str, _Direction] = {
            link_id.a: _Direction(series_name=f"linkq.{link_id}.{link_id.a}"),
            link_id.b: _Direction(series_name=f"linkq.{link_id}.{link_id.b}"),
        }
        # Hot-path metric handles, created lazily on first transmit so an
        # idle link registers nothing (matching pre-cache behavior).
        self._c_total: Optional[Counter] = None
        self._c_link: Optional[Counter] = None
        self._c_expensive: Optional[Counter] = None
        self._c_overflow_link: Optional[Counter] = None
        #: kind -> (kind counter, expensive-kind counter or None)
        self._kind_counters: Dict[str, Tuple[Counter, Optional[Counter]]] = {}

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def set_down(self) -> None:
        """Fail the link; in-flight packets are lost, silently."""
        if not self.up:
            return
        self.up = False
        for direction in self._directions.values():
            for event in direction.pending:
                if self.sim.try_cancel(event):
                    self.sim.trace.emit("link.drop_down", str(self.link_id))
            direction.pending.clear()
            direction.outstanding = 0
            direction.busy_until = 0.0
        self.sim.trace.emit("link.down", str(self.link_id))

    def set_up(self) -> None:
        """Repair the link."""
        if self.up:
            return
        self.up = True
        self.sim.trace.emit("link.up", str(self.link_id))

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def other_end(self, from_node: str) -> str:
        """The opposite endpoint of ``from_node``."""
        if from_node == self.link_id.a:
            return self.link_id.b
        if from_node == self.link_id.b:
            return self.link_id.a
        raise ValueError(f"{from_node} is not an endpoint of {self.link_id}")

    def tx_time(self, packet: Packet) -> float:
        """Transmission time of ``packet`` on this link."""
        return packet.size_bits / self.spec.bandwidth_bps

    def queue_length(self, from_node: str) -> int:
        """Packets queued or in flight in the given direction."""
        return self._directions[from_node].outstanding

    def queue_peak(self, from_node: str) -> int:
        """High-water mark of the directional queue over the run."""
        return self._directions[from_node].peak

    def overflow_count(self, from_node: str) -> int:
        """Drop-tail overflows in the given direction over the run."""
        return self._directions[from_node].overflows

    def transmit(self, packet: Packet, from_node: str, deliver: DeliverFn) -> None:
        """Send ``packet`` from ``from_node``; the far end gets ``deliver(packet)``.

        Silently drops the packet when the link is down or the loss draw
        fires — the sender is *not* told, per the paper's assumptions.
        The packet's hop record and cost bit are updated here.
        """
        self.other_end(from_node)  # validates endpoint
        metrics = self.sim.metrics
        if not self.up:
            self.sim.trace.emit("link.drop_down", str(self.link_id), packet=packet.packet_id)
            metrics.counter("net.drop.down").inc()
            return
        if self.spec.loss_prob > 0 and self._rng.random() < self.spec.loss_prob:
            self.sim.trace.emit("link.drop_loss", str(self.link_id), packet=packet.packet_id,
                                payload_kind=packet.kind)
            metrics.counter("net.drop.loss").inc()
            return
        if self._directions[from_node].outstanding >= self.spec.queue_limit:
            # Drop-tail: the switch buffer for this direction is full.
            # Overflow is attributed per link *and* per direction so
            # saturation experiments can point at the guilty trunk.
            self._directions[from_node].overflows += 1
            self.sim.trace.emit("link.drop_overflow", str(self.link_id),
                                packet=packet.packet_id, payload_kind=packet.kind,
                                from_node=from_node)
            metrics.counter("net.drop.overflow").inc()
            overflow = self._c_overflow_link
            if overflow is None:
                overflow = self._c_overflow_link = metrics.counter(
                    f"net.drop.overflow.link.{self.link_id}")
            overflow.inc()
            return

        spec = self.spec
        expensive = spec.expensive
        packet.record_hop(self.link_id, expensive)
        total = self._c_total
        if total is None:
            total = self._c_total = metrics.counter("net.link_tx.total")
            self._c_link = metrics.counter(f"linktx.{self.link_id}")
            if expensive:
                self._c_expensive = metrics.counter("net.link_tx.expensive")
        total.inc()
        kind = packet.kind
        kind_pair = self._kind_counters.get(kind)
        if kind_pair is None:
            kind_pair = (
                metrics.counter(f"net.link_tx.kind.{kind}"),
                metrics.counter(f"net.link_tx.expensive.kind.{kind}")
                if expensive else None,
            )
            self._kind_counters[kind] = kind_pair
        kind_pair[0].inc()
        if expensive:
            self._c_expensive.inc()  # type: ignore[union-attr]
            kind_pair[1].inc()  # type: ignore[union-attr]
        self._c_link.inc()  # type: ignore[union-attr]

        direction = self._directions[from_node]
        now = self.sim.now
        start = max(now, direction.busy_until)
        direction.busy_until = start + self.tx_time(packet)
        delay = direction.busy_until - now + spec.latency
        if spec.reorder_jitter > 0:
            delay += self._rng.uniform(0.0, spec.reorder_jitter)

        direction.outstanding += 1
        if direction.outstanding > direction.peak:
            direction.peak = direction.outstanding
        series = direction.series
        if series is None:
            series = direction.series = metrics.series(direction.series_name)
        series.record(now, direction.outstanding)
        self._schedule_delivery(packet, direction, delay, deliver)

        if spec.dup_prob > 0 and self._rng.random() < spec.dup_prob:
            dup = packet.fork()
            self.sim.trace.emit("link.dup", str(self.link_id), packet=packet.packet_id)
            metrics.counter("net.dup").inc()
            direction.outstanding += 1
            if direction.outstanding > direction.peak:
                direction.peak = direction.outstanding
            self._schedule_delivery(dup, direction, delay + self.tx_time(packet),
                                    deliver)

    def _schedule_delivery(
        self,
        packet: Packet,
        direction: _Direction,
        delay: float,
        deliver: DeliverFn,
    ) -> None:
        sim = self.sim

        def arrive() -> None:
            direction.outstanding -= 1
            series = direction.series
            if series is not None:
                series.record(sim.now, direction.outstanding)
            direction.pending.pop(event, None)
            deliver(packet)

        event = sim.schedule(delay, arrive)
        direction.pending[event] = None


def endpoints(link: Link) -> Tuple[str, str]:
    """The two endpoint node names of a link."""
    return (link.link_id.a, link.link_id.b)


def link_pressure(links: Iterable[Link]) -> List[Dict[str, object]]:
    """Per-direction pressure summary over a set of links.

    One row per link direction that saw any traffic or drops: peak
    queue depth (high-water mark of the drop-tail buffer), overflow
    count, and the configured limit.  The continuous time-series lives
    in the ``linkq.<link>.<node>`` metrics; this is the compact form
    experiment summaries embed.  Rows are sorted by overflow count then
    peak, worst first, so the guilty trunk tops the table.
    """
    rows: List[Dict[str, object]] = []
    for link in links:
        for node in endpoints(link):
            peak = link.queue_peak(node)
            overflows = link.overflow_count(node)
            if peak == 0 and overflows == 0:
                continue
            rows.append({
                "link": str(link.link_id), "from_node": node,
                "queue_peak": peak, "overflows": overflows,
                "queue_limit": link.spec.queue_limit,
            })
    rows.sort(key=lambda r: (-int(r["overflows"]), -int(r["queue_peak"]),  # type: ignore[call-overload]
                             str(r["link"]), str(r["from_node"])))
    return rows
