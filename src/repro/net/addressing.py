"""Node and link identifiers.

Hosts and servers live in separate namespaces, matching the paper's
model: hosts are the computers that run the broadcast application;
servers are the (nonprogrammable) communication processors they attach
to.  Identifiers are lightweight wrappers around strings so that traces
stay readable while the type checker keeps the two namespaces apart.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class HostId:
    """Identifier of a broadcast-application host."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class ServerId:
    """Identifier of a communication server (switch)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class LinkId:
    """Identifier of a bidirectional link, normalized to sorted endpoints."""

    a: str
    b: str

    @staticmethod
    def of(x: str, y: str) -> "LinkId":
        """Create a LinkId regardless of endpoint order."""
        return LinkId(*sorted((x, y)))

    def __str__(self) -> str:
        return f"{self.a}<->{self.b}"


def host_id(name: str) -> HostId:
    """Shorthand constructor used throughout tests and examples."""
    return HostId(name)


def server_id(name: str) -> ServerId:
    """Shorthand constructor used throughout tests and examples."""
    return ServerId(name)
