"""Route diagnostics: trace the path a packet would take right now.

An oracle/debugging tool (the protocol itself never sees routes): walk
the routing tables from one host toward another and report the node
sequence, its cost class, and an idle-network latency estimate.
Invaluable when a test fails with "packets vanish" — the answer is
usually a stale table or a loop, and :func:`trace_route` says which.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .addressing import HostId, LinkId
from .topology import Network


@dataclass(frozen=True)
class RouteTrace:
    """Result of walking the routing tables between two hosts."""

    src: HostId
    dst: HostId
    #: node names in order, starting with the source host, ending with
    #: the destination host when complete
    nodes: List[str]
    #: "complete" | "no_route" | "loop" | "link_down"
    status: str
    #: True when at least one traversed link is expensive
    expensive: bool
    #: sum of link latencies + transmission of a 1-bit probe (idle net)
    latency_estimate: float

    @property
    def complete(self) -> bool:
        """True when the walk reached the destination."""
        return self.status == "complete"

    @property
    def hop_count(self) -> int:
        """Number of links traversed."""
        return max(len(self.nodes) - 1, 0)

    def __str__(self) -> str:
        cls = "expensive" if self.expensive else "cheap"
        return (f"{self.src}->{self.dst}: {' -> '.join(self.nodes)} "
                f"[{self.status}, {cls}, ~{self.latency_estimate * 1000:.1f}ms]")


def trace_route(network: Network, src: HostId, dst: HostId,
                max_hops: int = 64) -> RouteTrace:
    """Walk current routing state from ``src`` toward ``dst``."""
    nodes: List[str] = [str(src)]
    expensive = False
    latency = 0.0

    def finish(status: str) -> RouteTrace:
        return RouteTrace(src=src, dst=dst, nodes=nodes, status=status,
                          expensive=expensive, latency_estimate=latency)

    def cross(a: str, b: str) -> Optional[str]:
        """Traverse link a-b; returns an error status or None."""
        nonlocal expensive, latency
        link = network.links.get(LinkId.of(a, b))
        if link is None or not link.up:
            return "link_down"
        expensive = expensive or link.spec.expensive
        latency += link.spec.latency
        return None

    src_server = network.server_of(src)
    dst_server = network.server_of(dst)
    if src_server is None or dst_server is None:
        return finish("no_route")
    error = cross(str(src), src_server)
    if error:
        return finish(error)
    nodes.append(src_server)

    current = src_server
    seen = {current}
    while current != dst_server:
        if len(nodes) > max_hops:
            return finish("loop")
        next_hop = network.routing.next_hop(current, dst_server)
        if next_hop is None:
            return finish("no_route")
        error = cross(current, next_hop)
        if error:
            return finish(error)
        nodes.append(next_hop)
        if next_hop in seen:
            return finish("loop")
        seen.add(next_hop)
        current = next_hop

    error = cross(dst_server, str(dst))
    if error:
        return finish(error)
    nodes.append(str(dst))
    return finish("complete")


def routes_overview(network: Network, src: HostId) -> List[RouteTrace]:
    """Trace from ``src`` to every other host (diagnostic dump)."""
    return [trace_route(network, src, other)
            for other in network.hosts() if other != src]
