"""Routing engines for the server subnetwork.

The paper assumes ARPANET-style *adaptive* routing: hosts know nothing
about topology, but the subnetwork eventually finds a path whenever one
exists (this is what backs the paper's communication-transitivity
assumption).  Two engines are provided:

* :class:`GlobalRoutingEngine` — recomputes shortest-path next-hop
  tables from the true topology a configurable *convergence delay*
  after every topology change.  This models "given sufficient time, the
  routing algorithm will discover it" with a single tunable lag, and is
  the default for experiments.
* :class:`repro.net.distvec.DistanceVectorEngine` — a real distributed
  distance-vector protocol (periodic neighbor exchange, route aging,
  split horizon), for users who want the routing substrate itself to be
  message-driven.

Both expose the same two-method interface consumed by servers.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Dict, Optional

from ..sim import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from .topology import Network

#: Routing metric: maps a link's (latency, expensive) to a weight.
MetricFn = Callable[[float, bool], float]


def latency_metric(latency: float, expensive: bool) -> float:
    """Default metric: route along minimum total latency."""
    return latency


def hop_metric(latency: float, expensive: bool) -> float:
    """Alternative metric: minimize hop count."""
    return 1.0


def cheap_first_metric(latency: float, expensive: bool) -> float:
    """Metric that strongly avoids expensive links when possible."""
    return 1000.0 if expensive else 1.0


class RoutingEngine:
    """Interface between servers and the routing subsystem."""

    #: Monotonic stamp, bumped every time the engine's tables change.
    #: Servers memoize ``next_hop`` answers keyed by this generation, so
    #: repeated unicasts to the same destination skip the table walk
    #: until the next (re)convergence invalidates the memo.
    generation: int = 0

    def next_hop(self, at_server: str, dst_server: str) -> Optional[str]:
        """Neighbor server to forward to, or None when no route is known."""
        raise NotImplementedError

    def on_topology_change(self) -> None:
        """Called by the network whenever a link fails or recovers."""
        raise NotImplementedError


class GlobalRoutingEngine(RoutingEngine):
    """Shortest-path next hops recomputed with a convergence delay.

    Between a topology change and recomputation, servers keep using the
    stale tables — packets routed toward a dead link are silently lost,
    exactly as the paper's failure model allows.
    """

    def __init__(
        self,
        sim: Simulator,
        network: "Network",
        convergence_delay: float = 0.5,
        metric: MetricFn = latency_metric,
    ) -> None:
        self.sim = sim
        self.network = network
        self.convergence_delay = convergence_delay
        self.metric = metric
        self.generation = 0
        self._tables: Dict[str, Dict[str, str]] = {}
        self._recompute_pending = False
        self.recompute()

    def next_hop(self, at_server: str, dst_server: str) -> Optional[str]:
        """Neighbor server to forward to, or None when unknown."""
        row = self._tables.get(at_server)
        if row is None:
            return None
        return row.get(dst_server)

    def on_topology_change(self) -> None:
        """React to a link failing or recovering."""
        if self._recompute_pending:
            return
        self._recompute_pending = True
        if self.convergence_delay == 0:
            self._recompute_now()
        else:
            self.sim.schedule(self.convergence_delay, self._recompute_now)

    def _recompute_now(self) -> None:
        self._recompute_pending = False
        self.recompute()
        self.sim.trace.emit("routing.converged", "global")

    def recompute(self) -> None:
        """Rebuild all next-hop tables from the current up-link topology."""
        adjacency = self.network.server_adjacency()
        self._tables = {
            source: _dijkstra_next_hops(source, adjacency, self.metric)
            for source in adjacency
        }
        self.generation += 1


def _dijkstra_next_hops(
    source: str,
    adjacency: Dict[str, Dict[str, tuple]],
    metric: MetricFn,
) -> Dict[str, str]:
    """Single-source shortest paths; returns dst -> first hop from ``source``.

    Ties are broken deterministically by (distance, node name) heap
    ordering so identical seeds give identical routes.
    """
    dist: Dict[str, float] = {source: 0.0}
    first_hop: Dict[str, str] = {}
    heap = [(0.0, source, source)]  # (distance, node, first hop used)
    visited: Dict[str, str] = {}
    while heap:
        d, node, hop = heapq.heappop(heap)
        if node in visited:
            continue
        visited[node] = hop
        for neighbor, (latency, expensive) in sorted(adjacency.get(node, {}).items()):
            if neighbor in visited:
                continue
            candidate = d + metric(latency, expensive)
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                next_first = neighbor if node == source else hop
                heapq.heappush(heap, (candidate, neighbor, next_first))
    visited.pop(source, None)
    return visited
