"""Background cross-traffic: load on links from *other* applications.

The paper's attachment procedure adapts "not only to component failures
but also to the changing loads in different parts of the network"
(Section 4.4) — a cluster re-parents toward whoever receives new
messages promptly, and promptness depends on queueing.  To exercise
that claim the simulator needs links that are busy with somebody else's
packets.

:class:`CrossTrafficGenerator` injects filler packets directly into a
link's transmitter at a configurable rate.  The filler occupies the
transmitter exactly like real traffic (same serialization, same queue
limits), but is addressed to nobody: it is consumed at the far end.  It
is counted separately (``xtraffic.*`` counters) so protocol accounting
stays clean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..sim import PeriodicTask, Simulator
from .addressing import HostId
from .link import Link
from .message import Packet, RawPayload


@dataclass(frozen=True)
class CrossTrafficSpec:
    """Load description for one direction of one link."""

    #: packets per second injected
    rate: float
    #: size of each filler packet in bits
    size_bits: int = 8_000

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.size_bits < 1:
            raise ValueError("size_bits must be positive")

    def utilization(self, bandwidth_bps: float) -> float:
        """Fraction of the link this load occupies."""
        return self.rate * self.size_bits / bandwidth_bps


class CrossTrafficGenerator:
    """Keeps a set of link directions loaded with filler packets."""

    def __init__(self, sim: Simulator, name: str = "xtraffic") -> None:
        self.sim = sim
        self.name = name
        self._tasks: List[PeriodicTask] = []
        self._flows: List[Tuple[Link, str, CrossTrafficSpec]] = []

    def load(self, link: Link, from_node: str, spec: CrossTrafficSpec,
             ) -> "CrossTrafficGenerator":
        """Add a flow over ``link`` in the ``from_node`` direction."""
        link.other_end(from_node)  # validates the endpoint
        self._flows.append((link, from_node, spec))
        task = PeriodicTask(
            self.sim, 1.0 / spec.rate,
            lambda l=link, f=from_node, s=spec: self._inject(l, f, s),
            jitter=0.2 / spec.rate,
            rng_stream=f"{self.name}.{link.link_id}.{from_node}",
            name=f"{self.name}")
        self._tasks.append(task)
        return self

    def load_both_ways(self, link: Link, spec: CrossTrafficSpec,
                       ) -> "CrossTrafficGenerator":
        """Add flows in both directions of ``link``."""
        self.load(link, link.link_id.a, spec)
        self.load(link, link.link_id.b, spec)
        return self

    def start(self) -> "CrossTrafficGenerator":
        """Start periodic activity; returns self for chaining."""
        for task in self._tasks:
            task.start()
        return self

    def stop(self) -> None:
        """Stop periodic activity; safe to call more than once."""
        for task in self._tasks:
            task.stop()

    def _inject(self, link: Link, from_node: str, spec: CrossTrafficSpec) -> None:
        filler = Packet(
            src=HostId(f"{self.name}.src"), dst=HostId(f"{self.name}.sink"),
            payload=RawPayload(kind="xtraffic", size_bits=spec.size_bits),
            sent_at=self.sim.now)
        self.sim.metrics.counter("xtraffic.injected").inc()
        link.transmit(filler, from_node, self._sink)

    def _sink(self, packet: Packet) -> None:
        self.sim.metrics.counter("xtraffic.absorbed").inc()
