"""A distributed distance-vector routing engine.

This is the message-driven alternative to
:class:`repro.net.routing.GlobalRoutingEngine`.  Each server keeps a
distance vector (destination server -> (cost, next hop, age)) and
periodically exchanges it with its *currently reachable* neighbors, in
the spirit of the original ARPANET routing algorithm the paper cites
([McQu80], [Rose80]).

Details:

* exchange happens every ``period`` simulated seconds;
* a neighbor's advertisement is only read if the connecting link is up
  (a down link silently stops updates, it is not "detected");
* entries not refreshed for ``max_age`` seconds are expired, so routes
  through dead links eventually disappear;
* split horizon with poisoned reverse avoids the classic two-node
  count-to-infinity loop;
* costs above ``infinity_cost`` are treated as unreachable.

Convergence after a failure takes a few periods — much slower than the
global engine, which is the point: with this engine the paper's
communication-transitivity assumption holds only over "sufficiently
long" intervals, matching the paper's wording.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from ..sim import PeriodicTask, Simulator
from .routing import MetricFn, RoutingEngine, latency_metric

if TYPE_CHECKING:  # pragma: no cover
    from .topology import Network

#: Costs at or above this advertise "unreachable".
DEFAULT_INFINITY = 1e9


@dataclass
class RouteEntry:
    """One row of a server's distance vector."""

    cost: float
    next_hop: str
    updated_at: float


class DistanceVectorEngine(RoutingEngine):
    """Periodic neighbor-exchange distance-vector routing."""

    def __init__(
        self,
        sim: Simulator,
        network: "Network",
        period: float = 0.5,
        max_age: float = 3.0,
        metric: MetricFn = latency_metric,
        infinity_cost: float = DEFAULT_INFINITY,
    ) -> None:
        self.sim = sim
        self.network = network
        self.period = period
        self.max_age = max_age
        self.metric = metric
        self.infinity_cost = infinity_cost
        self._vectors: Dict[str, Dict[str, RouteEntry]] = {}
        self._task = PeriodicTask(sim, period, self._exchange_round,
                                  rng_stream="routing.distvec", name="distvec")
        self._task.start()
        self._bootstrap()

    # -- RoutingEngine interface ----------------------------------------

    def next_hop(self, at_server: str, dst_server: str) -> Optional[str]:
        """Neighbor server to forward to, or None when unknown."""
        vector = self._vectors.get(at_server)
        entry = vector.get(dst_server) if vector is not None else None
        if entry is None or entry.cost >= self.infinity_cost:
            return None
        return entry.next_hop

    def on_topology_change(self) -> None:
        """Nothing to do eagerly; failures are discovered by aging."""

    def stop(self) -> None:
        """Stop the periodic exchange (e.g. at the end of a simulation)."""
        self._task.stop()

    # -- internals --------------------------------------------------------

    def _bootstrap(self) -> None:
        for name in self.network.server_names():
            self._vectors[name] = {name: RouteEntry(0.0, name, 0.0)}
        self.generation += 1

    def _exchange_round(self) -> None:
        """One synchronous round: age out, then read neighbor vectors."""
        now = self.sim.now
        adjacency = self.network.server_adjacency()
        # Age out stale routes (but never the self-route).
        for name, vector in self._vectors.items():
            stale = [dst for dst, entry in vector.items()
                     if dst != name and now - entry.updated_at > self.max_age]
            for dst in stale:
                del vector[dst]
        # Read the vectors advertised by reachable neighbors.  Snapshot
        # them first so a round is order-independent (synchronous update).
        snapshot = {name: dict(vector) for name, vector in self._vectors.items()}
        for name in sorted(self._vectors):
            vector = self._vectors[name]
            for neighbor, (latency, expensive) in sorted(adjacency.get(name, {}).items()):
                link_cost = self.metric(latency, expensive)
                for dst, advert in snapshot.get(neighbor, {}).items():
                    if advert.next_hop == name and dst != neighbor:
                        continue  # split horizon (poisoned reverse)
                    candidate = link_cost + advert.cost
                    if candidate >= self.infinity_cost:
                        continue
                    current = vector.get(dst)
                    refresh = (current is not None and current.next_hop == neighbor)
                    if current is None or candidate < current.cost or refresh:
                        vector[dst] = RouteEntry(candidate, neighbor, now)
        # Conservative invalidation: any round may have changed routes.
        self.generation += 1
        self.sim.trace.emit("routing.distvec_round", "distvec")

    def table(self, at_server: str) -> Dict[str, RouteEntry]:
        """Read-only view of a server's vector (for tests/diagnostics)."""
        return dict(self._vectors.get(at_server, {}))
