"""Network substrate: nonprogrammable servers, links, routing, failures.

This package simulates the environment of the paper's Section 2: hosts
attached to point-to-point communication servers that offer exactly one
service (unicast to a single destination), links divided into *cheap*
and *expensive* bandwidth classes, a cost bit stamped on packets that
traverse expensive links, arbitrary undetected loss/duplication/
reordering, and adaptive routing that restores transitivity after
failures.
"""

from .addressing import HostId, LinkId, ServerId, host_id, server_id
from .failures import (
    FailureSchedule,
    LinkFlapper,
    LinkStateChange,
    PartitionScheduler,
    ServerOutageSchedule,
    cut_links_between,
    host_group,
)
from .generator import (
    BuiltTopology,
    hierarchical_wan,
    line_topology,
    random_topology,
    star_topology,
    wan_of_lans,
)
from .hostiface import HostPort
from .link import (
    BandwidthClass,
    Link,
    LinkSpec,
    cheap_spec,
    expensive_spec,
    link_pressure,
)
from .message import DEFAULT_SIZE_BITS, DEFAULT_TTL, Packet, Payload, RawPayload, make_packet
from .pathdiag import RouteTrace, routes_overview, trace_route
from .routing import (
    GlobalRoutingEngine,
    RoutingEngine,
    cheap_first_metric,
    hop_metric,
    latency_metric,
)
from .clocks import ClockModel, ClockSpec
from .crosstraffic import CrossTrafficGenerator, CrossTrafficSpec
from .distvec import DistanceVectorEngine, RouteEntry
from .server import Server
from .topology import Network

__all__ = [
    "BandwidthClass",
    "BuiltTopology",
    "ClockModel",
    "ClockSpec",
    "CrossTrafficGenerator",
    "CrossTrafficSpec",
    "DEFAULT_SIZE_BITS",
    "DEFAULT_TTL",
    "DistanceVectorEngine",
    "FailureSchedule",
    "GlobalRoutingEngine",
    "HostId",
    "HostPort",
    "Link",
    "LinkFlapper",
    "LinkId",
    "LinkSpec",
    "LinkStateChange",
    "Network",
    "Packet",
    "PartitionScheduler",
    "Payload",
    "RawPayload",
    "RouteEntry",
    "RouteTrace",
    "RoutingEngine",
    "Server",
    "ServerId",
    "ServerOutageSchedule",
    "cheap_first_metric",
    "cheap_spec",
    "cut_links_between",
    "expensive_spec",
    "hop_metric",
    "host_id",
    "hierarchical_wan",
    "host_group",
    "latency_metric",
    "line_topology",
    "link_pressure",
    "make_packet",
    "random_topology",
    "server_id",
    "routes_overview",
    "star_topology",
    "trace_route",
    "wan_of_lans",
]
