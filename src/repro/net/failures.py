"""Failure injection: schedules, flapping links, and partitions.

Everything here drives :meth:`repro.net.topology.Network.set_link_state`
on the simulator's clock; the protocol under test is never told — per
the paper, failures and repairs are undetected by the application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..sim import Event, Simulator
from .addressing import HostId, LinkId
from .topology import Network


@dataclass(frozen=True)
class LinkStateChange:
    """One scheduled change: at ``time``, link (a, b) goes up or down."""

    time: float
    a: str
    b: str
    up: bool


class FailureSchedule:
    """A list of link-state changes applied at their times.

    Overlapping ``outage`` windows on the same link compose correctly:
    the schedule keeps a per-link *down-depth* count, and the link is up
    only while no scheduled outage covers it.  (Naive down/up toggling
    would repair the link at the *first* outage's end even though a
    second, longer outage was still in force.)  An ``up`` with no
    matching ``down`` clamps at depth 0 and is a harmless no-op repair.
    """

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.changes: List[LinkStateChange] = []
        self._down_depth: Dict[LinkId, int] = {}

    def at(self, time: float, a: str, b: str, up: bool) -> "FailureSchedule":
        """Schedule one change (chainable)."""
        change = LinkStateChange(time, a, b, up)
        self.changes.append(change)
        self.sim.schedule_at(time, self._apply, change)
        return self

    def down(self, time: float, a: str, b: str) -> "FailureSchedule":
        """Fail the link at ``time`` (chainable)."""
        return self.at(time, a, b, up=False)

    def up(self, time: float, a: str, b: str) -> "FailureSchedule":
        """Repair the link at ``time`` (chainable)."""
        return self.at(time, a, b, up=True)

    def outage(self, start: float, end: float, a: str, b: str) -> "FailureSchedule":
        """Link (a, b) is down during [start, end); windows may overlap."""
        if end <= start:
            raise ValueError(f"outage end {end} must be after start {start}")
        return self.down(start, a, b).up(end, a, b)

    def _apply(self, change: LinkStateChange) -> None:
        link_id = LinkId.of(change.a, change.b)
        depth = self._down_depth.get(link_id, 0)
        depth = max(0, depth - 1) if change.up else depth + 1
        self._down_depth[link_id] = depth
        up = depth == 0
        self.network.set_link_state(change.a, change.b, up)
        self.sim.trace.emit("failure.apply", "schedule", a=change.a, b=change.b,
                            up=up, depth=depth)
        self.sim.metrics.counter(
            "net.failures.link.up" if up else "net.failures.link.down").inc()


class LinkFlapper:
    """Randomly fails and repairs a set of links (link churn).

    Each managed link alternates up/down with exponentially distributed
    durations, drawn from a dedicated RNG stream.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        links: Iterable[Tuple[str, str]],
        mean_up: float = 30.0,
        mean_down: float = 5.0,
        rng_stream: str = "failures.flapper",
    ) -> None:
        if mean_up <= 0 or mean_down <= 0:
            raise ValueError("mean_up and mean_down must be positive")
        self.sim = sim
        self.network = network
        self.links = [LinkId.of(a, b) for a, b in links]
        self.mean_up = mean_up
        self.mean_down = mean_down
        self._rng = sim.rng.stream(rng_stream)
        self._running = False
        #: per-link pending transition event, cancelled on stop() so a
        #: stopped flapper can never flip a link afterwards
        self._pending: Dict[LinkId, Event] = {}

    def start(self) -> "LinkFlapper":
        """Start periodic activity; returns self for chaining."""
        self._running = True
        for link_id in self.links:
            self._arm(self.mean_up, self._fail, link_id)
        return self

    def stop(self) -> None:
        """Stop all transitions, including any already scheduled.

        Pending fail/repair events are cancelled — without that, a
        timer armed before stop() could flip a link *after* a chaos
        plan's heal-by horizon and break its guarantee.
        """
        self._running = False
        for event in self._pending.values():
            self.sim.try_cancel(event)
        self._pending.clear()

    def _arm(self, mean: float, action, link_id: LinkId) -> None:
        self._pending[link_id] = self.sim.schedule(
            self._rng.expovariate(1.0 / mean), action, link_id)

    def _fail(self, link_id: LinkId) -> None:
        if not self._running:
            return
        self._pending.pop(link_id, None)
        self.network.set_link_state(link_id.a, link_id.b, up=False)
        self._arm(self.mean_down, self._repair, link_id)

    def _repair(self, link_id: LinkId) -> None:
        if not self._running:
            return
        self._pending.pop(link_id, None)
        self.network.set_link_state(link_id.a, link_id.b, up=True)
        self._arm(self.mean_up, self._fail, link_id)


class ServerOutageSchedule:
    """Scheduled whole-server crashes and repairs (paper §3).

    Drives :meth:`repro.net.topology.Network.set_server_state` on the
    simulator's clock; as with links, the application is never told.
    Every applied change emits the same ``failure.apply`` trace event as
    :class:`FailureSchedule` and bumps ``net.failures.server.*``
    counters, so chaos runs are debuggable from traces alone.
    """

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network

    def crash(self, time: float, server: str) -> "ServerOutageSchedule":
        """Crash ``server`` at ``time`` (chainable)."""
        self.sim.schedule_at(time, self._apply, server, False)
        return self

    def repair(self, time: float, server: str) -> "ServerOutageSchedule":
        """Repair ``server`` at ``time`` (chainable)."""
        self.sim.schedule_at(time, self._apply, server, True)
        return self

    def outage(self, start: float, end: float,
               server: str) -> "ServerOutageSchedule":
        """``server`` is down during [start, end)."""
        if end <= start:
            raise ValueError(f"outage end {end} must be after start {start}")
        return self.crash(start, server).repair(end, server)

    def _apply(self, server: str, up: bool) -> None:
        self.network.set_server_state(server, up)
        self.sim.trace.emit("failure.apply", "schedule", server=server, up=up)
        self.sim.metrics.counter(
            "net.failures.server.up" if up else "net.failures.server.down").inc()


def cut_links_between(
    network: Network, group_a: Sequence[str], group_b: Sequence[str]
) -> List[Tuple[str, str]]:
    """Find all links with one endpoint in each node group."""
    set_a, set_b = set(group_a), set(group_b)
    out = []
    for link in network.links.values():
        a, b = link.link_id.a, link.link_id.b
        if (a in set_a and b in set_b) or (a in set_b and b in set_a):
            out.append((a, b))
    return sorted(out)


class PartitionScheduler:
    """Partition the network into node groups for a time window.

    All links crossing between the given groups are failed at ``start``
    and repaired at ``end``.  Links internal to a group are untouched.
    """

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.schedule = FailureSchedule(sim, network)

    def isolate(
        self, group: Sequence[str], start: float, end: float
    ) -> List[Tuple[str, str]]:
        """Cut ``group`` off from the rest of the network during [start, end)."""
        others = [name for name in self._all_nodes() if name not in set(group)]
        return self.partition([list(group), others], start, end)

    def partition(
        self, groups: Sequence[Sequence[str]], start: float, end: float
    ) -> List[Tuple[str, str]]:
        """Split the network into the given groups during [start, end).

        Returns the list of links that were cut.
        """
        cut: Set[Tuple[str, str]] = set()
        for i, group_a in enumerate(groups):
            for group_b in groups[i + 1:]:
                cut.update(cut_links_between(self.network, group_a, group_b))
        for a, b in sorted(cut):
            self.schedule.outage(start, end, a, b)
        return sorted(cut)

    def _all_nodes(self) -> List[str]:
        nodes = list(self.network.server_names())
        nodes.extend(str(h) for h in self.network.hosts())
        return nodes


def host_group(network: Network, hosts: Iterable[HostId]) -> List[str]:
    """Node group containing the given hosts and their servers.

    Convenience for partitioning along host lines: isolating a host
    group means cutting the trunks between their servers and the rest.
    """
    names: Set[str] = set()
    for host_id in hosts:
        names.add(str(host_id))
        server = network.server_of(host_id)
        if server is not None:
            names.add(server)
    return sorted(names)
