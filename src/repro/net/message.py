"""Packets and the payload protocol.

A :class:`Packet` is what travels through the simulated network.  Its
payload is *opaque to servers* — the defining property of the paper's
nonprogrammable-server model: servers look only at the destination host
and forward; they never inspect, duplicate, or multicast application
content.

Each packet carries the paper's **cost bit**: initialized to 0 by the
sender and set to 1 by any server that forwards it over an *expensive*
link (the paper's suggested mechanism, Section 2).  Receiving hosts use
the bit to maintain their ``CLUSTER`` sets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import List, Optional, Protocol, runtime_checkable

from .addressing import HostId, LinkId

#: Default payload size used when a payload does not define one (bits).
DEFAULT_SIZE_BITS = 1_000

#: Default hop limit: packets caught in transient routing loops (stale
#: tables during convergence can point two servers at each other) are
#: discarded instead of bouncing forever.
DEFAULT_TTL = 32


@runtime_checkable
class Payload(Protocol):
    """What the network requires of application payloads.

    ``kind`` is a short tag used for traffic accounting (e.g. ``"data"``
    vs ``"control"``); ``size_bits`` drives transmission delay on
    bandwidth-limited links.
    """

    @property
    def kind(self) -> str: ...

    @property
    def size_bits(self) -> int: ...


@dataclass(frozen=True)
class RawPayload:
    """A trivial payload for tests and low-level benchmarks."""

    content: object = None
    kind: str = "raw"
    size_bits: int = DEFAULT_SIZE_BITS


_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """One individually addressed message in flight.

    Attributes:
        src: originating host.
        dst: destination host (always a *single* destination — servers
            cannot handle multiply addressed messages).
        payload: opaque application payload.
        cost_bit: True once the packet has traversed an expensive link.
        hops: link identifiers traversed so far (diagnostics/accounting).
        sent_at: *true* virtual time the source host handed it to its
            server (measurement infrastructure; never visible to hosts).
        stamped_at: the send timestamp as written by the *sender's local
            clock* (what the paper's transit-time mechanism reads); equals
            sent_at unless a clock model skews the sender.
        packet_id: unique per original send; duplicates share the id of
            the original (useful to detect spontaneous duplication).
    """

    src: HostId
    dst: HostId
    payload: Payload
    cost_bit: bool = False
    hops: List[LinkId] = field(default_factory=list)
    sent_at: float = 0.0
    stamped_at: float = 0.0
    ttl: int = DEFAULT_TTL
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def size_bits(self) -> int:
        """Serialized size of this message in bits."""
        return getattr(self.payload, "size_bits", DEFAULT_SIZE_BITS)

    @property
    def kind(self) -> str:
        """Payload class tag used for traffic accounting."""
        return getattr(self.payload, "kind", "raw")

    def fork(self) -> "Packet":
        """Copy for duplication/fan-out; shares packet_id and payload."""
        return replace(self, hops=list(self.hops))

    def record_hop(self, link_id: LinkId, expensive: bool) -> None:
        """Account for traversing ``link_id``; sets the cost bit if expensive."""
        self.hops.append(link_id)
        self.ttl -= 1
        if expensive:
            self.cost_bit = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "$" if self.cost_bit else ""
        return f"<Packet #{self.packet_id} {self.src}->{self.dst} {self.kind}{flag}>"


def make_packet(
    src: HostId,
    dst: HostId,
    payload: Optional[Payload] = None,
    sent_at: float = 0.0,
) -> Packet:
    """Convenience constructor (defaults to a RawPayload)."""
    return Packet(src=src, dst=dst, payload=payload or RawPayload(), sent_at=sent_at)
