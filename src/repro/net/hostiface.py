"""The host's port onto the network.

This is the *entire* service interface the network offers the broadcast
application, mirroring the paper's model: a host can ask its server to
deliver a message to one single destination, and it can receive
messages (observing each message's cost bit).  There are no
acknowledgments, no failure notifications, no topology information.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from ..sim import Counter, Histogram, Simulator
from .addressing import HostId
from .link import Link
from .message import Packet, Payload

if TYPE_CHECKING:  # pragma: no cover
    from .topology import Network

ReceiveFn = Callable[[Packet], None]

#: A delivery tap: sees each inbound packet *before* receive accounting;
#: returning True consumes the packet (the tap is responsible for any
#: later re-injection via :meth:`HostPort.inject`).
TapFn = Callable[[Packet], bool]

#: A send tap: sees each outbound (dst, payload) pair *before*
#: packetisation and send accounting; returning True consumes the send
#: (the tap is responsible for any substitute via :meth:`HostPort.send_raw`).
SendTapFn = Callable[[HostId, Payload], bool]


class HostPort:
    """A host's attachment point: one access link to one server."""

    def __init__(
        self,
        sim: Simulator,
        host_id: HostId,
        server_name: str,
        access_link: Link,
        network: "Network",
    ) -> None:
        self.sim = sim
        self.host_id = host_id
        self.server_name = server_name
        self.access_link = access_link
        self.network = network
        self._on_receive: Optional[ReceiveFn] = None
        #: optional inbound tap (chaos injection hook); see :data:`TapFn`
        self.tap: Optional[TapFn] = None
        #: optional outbound tap (adversary persona hook); see :data:`SendTapFn`
        self.send_tap: Optional[SendTapFn] = None
        self._name = str(host_id)
        # Hot-path metric handles (see DESIGN.md), created lazily so an
        # idle port registers nothing.
        self._c_sent: Optional[Counter] = None
        self._c_recv: Optional[Counter] = None
        self._c_recv_exp: Optional[Counter] = None
        self._h_delay: Optional[Histogram] = None
        self._sent_kind: Dict[str, Counter] = {}
        self._recv_kind: Dict[str, Counter] = {}
        self._recv_exp_kind: Dict[str, Counter] = {}

    def set_receiver(self, callback: ReceiveFn) -> None:
        """Register the application callback for inbound packets."""
        self._on_receive = callback

    def local_time(self) -> float:
        """This host's wall-clock reading (true time if clocks are ideal)."""
        return self.network.local_time(self.host_id)

    def queue_length(self) -> int:
        """Outbound packets queued or in flight on the access link.

        This is the one piece of *local* congestion feedback a real
        host has for free — the depth of its own NIC/driver queue.  It
        deliberately reveals nothing about the rest of the network
        (consistent with the paper's no-feedback service model); the
        bounded-resource layer uses it for outbound load shedding.
        """
        return self.access_link.queue_length(self._name)

    # -- sending ----------------------------------------------------------

    def send(self, dst: HostId, payload: Payload) -> None:
        """Hand one individually addressed message to the server.

        This is fire-and-forget: the network gives no delivery feedback
        of any kind.  Sending to oneself is a programming error.

        If a send tap is installed it sees the (dst, payload) pair
        first; a tap that returns True has consumed the send (dropped,
        mutated, redirected...) and re-enters whatever it actually wants
        on the wire through :meth:`send_raw`.
        """
        if dst == self.host_id:
            raise ValueError(f"host {self.host_id} cannot send to itself")
        send_tap = self.send_tap
        if send_tap is not None and send_tap(dst, payload):
            return
        self.send_raw(dst, payload)

    def send_raw(self, dst: HostId, payload: Payload) -> None:
        """Packetise and transmit, bypassing the send tap.

        This is the send tap's re-entry point (and does all the send
        accounting), so a persona's substituted messages cannot recurse
        into the tap that produced them.
        """
        packet = Packet(src=self.host_id, dst=dst, payload=payload,
                        sent_at=self.sim.now,
                        stamped_at=self.network.local_time(self.host_id))
        kind = packet.kind
        trace = self.sim.trace
        if trace.active:
            trace.emit("net.host_send", self._name, dst=str(dst),
                       payload_kind=kind, packet=packet.packet_id)
        sent = self._c_sent
        if sent is None:
            sent = self._c_sent = self.sim.metrics.counter("net.h2h.sent")
        sent.inc()
        kind_counter = self._sent_kind.get(kind)
        if kind_counter is None:
            kind_counter = self._sent_kind[kind] = self.sim.metrics.counter(
                f"net.h2h.sent.kind.{kind}")
        kind_counter.inc()
        server = self.network.servers[self.server_name]
        self.access_link.transmit(packet, self._name, server.receive)

    # -- receiving ----------------------------------------------------------

    def deliver_from_network(self, packet: Packet) -> None:
        """Called by the access link when a packet reaches this host.

        If a tap is installed it sees the packet first; a tap that
        returns True has consumed it (dropped, delayed, mutated...) and
        re-enters whatever it wants delivered through :meth:`inject`.
        """
        tap = self.tap
        if tap is not None and tap(packet):
            return
        self.inject(packet)

    def inject(self, packet: Packet) -> None:
        """Deliver ``packet`` to the host, bypassing the tap.

        This is the tap's re-entry point (and does all the receive
        accounting), so delayed/duplicated/replayed packets cannot
        recurse into the tap that produced them.
        """
        kind = packet.kind
        trace = self.sim.trace
        if trace.active:
            trace.emit("net.host_recv", self._name, src=str(packet.src),
                       payload_kind=kind, cost_bit=packet.cost_bit,
                       packet=packet.packet_id)
        metrics = self.sim.metrics
        recv = self._c_recv
        if recv is None:
            recv = self._c_recv = metrics.counter("net.h2h.recv")
            self._h_delay = metrics.histogram("net.h2h.delay")
        recv.inc()
        kind_counter = self._recv_kind.get(kind)
        if kind_counter is None:
            kind_counter = self._recv_kind[kind] = metrics.counter(
                f"net.h2h.recv.kind.{kind}")
        kind_counter.inc()
        if packet.cost_bit:
            exp = self._c_recv_exp
            if exp is None:
                exp = self._c_recv_exp = metrics.counter("net.h2h.recv.expensive")
            exp.inc()
            exp_kind = self._recv_exp_kind.get(kind)
            if exp_kind is None:
                exp_kind = self._recv_exp_kind[kind] = metrics.counter(
                    f"net.h2h.recv.expensive.kind.{kind}")
            exp_kind.inc()
        self._h_delay.observe(self.sim.now - packet.sent_at)  # type: ignore[union-attr]
        if self._on_receive is not None:
            self._on_receive(packet)
