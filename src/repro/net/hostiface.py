"""The host's port onto the network.

This is the *entire* service interface the network offers the broadcast
application, mirroring the paper's model: a host can ask its server to
deliver a message to one single destination, and it can receive
messages (observing each message's cost bit).  There are no
acknowledgments, no failure notifications, no topology information.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..sim import Simulator
from .addressing import HostId
from .link import Link
from .message import Packet, Payload

if TYPE_CHECKING:  # pragma: no cover
    from .topology import Network

ReceiveFn = Callable[[Packet], None]


class HostPort:
    """A host's attachment point: one access link to one server."""

    def __init__(
        self,
        sim: Simulator,
        host_id: HostId,
        server_name: str,
        access_link: Link,
        network: "Network",
    ) -> None:
        self.sim = sim
        self.host_id = host_id
        self.server_name = server_name
        self.access_link = access_link
        self.network = network
        self._on_receive: Optional[ReceiveFn] = None

    def set_receiver(self, callback: ReceiveFn) -> None:
        """Register the application callback for inbound packets."""
        self._on_receive = callback

    def local_time(self) -> float:
        """This host's wall-clock reading (true time if clocks are ideal)."""
        return self.network.local_time(self.host_id)

    # -- sending ----------------------------------------------------------

    def send(self, dst: HostId, payload: Payload) -> None:
        """Hand one individually addressed message to the server.

        This is fire-and-forget: the network gives no delivery feedback
        of any kind.  Sending to oneself is a programming error.
        """
        if dst == self.host_id:
            raise ValueError(f"host {self.host_id} cannot send to itself")
        packet = Packet(src=self.host_id, dst=dst, payload=payload,
                        sent_at=self.sim.now,
                        stamped_at=self.network.local_time(self.host_id))
        self.sim.trace.emit("net.host_send", str(self.host_id), dst=str(dst),
                            payload_kind=packet.kind, packet=packet.packet_id)
        self.sim.metrics.counter("net.h2h.sent").inc()
        self.sim.metrics.counter(f"net.h2h.sent.kind.{packet.kind}").inc()
        server = self.network.servers[self.server_name]
        self.access_link.transmit(packet, str(self.host_id), server.receive)

    # -- receiving ----------------------------------------------------------

    def deliver_from_network(self, packet: Packet) -> None:
        """Called by the access link when a packet reaches this host."""
        self.sim.trace.emit("net.host_recv", str(self.host_id), src=str(packet.src),
                            payload_kind=packet.kind, cost_bit=packet.cost_bit,
                            packet=packet.packet_id)
        metrics = self.sim.metrics
        metrics.counter("net.h2h.recv").inc()
        metrics.counter(f"net.h2h.recv.kind.{packet.kind}").inc()
        if packet.cost_bit:
            metrics.counter("net.h2h.recv.expensive").inc()
            metrics.counter(f"net.h2h.recv.expensive.kind.{packet.kind}").inc()
        metrics.histogram("net.h2h.delay").observe(self.sim.now - packet.sent_at)
        if self._on_receive is not None:
            self._on_receive(packet)
