"""The network: servers, hosts, links, and topology queries.

:class:`Network` is the container that wires servers, host ports, and
links together, owns the routing engine, and answers the topology
questions the *oracle* layers need (true clusters, reachability).  The
protocol under test never calls those oracle queries — hosts only see
their :class:`repro.net.hostiface.HostPort`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..sim import Simulator
from .addressing import HostId, LinkId
from .clocks import ClockModel
from .hostiface import HostPort
from .link import Link, LinkSpec, cheap_spec
from .routing import GlobalRoutingEngine, RoutingEngine
from .server import Server


class Network:
    """A simulated point-to-point network with nonprogrammable servers."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.servers: Dict[str, Server] = {}
        self.links: Dict[LinkId, Link] = {}
        self._ports: Dict[HostId, HostPort] = {}
        self._host_server: Dict[HostId, str] = {}
        self.routing: RoutingEngine = _NullRouting()
        #: optional per-host clock skew model (None = perfect clocks)
        self.clocks: Optional[ClockModel] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_server(self, name: str) -> Server:
        """Create a server node; names must be unique across the network."""
        if name in self.servers:
            raise ValueError(f"server {name} already exists")
        if HostId(name) in self._ports:
            raise ValueError(f"name {name} already used by a host")
        server = Server(self.sim, name, self)
        self.servers[name] = server
        return server

    def connect(self, a: str, b: str, spec: Optional[LinkSpec] = None) -> Link:
        """Create a bidirectional trunk link between servers ``a`` and ``b``."""
        for name in (a, b):
            if name not in self.servers:
                raise ValueError(f"unknown server {name}")
        link_id = LinkId.of(a, b)
        if link_id in self.links:
            raise ValueError(f"link {link_id} already exists")
        link = Link(self.sim, link_id, spec or cheap_spec())
        self.links[link_id] = link
        self.servers[a].add_trunk(b, link)
        self.servers[b].add_trunk(a, link)
        return link

    def add_host(
        self,
        host_id: HostId,
        server_name: str,
        access_spec: Optional[LinkSpec] = None,
    ) -> HostPort:
        """Attach a host to a server over an access link (cheap by default)."""
        if host_id in self._ports:
            raise ValueError(f"host {host_id} already exists")
        if server_name not in self.servers:
            raise ValueError(f"unknown server {server_name}")
        if str(host_id) in self.servers:
            raise ValueError(f"name {host_id} already used by a server")
        link_id = LinkId.of(str(host_id), server_name)
        link = Link(self.sim, link_id, access_spec or cheap_spec())
        self.links[link_id] = link
        port = HostPort(self.sim, host_id, server_name, link, self)
        self._ports[host_id] = port
        self._host_server[host_id] = server_name
        self.servers[server_name].attach_host(host_id, link)
        return port

    def use_routing(self, engine: RoutingEngine) -> None:
        """Install the routing engine (after all servers/links exist)."""
        self.routing = engine

    def use_clocks(self, model: ClockModel) -> "ClockModel":
        """Install a host clock-skew model; returns it for chaining."""
        self.clocks = model
        return model

    def local_time(self, host_id: HostId) -> float:
        """What ``host_id``'s wall clock reads (true time if no model)."""
        if self.clocks is None:
            return self.sim.now
        return self.clocks.local_time(host_id)

    def use_global_routing(self, convergence_delay: float = 0.5, **kwargs) -> GlobalRoutingEngine:
        """Install the default global shortest-path engine."""
        engine = GlobalRoutingEngine(self.sim, self, convergence_delay, **kwargs)
        self.routing = engine
        return engine

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def host_port(self, host_id: HostId) -> HostPort:
        """The port object of ``host_id``."""
        return self._ports[host_id]

    def server_of(self, host_id: HostId) -> Optional[str]:
        """Name of the server ``host_id`` attaches to (None if unknown)."""
        return self._host_server.get(host_id)

    def hosts(self) -> List[HostId]:
        """All host ids, sorted."""
        return sorted(self._ports)

    def server_names(self) -> List[str]:
        """All server names, sorted."""
        return sorted(self.servers)

    def link(self, a: str, b: str) -> Link:
        """The link between nodes ``a`` and ``b``."""
        return self.links[LinkId.of(a, b)]

    def access_link(self, host_id: HostId) -> Link:
        """The access link attaching ``host_id`` to its server."""
        return self._ports[host_id].access_link

    # ------------------------------------------------------------------
    # Failure injection entry points
    # ------------------------------------------------------------------

    def set_link_state(self, a: str, b: str, up: bool) -> None:
        """Fail or repair the link between nodes ``a`` and ``b``."""
        link = self.link(a, b)
        if up:
            link.set_up()
        else:
            link.set_down()
        self.routing.on_topology_change()

    def set_server_state(self, name: str, up: bool) -> None:
        """Crash or repair a whole server (paper §3: "a cluster leader
        (or its server) may fail").

        A down server discards every packet it would have forwarded or
        delivered; its links also go down so adjacent servers' traffic
        is lost in flight, exactly as with a powered-off switch.  The
        failure is, as always, undetected by the application.
        """
        server = self.servers[name]
        if server.up == up:
            return
        server.up = up
        for link in self.links.values():
            if name in (link.link_id.a, link.link_id.b):
                other = link.other_end(name)
                # A link is up only when both its endpoint servers are.
                other_up = (self.servers[other].up
                            if other in self.servers else True)
                if up and other_up:
                    link.set_up()
                else:
                    link.set_down()
        self.routing.on_topology_change()
        self.sim.trace.emit("server.state", name, up=up)

    # ------------------------------------------------------------------
    # Topology queries (oracle / routing support)
    # ------------------------------------------------------------------

    def server_adjacency(self) -> Dict[str, Dict[str, Tuple[float, bool]]]:
        """Up trunk links as ``server -> neighbor -> (latency, expensive)``."""
        adjacency: Dict[str, Dict[str, Tuple[float, bool]]] = {
            name: {} for name in self.servers
        }
        for link in self.links.values():
            a, b = link.link_id.a, link.link_id.b
            if not link.up or a not in self.servers or b not in self.servers:
                continue
            if not (self.servers[a].up and self.servers[b].up):
                continue
            weight = (link.spec.latency, link.spec.expensive)
            adjacency[a][b] = weight
            adjacency[b][a] = weight
        return adjacency

    def _node_components(self, link_filter: Callable[[Link], bool]) -> Dict[str, int]:
        """Connected components over nodes, using links passing ``link_filter``."""
        parent: Dict[str, str] = {}

        def find(x: str) -> str:
            root = x
            while parent.setdefault(root, root) != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        def union(x: str, y: str) -> None:
            parent[find(x)] = find(y)

        for name in self.servers:
            find(name)
        for host_id in self._ports:
            find(str(host_id))
        for link in self.links.values():
            if link_filter(link):
                union(link.link_id.a, link.link_id.b)
        roots = {}
        labels: Dict[str, int] = {}
        for node in sorted(parent):
            root = find(node)
            labels[node] = roots.setdefault(root, len(roots))
        return labels

    def true_clusters(self) -> List[Set[HostId]]:
        """The real clusters: hosts mutually reachable over *cheap up* links.

        This is ground truth used by verification oracles and by the
        "static cluster knowledge" protocol mode — the protocol's normal
        mode never reads it.
        """
        labels = self._node_components(
            lambda link: link.up and not link.spec.expensive)
        groups: Dict[int, Set[HostId]] = {}
        for host_id in self._ports:
            groups.setdefault(labels[str(host_id)], set()).add(host_id)
        return sorted(groups.values(), key=lambda grp: sorted(grp)[0])

    def cluster_of(self, host_id: HostId) -> Set[HostId]:
        """The true cluster containing ``host_id``."""
        for cluster in self.true_clusters():
            if host_id in cluster:
                return cluster
        raise KeyError(host_id)

    def reachable(self, a: HostId, b: HostId) -> bool:
        """True when a path of up links (any class) connects hosts a and b."""
        labels = self._node_components(lambda link: link.up)
        return labels[str(a)] == labels[str(b)]

    def partitions(self) -> List[Set[HostId]]:
        """Groups of hosts mutually reachable over up links of any class."""
        labels = self._node_components(lambda link: link.up)
        groups: Dict[int, Set[HostId]] = {}
        for host_id in self._ports:
            groups.setdefault(labels[str(host_id)], set()).add(host_id)
        return sorted(groups.values(), key=lambda grp: sorted(grp)[0])


class _NullRouting(RoutingEngine):
    """Placeholder before an engine is installed: drops everything."""

    def next_hop(self, at_server: str, dst_server: str) -> Optional[str]:
        return None

    def on_topology_change(self) -> None:
        pass
