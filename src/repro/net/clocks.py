"""Host clock models: offset and drift relative to simulated true time.

The paper's host-level cost-bit mechanism ("timestamp each message at
the time it is sent out", Section 2) implicitly assumes comparable
clocks.  Real hosts disagree: a constant offset shifts every transit
estimate for messages from that host, and drift makes the shift grow.

:class:`ClockModel` assigns each host an offset and a drift rate; the
host interface stamps outgoing messages with the *local* clock when a
model is installed, so transit estimates at receivers become

    (true_arrival + offset_recv) - (true_send + offset_send)
    = true_transit + (offset_recv - offset_send)

— exactly the error a deployed system would see.  The per-sender
variant of the transit classifier
(:class:`repro.core.costinfer.PerSenderTransitClassifier`) is built to
survive this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sim import Simulator
from .addressing import HostId


@dataclass(frozen=True)
class ClockSpec:
    """One host's clock error: ``local = true + offset + drift * true``."""

    offset: float = 0.0
    drift: float = 0.0  # seconds of error per second of true time


class ClockModel:
    """Per-host local clocks over the simulator's true time."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._specs: Dict[HostId, ClockSpec] = {}

    def set_clock(self, host: HostId, offset: float = 0.0,
                  drift: float = 0.0) -> "ClockModel":
        """Assign one host's clock offset and drift."""
        self._specs[host] = ClockSpec(offset=offset, drift=drift)
        return self

    def randomize(self, hosts, max_offset: float = 0.5,
                  max_drift: float = 0.0,
                  rng_stream: str = "clocks") -> "ClockModel":
        """Uniform random offsets (and optional drifts) for many hosts."""
        rng = self.sim.rng.stream(rng_stream)
        for host in hosts:
            self.set_clock(host,
                           offset=rng.uniform(-max_offset, max_offset),
                           drift=rng.uniform(-max_drift, max_drift)
                           if max_drift else 0.0)
        return self

    def local_time(self, host: HostId) -> float:
        """What ``host``'s wall clock reads right now."""
        spec = self._specs.get(host)
        true_now = self.sim.now
        if spec is None:
            return true_now
        return true_now + spec.offset + spec.drift * true_now

    def offset_between(self, a: HostId, b: HostId) -> float:
        """Current clock disagreement ``local(a) - local(b)``."""
        return self.local_time(a) - self.local_time(b)
