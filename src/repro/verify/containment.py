"""Per-invariant containment classification under adversarial hosts.

The checkers in :mod:`repro.verify.invariants` answer "does the
invariant hold?" — all-or-nothing, which is the right question when
every host is correct.  Under k misbehaving hosts
(:mod:`repro.chaos.adversary`) the interesting question is *where the
damage stops*, in the spirit of the locally-bounded Byzantine model
(Bonomi/Farina/Tixeuil): an invariant may

* ``holds_globally`` — no violation anywhere, adversaries included;
* ``holds_correct_only`` — every observed violation involves at least
  one adversary host, so the damage is **contained**: the sub-system of
  correct hosts still satisfies the invariant;
* ``broken`` — some violation involves only correct hosts: the
  adversary corrupted state *beyond* itself, which is the outcome the
  paper's host-carried-obligations architecture must prevent.

Attribution is structural, not textual: each violation is a tuple of
the host names it touches (the same keying the
:class:`~repro.verify.monitor.InvariantMonitor` uses for its
:class:`~repro.verify.monitor.ViolationSpan` keys), and a violation is
contained iff its host set intersects the adversary set.

Like all of :mod:`repro.verify`, this is an oracle: it reads ground
truth (real INFO sets, real parent pointers, real delivery logs) that
no protocol host — honest or not — can see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..core.engine import BroadcastSystem
from .invariants import find_parent_cycles
from .monitor import ViolationSpan

#: classification outcomes, ordered from best to worst
CONTAINMENT_STATUSES: Tuple[str, ...] = (
    "holds_globally", "holds_correct_only", "broken")


@dataclass(frozen=True)
class InvariantContainment:
    """One invariant's fate under the run's adversaries."""

    invariant: str
    status: str
    #: each violation as the tuple of host names it involves
    violations: Tuple[Tuple[str, ...], ...] = ()

    @property
    def contained(self) -> bool:
        """True unless damage reached hosts beyond the adversaries."""
        return self.status != "broken"


def _classify(invariant: str,
              violations: Sequence[Tuple[str, ...]],
              adversaries: FrozenSet[str]) -> InvariantContainment:
    if not violations:
        return InvariantContainment(invariant, "holds_globally")
    contained = all(any(h in adversaries for h in hosts)
                    for hosts in violations)
    return InvariantContainment(
        invariant, "holds_correct_only" if contained else "broken",
        tuple(violations))


# ----------------------------------------------------------------------
# Structural (host-attributed) violation extraction
# ----------------------------------------------------------------------


def _harmful_cycle_violations(system: BroadcastSystem) -> List[Tuple[str, ...]]:
    out = []
    for cycle in find_parent_cycles(system):
        cycle_max = max(system.hosts[h].info.max_seqno for h in cycle)
        harmful = any(
            system.hosts[other].info.max_seqno > cycle_max
            and any(system.network.reachable(member, other)
                    for member in cycle)
            for other in system.built.hosts if other not in cycle)
        if harmful:
            out.append(tuple(sorted(str(h) for h in cycle)))
    return out


def _info_dominance_violations(system: BroadcastSystem) -> List[Tuple[str, ...]]:
    out = []
    for child_id, parent_id in system.parent_edges().items():
        if parent_id is None or parent_id not in system.hosts:
            continue
        if (system.hosts[child_id].info.max_seqno
                > system.hosts[parent_id].info.max_seqno):
            out.append((str(child_id), str(parent_id)))
    return out


def _leadership_violations(system: BroadcastSystem) -> List[Tuple[str, ...]]:
    from .invariants import true_leaders

    out = []
    for _idx, leaders in true_leaders(system).items():
        if len(leaders) != 1:
            out.append(tuple(sorted(str(h) for h in leaders)))
    return out


def _children_violations(system: BroadcastSystem) -> List[Tuple[str, ...]]:
    out = []
    for child_id, parent_id in system.parent_edges().items():
        if parent_id is None or parent_id not in system.hosts:
            continue
        if child_id not in system.hosts[parent_id].children:
            out.append((str(child_id), str(parent_id)))
    return out


def classify_containment(
    system: BroadcastSystem,
    adversaries: Iterable[str],
    quiescent: bool = False,
    n: Optional[int] = None,
) -> Tuple[InvariantContainment, ...]:
    """Classify every applicable §4.3 invariant on the live system.

    ``quiescent`` adds the structure invariants that only make sense at
    rest (leadership, CHILDREN consistency); ``n`` adds ``delivery``
    (every host delivered 1..n — the reliability claim itself, framed
    as an invariant so its containment is reported alongside).
    """
    adv = frozenset(str(a) for a in adversaries)
    results = [
        _classify("no_harmful_cycles",
                  _harmful_cycle_violations(system), adv),
        _classify("info_dominance",
                  _info_dominance_violations(system), adv),
    ]
    if quiescent:
        results.append(_classify("single_leader_per_cluster",
                                 _leadership_violations(system), adv))
        results.append(_classify("children_consistency",
                                 _children_violations(system), adv))
    if n is not None:
        missing = [(str(h),) for h in system.built.hosts
                   if not system.hosts[h].deliveries.has_all(n)]
        results.append(_classify("delivery", missing, adv))
    return tuple(results)


# ----------------------------------------------------------------------
# Monitor-span attribution (online observations, not just end state)
# ----------------------------------------------------------------------


def span_hosts(span: ViolationSpan) -> Tuple[str, ...]:
    """The host names a monitor violation span involves (its key minus
    the leading invariant kind)."""
    return tuple(span.key[1:])


def classify_spans(
    spans: Iterable[ViolationSpan],
    adversaries: Iterable[str],
    stable_only: bool = True,
) -> Tuple[InvariantContainment, ...]:
    """Classify an :class:`~repro.verify.monitor.InvariantMonitor`'s
    observed violation spans by invariant kind.

    With ``stable_only`` (the default) transient spans — expected
    mid-recovery wobble — are ignored; a span that was still active
    when monitoring stopped counts regardless of duration.  Kinds with
    no surviving span report ``holds_globally``.
    """
    adv = frozenset(str(a) for a in adversaries)
    by_kind: Dict[str, List[Tuple[str, ...]]] = {
        "harmful_cycle": [], "info_dominance": []}
    for span in spans:
        if stable_only and not (span.stable or span.unresolved_at_end):
            continue
        by_kind.setdefault(span.key[0], []).append(span_hosts(span))
    return tuple(_classify(kind, violations, adv)
                 for kind, violations in sorted(by_kind.items()))


def worst_status(results: Iterable[InvariantContainment]) -> str:
    """The most pessimistic status across ``results`` (empty input is
    vacuously ``holds_globally``)."""
    worst = 0
    for result in results:
        worst = max(worst, CONTAINMENT_STATUSES.index(result.status))
    return CONTAINMENT_STATUSES[worst]
