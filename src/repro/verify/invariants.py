"""Invariant checkers (verification oracles) over a running system.

These read protocol *and* ground-truth network state — they are test
oracles, never used by the protocol itself.  Each check returns a list
of human-readable violations (empty = invariant holds), so tests can
assert emptiness and print the reasons on failure.

The invariants come from Section 4.3:

* no *stable* cycle in the host parent graph unless the cycle's hosts
  are partitioned away from everyone with newer messages;
* a host's INFO maximum never exceeds its parent's (hosts accept
  new-maximum data only from their parent);
* at quiescence, each true cluster has exactly one leader and the host
  parent graph induces a cluster tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..core.engine import BroadcastSystem
from ..net import HostId


def find_parent_cycles(system: BroadcastSystem) -> List[List[HostId]]:
    """All distinct cycles in the current host parent graph."""
    parents = system.parent_edges()
    cycles: List[List[HostId]] = []
    seen_cycle_members: Set[HostId] = set()
    for start in sorted(parents):
        if start in seen_cycle_members:
            continue
        walk: List[HostId] = []
        positions: Dict[HostId, int] = {}
        current: Optional[HostId] = start
        while current is not None and current not in seen_cycle_members:
            if current in positions:
                cycle = walk[positions[current]:]
                cycles.append(cycle)
                seen_cycle_members.update(cycle)
                break
            positions[current] = len(walk)
            walk.append(current)
            current = parents.get(current)
    return cycles


def check_no_harmful_cycles(system: BroadcastSystem) -> List[str]:
    """Cycles are only tolerable while their members are partitioned
    away from every host with a larger INFO set (Section 4.3)."""
    violations = []
    for cycle in find_parent_cycles(system):
        cycle_max = max(system.hosts[h].info.max_seqno for h in cycle)
        for other in system.built.hosts:
            if other in cycle:
                continue
            if system.hosts[other].info.max_seqno <= cycle_max:
                continue
            if any(system.network.reachable(member, other) for member in cycle):
                violations.append(
                    f"cycle {[str(h) for h in cycle]} persists although "
                    f"{other} is reachable with a larger INFO set")
                break
    return violations


def check_info_dominance(system: BroadcastSystem) -> List[str]:
    """A child's INFO maximum never exceeds its parent's."""
    violations = []
    for child_id, parent_id in system.parent_edges().items():
        if parent_id is None or parent_id not in system.hosts:
            continue
        child_max = system.hosts[child_id].info.max_seqno
        parent_max = system.hosts[parent_id].info.max_seqno
        if child_max > parent_max:
            violations.append(
                f"{child_id} (max {child_max}) exceeds its parent "
                f"{parent_id} (max {parent_max})")
    return violations


def true_leaders(system: BroadcastSystem) -> Dict[int, List[HostId]]:
    """Leaders per ground-truth cluster (parent None or outside it)."""
    clusters = system.network.true_clusters()
    parents = system.parent_edges()
    out: Dict[int, List[HostId]] = {}
    for idx, cluster in enumerate(clusters):
        leaders = [h for h in sorted(cluster)
                   if parents.get(h) is None or parents[h] not in cluster]
        out[idx] = leaders
    return out


def check_single_leader_per_cluster(system: BroadcastSystem) -> List[str]:
    """At quiescence every true cluster has exactly one leader."""
    violations = []
    for idx, leaders in true_leaders(system).items():
        if len(leaders) != 1:
            violations.append(
                f"cluster {idx} has {len(leaders)} leaders: "
                f"{[str(h) for h in leaders]}")
    return violations


def check_is_tree_rooted_at_source(system: BroadcastSystem) -> List[str]:
    """Every host reaches the source by following parent pointers."""
    violations = []
    parents = system.parent_edges()
    source = system.source_id
    if parents[source] is not None:
        violations.append(f"source {source} has a parent: {parents[source]}")
    for host_id in system.built.hosts:
        if host_id == source:
            continue
        current: Optional[HostId] = host_id
        hops = 0
        limit = len(system.built.hosts) + 1
        while current is not None and current != source and hops <= limit:
            current = parents.get(current)
            hops += 1
        if current != source:
            violations.append(f"{host_id} does not reach the source "
                              f"via parent pointers")
    return violations


def check_induces_cluster_tree(system: BroadcastSystem) -> List[str]:
    """The Section 4.1 predicate: H is a tree, and in every cluster all
    non-leader members are children of the cluster's single leader."""
    violations = check_is_tree_rooted_at_source(system)
    violations.extend(check_single_leader_per_cluster(system))
    parents = system.parent_edges()
    for cluster in system.network.true_clusters():
        leaders = [h for h in sorted(cluster)
                   if parents.get(h) is None or parents[h] not in cluster]
        if len(leaders) != 1:
            continue  # already reported
        leader = leaders[0]
        for member in sorted(cluster):
            if member != leader and parents.get(member) != leader:
                violations.append(
                    f"{member} is in {leader}'s cluster but its parent is "
                    f"{parents.get(member)}")
    return violations


def check_children_consistency(system: BroadcastSystem) -> List[str]:
    """Every parent pointer is mirrored by a CHILDREN entry (quiescent)."""
    violations = []
    for child_id, parent_id in system.parent_edges().items():
        if parent_id is None or parent_id not in system.hosts:
            continue
        if child_id not in system.hosts[parent_id].children:
            violations.append(
                f"{parent_id} does not list {child_id} as a child")
    return violations


def check_all(system: BroadcastSystem, quiescent: bool = False) -> List[str]:
    """Run every applicable invariant; quiescent adds structure checks."""
    violations = []
    violations.extend(check_no_harmful_cycles(system))
    violations.extend(check_info_dominance(system))
    if quiescent:
        violations.extend(check_induces_cluster_tree(system))
        violations.extend(check_children_consistency(system))
    return violations
