"""Online invariant monitoring: sample §4.3 invariants *during* a run.

The checkers in :mod:`repro.verify.invariants` are end-of-run oracles.
Under chaos they are too blunt: a violation that appears while a host
is mid-recovery and disappears two samples later is expected transient
behaviour, while one that persists after the network heals is a real
protocol bug.  :class:`InvariantMonitor` samples the safety invariants
(harmful parent cycles, INFO dominance) every ``sample_period``, keys
each violation structurally (host ids, not message strings whose
embedded maxima change every tick), and tracks how long each one has
been continuously present.  A violation is **stable** once its streak
reaches ``stable_window``; everything shorter is transient.

The monitor also watches ``host.recovery_delivery`` trace events so a
chaos run's report carries per-host recovery times (crash → first
post-recovery delivery) without re-scanning the trace.

Backend-agnostic since the sans-IO port: the monitor speaks the
:class:`~repro.io.interfaces.Runtime` contract (``start_periodic`` /
``now`` / ``trace`` plus the ``trace_sink`` record stream both backends
expose), so the same oracle samples a simulated
:class:`~repro.core.engine.BroadcastSystem` and a live
:class:`~repro.io.node.UdpBroadcastSystem` — on the latter, sampling
runs in scaled wall-clock time and all span durations are protocol
seconds.  Systems without a ground-truth network object (real UDP has
no omniscient reachability) treat every pair as reachable, which only
makes the harmful-cycle check *stricter*.

Like all of :mod:`repro.verify`, this is an oracle: it reads ground
truth the protocol never sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..io.interfaces import Runtime, as_runtime
from .invariants import find_parent_cycles

#: structural violation key: ("harmful_cycle", h1, h2, ...) or
#: ("info_dominance", child, parent)
ViolationKey = Tuple[str, ...]


@dataclass(frozen=True)
class ViolationSpan:
    """One continuous stretch during which a violation was observed."""

    key: ViolationKey
    first_seen: float
    last_seen: float
    stable: bool
    #: the streak was still active when the monitor stopped (or the
    #: report was taken) — the violation was never observed to resolve
    unresolved_at_end: bool = False

    @property
    def duration(self) -> float:
        return self.last_seen - self.first_seen


@dataclass(frozen=True)
class MonitorReport:
    """Everything an :class:`InvariantMonitor` observed."""

    samples: int
    spans: Tuple[ViolationSpan, ...]
    #: (host, recovery seconds) per observed post-recovery first delivery
    recoveries: Tuple[Tuple[str, float], ...]

    @property
    def stable_violations(self) -> Tuple[ViolationSpan, ...]:
        """Violations that persisted for at least the stable window."""
        return tuple(s for s in self.spans if s.stable)

    @property
    def transient_violations(self) -> Tuple[ViolationSpan, ...]:
        return tuple(s for s in self.spans if not s.stable)

    @property
    def unresolved_violations(self) -> Tuple[ViolationSpan, ...]:
        """Violations still active when monitoring ended (any duration)."""
        return tuple(s for s in self.spans if s.unresolved_at_end)

    @property
    def clean(self) -> bool:
        """True when no violation ever became stable."""
        return not self.stable_violations

    def recovery_times(self) -> List[float]:
        return [seconds for _, seconds in self.recoveries]


class InvariantMonitor:
    """Periodically samples safety invariants over a live system.

    ``system`` is duck-typed: anything exposing ``hosts`` (id → host),
    ``parent_edges()``, and either a ``sim`` (simulator backend) or a
    ``runtime`` (:class:`~repro.io.interfaces.Runtime`) attribute works
    — both :class:`~repro.core.engine.BroadcastSystem` and
    :class:`~repro.io.node.UdpBroadcastSystem` qualify.
    """

    def __init__(
        self,
        system: Any,
        sample_period: float = 1.0,
        stable_window: float = 20.0,
    ) -> None:
        if sample_period <= 0 or stable_window <= 0:
            raise ValueError("sample_period and stable_window must be positive")
        self.system = system
        backend = getattr(system, "sim", None)
        if backend is None:
            backend = system.runtime
        self.runtime: Runtime = as_runtime(backend)
        self.sample_period = sample_period
        self.stable_window = stable_window
        self._samples = 0
        #: key -> first_seen time of the *current* streak
        self._active: Dict[ViolationKey, float] = {}
        #: closed streaks
        self._spans: List[ViolationSpan] = []
        self._recoveries: List[Tuple[str, float]] = []
        self._trace_cursor = 0
        self._task = self.runtime.start_periodic(
            sample_period, self._sample,
            rng_stream="verify.monitor", name="invariant_monitor")

    def start(self) -> "InvariantMonitor":
        """Start periodic activity; returns self for chaining."""
        self._task.start()
        return self

    def stop(self) -> None:
        """Stop periodic activity; safe to call more than once.

        Streaks still open when the monitor stops are closed as explicit
        ``unresolved_at_end`` spans rather than silently dropped — a
        violation active at run end is the *most* interesting kind, and
        downstream properties (the fuzzer's, chiefly) must not miss it
        just because no later sample saw it disappear.
        """
        self._task.stop()
        now = self.runtime.now()
        for key in list(self._active):
            first = self._active.pop(key)
            self._spans.append(ViolationSpan(
                key=key, first_seen=first, last_seen=now,
                stable=(now - first) >= self.stable_window,
                unresolved_at_end=True))

    # ------------------------------------------------------------------

    def _members(self) -> List:
        """All member host ids, on any system flavor."""
        built = getattr(self.system, "built", None)
        if built is not None:
            return list(built.hosts)
        return list(self.system.hosts)

    def _reachable(self, a, b) -> bool:
        """Ground-truth reachability when the backend knows it.

        Real deployments have no omniscient network object; assuming
        reachability there only widens the set of hosts a cycle is
        compared against, i.e. makes the harmful-cycle check stricter.
        """
        network = getattr(self.system, "network", None)
        if network is None:
            return True
        return bool(network.reachable(a, b))

    def _current_violations(self) -> List[ViolationKey]:
        system = self.system
        keys: List[ViolationKey] = []
        for cycle in find_parent_cycles(system):
            cycle_max = max(system.hosts[h].info.max_seqno for h in cycle)
            harmful = any(
                system.hosts[other].info.max_seqno > cycle_max
                and any(self._reachable(member, other) for member in cycle)
                for other in self._members() if other not in cycle)
            if harmful:
                keys.append(("harmful_cycle",
                             *sorted(str(h) for h in cycle)))
        for child_id, parent_id in system.parent_edges().items():
            if parent_id is None or parent_id not in system.hosts:
                continue
            if (system.hosts[child_id].info.max_seqno
                    > system.hosts[parent_id].info.max_seqno):
                keys.append(("info_dominance", str(child_id), str(parent_id)))
        return keys

    def _sample(self) -> None:
        now = self.runtime.now()
        self._samples += 1
        current = set(self._current_violations())
        for key in current:
            if key not in self._active:
                self._active[key] = now
                self.runtime.trace("monitor.violation", "monitor",
                                   key="/".join(key))
        for key in [k for k in self._active if k not in current]:
            self._close(key, ended=now)
        self._drain_recoveries()

    def _close(self, key: ViolationKey, ended: float) -> None:
        first = self._active.pop(key)
        # Streak length counts the last sample it was still present, one
        # period before the sample that saw it gone (or the stop time).
        last = max(first, ended - self.sample_period)
        self._spans.append(ViolationSpan(
            key=key, first_seen=first, last_seen=last,
            stable=(last - first) >= self.stable_window))

    def _drain_recoveries(self) -> None:
        records = self.runtime.trace_sink.records(
            kind="host.recovery_delivery")
        for record in records[self._trace_cursor:]:
            self._recoveries.append(
                (record.source, record.fields["elapsed"]))
        self._trace_cursor = len(records)

    # ------------------------------------------------------------------

    def report(self) -> MonitorReport:
        """Close open streaks against the current clock and report."""
        self._drain_recoveries()
        now = self.runtime.now()
        spans = list(self._spans)
        for key, first in self._active.items():
            spans.append(ViolationSpan(
                key=key, first_seen=first, last_seen=now,
                stable=(now - first) >= self.stable_window,
                unresolved_at_end=True))
        return MonitorReport(
            samples=self._samples,
            spans=tuple(sorted(spans, key=lambda s: (s.first_seen, s.key))),
            recoveries=tuple(self._recoveries))
