"""Relative reliability: did the protocol use its opportunities?

The paper (Section 1) defines reliability *relatively*: "the degree to
which [a protocol] is capable of utilizing communication opportunities
presented by the dynamically changing network."  No protocol can
deliver to a host that was never reachable; a good one delivers to
every host that was reachable-from-a-holder long enough.

:class:`OpportunityAuditor` operationalizes that.  While a simulation
runs, it samples the network every ``sample_period`` and accumulates,
for every (host, seq) pair, the total time during which the host was
connected (over up links, any class) to *some* host already holding
that message.  At the end:

* a pair is **obligated** if its accumulated opportunity reached
  ``required_window`` (the "sufficiently long interval" of the paper's
  transitivity assumption — long enough for routing to converge and an
  exchange round to happen);
* **relative reliability** = delivered obligated pairs / obligated
  pairs.

A protocol can score 1.0 even when absolute delivery is far below 1.0
— e.g. when the network stays partitioned — which is exactly the
paper's point.

The auditor is an oracle: it reads ground-truth reachability and every
host's INFO set, and the protocol never sees it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..core.engine import BroadcastSystem
from ..net import HostId
from ..sim import PeriodicTask


@dataclass(frozen=True)
class ReliabilityReport:
    """Outcome of an opportunity audit."""

    total_pairs: int
    obligated_pairs: int
    delivered_obligated: int
    delivered_total: int
    #: obligated pairs that were NOT delivered: the protocol's misses
    missed: Tuple[Tuple[str, int], ...]

    @property
    def relative_reliability(self) -> float:
        """Delivered obligated pairs / obligated pairs."""
        if self.obligated_pairs == 0:
            return float("nan")
        return self.delivered_obligated / self.obligated_pairs

    @property
    def absolute_delivery(self) -> float:
        """Delivered pairs / all pairs."""
        if self.total_pairs == 0:
            return float("nan")
        return self.delivered_total / self.total_pairs


class OpportunityAuditor:
    """Samples connectivity-to-holders while a simulation runs."""

    def __init__(
        self,
        system: BroadcastSystem,
        sample_period: float = 1.0,
        required_window: float = 10.0,
    ) -> None:
        if sample_period <= 0 or required_window <= 0:
            raise ValueError("sample_period and required_window must be positive")
        self.system = system
        self.sample_period = sample_period
        self.required_window = required_window
        #: accumulated opportunity seconds per (host, seq)
        self._opportunity: Dict[Tuple[HostId, int], float] = {}
        self._task = PeriodicTask(
            system.sim, sample_period, self._sample,
            rng_stream="verify.opportunity", name="opportunity_audit")

    def start(self) -> "OpportunityAuditor":
        """Start periodic activity; returns self for chaining."""
        self._task.start()
        return self

    def stop(self) -> None:
        """Stop periodic activity; safe to call more than once."""
        self._task.stop()

    # ------------------------------------------------------------------

    def _sample(self) -> None:
        system = self.system
        issued = system.source.info.max_seqno
        if issued == 0:
            return
        # Partition components over up links (one ground-truth query).
        components = system.network.partitions()
        component_of: Dict[HostId, int] = {}
        for idx, component in enumerate(components):
            for host_id in component:
                component_of[host_id] = idx
        # Which components contain a holder of each pending seq?
        holder_components: Dict[int, Set[int]] = {}
        for host_id, host in system.hosts.items():
            info = host.info
            comp = component_of[host_id]
            for seq in range(1, issued + 1):
                if seq in info:
                    holder_components.setdefault(seq, set()).add(comp)
        for host_id, host in system.hosts.items():
            comp = component_of[host_id]
            for seq in range(1, issued + 1):
                if seq in host.info:
                    continue  # already delivered; no obligation accrues
                if comp in holder_components.get(seq, ()):
                    key = (host_id, seq)
                    self._opportunity[key] = (
                        self._opportunity.get(key, 0.0) + self.sample_period)

    # ------------------------------------------------------------------

    def report(self) -> ReliabilityReport:
        """Score the run so far."""
        system = self.system
        issued = system.source.info.max_seqno
        hosts = [h for h in system.built.hosts if h != system.source_id]
        total = len(hosts) * issued
        delivered_total = 0
        obligated = 0
        delivered_obligated = 0
        missed: List[Tuple[str, int]] = []
        for host_id in hosts:
            info = system.hosts[host_id].info
            for seq in range(1, issued + 1):
                has = seq in info
                delivered_total += has
                # Delivered pairs were obviously deliverable; undelivered
                # ones are obligated only if opportunity accumulated.
                if has:
                    obligated += 1
                    delivered_obligated += 1
                elif (self._opportunity.get((host_id, seq), 0.0)
                        >= self.required_window):
                    obligated += 1
                    missed.append((str(host_id), seq))
        return ReliabilityReport(
            total_pairs=total, obligated_pairs=obligated,
            delivered_obligated=delivered_obligated,
            delivered_total=delivered_total, missed=tuple(sorted(missed)))
