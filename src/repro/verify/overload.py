"""Overload oracle: graceful-degradation verdicts for saturation runs.

The §4.3 invariants say nothing about load; under open-loop overload
the interesting question is not "did an invariant break" but "did the
system *degrade or collapse*".  :class:`OverloadMonitor` samples the
ground truth the protocol never sees — every link direction's queue
depth and every host's message-store size — and classifies the run:

``stable``
    queues never left the noise floor and every admitted message was
    delivered;
``degraded_recovering``
    queues grew past :attr:`degrade_threshold` under load but drained
    back to baseline after the load window, and delivery of admitted
    messages still completed — the graceful-degradation outcome
    shedding and backpressure exist to buy;
``collapsed``
    admitted messages were still missing at the horizon, or queues
    never drained — the unbounded-growth failure mode.

The monitor also carries the **bounded-memory invariant**: offered
load below capacity ⇒ queue depths return to baseline once the load
stops (:attr:`OverloadReport.bounded_memory_ok`).

Like all of :mod:`repro.verify`, this is an oracle, not a protocol
component: it reads simulator ground truth and changes nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..net.link import endpoints
from ..net.topology import Network
from ..sim import PeriodicTask, Simulator

#: the three possible run classifications, mildest first
OVERLOAD_VERDICTS: Tuple[str, ...] = (
    "stable", "degraded_recovering", "collapsed")


@dataclass(frozen=True)
class OverloadSample:
    """One snapshot of system-wide buffering."""

    at: float
    #: packets queued or in flight across every link direction
    queue_depth: int
    #: largest per-host message-store size (0 when no system attached)
    max_store: int


@dataclass(frozen=True)
class OverloadReport:
    """Everything an :class:`OverloadMonitor` concluded about a run."""

    verdict: str
    #: every admitted message reached every (surviving) host in time
    delivered_ok: bool
    peak_queue: int
    final_queue: int
    peak_store: int
    final_store: int
    #: queues returned to baseline after the load window
    drained: bool
    #: when the offered load stopped (None: never told)
    load_ended_at: Optional[float]
    samples: Tuple[OverloadSample, ...]

    @property
    def bounded_memory_ok(self) -> bool:
        """The bounded-memory invariant: depth returned to baseline."""
        return self.drained

    @property
    def collapsed(self) -> bool:
        return self.verdict == "collapsed"


class OverloadMonitor:
    """Samples queue depths and store sizes; classifies the run.

    ``degrade_threshold`` separates ``stable`` from
    ``degraded_recovering``: peaks at or below it are treated as the
    ordinary jitter of a busy-but-keeping-up system.  ``drain_slack``
    is the baseline depth the network may legitimately hold at rest
    (periodic control chatter keeps a couple of packets in flight at
    any instant).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        system=None,
        sample_period: float = 1.0,
        degrade_threshold: int = 12,
        drain_slack: int = 6,
    ) -> None:
        if sample_period <= 0:
            raise ValueError("sample_period must be positive")
        if degrade_threshold < 1 or drain_slack < 1:
            raise ValueError("thresholds must be at least 1")
        self.sim = sim
        self.network = network
        self.system = system
        self.degrade_threshold = degrade_threshold
        self.drain_slack = drain_slack
        self._samples: List[OverloadSample] = []
        self._load_ended_at: Optional[float] = None
        self._task = PeriodicTask(sim, sample_period, self._sample,
                                  rng_stream="verify.overload",
                                  name="overload_monitor")

    def start(self) -> "OverloadMonitor":
        """Start periodic activity; returns self for chaining."""
        self._task.start()
        return self

    def stop(self) -> None:
        """Stop periodic activity; safe to call more than once."""
        self._task.stop()

    def note_load_end(self) -> None:
        """Record that the offered-load window just closed."""
        self._load_ended_at = self.sim.now

    # ------------------------------------------------------------------

    def _queue_depth(self) -> int:
        return sum(link.queue_length(node)
                   for link in self.network.links.values()
                   for node in endpoints(link))

    def _max_store(self) -> int:
        if self.system is None:
            return 0
        sizes = [len(store) for host in self.system.hosts.values()
                 if (store := getattr(host, "store", None)) is not None]
        return max(sizes, default=0)

    def _sample(self) -> None:
        self._samples.append(OverloadSample(
            at=self.sim.now, queue_depth=self._queue_depth(),
            max_store=self._max_store()))

    # ------------------------------------------------------------------

    def report(self, delivered_ok: bool) -> OverloadReport:
        """Classify the run.  ``delivered_ok``: every admitted message
        reached every surviving host within the caller's horizon."""
        final = OverloadSample(at=self.sim.now, queue_depth=self._queue_depth(),
                               max_store=self._max_store())
        samples = tuple(self._samples) + (final,)
        peak_queue = max(s.queue_depth for s in samples)
        peak_store = max(s.max_store for s in samples)
        drained = final.queue_depth <= self.drain_slack
        if not delivered_ok or not drained:
            verdict = "collapsed"
        elif peak_queue > self.degrade_threshold:
            verdict = "degraded_recovering"
        else:
            verdict = "stable"
        return OverloadReport(
            verdict=verdict, delivered_ok=delivered_ok,
            peak_queue=peak_queue, final_queue=final.queue_depth,
            peak_store=peak_store, final_store=final.max_store,
            drained=drained, load_ended_at=self._load_ended_at,
            samples=samples)
