"""Convergence driving: run a system until its structure stops moving."""

from __future__ import annotations

from typing import Optional

from ..core.engine import BroadcastSystem


def run_to_quiescence(
    system: BroadcastSystem,
    stable_window: float = 10.0,
    timeout: float = 300.0,
    check_period: float = 1.0,
) -> bool:
    """Run until the parent graph and delivery counts are unchanged for
    ``stable_window`` simulated seconds.  Returns False on timeout.

    Note this is *observed* stability: periodic protocol activity keeps
    running, but the structure has stopped changing.
    """
    if stable_window <= 0 or check_period <= 0:
        raise ValueError("stable_window and check_period must be positive")
    sim = system.sim
    deadline = sim.now + timeout
    last_state = None
    stable_since = sim.now
    while sim.now < deadline:
        state = (tuple(sorted((str(k), str(v)) for k, v in
                              system.parent_edges().items())),
                 tuple(sorted((str(k), v) for k, v in
                              system.delivered_counts().items())))
        if state != last_state:
            last_state = state
            stable_since = sim.now
        elif sim.now - stable_since >= stable_window:
            return True
        sim.run(until=min(sim.now + check_period, deadline))
    return False
