"""Verification oracles: invariants, containment, convergence driving."""

from .containment import (
    CONTAINMENT_STATUSES,
    InvariantContainment,
    classify_containment,
    classify_spans,
    span_hosts,
    worst_status,
)
from .invariants import (
    check_all,
    check_children_consistency,
    check_induces_cluster_tree,
    check_info_dominance,
    check_is_tree_rooted_at_source,
    check_no_harmful_cycles,
    check_single_leader_per_cluster,
    find_parent_cycles,
    true_leaders,
)
from .liveness import OpportunityAuditor, ReliabilityReport
from .monitor import InvariantMonitor, MonitorReport, ViolationSpan
from .oracle import run_to_quiescence
from .overload import (
    OVERLOAD_VERDICTS,
    OverloadMonitor,
    OverloadReport,
    OverloadSample,
)

__all__ = [
    "CONTAINMENT_STATUSES",
    "InvariantContainment",
    "check_all",
    "classify_containment",
    "classify_spans",
    "span_hosts",
    "worst_status",
    "check_children_consistency",
    "check_induces_cluster_tree",
    "check_info_dominance",
    "check_is_tree_rooted_at_source",
    "check_no_harmful_cycles",
    "check_single_leader_per_cluster",
    "find_parent_cycles",
    "InvariantMonitor",
    "MonitorReport",
    "OVERLOAD_VERDICTS",
    "OverloadMonitor",
    "OverloadReport",
    "OverloadSample",
    "OpportunityAuditor",
    "ReliabilityReport",
    "run_to_quiescence",
    "true_leaders",
    "ViolationSpan",
]
