"""System assembly: one protocol instance per host over a topology.

:class:`BroadcastSystem` builds a :class:`~repro.core.source.SourceHost`
plus :class:`~repro.core.host.BroadcastHost` agents for every host of a
:class:`~repro.net.generator.BuiltTopology`, assigns the static linear
order (the source gets the highest order, which makes the pre-broadcast
trees inside each cluster gravitate toward it), and offers workload and
convergence helpers shared by tests, examples, and benchmarks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..io.simbackend import SimRuntime
from ..net import BuiltTopology, HostId
from ..sim import Simulator
from .config import ClusterMode, ProtocolConfig
from .delivery import DeliverCallback, DeliveryRecord
from .host import BroadcastHost
from .piggyback import PiggybackPort
from .source import SourceHost


class BroadcastSystem:
    """A complete single-source reliable-broadcast deployment."""

    def __init__(
        self,
        built: BuiltTopology,
        config: Optional[ProtocolConfig] = None,
        source: Optional[HostId] = None,
        deliver_callback: Optional[DeliverCallback] = None,
        port_of: Optional[Callable[[HostId], object]] = None,
    ) -> None:
        """Args:
            built: the topology to deploy over.
            config: protocol tuning (defaults to ProtocolConfig()).
            source: broadcast source (defaults to the topology's first host).
            deliver_callback: invoked on every delivery at every host.
            port_of: maps a host id to the port its agent should use —
                defaults to the network's real ports; multi-source
                systems pass virtual ports here (see
                :mod:`repro.core.multisource`).
        """
        self.built = built
        self.network = built.network
        self.sim: Simulator = built.network.sim
        #: the one Runtime shared by every host of this deployment
        self.runtime = SimRuntime(self.sim)
        self.config = config or ProtocolConfig()
        self.source_id = source if source is not None else built.source
        if self.source_id not in built.hosts:
            raise ValueError(f"source {self.source_id} is not a topology host")
        if port_of is None:
            port_of = self.network.host_port
        if self.config.enable_piggybacking:
            inner_port_of = port_of
            port_of = lambda h: PiggybackPort(
                inner_port_of(h), window=self.config.piggyback_window)

        self._order = self._assign_order(built.hosts, self.source_id)
        static_clusters = self._static_clusters() \
            if self.config.cluster_mode is ClusterMode.STATIC else {}

        self.hosts: Dict[HostId, BroadcastHost] = {}
        for host_id in built.hosts:
            cls = SourceHost if host_id == self.source_id else BroadcastHost
            self.hosts[host_id] = cls(
                sim=self.runtime,
                port=port_of(host_id),
                participants=built.hosts,
                order=self._order.__getitem__,
                config=self.config,
                static_cluster=static_clusters.get(host_id),
                deliver_callback=deliver_callback,
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _assign_order(hosts: List[HostId], source: HostId) -> Dict[HostId, int]:
        """Static linear order; the source is highest by convention."""
        ordered = sorted(h for h in hosts if h != source)
        order = {host_id: idx for idx, host_id in enumerate(ordered)}
        order[source] = len(ordered)
        return order

    def _static_clusters(self) -> Dict[HostId, Set[HostId]]:
        out: Dict[HostId, Set[HostId]] = {}
        for cluster in self.network.true_clusters():
            for host_id in cluster:
                out[host_id] = set(cluster)
        return out

    # ------------------------------------------------------------------
    # Lifecycle and workload
    # ------------------------------------------------------------------

    @property
    def source(self) -> SourceHost:
        """The source host agent (root of the broadcast)."""
        host = self.hosts[self.source_id]
        assert isinstance(host, SourceHost)
        return host

    def start(self) -> "BroadcastSystem":
        """Start periodic activity; returns self for chaining."""
        for host_id in self.built.hosts:
            self.hosts[host_id].start()
        return self

    def stop(self) -> None:
        """Stop periodic activity; safe to call more than once."""
        for host in self.hosts.values():
            host.stop()

    def crash_host(self, host_id: HostId) -> None:
        """Crash one host (volatile state lost, silent; idempotent)."""
        self.hosts[host_id].crash()

    def recover_host(self, host_id: HostId) -> None:
        """Recover a crashed host (no-op when it is up)."""
        self.hosts[host_id].recover()

    def crashed_hosts(self) -> List[HostId]:
        """Hosts currently down, sorted."""
        return sorted(h for h, host in self.hosts.items() if host.crashed)

    def broadcast_stream(
        self,
        count: int,
        interval: float,
        start_at: float = 0.0,
        content: Callable[[int], object] = lambda seq: f"msg-{seq}",
    ) -> None:
        """Schedule ``count`` broadcasts, one every ``interval`` seconds."""
        if count < 0 or interval <= 0:
            raise ValueError("count must be >= 0 and interval positive")
        for k in range(count):
            self.sim.schedule_at(start_at + k * interval,
                                 lambda k=k: self.source.broadcast(content(k + 1)))

    # ------------------------------------------------------------------
    # Convergence helpers
    # ------------------------------------------------------------------

    def all_delivered(self, n: int, hosts: Optional[List[HostId]] = None) -> bool:
        """True when every (given) host has delivered messages 1..n."""
        targets = hosts if hosts is not None else self.built.hosts
        return all(self.hosts[h].deliveries.has_all(n) for h in targets)

    def run_until_delivered(
        self,
        n: int,
        timeout: float,
        hosts: Optional[List[HostId]] = None,
        check_period: float = 0.5,
    ) -> bool:
        """Run the simulation until 1..n reach all (given) hosts.

        Returns True on success, False when ``timeout`` virtual seconds
        elapse first.  The clock is left at the moment the condition was
        first observed (checked every ``check_period``).
        """
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            if self.all_delivered(n, hosts):
                return True
            self.sim.run(until=min(self.sim.now + check_period, deadline))
        return self.all_delivered(n, hosts)

    # ------------------------------------------------------------------
    # Structure inspection (used by verify/, tests, and benchmarks)
    # ------------------------------------------------------------------

    def parent_edges(self) -> Dict[HostId, Optional[HostId]]:
        """Current host parent graph as child -> parent."""
        return {host_id: host.parent for host_id, host in self.hosts.items()}

    def children_view(self) -> Dict[HostId, Set[HostId]]:
        """Current CHILDREN sets, keyed by host id."""
        return {host_id: set(host.children) for host_id, host in self.hosts.items()}

    def leaders(self) -> List[HostId]:
        """Hosts currently acting as cluster leaders (Section 4.1 reading)."""
        return sorted(h for h, host in self.hosts.items() if host.is_cluster_leader)

    def delivery_records(self) -> Dict[HostId, List[DeliveryRecord]]:
        """Per-host delivery records, keyed by host id."""
        return {host_id: host.deliveries.records()
                for host_id, host in self.hosts.items()}

    def delivered_counts(self) -> Dict[HostId, int]:
        """Number of delivered messages per host."""
        return {host_id: len(host.deliveries) for host_id, host in self.hosts.items()}
