"""MAP and parent-pointer state (Section 4.2).

``MAP_i[j]`` is host *i*'s view of ``INFO_j``; ``p_i[j]`` is *i*'s view
of *j*'s parent pointer.  Both are updated from periodic
:class:`repro.core.wire.InfoMsg` exchanges and opportunistically from
data traffic (receiving data message *n* from *j* proves *j* has *n*).

``note_sent`` implements optimistic marking: after sending seq *n*
toward *j*, *i* assumes *j* will have it, which suppresses immediate
re-sends; if the message is lost, *j*'s next authoritative InfoMsg
(which *replaces* the view) snaps the view back and the gap is
retried.  Views are therefore not monotone — a reordered stale
snapshot can transiently regress one — and no protocol decision relies
on their monotonicity.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..net import HostId
from .seqnoset import SeqnoSet


class MapState:
    """Host *i*'s MAP array and parent-pointer array."""

    def __init__(self, me: HostId, own_info: SeqnoSet) -> None:
        self.me = me
        self._own_info = own_info  # alias: MAP_i[i] is INFO_i itself
        self._views: Dict[HostId, SeqnoSet] = {}
        self._parents: Dict[HostId, Optional[HostId]] = {}
        #: contiguous prefix of the last *authoritative* snapshot per host;
        #: pruning decisions may only use this, never optimistic marks
        self._ack_prefix: Dict[HostId, int] = {}
        #: previous authoritative snapshot per host (for persistence checks)
        self._prev_auth: Dict[HostId, SeqnoSet] = {}
        #: latest authoritative snapshot per host (unpolluted by marks)
        self._last_auth: Dict[HostId, SeqnoSet] = {}

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def info_of(self, j: HostId) -> SeqnoSet:
        """MAP_i[j]; the empty set when nothing is known yet."""
        if j == self.me:
            return self._own_info
        view = self._views.get(j)
        if view is None:
            view = SeqnoSet()
            self._views[j] = view
        return view

    def authoritative_prefix(self, j: HostId) -> int:
        """Largest n such that an InfoMsg from j *proved* it has 1..n.

        0 when j has never been heard from.  Unlike :meth:`info_of`,
        this is immune to optimistic ``note_sent`` marks, so it is safe
        to base pruning (discarding stored messages) on it.
        """
        if j == self.me:
            return self._own_info.contiguous_prefix()
        return self._ack_prefix.get(j, 0)

    def persistent_hole(self, j: HostId, seq: int) -> bool:
        """Was ``seq`` a *hole* of j's in the last TWO authoritative
        snapshots?  (A hole: missing although j's maximum exceeds it.)

        This is the eligibility test for **non-neighbor** gap filling.
        Transient holes — in flight, or being repaired by j's parent —
        appear in at most one snapshot and are filtered out; without
        this, every holder in the system herd-fills the same hole
        against views that stay stale for a full exchange period.
        Long-lived holes (the paper's Figure 4.1 situation) persist
        across snapshots and pass.
        """
        last = self._last_auth.get(j)
        prev = self._prev_auth.get(j)
        if last is None or prev is None:
            return False
        return (seq not in last and seq < last.max_seqno
                and seq not in prev and seq < prev.max_seqno)

    def parent_of(self, j: HostId) -> Optional[HostId]:
        """p_i[j]: i's view of j's parent (None when unknown/parentless)."""
        return self._parents.get(j)

    def known_hosts(self) -> Set[HostId]:
        """Hosts i has views for (not necessarily all participants)."""
        return set(self._views) | {self.me}

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def apply_info(self, j: HostId, info: SeqnoSet, parent: Optional[HostId]) -> None:
        """Apply a full INFO snapshot + parent pointer from j.

        The snapshot *replaces* the view: INFO messages are
        authoritative, and replacement is what corrects optimistic
        ``note_sent`` marks when a fill was actually lost.  (A reordered
        stale snapshot can transiently regress the view; the cost is at
        worst a duplicate gap fill, bounded by the suppression window.)
        """
        if j == self.me:
            return
        self._views[j] = info.copy()
        self._parents[j] = parent
        self._ack_prefix[j] = max(self._ack_prefix.get(j, 0), info.contiguous_prefix())
        if j in self._last_auth:
            self._prev_auth[j] = self._last_auth[j]
        self._last_auth[j] = info.copy()

    def note_has(self, j: HostId, seq: int) -> None:
        """Record first-hand evidence that j has message ``seq``."""
        if j == self.me:
            return
        self.info_of(j).add(seq)

    def note_sent(self, j: HostId, seqs: Iterable[int]) -> None:
        """Optimistically assume messages just sent to j will arrive."""
        if j == self.me:
            return
        view = self.info_of(j)
        for seq in seqs:
            view.add(seq)

    def set_parent_view(self, j: HostId, parent: Optional[HostId]) -> None:
        """Update only the parent pointer view for j."""
        if j != self.me:
            self._parents[j] = parent

    # ------------------------------------------------------------------
    # Derived queries used by the attachment procedure
    # ------------------------------------------------------------------

    def ancestors_of_me(self, my_parent: Optional[HostId]) -> Tuple[List[HostId], bool]:
        """Walk parent pointers from me: ANC_i (Section 4.2, case III).

        Uses i's own parent for the first step and the ``p_i[]`` views
        beyond it.  Returns ``(chain, cycle_through_me)`` where
        ``chain`` lists ancestors in walk order (duplicates removed) and
        ``cycle_through_me`` is True when the walk returns to *i* —
        the intra-cluster cycle condition ``i ∈ ANC_i``.
        """
        chain: List[HostId] = []
        seen: Set[HostId] = set()
        current = my_parent
        while current is not None:
            if current == self.me:
                return chain, True
            if current in seen:
                return chain, False  # a cycle not through me
            chain.append(current)
            seen.add(current)
            current = self._parents.get(current)
        return chain, False

    def cycle_members(self, my_parent: Optional[HostId]) -> List[HostId]:
        """Hosts on the cycle through me (me included), or [] if none."""
        chain, through_me = self.ancestors_of_me(my_parent)
        if not through_me:
            return []
        return [self.me] + chain
