"""Control-message piggybacking (Section 6, optimizations).

The paper: "some control messages that are dispatched by the same host
at about the same time can be piggybacked in one packet."

:class:`PiggybackPort` implements this as a transparent port wrapper:

* control payloads bound for the same destination are held for a short
  ``window`` and flushed together as one :class:`ControlBundle` packet;
* a bundle pays the packet framing (``header_bits``) once instead of
  once per message, so both the packet count and the transmitted bits
  shrink;
* data messages are never delayed — and sending one *first flushes*
  any held control for that destination, preserving the relative order
  of, e.g., an AttachAck and the data that follows it;
* the receive side unpacks bundles before the protocol sees them, so
  :class:`~repro.core.host.BroadcastHost` is completely unaware of the
  optimization.

The wrapper composes with any port-like object (real ports or the
multi-source :class:`~repro.core.multisource.VirtualPort`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..net import HostId, Packet, Payload
from ..sim import Event, Simulator
from .wire import KIND_CONTROL

#: default framing overhead assumed included in every payload's size
DEFAULT_HEADER_BITS = 400


@dataclass(frozen=True)
class ControlBundle:
    """Several control messages in one packet."""

    messages: Tuple[Payload, ...]
    header_bits: int = DEFAULT_HEADER_BITS

    @property
    def kind(self) -> str:
        """Payload class tag used for traffic accounting."""
        return KIND_CONTROL

    @property
    def size_bits(self) -> int:
        """One header plus each message's body (its size minus framing)."""
        body = sum(max(m.size_bits - self.header_bits, 1) for m in self.messages)
        return self.header_bits + body


class PiggybackPort:
    """A port wrapper that batches same-destination control messages."""

    def __init__(
        self,
        port,
        window: float = 0.05,
        header_bits: int = DEFAULT_HEADER_BITS,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if header_bits < 1:
            raise ValueError("header_bits must be positive")
        self._port = port
        self.window = window
        self.header_bits = header_bits
        self._pending: Dict[HostId, List[Payload]] = {}
        self._flush_events: Dict[HostId, Event] = {}
        self._receiver: Optional[Callable[[Packet], None]] = None
        #: optional inbound tap (chaos injection hook); sees unbundled
        #: messages, exactly what the protocol machine would see
        self.tap: Optional[Callable[[Packet], bool]] = None
        #: optional outbound tap (adversary persona hook); sees payloads
        #: *before* batching, so substitutions piggyback normally
        self.send_tap: Optional[Callable[[HostId, Payload], bool]] = None
        port.set_receiver(self._on_packet)

    # -- port facade -------------------------------------------------------

    @property
    def sim(self) -> Simulator:
        """The simulator this port belongs to."""
        return self._port.sim

    @property
    def host_id(self) -> HostId:
        """The host this port belongs to."""
        return self._port.host_id

    def local_time(self) -> float:
        """This host's wall-clock reading."""
        return self._port.local_time()

    def queue_length(self) -> int:
        """Outbound access-link queue depth (delegated to the real port)."""
        return self._port.queue_length()

    def set_receiver(self, callback: Callable[[Packet], None]) -> None:
        """Register the callback invoked for each inbound packet."""
        self._receiver = callback

    def send(self, dst: HostId, payload: Payload) -> None:
        """Send one individually addressed message (fire-and-forget)."""
        send_tap = self.send_tap
        if send_tap is not None and send_tap(dst, payload):
            return
        self.send_raw(dst, payload)

    def send_raw(self, dst: HostId, payload: Payload) -> None:
        """Batch/transmit, bypassing this wrapper's send tap."""
        if payload.kind != KIND_CONTROL:
            # Data is urgent; push held control first to keep ordering.
            self.flush(dst)
            self._port.send(dst, payload)
            return
        self._pending.setdefault(dst, []).append(payload)
        if dst not in self._flush_events:
            self._flush_events[dst] = self.sim.schedule(
                self.window, self.flush, dst)

    # -- batching ------------------------------------------------------------

    def flush(self, dst: HostId) -> None:
        """Send everything held for ``dst`` now."""
        event = self._flush_events.pop(dst, None)
        if event is not None:
            self.sim.try_cancel(event)
        held = self._pending.pop(dst, [])
        if not held:
            return
        if len(held) == 1:
            self._port.send(dst, held[0])
            return
        self.sim.metrics.counter("piggyback.bundles").inc()
        self.sim.metrics.counter("piggyback.bundled_messages").inc(len(held))
        self._port.send(dst, ControlBundle(tuple(held),
                                           header_bits=self.header_bits))

    def flush_all(self) -> None:
        """Flush every destination's held messages."""
        for dst in list(self._pending):
            self.flush(dst)

    # -- receive side ------------------------------------------------------

    def inject(self, packet: Packet) -> None:
        """Deliver an (unbundled) packet to the host, bypassing the tap."""
        if self._receiver is not None:
            self._receiver(packet)

    def _deliver(self, packet: Packet) -> None:
        tap = self.tap
        if tap is not None and tap(packet):
            return
        self.inject(packet)

    def _on_packet(self, packet: Packet) -> None:
        if self._receiver is None:
            return
        payload = packet.payload
        if not isinstance(payload, ControlBundle):
            self._deliver(packet)
            return
        for inner in payload.messages:
            self._deliver(Packet(
                src=packet.src, dst=packet.dst, payload=inner,
                cost_bit=packet.cost_bit, hops=packet.hops,
                sent_at=packet.sent_at, stamped_at=packet.stamped_at,
                packet_id=packet.packet_id))
