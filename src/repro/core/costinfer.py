"""Host-level inference of the cost bit from transit times (Section 2).

The paper's primary mechanism has the *network* set a cost bit on
packets that traverse an expensive link, but it explicitly notes:

    "Even if the network did not provide this type of service, it could
    be implemented at the host level.  One way to do this would be to
    timestamp each message at the time it is sent out.  This would
    allow each host to estimate the time in transit.  Since the
    expected times for cheaply delivered messages and for expensively
    delivered ones vary significantly, hosts would be able to tell them
    apart."

:class:`TransitTimeClassifier` implements exactly that.  Every message
already carries its send timestamp; the receiving host computes the
transit time and classifies it:

* the smallest transit time seen so far calibrates the "cheap" scale
  (intra-cluster paths are LAN-class and essentially constant);
* a delivery is classified *expensive* when its transit exceeds
  ``spread_factor`` × that cheap baseline — with ARPANET-class numbers
  the two populations differ by an order of magnitude, so a single
  multiplicative threshold separates them robustly;
* the baseline is tracked as a slowly-decaying minimum so a lucky
  too-small early sample cannot poison classification forever, and
  queueing noise on cheap paths only inflates transit *transiently*.

Misclassification is tolerable by design: the paper's CLUSTER sets are
themselves allowed to be wrong and self-correct with later messages.
"""

from __future__ import annotations

from typing import Dict

from ..net import HostId


class TransitTimeClassifier:
    """Classify deliveries as cheap/expensive from their transit times."""

    def __init__(
        self,
        spread_factor: float = 5.0,
        decay: float = 1.02,
        initial_floor: float = 1e-6,
    ) -> None:
        """Args:
            spread_factor: transit beyond ``spread_factor * cheap_baseline``
                is classified expensive.  Must exceed 1.
            decay: each observation multiplies the remembered baseline by
                this factor before taking the min, letting it forget
                anomalously fast early samples.  1.0 disables decay.
            initial_floor: lower clamp for the baseline (guards against a
                zero-transit artifact).
        """
        if spread_factor <= 1.0:
            raise ValueError("spread_factor must exceed 1")
        if decay < 1.0:
            raise ValueError("decay must be >= 1")
        if initial_floor <= 0:
            raise ValueError("initial_floor must be positive")
        self.spread_factor = spread_factor
        self.decay = decay
        self.initial_floor = initial_floor
        self._baseline: float = float("inf")
        self.observations = 0

    @property
    def cheap_baseline(self) -> float:
        """Current estimate of the cheap-path transit time."""
        return self._baseline

    def classify(self, transit: float) -> bool:
        """Observe one delivery; returns True when it looks *expensive*.

        The very first observation calibrates the baseline and is
        classified cheap (there is nothing to compare against yet) —
        matching the paper's optimistic initialization, where wrong
        early guesses are corrected by subsequent traffic.
        """
        if transit < 0:
            raise ValueError(f"transit time cannot be negative: {transit}")
        self.observations += 1
        sample = max(transit, self.initial_floor)
        if self._baseline == float("inf"):
            self._baseline = sample
            return False
        self._baseline = min(self._baseline * self.decay, sample)
        return transit > self.spread_factor * self._baseline


class PerSenderTransitClassifier:
    """Transit classification calibrated per sender — clock-skew robust.

    With skewed host clocks the estimated transit for messages from *j*
    is the true transit plus the constant ``offset(me) - offset(j)``.
    A single global baseline then misclassifies whole senders (a cheap
    neighbor with a fast clock looks expensive forever).  Calibrating a
    separate baseline per sender cancels the constant term: each
    sender's own cheap/expensive populations stay an order of magnitude
    apart regardless of the shared offset.

    Negative estimates (receiver's clock behind the sender's) are
    clamped to zero — they simply mean "very fast", i.e. cheap.

    The residual limitation is inherent to the paper's mechanism: a
    sender whose *every* path to us is expensive calibrates its own
    baseline high and is classified cheap until a genuinely cheap
    delivery arrives.  The protocol tolerates that (CLUSTER sets
    self-correct); see :class:`TransitTimeClassifier` for the same
    caveat without skew.
    """

    def __init__(self, spread_factor: float = 5.0, decay: float = 1.02,
                 initial_floor: float = 1e-6) -> None:
        self.spread_factor = spread_factor
        self.decay = decay
        self.initial_floor = initial_floor
        self._per_sender: Dict[HostId, TransitTimeClassifier] = {}

    def classify(self, sender: HostId, transit: float) -> bool:
        """Observe a delivery from ``sender``; True when expensive."""
        classifier = self._per_sender.get(sender)
        if classifier is None:
            classifier = TransitTimeClassifier(
                spread_factor=self.spread_factor, decay=self.decay,
                initial_floor=self.initial_floor)
            self._per_sender[sender] = classifier
        return classifier.classify(max(transit, 0.0))

    def baseline_of(self, sender: HostId) -> float:
        """The calibrated cheap baseline for one sender (inf if unseen)."""
        classifier = self._per_sender.get(sender)
        return classifier.cheap_baseline if classifier else float("inf")
