"""Optional FIFO delivery on top of the protocol (extension).

The paper deliberately relaxes ordering: its target applications
(partition-tolerant replicated databases) install updates in any order,
and relaxing FIFO "gives potentially more flexibility to the protocol
and may improve its average delay characteristic" (Section 1).

Some applications do want source order.  Because every message carries
the source's sequence number, FIFO is a pure local adapter: buffer
deliveries until the next expected number arrives, then release the
contiguous run.  The protocol itself is untouched — this lives entirely
above the delivery callback, and its cost is visible as added delay
(the price the paper chose not to pay by default).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..net import HostId
from .delivery import DeliveryRecord

#: callback signature: (host, record, released_at_seq_order_time)
OrderedCallback = Callable[[HostId, DeliveryRecord], None]


class FifoDeliveryAdapter:
    """Per-host reordering buffer releasing messages in sequence order.

    Plug its :meth:`on_deliver` in as a system's ``deliver_callback``;
    the wrapped callback then sees every host's messages in exactly
    1, 2, 3, ... order.
    """

    def __init__(self, callback: OrderedCallback) -> None:
        self._callback = callback
        self._next: Dict[HostId, int] = {}
        self._buffered: Dict[HostId, Dict[int, DeliveryRecord]] = {}

    def on_deliver(self, host: HostId, record: DeliveryRecord) -> None:
        """Accept an (arbitrarily ordered) protocol delivery."""
        expected = self._next.setdefault(host, 1)
        buffer = self._buffered.setdefault(host, {})
        if record.seq < expected or record.seq in buffer:
            raise AssertionError(
                f"{host}: duplicate delivery of seq {record.seq}")
        buffer[record.seq] = record
        while expected in buffer:
            self._callback(host, buffer.pop(expected))
            expected += 1
        self._next[host] = expected

    # -- inspection ----------------------------------------------------------

    def released_through(self, host: HostId) -> int:
        """Highest n such that 1..n have been released to the app."""
        return self._next.get(host, 1) - 1

    def buffered_count(self, host: HostId) -> int:
        """Messages held back waiting for an earlier one."""
        return len(self._buffered.get(host, {}))

    def holding(self, host: HostId) -> List[int]:
        """Sequence numbers currently buffered for ``host``."""
        return sorted(self._buffered.get(host, {}))
