"""The application-facing delivery record.

Each host delivers every broadcast message exactly once, *not
necessarily in order* (the paper deliberately relaxes ordering to
minimize delay — Section 1).  The :class:`DeliveryLog` records, per
sequence number: when it was delivered, who supplied it, and whether it
arrived as a normal parent-graph propagation or as a gap fill.  The
analysis layer builds the paper's delay and recovery statistics from
these records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..net import HostId


@dataclass(frozen=True)
class DeliveryRecord:
    """One message delivered to one host."""

    seq: int
    content: object
    created_at: float
    delivered_at: float
    supplier: HostId
    via_gapfill: bool

    @property
    def delay(self) -> float:
        """End-to-end latency from generation at the source."""
        return self.delivered_at - self.created_at


DeliverCallback = Callable[[HostId, DeliveryRecord], None]


class DeliveryLog:
    """Per-host record of delivered messages."""

    def __init__(self, owner: HostId, callback: Optional[DeliverCallback] = None) -> None:
        self.owner = owner
        self._records: Dict[int, DeliveryRecord] = {}
        self._callback = callback

    def record(self, record: DeliveryRecord) -> None:
        """Record one delivery; duplicate sequence numbers are a bug."""
        if record.seq in self._records:
            raise AssertionError(
                f"{self.owner}: duplicate delivery of seq {record.seq}")
        self._records[record.seq] = record
        if self._callback is not None:
            self._callback(self.owner, record)

    def forget_above(self, n: int) -> int:
        """Drop records with seq > ``n`` (host-crash modeling).

        A crashing host loses the delivered messages the application had
        not yet flushed to stable storage; after recovery those sequence
        numbers are legitimately delivered a second time.  Returns how
        many records were forgotten.
        """
        lost = [seq for seq in self._records if seq > n]
        for seq in lost:
            del self._records[seq]
        return len(lost)

    def contiguous_prefix(self) -> int:
        """Largest n such that messages 1..n are all delivered."""
        n = 0
        while (n + 1) in self._records:
            n += 1
        return n

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, seq: int) -> bool:
        return seq in self._records

    def get(self, seq: int) -> Optional[DeliveryRecord]:
        """The record for ``seq``, or None if not delivered."""
        return self._records.get(seq)

    def records(self) -> List[DeliveryRecord]:
        """All deliveries in sequence-number order."""
        return [self._records[seq] for seq in sorted(self._records)]

    def has_all(self, n: int) -> bool:
        """True when messages 1..n have all been delivered."""
        return all(seq in self._records for seq in range(1, n + 1))

    def delays(self) -> List[float]:
        """Delays of all deliveries, in sequence order."""
        return [record.delay for record in self.records()]

    def out_of_order_count(self) -> int:
        """How many messages arrived after a higher-numbered one."""
        by_time = sorted(self._records.values(), key=lambda r: (r.delivered_at, r.seq))
        count = 0
        max_seq = 0
        for record in by_time:
            if record.seq < max_seq:
                count += 1
            max_seq = max(max_seq, record.seq)
        return count
