"""The broadcast host agent (Sections 4.1–4.4).

:class:`BroadcastHost` is the per-host protocol machine.  It owns:

* ``INFO_i`` (its :class:`~repro.core.seqnoset.SeqnoSet`), the message
  store, and the delivery log;
* ``MAP_i`` / ``p_i[]`` views (:class:`~repro.core.mapstate.MapState`);
* ``CLUSTER_i`` (:class:`~repro.core.cluster.ClusterView`), learned
  from cost bits;
* the parent pointer and ``CHILDREN_i``;
* periodic tasks: the attachment procedure, two-rate INFO exchange,
  two-rate neighbor gap filling, low-rate non-neighbor gap filling;
* one-shot timers: attach-ack timeout and parent liveness timeout.

Message handling implements the paper's acceptance rule verbatim: a
data message numbered *higher than anything seen so far* is accepted
only from the current parent (and then propagated to all children); any
other missing message is a gap fill, accepted from anyone and relayed
to parent-graph neighbors that appear to lack it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..io.interfaces import (
    PeriodicHandle,
    Runtime,
    TimerHandle,
    Transport,
    as_runtime,
)
from ..net import HostId, Packet
from .attachment import AttachmentView, Candidate, plan_attachment
from .cluster import ClusterView
from .config import ClusterMode, CostBitMode, ProtocolConfig
from .costinfer import TransitTimeClassifier
from .delivery import DeliverCallback, DeliveryLog, DeliveryRecord
from .mapstate import MapState
from .resources import ShedPolicy
from .rtt import CongestionSignal, ExponentialBackoff, PeerRtt
from .seqnoset import SeqnoSet
from .wire import (
    AttachAck,
    AttachRequest,
    DataMsg,
    DetachNotice,
    InfoMsg,
    checksum_ok,
)

OrderFn = Callable[[HostId], int]


@dataclass
class _PendingAttach:
    """State of an in-progress attachment handshake."""

    candidates: List[Candidate]
    index: int
    attempt: int

    @property
    def current(self) -> Candidate:
        return self.candidates[self.index]


class BroadcastHost:
    """One participating host running the reliable-broadcast protocol."""

    def __init__(
        self,
        sim: object,
        port: Transport,
        participants: Sequence[HostId],
        order: OrderFn,
        config: Optional[ProtocolConfig] = None,
        static_cluster: Optional[Set[HostId]] = None,
        deliver_callback: Optional[DeliverCallback] = None,
    ) -> None:
        """``sim`` accepts either a :class:`~repro.io.interfaces.Runtime`
        or a bare :class:`~repro.sim.kernel.Simulator` (wrapped on the
        fly); the parameter keeps its historic name so existing keyword
        call sites stay valid."""
        self.runtime: Runtime = as_runtime(sim)
        #: the underlying simulator when running in-sim; None on real
        #: backends (tests and sim-side tooling may reach through this)
        self.sim = getattr(self.runtime, "sim", None)
        self.port = port
        self.me = port.host_id
        self.config = config or ProtocolConfig()
        self.participants = sorted(h for h in participants if h != self.me)
        self.order = order

        self.info = SeqnoSet()
        self.maps = MapState(self.me, self.info)
        self.cluster = ClusterView(self.me, self.config.cluster_mode, static_cluster)
        self.parent: Optional[HostId] = None
        self.children: Set[HostId] = set()
        self.store: Dict[int, DataMsg] = {}
        self.deliveries = DeliveryLog(self.me, deliver_callback)

        self._attempt_counter = itertools.count(1)
        self._pending: Optional[_PendingAttach] = None
        self._started = False
        self._static_cluster = static_cluster
        #: host-crash state (see crash()/recover())
        self.crashed = False
        self._crashed_at: Optional[float] = None
        self._awaiting_recovery_delivery = False
        #: monotone stable-storage flush point; survives crashes
        self._flushed_prefix = 0
        #: (target -> seq -> last fill time); bounds duplicate gap fills
        self._recent_fills: Dict[HostId, Dict[int, float]] = {}
        #: bounded-resource model (DESIGN.md §13); None = everything
        #: unbounded, zero behavioral footprint
        self._resources = self.config.resources
        #: running total of (target, seq) suppression entries, so the
        #: fill-table bound never needs a full recount on the hot path
        self._fill_entries = 0
        #: when each current child was (re)registered — reconcile grace
        self._child_since: Dict[HostId, float] = {}
        #: last time the current parent sent us data (or was adopted)
        self._parent_progress_at = 0.0
        #: transit-time classifier (only consulted in TIMESTAMP mode).
        #: The paper's mechanism compares one-way transit times across
        #: senders, which implicitly assumes clocks synchronized to
        #: within a few cheap-path transits; experiment E16 quantifies
        #: the degradation when they are not.
        self._cost_classifier = TransitTimeClassifier(
            spread_factor=self.config.transit_spread_factor)
        # -- adaptive control plane (repro.core.rtt; DESIGN.md §9) --------
        # The estimators and the congestion signal are fed always (pure
        # bookkeeping, no events, no RNG) but only *consulted* when
        # config.adaptive is on, so adaptive=False runs are untouched.
        self._rtt = PeerRtt()
        self._congestion = CongestionSignal(self.config.congestion_window)
        self._attach_backoff = ExponentialBackoff(
            self.config.attach_backoff_base, self.config.attach_backoff_cap,
            self.config.backoff_jitter_frac,
            self.runtime.rng(f"host.{self.me}.attach_backoff"))
        self._gapfill_backoff = ExponentialBackoff(
            self.config.gapfill_nonneighbor_period,
            self.config.gapfill_nonneighbor_period * 8,
            self.config.backoff_jitter_frac,
            self.runtime.rng(f"host.{self.me}.gapfill_backoff"))
        #: earliest time a new attachment round / non-neighbor fill may run
        self._attach_resume_at = 0.0
        self._gapfill_resume_at = 0.0
        #: when the current AttachRequest was sent (RTT sample on its ack)
        self._attach_sent_at = 0.0
        #: peer -> (peer's stamp, local receive time); echoed once on the
        #: next InfoMsg to that peer (the NTP-style RTT exchange)
        self._info_stamps: Dict[HostId, Tuple[float, float]] = {}
        #: (sender, uid) -> receive time; duplicate-control suppression
        self._seen_control: Dict[Tuple[HostId, int], float] = {}
        self._seen_control_sweep = 0.0

        port.set_receiver(self._on_packet)
        # One-shot timers are held as opaque Runtime handles only — no
        # backend-specific timer objects — so stop()/crash() disarm them
        # identically in-sim and on the asyncio backend.
        self._ack_timer: Optional[TimerHandle] = None
        self._parent_timer: Optional[TimerHandle] = None
        self._tasks = self._build_tasks()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _build_tasks(self) -> List[PeriodicHandle]:
        cfg = self.config
        rt = self.runtime
        stream = f"host.{self.me}"
        tasks = [
            rt.start_periodic(cfg.attachment_period, self._attachment_tick,
                              jitter=cfg.attachment_jitter,
                              rng_stream=f"{stream}.attach", name="attach"),
            rt.start_periodic(cfg.info_intra_period, self._info_intra_tick,
                              jitter=cfg.info_intra_period * cfg.info_jitter_frac,
                              rng_stream=f"{stream}.info_intra", name="info_intra"),
            rt.start_periodic(cfg.info_inter_period, self._info_inter_tick,
                              jitter=cfg.info_inter_period * cfg.info_jitter_frac,
                              rng_stream=f"{stream}.info_inter", name="info_inter"),
            rt.start_periodic(cfg.gapfill_neighbor_intra_period,
                              self._gapfill_neighbors_intra_tick,
                              jitter=cfg.gapfill_neighbor_intra_period * 0.1,
                              rng_stream=f"{stream}.gf_intra", name="gapfill_intra"),
            rt.start_periodic(cfg.gapfill_neighbor_inter_period,
                              self._gapfill_neighbors_inter_tick,
                              jitter=cfg.gapfill_neighbor_inter_period * 0.1,
                              rng_stream=f"{stream}.gf_inter", name="gapfill_inter"),
        ]
        if cfg.enable_nonneighbor_gapfill:
            tasks.append(
                rt.start_periodic(cfg.gapfill_nonneighbor_period,
                                  self._gapfill_nonneighbors_tick,
                                  jitter=cfg.gapfill_nonneighbor_period * 0.1,
                                  rng_stream=f"{stream}.gf_nonneighbor",
                                  name="gapfill_nonneighbor"))
        return tasks

    def start(self) -> "BroadcastHost":
        """Begin running the protocol's periodic activities."""
        if self._started:
            return self
        self._started = True
        for task in self._tasks:
            task.start()
        return self

    def stop(self) -> None:
        """Halt all periodic activity and timers.

        ``stop``/``start`` form a safe restart pair (crash recovery
        depends on it): an attach handshake in flight is abandoned here,
        because its ack timer dies with us — keeping ``_pending`` armed
        would block every future attachment tick forever.
        """
        self._started = False
        for task in self._tasks:
            task.stop()
        self.runtime.cancel_timer(self._ack_timer)
        self._ack_timer = None
        self.runtime.cancel_timer(self._parent_timer)
        self._parent_timer = None
        self._pending = None

    # ------------------------------------------------------------------
    # Host crash / recovery (the failure model's third leg)
    # ------------------------------------------------------------------

    def _stable_prefix(self) -> int:
        """Highest seqno guaranteed to survive a crash of this host.

        Stable storage flushes delivered messages in order: the
        contiguous prefix survives, minus the ``crash_stable_lag``
        newest entries that may still sit in the write buffer.  The
        flush point is monotone — a message that survived one crash is
        on disk and cannot be lost by a later crash, so repeated
        crashes never ratchet the prefix below its high-water mark.
        The pruned INFO prefix is always stable — pruning only happens
        once every participant provably holds those messages.
        """
        self._flushed_prefix = max(
            self._flushed_prefix, self.info.floor,
            self.info.contiguous_prefix() - self.config.crash_stable_lag)
        return self._flushed_prefix

    def crash(self) -> None:
        """Crash this host: volatile state is lost, silence follows.

        Per the paper's failure model, the crash is *undetected* — no
        DetachNotice is sent; parent and children must discover the
        failure through their own timeouts.  Everything except the
        stable message prefix is wiped: MAP/parent-pointer views, the
        learned CLUSTER set, the parent pointer, CHILDREN, pending
        attach state, gap-fill bookkeeping, and the transit-time
        classifier's calibration.  Inbound packets are dropped until
        :meth:`recover`.
        """
        if self.crashed:
            return
        self.crashed = True
        self._crashed_at = self.runtime.now()
        self._awaiting_recovery_delivery = False
        self.stop()
        stable = self._stable_prefix()
        lost_info = self.info.max_seqno - stable if self.info.max_seqno > stable else 0
        self.info.truncate_above(stable)
        for seq in [s for s in self.store if s > stable]:
            del self.store[seq]
        self.deliveries.forget_above(stable)
        self.maps = MapState(self.me, self.info)
        self.cluster.reset()
        self.parent = None
        self.children.clear()
        self._child_since.clear()
        self._recent_fills.clear()
        self._fill_entries = 0
        self._parent_progress_at = 0.0
        self._cost_classifier = TransitTimeClassifier(
            spread_factor=self.config.transit_spread_factor)
        # Adaptive-plane state is volatile too: stale RTT estimates,
        # held echo stamps, and the dedup table all die with the host.
        self._rtt = PeerRtt()
        self._congestion = CongestionSignal(self.config.congestion_window)
        self._attach_backoff.reset()
        self._gapfill_backoff.reset()
        self._attach_resume_at = 0.0
        self._gapfill_resume_at = 0.0
        self._info_stamps.clear()
        self._seen_control.clear()
        self.runtime.trace("host.crash", str(self.me), stable_prefix=stable,
                            lost=lost_info)
        self.runtime.counter("proto.host.crash").inc()

    def recover(self) -> None:
        """Recover from a crash: restart as a fresh orphan.

        Periodic tasks re-arm and the next attachment tick re-enters the
        attachment procedure as case I (no parent, empty views); gaps
        against the stable prefix are repaired by neighbor and
        cross-cluster gap filling once re-attached.
        """
        if not self.crashed:
            return
        self.crashed = False
        self._awaiting_recovery_delivery = True
        self.start()
        down_for = (self.runtime.now() - self._crashed_at
                    if self._crashed_at is not None else 0.0)
        self.runtime.trace("host.recover", str(self.me), down_for=down_for)
        self.runtime.counter("proto.host.recover").inc()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def is_source(self) -> bool:
        """True for the broadcast source host."""
        return False

    @property
    def is_cluster_leader(self) -> bool:
        """Per Section 4.1: parent absent or outside the (believed) cluster."""
        return self.parent not in self.cluster

    def neighbors(self) -> Set[HostId]:
        """Parent-graph neighbors: children plus the parent."""
        out = set(self.children)
        if self.parent is not None:
            out.add(self.parent)
        return out

    # ------------------------------------------------------------------
    # Receive dispatch
    # ------------------------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        if self.crashed:
            # A crashed host neither processes nor acknowledges anything;
            # the packet is lost exactly as if the host were powered off.
            self.runtime.trace("host.drop_crashed", str(self.me),
                                src=str(packet.src), payload_kind=packet.kind)
            self.runtime.counter("proto.host.drop_crashed").inc()
            return
        sender = packet.src
        payload = packet.payload
        # Wire hardening: a payload whose checksum does not validate is
        # dropped before it touches *any* protocol state — a corrupted
        # message may not even be from who it claims to be from.  The
        # drop is attributed by uid: a uid this host already accepted
        # from the same sender means a mangled retransmission of known
        # traffic (dup_uid); an unknown or absent uid means first-contact
        # bit rot or an outright fabrication (forged_uid).  The
        # unsuffixed counter stays as the aggregate.
        if not checksum_ok(payload):
            corrupt_uid = getattr(payload, "uid", None)
            known = (corrupt_uid is not None
                     and (sender, corrupt_uid) in self._seen_control)
            self.runtime.trace("host.drop_corrupt", str(self.me),
                                src=str(sender), payload_kind=packet.kind,
                                known_uid=known)
            self.runtime.counter("proto.wire.corrupt_dropped").inc()
            self.runtime.counter(
                "proto.wire.corrupt_dropped.dup_uid" if known
                else "proto.wire.corrupt_dropped.forged_uid").inc()
            self._congestion.note_bad(self.runtime.now())
            return
        # Duplicate-control suppression: link-level duplicates and
        # replayed control messages share the original payload's uid.
        # Without this, a replayed AttachAck can re-wedge the handshake
        # and duplicated InfoMsgs double-feed the RTT echo.
        uid = getattr(payload, "uid", None)
        if uid is not None:
            key = (sender, uid)
            now = self.runtime.now()
            horizon = now - self.config.control_dedup_window
            if self._seen_control.get(key, float("-inf")) > horizon:
                self.runtime.trace("host.drop_dup_control", str(self.me),
                                    src=str(sender), payload_kind=packet.kind)
                self.runtime.counter("proto.wire.dup_suppressed").inc()
                self._congestion.note_bad(now)
                return
            self._seen_control[key] = now
            if now - self._seen_control_sweep > self.config.control_dedup_window:
                self._seen_control_sweep = now
                self._seen_control = {k: t for k, t in self._seen_control.items()
                                      if t > horizon}
        self._congestion.note_good(self.runtime.now())
        self.cluster.observe(sender, self._expensive_delivery(packet))
        if sender == self.parent:
            self._arm_parent_timer()
        if isinstance(payload, DataMsg):
            self._on_data(payload, sender)
        elif isinstance(payload, InfoMsg):
            self._on_info(payload, sender)
        elif isinstance(payload, AttachRequest):
            self._on_attach_request(payload, sender)
        elif isinstance(payload, AttachAck):
            self._on_attach_ack(payload, sender)
        elif isinstance(payload, DetachNotice):
            self._on_detach(payload, sender)
        else:  # pragma: no cover - future message types
            self.runtime.trace("host.unknown_payload", str(self.me),
                                payload=type(payload).__name__)

    def _expensive_delivery(self, packet: Packet) -> bool:
        """Did this delivery cross an expensive link?  (Section 2.)

        NETWORK mode trusts the cost bit stamped by the servers;
        TIMESTAMP mode infers the class from the message's time in
        transit, for networks that offer no such service.
        """
        if self.config.cost_bit_mode is CostBitMode.NETWORK:
            return packet.cost_bit
        # Estimate transit with *local* clocks on both ends, exactly as
        # a real deployment would (skew included when a clock model is
        # installed).
        transit = max(self.port.local_time() - packet.stamped_at, 0.0)
        return self._cost_classifier.classify(transit)

    # ------------------------------------------------------------------
    # Data handling (Section 4.1 acceptance rule + Section 4.4 gap filling)
    # ------------------------------------------------------------------

    def _on_data(self, msg: DataMsg, sender: HostId) -> None:
        self.maps.note_has(sender, msg.seq)
        if sender == self.parent:
            self._parent_progress_at = self.runtime.now()
        if msg.seq in self.info:
            self.runtime.trace("host.discard_data", str(self.me), seq=msg.seq,
                                sender=str(sender), reason="duplicate")
            self.runtime.counter("proto.data.discard.duplicate").inc()
            self._congestion.note_bad(self.runtime.now())
            return
        new_max = msg.seq > self.info.max_seqno
        if new_max and sender != self.parent:
            # The paper's rule: a higher-than-anything message is accepted
            # only from the parent; from anyone else it is discarded.
            self.runtime.trace("host.discard_data", str(self.me), seq=msg.seq,
                                sender=str(sender), reason="not_parent")
            self.runtime.counter("proto.data.discard.not_parent").inc()
            return
        self._accept(msg, sender, new_max)

    def _accept(self, msg: DataMsg, sender: HostId, new_max: bool) -> None:
        self.info.add(msg.seq)
        self.store[msg.seq] = msg
        self._shed_store()
        via_gapfill = not new_max or msg.gapfill
        self.deliveries.record(DeliveryRecord(
            seq=msg.seq, content=msg.content, created_at=msg.created_at,
            delivered_at=self.runtime.now(), supplier=sender, via_gapfill=via_gapfill))
        self.runtime.trace("host.deliver", str(self.me), seq=msg.seq,
                            sender=str(sender), gapfill=via_gapfill)
        runtime = self.runtime
        runtime.counter("proto.deliver").inc()
        runtime.histogram("proto.delay").observe(runtime.now() - msg.created_at)
        if self._awaiting_recovery_delivery:
            # First delivery after a crash: the recovery-time metric the
            # chaos experiments report (crash -> first post-recovery data).
            self._awaiting_recovery_delivery = False
            elapsed = runtime.now() - (self._crashed_at or 0.0)
            runtime.histogram("proto.host.recovery_time").observe(elapsed)
            self.runtime.trace("host.recovery_delivery", str(self.me),
                                elapsed=elapsed, seq=msg.seq)
        if new_max:
            # Normal propagation: push to all children.
            for child in sorted(self.children):
                if child != sender:
                    self._send_data(child, msg.seq, gapfill=False)
        else:
            # A gap filler: relay it to parent-graph neighbors that,
            # according to MAP, do not have it (Section 4.4).
            for neighbor in sorted(self.neighbors()):
                if neighbor == sender:
                    continue
                if msg.seq not in self.maps.info_of(neighbor):
                    self._send_data(neighbor, msg.seq, gapfill=True)

    def _send_data(self, target: HostId, seq: int, gapfill: bool) -> None:
        stored = self.store.get(seq)
        if stored is None:
            return
        resources = self._resources
        if resources is not None and resources.bounds_outbound:
            # Outbound backpressure: a data send that would land on an
            # already-deep access-link queue is shed (drop-newest) —
            # the receiver's INFO advertisement keeps the hole visible
            # and periodic gap filling retries once the queue drains.
            # Control traffic never comes through here, so the control
            # plane stays alive under data overload.
            depth_of = getattr(self.port, "queue_length", None)
            if (depth_of is not None
                    and depth_of() >= resources.outbound_queue_limit):
                self.runtime.trace(
                    "host.shed", str(self.me), buffer="outbound", seq=seq,
                    target=str(target), policy=ShedPolicy.DROP_NEWEST.value)
                self.runtime.counter("proto.shed.outbound").inc()
                return
        msg = DataMsg(seq=stored.seq, content=stored.content,
                      created_at=stored.created_at, origin=stored.origin,
                      gapfill=gapfill, size_bits=self.config.data_size_bits)
        self.port.send(target, msg)
        self.maps.note_sent(target, [seq])
        # Every data send enters the suppression window so periodic gap
        # filling does not immediately duplicate a normal forward.
        fills = self._recent_fills.setdefault(target, {})
        if seq not in fills:
            self._fill_entries += 1
        fills[seq] = self.runtime.now()
        self._shed_fill_table()
        if gapfill:
            self.runtime.counter("proto.gapfill.sent").inc()
            self.runtime.trace("host.gapfill_send", str(self.me),
                                target=str(target), seq=seq)
        else:
            self.runtime.counter("proto.data.forwarded").inc()

    # ------------------------------------------------------------------
    # Bounded resources (DESIGN.md §13) — all no-ops when resources=None
    # ------------------------------------------------------------------

    def _shed_store(self) -> None:
        """Enforce the message-store bound after an insert.

        Eviction drops the *store entry only*: the sequence number stays
        in INFO (this host genuinely delivered it), so the shed host
        simply stops being a possible gap-fill supplier for that
        message.  The source is exempt — its store is the stable outbox
        the whole protocol's reliability argument leans on.
        """
        resources = self._resources
        if resources is None or not resources.bounds_store or self.is_source:
            return
        policy = resources.store_policy
        while len(self.store) > resources.store_limit:
            victim = (max(self.store) if policy is ShedPolicy.DROP_NEWEST
                      else min(self.store))
            del self.store[victim]
            self.runtime.trace("host.shed", str(self.me), buffer="store",
                                seq=victim, policy=policy.value)
            self.runtime.counter("proto.shed.store").inc()

    def _shed_fill_table(self) -> None:
        """Enforce the gap-fill suppression-table bound.

        Evicts the oldest-stamped entries first: their suppression
        window is nearest to expiring, so forgetting them early costs
        at most one duplicate fill — the cheapest possible loss.
        """
        resources = self._resources
        if resources is None or not resources.bounds_fill_table:
            return
        excess = self._fill_entries - resources.fill_table_limit
        if excess <= 0:
            return
        entries = sorted(
            (when, target, seq)
            for target, fills in self._recent_fills.items()
            for seq, when in fills.items())
        for when, target, seq in entries[:excess]:
            del self._recent_fills[target][seq]
            self._fill_entries -= 1
            self.runtime.counter("proto.shed.fill_table").inc()
        self.runtime.trace("host.shed", str(self.me), buffer="fill_table",
                            count=excess,
                            policy=ShedPolicy.DROP_OLDEST.value)

    # ------------------------------------------------------------------
    # INFO exchange
    # ------------------------------------------------------------------

    def _on_info(self, msg: InfoMsg, sender: HostId) -> None:
        now = self.runtime.now()
        if msg.stamp >= 0.0:
            # Hold the sender's stamp; our next InfoMsg to it echoes it.
            self._info_stamps[sender] = (msg.stamp, now)
        if msg.echo_stamp >= 0.0:
            # Our own stamp coming back: rtt = elapsed minus the time the
            # peer held it.  Both endpoints of the subtraction are in our
            # clock (NTP-style), so sender clock skew cancels out.
            sample = (now - msg.echo_stamp) - msg.echo_hold
            if sample >= 0.0:
                self._rtt.observe(sender, sample)
        self.maps.apply_info(sender, msg.info, msg.parent)
        grace = self.config.child_reconcile_grace
        if (self.config.enable_child_reconcile
                and sender in self.children and msg.parent != self.me
                and self.runtime.now() - self._child_since.get(sender, 0.0) > grace):
            # The routine parent-pointer exchange reveals a phantom child:
            # it asked to attach once but never adopted us (ack lost or
            # timed out).  Keeping it would mean gap-filling a host that
            # discards everything we send.
            self.children.discard(sender)
            self._child_since.pop(sender, None)
            self.runtime.trace("host.child_reconciled", str(self.me),
                                child=str(sender))
            self.runtime.counter("proto.children.reconciled").inc()

    def _info_payload_for(self, dst: HostId) -> InfoMsg:
        # Each destination gets its own stamp, plus (once) the echo of
        # its most recent stamp so *it* can sample the round trip.
        echo_stamp, echo_hold = -1.0, 0.0
        held = self._info_stamps.pop(dst, None)
        if held is not None:
            echo_stamp = held[0]
            echo_hold = self.runtime.now() - held[1]
        return InfoMsg(sender=self.me, info=self.info, parent=self.parent,
                       size_bits=self.config.control_size_bits,
                       stamp=self.runtime.now(), echo_stamp=echo_stamp,
                       echo_hold=echo_hold)

    def _info_intra_tick(self) -> None:
        for j in sorted(self.cluster.neighbors()):
            self.port.send(j, self._info_payload_for(j))
            self.runtime.counter("proto.info.sent.intra").inc()

    def _info_inter_tick(self) -> None:
        for j in self.participants:
            if j in self.cluster:
                continue
            self.port.send(j, self._info_payload_for(j))
            self.runtime.counter("proto.info.sent.inter").inc()
        self._maybe_prune()

    def _maybe_prune(self) -> None:
        """Section 6: prune 1..n once every participant is known to have it.

        The paper's pruning argument assumes a host that received a
        message keeps it forever; with host crashes that is only true of
        the stable prefix.  A host advertising contiguous prefix p can
        roll back to p − crash_stable_lag, so pruning stays that margin
        behind the global minimum — otherwise a post-prune crash leaves
        a message no store in the network still holds.
        """
        if not self.config.enable_info_pruning or not self.participants:
            return
        prefix = self.info.contiguous_prefix()
        for j in self.participants:
            prefix = min(prefix, self.maps.authoritative_prefix(j))
            if prefix - self.config.crash_stable_lag <= self.info.floor:
                return
        prefix -= self.config.crash_stable_lag
        self.info.prune_through(prefix)
        for seq in [s for s in self.store if s <= prefix]:
            del self.store[seq]
        self.runtime.trace("host.prune", str(self.me), through=prefix)

    # ------------------------------------------------------------------
    # Gap filling (Section 4.4)
    # ------------------------------------------------------------------

    def _fill_gaps_of(self, target: HostId, include_frontier: bool = False,
                      persistent_only: bool = False) -> int:
        """Send ``target`` everything we have that it appears to lack.

        A (target, seq) pair is not re-sent within the configured
        suppression window: MAP views lag by up to an exchange period,
        and without suppression every perceived-but-already-filled gap
        would be refilled on each tick.  Genuinely lost fills are
        retried once the window expires.
        """
        view = self.maps.info_of(target)
        recent = self._recent_fills.setdefault(target, {})
        intra = target in self.cluster
        batch_limit = (self.config.gapfill_batch_limit if intra
                       else self.config.gapfill_batch_limit_inter)
        if self.config.adaptive:
            if self._congested():
                # Graceful degradation: when receives are going bad,
                # smaller repair batches — never a bigger retry storm.
                batch_limit = max(1, batch_limit // 2)
            horizon = self.runtime.now() - self._gapfill_retry_window(target, intra)
        else:
            horizon = self.runtime.now() - self.config.gapfill_suppression
        target_max = view.max_seqno
        # Only the target's parent may usefully send messages numbered
        # above the target's maximum: receivers enforce the paper's rule
        # of accepting new-maximum data exclusively from their parent.
        # Anyone may fill true gaps (holes below the target's maximum).
        # Duplication of recent normal forwards is prevented by the
        # suppression window, which records every data send.
        can_send_frontier = include_frontier or target in self.children
        sent = 0
        for seq in self.info.difference(view):
            if seq > target_max and not can_send_frontier:
                break  # ascending: every later seq is frontier too
            if persistent_only and not self.maps.persistent_hole(target, seq):
                continue  # non-neighbors only repair long-lived holes
            if seq not in self.store:
                continue
            if recent.get(seq, float("-inf")) > horizon:
                continue
            self._send_data(target, seq, gapfill=True)
            sent += 1
            if sent >= batch_limit:
                break
        return sent

    def _congested(self) -> bool:
        return (self._congestion.level(self.runtime.now())
                > self.config.congestion_threshold)

    def _gapfill_retry_window(self, target: HostId, intra: bool) -> float:
        """Adaptive (target, seq) re-send suppression window.

        One INFO-exchange period (so the target's advertisement can
        catch up) plus a few RTOs of the target (so a genuinely lost
        fill is retried as soon as the round trip allows), clamped to
        the fixed ``gapfill_suppression`` as ceiling and a fraction of
        it as floor.
        """
        cfg = self.config
        period = cfg.info_intra_period if intra else cfg.info_inter_period
        fixed = cfg.gapfill_suppression
        window = period + cfg.gapfill_rto_mult * self._rtt.rto(
            target, floor=0.0, ceiling=fixed)
        return min(max(window, cfg.rto_floor_frac * fixed), fixed)

    def _gapfill_neighbors_intra_tick(self) -> None:
        for neighbor in sorted(self.neighbors()):
            if neighbor in self.cluster:
                self._fill_gaps_of(neighbor)

    def _gapfill_neighbors_inter_tick(self) -> None:
        for neighbor in sorted(self.neighbors()):
            if neighbor not in self.cluster:
                self._fill_gaps_of(neighbor)

    def _gapfill_nonneighbors_tick(self) -> None:
        if self.config.adaptive:
            now = self.runtime.now()
            if now < self._gapfill_resume_at:
                self.runtime.counter("proto.gapfill.throttled").inc()
                return
            if self._congested():
                # Non-neighbor filling is the protocol's *optional*
                # repair traffic; under congestion it backs off
                # exponentially rather than piling on (retry storms are
                # what the congestion signal exists to prevent).
                delay = self._gapfill_backoff.next_delay()
                self._gapfill_resume_at = now + delay
                self.runtime.trace("host.gapfill_throttle", str(self.me),
                                    resume_in=delay)
                self.runtime.counter("proto.gapfill.throttled").inc()
                return
            self._gapfill_backoff.reset()
        neighbors = self.neighbors()
        for j in self.participants:
            if j not in neighbors:
                self._fill_gaps_of(j, persistent_only=True)

    # ------------------------------------------------------------------
    # Attachment procedure driver (Section 4.2)
    # ------------------------------------------------------------------

    def _attachment_view(self) -> AttachmentView:
        return AttachmentView(
            me=self.me, parent=self.parent, participants=self.participants,
            cluster=self.cluster, maps=self.maps, order=self.order,
            delay_optimization=self.config.enable_delay_optimization,
            delay_opt_margin=self.config.delay_opt_margin)

    def _attachment_tick(self) -> None:
        if self._pending is not None:
            return  # one handshake at a time
        if self.config.adaptive and self.runtime.now() < self._attach_resume_at:
            return  # backing off after an exhausted round
        self._maybe_refresh_parent()
        plan = plan_attachment(self._attachment_view())
        if plan.cycle_detected:
            self.runtime.trace("host.cycle_detected", str(self.me),
                                cycle=[str(h) for h in plan.cycle])
            self.runtime.counter("proto.cycle.detected").inc()
            if not plan.must_break_cycle:
                return
            # The highest-order member detaches and reruns as case I.
            self._detach_from_parent(reason="cycle_break")
            self.runtime.counter("proto.cycle.broken").inc()
            plan = plan_attachment(self._attachment_view())
        if not plan.candidates:
            return
        # Deduplicate targets, preserving priority order.
        seen: Set[HostId] = set()
        unique = []
        for candidate in plan.candidates:
            if candidate.target not in seen:
                seen.add(candidate.target)
                unique.append(candidate)
        self._pending = _PendingAttach(candidates=unique, index=0,
                                       attempt=next(self._attempt_counter))
        self._send_attach_request()

    def _send_attach_request(self) -> None:
        assert self._pending is not None
        candidate = self._pending.current
        request = AttachRequest(child=self.me, child_info=self.info,
                                attempt=self._pending.attempt,
                                size_bits=self.config.control_size_bits)
        self.port.send(candidate.target, request)
        self.runtime.trace("host.attach_try", str(self.me),
                            target=str(candidate.target), case=candidate.case,
                            option=candidate.option, attempt=self._pending.attempt)
        self.runtime.counter("proto.attach.requests").inc()
        self._attach_sent_at = self.runtime.now()
        self.runtime.cancel_timer(self._ack_timer)
        self._ack_timer = self.runtime.start_timer(
            self._attach_timeout_value(candidate.target), self._on_attach_timeout)

    def _attach_timeout_value(self, target: HostId) -> float:
        """How long to wait for ``target``'s AttachAck.

        Adaptive: the peer's RTO (Jacobson/Karn, backed off per Karn
        after timeouts), clamped between a fraction of the fixed
        timeout and the fixed timeout itself.  An unmeasured peer gets
        exactly the fixed timeout.
        """
        fixed = self.config.attach_ack_timeout
        if not self.config.adaptive:
            return fixed
        return self._rtt.rto(target, floor=self.config.rto_floor_frac * fixed,
                             ceiling=fixed)

    def _maybe_refresh_parent(self) -> None:
        """Re-request attachment from a parent that stopped serving us.

        If the parent's advertised INFO is ahead of ours but it has sent
        no data for ``parent_refresh_timeout``, it has probably dropped
        us from its CHILDREN (e.g. reconciled us away after a lost ack).
        An idempotent AttachRequest re-registers us and triggers a fill.
        """
        if self.parent is None or not self.config.enable_parent_refresh:
            return
        if self.maps.info_of(self.parent).max_seqno <= self.info.max_seqno:
            return
        if self.runtime.now() - self._parent_progress_at < self.config.parent_refresh_timeout:
            return
        self._parent_progress_at = self.runtime.now()  # pace the refreshes
        request = AttachRequest(child=self.me, child_info=self.info, attempt=0,
                                size_bits=self.config.control_size_bits)
        self.port.send(self.parent, request)
        self.runtime.trace("host.parent_refresh", str(self.me),
                            parent=str(self.parent))
        self.runtime.counter("proto.parent.refresh").inc()

    def _on_attach_timeout(self) -> None:
        if self._pending is None:
            return
        target = self._pending.current.target
        self.runtime.trace("host.attach_timeout", str(self.me), target=str(target))
        self.runtime.counter("proto.attach.timeouts").inc()
        self._rtt.on_timeout(target)  # Karn: back the peer's RTO off
        # The candidate may have registered us and lost the ack; tell it
        # to forget us so it does not keep feeding a phantom child.
        self.port.send(target, DetachNotice(
            child=self.me, size_bits=self.config.control_size_bits))
        self._pending.index += 1
        self._pending.attempt = next(self._attempt_counter)
        if self._pending.index >= len(self._pending.candidates):
            self._pending = None  # exhausted; wait for the next period
            if self.config.adaptive:
                # Every candidate timed out — either they are all down
                # or the path is melting.  Back off with jitter instead
                # of hammering the same list every attachment period.
                delay = self._attach_backoff.next_delay()
                self._attach_resume_at = self.runtime.now() + delay
                self.runtime.trace("host.attach_backoff", str(self.me),
                                    resume_in=delay)
                self.runtime.counter("proto.attach.backoff").inc()
            return
        self._send_attach_request()

    def _on_attach_request(self, request: AttachRequest, sender: HostId) -> None:
        if request.child not in self.children:
            # Keep the original registration time on repeat requests so
            # the reconcile grace period can actually elapse for a child
            # that keeps requesting but never adopts us.
            self._child_since[request.child] = self.runtime.now()
        self.children.add(request.child)
        self.maps.info_of(request.child).update(request.child_info)
        self.maps.set_parent_view(request.child, self.me)
        ack = AttachAck(parent=self.me, attempt=request.attempt,
                        parent_info=self.info, parent_parent=self.parent,
                        size_bits=self.config.control_size_bits)
        self.port.send(request.child, ack)
        self.runtime.trace("host.child_added", str(self.me), child=str(request.child))
        # The new child's gaps (frontier included, since it is now a
        # child) are filled by the next periodic child gap-fill tick.
        # Filling synchronously here would push a large data batch onto
        # the trunk *before* knowing the ack survived — under congestion
        # that starves the acks themselves and livelocks attachment.

    def _on_attach_ack(self, ack: AttachAck, sender: HostId) -> None:
        self.maps.apply_info(sender, ack.parent_info, ack.parent_parent)
        pending = self._pending
        if (pending is None or ack.attempt != pending.attempt
                or sender != pending.current.target):
            # A stale ack: some earlier candidate answered after we moved
            # on.  It now wrongly lists us as a child; correct it, unless
            # it actually is our current parent.
            if sender != self.parent:
                self.port.send(sender, DetachNotice(
                    child=self.me, size_bits=self.config.control_size_bits))
            return
        candidate = pending.current
        # An unambiguous round trip (the attempt counter is Karn's
        # rule): request sent at _attach_sent_at, matching ack now.
        self._rtt.observe(sender, self.runtime.now() - self._attach_sent_at)
        self._attach_backoff.reset()
        self._attach_resume_at = 0.0
        self.runtime.cancel_timer(self._ack_timer)
        self._ack_timer = None
        self._pending = None
        old_parent = self.parent
        self.parent = sender
        self._parent_progress_at = self.runtime.now()
        self._arm_parent_timer()
        self.runtime.trace("host.attach_ok", str(self.me), parent=str(sender),
                            case=candidate.case, option=candidate.option,
                            old_parent=str(old_parent) if old_parent else None)
        self.runtime.counter("proto.attach.success").inc()
        self.runtime.counter(
            f"proto.attach.case.{candidate.case}.{candidate.option}").inc()
        if old_parent is not None and old_parent != sender:
            self.port.send(old_parent, DetachNotice(
                child=self.me, size_bits=self.config.control_size_bits))

    def _on_detach(self, notice: DetachNotice, sender: HostId) -> None:
        self.children.discard(notice.child)
        self._child_since.pop(notice.child, None)
        self.runtime.trace("host.child_removed", str(self.me),
                            child=str(notice.child))

    # ------------------------------------------------------------------
    # Parent liveness (Section 4.3, end)
    # ------------------------------------------------------------------

    def _parent_timeout_value(self) -> float:
        cfg = self.config
        intra = self.parent in self.cluster
        fixed = cfg.parent_timeout_intra if intra else cfg.parent_timeout_inter
        if not cfg.adaptive or self.parent is None:
            return fixed
        # The parent heartbeats (InfoMsg) once per exchange period:
        # allow a few missed beats plus one RTO of slack, but never
        # wait longer than the fixed timeout would have.
        period = cfg.info_intra_period if intra else cfg.info_inter_period
        deadline = (cfg.adaptive_parent_beats * period
                    + self._rtt.rto(self.parent, floor=0.0, ceiling=fixed))
        return min(max(deadline, cfg.rto_floor_frac * fixed), fixed)

    def _arm_parent_timer(self) -> None:
        if self.parent is not None:
            self.runtime.cancel_timer(self._parent_timer)
            self._parent_timer = self.runtime.start_timer(
                self._parent_timeout_value(), self._on_parent_timeout)

    def _on_parent_timeout(self) -> None:
        if self.parent is None:
            return
        self.runtime.trace("host.parent_timeout", str(self.me),
                            parent=str(self.parent))
        self.runtime.counter("proto.parent.timeouts").inc()
        # Do not notify the (presumed dead) parent; just forget it and
        # let the attachment procedure find a new one (case I).
        self.parent = None
        self.runtime.cancel_timer(self._parent_timer)
        self._parent_timer = None
        self.runtime.call_soon(self._attachment_tick)

    def _detach_from_parent(self, reason: str) -> None:
        if self.parent is None:
            return
        self.port.send(self.parent, DetachNotice(
            child=self.me, size_bits=self.config.control_size_bits))
        self.runtime.trace("host.detach", str(self.me), parent=str(self.parent),
                            reason=reason)
        self.parent = None
        self.runtime.cancel_timer(self._parent_timer)
        self._parent_timer = None
