"""Compact sets of message sequence numbers (the paper's INFO sets).

Every host tracks the sequence numbers of all broadcast messages it has
received (``INFO_i``), and its view of every other host's set
(``MAP_i[j]``).  Since received messages are mostly contiguous runs,
:class:`SeqnoSet` stores them as sorted, disjoint, inclusive integer
ranges — O(#gaps) memory instead of O(#messages).

The class also implements the paper's Section 6 optimization: a set can
be *pruned* of sequence numbers ``1..n`` once it is known that all hosts
have received them; the pruned prefix is remembered in ``floor`` so
membership and gap queries stay exact.

The paper's partial order on INFO sets (Section 4.2) is provided by
:func:`info_less` (``A < B`` iff ``max(A) < max(B)``) and
:func:`info_equiv` (equal maxima).  The maximum of an empty set is
defined as 0; the source numbers messages from 1.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, Tuple


class SeqnoSet:
    """A set of positive integers stored as sorted disjoint ranges."""

    __slots__ = ("_ranges", "_floor")

    def __init__(self, items: Iterable[int] = ()) -> None:
        self._ranges: List[List[int]] = []  # [lo, hi] inclusive, sorted, disjoint
        self._floor = 0  # all of 1..floor are members (pruned prefix)
        for item in items:
            self.add(item)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def range(cls, lo: int, hi: int) -> "SeqnoSet":
        """The contiguous set {lo, ..., hi} (inclusive)."""
        out = cls()
        out.add_range(lo, hi)
        return out

    def copy(self) -> "SeqnoSet":
        """An independent copy."""
        out = SeqnoSet()
        out._ranges = [r[:] for r in self._ranges]
        out._floor = self._floor
        return out

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, seq: int) -> bool:
        """Insert ``seq``; returns True when it was not already present."""
        return self.add_range(seq, seq)

    def add_range(self, lo: int, hi: int) -> bool:
        """Insert all of {lo..hi}; returns True if anything was new."""
        if lo < 1:
            raise ValueError(f"sequence numbers are positive, got {lo}")
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        if hi <= self._floor:
            return False
        lo = max(lo, self._floor + 1)
        size_before = len(self)
        # Find the window of ranges overlapping or adjacent to [lo, hi].
        starts = [r[0] for r in self._ranges]
        left = bisect_left(starts, lo)
        if left > 0 and self._ranges[left - 1][1] >= lo - 1:
            left -= 1
        right = left
        new_lo, new_hi = lo, hi
        while right < len(self._ranges) and self._ranges[right][0] <= hi + 1:
            new_lo = min(new_lo, self._ranges[right][0])
            new_hi = max(new_hi, self._ranges[right][1])
            right += 1
        self._ranges[left:right] = [[new_lo, new_hi]]
        return len(self) > size_before

    def update(self, other: "SeqnoSet") -> bool:
        """Union-in ``other``; returns True if anything was new."""
        any_new = False
        if other._floor > self._floor:
            any_new |= self.add_range(1, other._floor)
        for lo, hi in other._ranges:
            any_new |= self.add_range(lo, hi)
        return any_new

    def truncate_above(self, n: int) -> None:
        """Remove every member greater than ``n`` (host-crash modeling).

        The pruned prefix is implicit storage and cannot be truncated:
        ``n`` below ``floor`` raises ``ValueError``.
        """
        if n < self._floor:
            raise ValueError(
                f"cannot truncate above {n}: pruned prefix reaches {self._floor}")
        new_ranges = []
        for lo, hi in self._ranges:
            if lo > n:
                break
            new_ranges.append([lo, min(hi, n)])
        self._ranges = new_ranges

    def prune_through(self, n: int) -> None:
        """Forget explicit storage for 1..n (they remain members).

        Only legal when 1..n are all present — pruning must not change
        the set's membership, so a gap below n raises ``ValueError``.
        """
        if n <= self._floor:
            return
        if self.missing_below(n + 1):
            raise ValueError(f"cannot prune through {n}: set has gaps below it")
        self._floor = n
        new_ranges = []
        for lo, hi in self._ranges:
            if hi <= n:
                continue
            new_ranges.append([max(lo, n + 1), hi])
        self._ranges = new_ranges

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def floor(self) -> int:
        """Largest n such that 1..n is stored implicitly (0 if none)."""
        return self._floor

    def __contains__(self, seq: int) -> bool:
        if seq <= 0:
            return False
        if seq <= self._floor:
            return True
        idx = bisect_right([r[0] for r in self._ranges], seq) - 1
        return idx >= 0 and self._ranges[idx][1] >= seq

    def __len__(self) -> int:
        return self._floor + sum(hi - lo + 1 for lo, hi in self._ranges)

    def __bool__(self) -> bool:
        return self._floor > 0 or bool(self._ranges)

    @property
    def max_seqno(self) -> int:
        """The paper's max(INFO); 0 for the empty set."""
        if self._ranges:
            return self._ranges[-1][1]
        return self._floor

    def __iter__(self) -> Iterator[int]:
        for seq in range(1, self._floor + 1):
            yield seq
        for lo, hi in self._ranges:
            yield from range(lo, hi + 1)

    def contiguous_prefix(self) -> int:
        """Largest n such that all of 1..n are members (0 if 1 is absent)."""
        if self._ranges and self._ranges[0][0] == self._floor + 1:
            return self._ranges[0][1]
        return self._floor

    def missing_below(self, limit: int) -> List[int]:
        """All absent sequence numbers in [1, limit) — the set's *gaps*."""
        missing = []
        cursor = self._floor + 1
        for lo, hi in self._ranges:
            if cursor >= limit:
                break
            if lo > cursor:
                missing.extend(range(cursor, min(lo, limit)))
            cursor = max(cursor, hi + 1)
        missing.extend(range(cursor, limit))
        return missing

    def gaps(self) -> List[int]:
        """Absent sequence numbers below this set's own maximum."""
        return self.missing_below(self.max_seqno)

    def difference(self, other: "SeqnoSet", limit: int = 0) -> List[int]:
        """Members of self that are not in ``other`` (ascending).

        With ``limit > 0``, at most that many are returned — used to
        batch gap-filling traffic.
        """
        out = []
        for seq in self:
            if seq not in other:
                out.append(seq)
                if limit and len(out) >= limit:
                    break
        return out

    def issuperset(self, other: "SeqnoSet") -> bool:
        """True when every member of ``other`` is in self."""
        return all(seq in self for seq in other)

    def ranges(self) -> List[Tuple[int, int]]:
        """The explicit ranges (diagnostics; excludes the pruned prefix)."""
        return [(lo, hi) for lo, hi in self._ranges]

    # ------------------------------------------------------------------
    # Equality / representation
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SeqnoSet):
            return NotImplemented
        # Same membership, regardless of internal floor/ranges split.
        if len(self) != len(other):
            return False
        return list(self) == list(other)

    def __hash__(self) -> int:  # pragma: no cover - sets are mutable
        raise TypeError("SeqnoSet is unhashable")

    def __repr__(self) -> str:
        parts = []
        if self._floor:
            parts.append(f"1..{self._floor}*")
        parts.extend(f"{lo}..{hi}" if lo != hi else f"{lo}" for lo, hi in self._ranges)
        return f"SeqnoSet({', '.join(parts)})"


def info_less(a: SeqnoSet, b: SeqnoSet) -> bool:
    """The paper's partial order: A < B iff max(A) < max(B)."""
    return a.max_seqno < b.max_seqno


def info_equiv(a: SeqnoSet, b: SeqnoSet) -> bool:
    """The paper's equivalence: A ≃ B iff max(A) = max(B)."""
    return a.max_seqno == b.max_seqno


def info_leq(a: SeqnoSet, b: SeqnoSet) -> bool:
    """A < B or A ≃ B (used by attachment case III)."""
    return a.max_seqno <= b.max_seqno
