"""Multiple-source broadcast (Section 2).

The paper studies the single-source problem and prescribes the
extension: "a multiple-source broadcast can be performed reliably by
running several identical single-source protocols."  This module does
exactly that — one full protocol instance per source, all multiplexed
over each host's single network attachment.

Mechanically, each host gets a :class:`PortMux` over its real
:class:`~repro.net.hostiface.HostPort`.  Every protocol instance sees a
:class:`VirtualPort` that tags outgoing payloads with the instance name
and receives only packets tagged for it.  Tags are application-level
content: the (nonprogrammable) servers still see ordinary unicast
packets, so nothing about the network model changes.

Each instance maintains its own parent graph, INFO sets, and cluster
views.  That per-instance state is exactly what the paper trades for
simplicity ("From the point of view of efficiency this option also
appears to be a reasonable one"), and experiment authors can measure
the overhead by comparing one multi-source system against the same
streams pushed through a single instance.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..net import BuiltTopology, HostId, HostPort, Packet, Payload
from ..sim import Simulator
from .config import ProtocolConfig
from .delivery import DeliveryRecord
from .engine import BroadcastSystem
from .piggyback import PiggybackPort

#: callback signature: (source the stream belongs to, delivering host, record)
MultiSourceDeliverCallback = Callable[[HostId, HostId, DeliveryRecord], None]


@dataclass(frozen=True)
class TaggedPayload:
    """An instance-tagged wrapper around a protocol payload."""

    instance: str
    inner: Payload

    @property
    def kind(self) -> str:
        """Payload class tag used for traffic accounting."""
        return self.inner.kind

    @property
    def size_bits(self) -> int:
        # The tag itself is a few bytes; model it as part of the payload.
        """Serialized size of this message in bits."""
        return self.inner.size_bits


class VirtualPort:
    """The Transport facade one protocol instance sees.

    Conforms to :class:`repro.io.interfaces.Transport`: taps installed
    here see only *this instance's* traffic (post-demultiplex), layered
    on top of whatever taps sit on the shared real port underneath.
    """

    def __init__(self, mux: "PortMux", instance: str) -> None:
        self._mux = mux
        self.instance = instance
        self._receiver: Optional[Callable[[Packet], None]] = None
        #: optional per-instance inbound tap (chaos injection hook)
        self.tap: Optional[Callable[[Packet], bool]] = None
        #: optional per-instance outbound tap (adversary persona hook)
        self.send_tap: Optional[Callable[[HostId, Payload], bool]] = None

    @property
    def sim(self) -> Simulator:
        """The simulator this port belongs to."""
        return self._mux.port.sim

    @property
    def host_id(self) -> HostId:
        """The host this port belongs to."""
        return self._mux.port.host_id

    def set_receiver(self, callback: Callable[[Packet], None]) -> None:
        """Register the callback invoked for each inbound packet."""
        self._receiver = callback

    def local_time(self) -> float:
        """This host's wall-clock reading."""
        return self._mux.port.local_time()

    def queue_length(self) -> int:
        """Outbound access-link queue depth (shared across instances)."""
        return self._mux.port.queue_length()

    def send(self, dst: HostId, payload: Payload) -> None:
        """Send one individually addressed message (fire-and-forget)."""
        send_tap = self.send_tap
        if send_tap is not None and send_tap(dst, payload):
            return
        self.send_raw(dst, payload)

    def send_raw(self, dst: HostId, payload: Payload) -> None:
        """Tag and transmit, bypassing this instance's send tap.

        The shared real port's own taps (if any) still apply — they sit
        one layer below, on the tagged packet stream.
        """
        self._mux.port.send(dst, TaggedPayload(self.instance, payload))

    def inject(self, packet: Packet) -> None:
        """Deliver an (untagged) packet to the instance, bypassing the tap."""
        if self._receiver is not None:
            self._receiver(packet)

    def _deliver(self, packet: Packet) -> None:
        tap = self.tap
        if tap is not None and tap(packet):
            return
        self.inject(packet)


class PortMux:
    """Demultiplexes one real port among several protocol instances."""

    def __init__(self, port: HostPort) -> None:
        self.port = port
        self._virtual: Dict[str, VirtualPort] = {}
        port.set_receiver(self._on_packet)

    def port_for(self, instance: str) -> VirtualPort:
        """A fresh virtual port for the named instance."""
        if instance in self._virtual:
            raise ValueError(
                f"instance {instance!r} already registered on {self.port.host_id}")
        virtual = VirtualPort(self, instance)
        self._virtual[instance] = virtual
        return virtual

    def _on_packet(self, packet: Packet) -> None:
        payload = packet.payload
        if not isinstance(payload, TaggedPayload):
            self.port.sim.trace.emit("mux.untagged", str(self.port.host_id),
                                     payload=type(payload).__name__)
            return
        virtual = self._virtual.get(payload.instance)
        if virtual is None:
            self.port.sim.trace.emit("mux.unknown_instance",
                                     str(self.port.host_id),
                                     instance=payload.instance)
            return
        unwrapped = Packet(
            src=packet.src, dst=packet.dst, payload=payload.inner,
            cost_bit=packet.cost_bit, hops=packet.hops,
            sent_at=packet.sent_at, stamped_at=packet.stamped_at,
            packet_id=packet.packet_id)
        virtual._deliver(unwrapped)


class MultiSourceBroadcastSystem:
    """Several identical single-source protocols over one network."""

    def __init__(
        self,
        built: BuiltTopology,
        sources: List[HostId],
        config: Optional[ProtocolConfig] = None,
        deliver_callback: Optional[MultiSourceDeliverCallback] = None,
    ) -> None:
        """``deliver_callback`` (if given) receives
        ``(stream_source, delivering_host, record)`` for every delivery
        of every instance — the extra first argument identifies which
        source's stream the record belongs to."""
        if not sources:
            raise ValueError("need at least one source")
        if len(set(sources)) != len(sources):
            raise ValueError("sources must be distinct")
        for source in sources:
            if source not in built.hosts:
                raise ValueError(f"source {source} is not a topology host")
        self.built = built
        self.network = built.network
        self.sim: Simulator = built.network.sim
        self.sources = list(sources)
        config = config or ProtocolConfig()
        # Piggybacking pays off best here: every instance heartbeats the
        # same neighbors, so bundling happens at the *shared* real port
        # (across instances), not inside each instance.
        if config.enable_piggybacking:
            def attach_point(host_id: HostId):
                return PiggybackPort(built.network.host_port(host_id),
                                     window=config.piggyback_window)
            instance_config = dataclasses.replace(
                config, enable_piggybacking=False)
        else:
            attach_point = built.network.host_port
            instance_config = config
        self._muxes: Dict[HostId, PortMux] = {
            host_id: PortMux(attach_point(host_id))
            for host_id in built.hosts
        }
        #: one complete protocol instance per source, keyed by source id
        self.instances: Dict[HostId, BroadcastSystem] = {}
        for source in sources:
            instance_name = f"src:{source}"
            instance_callback = None
            if deliver_callback is not None:
                instance_callback = (
                    lambda host, record, s=source:
                    deliver_callback(s, host, record))
            self.instances[source] = BroadcastSystem(
                built, config=instance_config, source=source,
                deliver_callback=instance_callback,
                port_of=lambda h, name=instance_name: (
                    self._muxes[h].port_for(name)),
            )

    # ------------------------------------------------------------------

    def start(self) -> "MultiSourceBroadcastSystem":
        """Start periodic activity; returns self for chaining."""
        for instance in self.instances.values():
            instance.start()
        return self

    def stop(self) -> None:
        """Stop periodic activity; safe to call more than once."""
        for instance in self.instances.values():
            instance.stop()

    def broadcast(self, source: HostId, content: object = None) -> int:
        """Issue one message from the given source's protocol instance."""
        return self.instances[source].source.broadcast(content)

    def broadcast_stream(self, source: HostId, count: int, interval: float,
                         start_at: float = 0.0) -> None:
        """Schedule ``count`` broadcasts, one every ``interval`` seconds."""
        self.instances[source].broadcast_stream(count, interval, start_at)

    def all_delivered(self, counts: Dict[HostId, int]) -> bool:
        """Have all hosts delivered 1..n for every ``source -> n``?"""
        return all(self.instances[source].all_delivered(n)
                   for source, n in counts.items())

    def run_until_delivered(self, counts: Dict[HostId, int], timeout: float,
                            check_period: float = 0.5) -> bool:
        """Run until 1..n reach all (given) hosts or ``timeout`` elapses."""
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            if self.all_delivered(counts):
                return True
            self.sim.run(until=min(self.sim.now + check_period, deadline))
        return self.all_delivered(counts)
