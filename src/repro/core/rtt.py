"""Adaptive control-plane timing: RTT estimation, backoff, congestion.

The paper leaves every protocol timeout as a tuning parameter
(Sections 4.2, 6); :class:`~repro.core.config.ProtocolConfig` pins them
to constants that suit one topology.  Heterogeneous delays — a LAN
neighbor 4 ms away and a trans-continental parent 500 ms away — want
*per-peer* deadlines, so this module provides the three classical
mechanisms the adaptive control plane composes:

* :class:`RttEstimator` / :class:`PeerRtt` — Jacobson/Karn smoothed
  round-trip estimation (the RFC 6298 rules: ``SRTT``/``RTTVAR`` with
  gains 1/8 and 1/4, ``RTO = SRTT + 4·RTTVAR``, exponential backoff of
  the RTO after a timeout, reset on the next valid sample).  Samples
  come from the attach handshake (request → matching ack, unambiguous
  thanks to the per-attempt counter — Karn's rule) and from the
  INFO-exchange echo (see ``InfoMsg.stamp``/``echo_stamp``), which also
  covers the peers gap fills are requested from.
* :class:`ExponentialBackoff` — capped doubling with seeded jitter, for
  attach retry rounds and non-neighbor gap-fill pacing.  Jitter draws
  come from a dedicated named RNG stream, so enabling the adaptive
  plane never perturbs any other stream's sequence.
* :class:`CongestionSignal` — an exponentially decaying estimate of the
  local *badness* rate (duplicate, corrupt, or discarded receives as a
  fraction of all receives).  When it crosses a threshold the host
  throttles optional repair traffic instead of amplifying it.

Everything here is pure bookkeeping: no simulator events, no hidden
randomness (only :class:`ExponentialBackoff` draws, from the stream it
was given).  The host only *consults* these objects when
``ProtocolConfig.adaptive`` is on, which is how ``adaptive=False`` runs
stay bit-identical to the pre-adaptive protocol.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..net import HostId

#: RFC 6298 gains
ALPHA = 0.125
BETA = 0.25
#: clock granularity floor on the variance term (seconds)
GRANULARITY = 0.001
#: cap on the Karn backoff multiplier (the config ceiling clamps the
#: final deadline anyway; this just keeps the multiplier bounded)
MAX_BACKOFF_MULT = 64.0


class RttEstimator:
    """Jacobson/Karn SRTT/RTTVAR estimation for one peer (RFC 6298)."""

    __slots__ = ("srtt", "rttvar", "samples", "_backoff")

    def __init__(self) -> None:
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.samples: int = 0
        self._backoff: float = 1.0

    def observe(self, sample: float) -> None:
        """Feed one round-trip sample (seconds); negatives are ignored."""
        if sample < 0.0 or not math.isfinite(sample):
            return
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = (1 - BETA) * self.rttvar + BETA * abs(self.srtt - sample)
            self.srtt = (1 - ALPHA) * self.srtt + ALPHA * sample
        self.samples += 1
        # A valid (unambiguous) sample ends any timeout backoff.
        self._backoff = 1.0

    def on_timeout(self) -> None:
        """Karn: double the RTO after a timeout until a fresh sample."""
        self._backoff = min(self._backoff * 2.0, MAX_BACKOFF_MULT)

    def rto(self) -> Optional[float]:
        """Current retransmission timeout, or None with no samples yet."""
        if self.srtt is None:
            return None
        return (self.srtt + max(4.0 * self.rttvar, GRANULARITY)) * self._backoff


class PeerRtt:
    """Per-peer :class:`RttEstimator` registry for one host."""

    __slots__ = ("_peers",)

    def __init__(self) -> None:
        self._peers: Dict[HostId, RttEstimator] = {}

    def observe(self, peer: HostId, sample: float) -> None:
        """Feed one round-trip sample for ``peer``."""
        estimator = self._peers.get(peer)
        if estimator is None:
            estimator = self._peers[peer] = RttEstimator()
        estimator.observe(sample)

    def on_timeout(self, peer: HostId) -> None:
        """Record a timeout against ``peer`` (doubles its RTO)."""
        estimator = self._peers.get(peer)
        if estimator is not None:
            estimator.on_timeout()

    def samples(self, peer: HostId) -> int:
        """Number of samples collected for ``peer``."""
        estimator = self._peers.get(peer)
        return 0 if estimator is None else estimator.samples

    def srtt(self, peer: HostId) -> Optional[float]:
        """Smoothed RTT for ``peer`` (None with no samples)."""
        estimator = self._peers.get(peer)
        return None if estimator is None else estimator.srtt

    def rto(self, peer: HostId, floor: float, ceiling: float) -> float:
        """RTO for ``peer`` clamped to [floor, ceiling].

        With no samples the *ceiling* — the fixed configured timeout —
        is returned: an unmeasured peer behaves exactly as in the
        non-adaptive protocol, so adaptivity can only tighten deadlines
        it has evidence for.
        """
        estimator = self._peers.get(peer)
        raw = None if estimator is None else estimator.rto()
        if raw is None:
            return ceiling
        return min(max(raw, floor), ceiling)


class ExponentialBackoff:
    """Capped exponential backoff with seeded jitter.

    ``next_delay()`` returns ``min(base * 2**k, cap)`` times a jitter
    factor uniform in ``[1 - jitter_frac, 1 + jitter_frac]``, advancing
    ``k``; ``reset()`` returns to the base delay.  The jitter RNG is a
    dedicated stream so the draw sequence is seed-deterministic and
    isolated from every other consumer.
    """

    __slots__ = ("base", "cap", "jitter_frac", "_rng", "_exponent")

    def __init__(self, base: float, cap: float, jitter_frac: float, rng) -> None:
        if base <= 0 or cap < base:
            raise ValueError("need 0 < base <= cap")
        if not 0 <= jitter_frac < 1:
            raise ValueError("jitter_frac must be in [0, 1)")
        self.base = base
        self.cap = cap
        self.jitter_frac = jitter_frac
        self._rng = rng
        self._exponent = 0

    @property
    def exponent(self) -> int:
        """How many consecutive delays have been handed out."""
        return self._exponent

    def next_delay(self) -> float:
        """The next (jittered, doubled) delay."""
        delay = min(self.base * (2.0 ** self._exponent), self.cap)
        self._exponent += 1
        if self.jitter_frac > 0:
            delay *= 1.0 + self._rng.uniform(-self.jitter_frac, self.jitter_frac)
        return delay

    def reset(self) -> None:
        """Return to the base delay (after a success)."""
        self._exponent = 0


class CongestionSignal:
    """Exponentially decaying duplicate/corrupt receive-rate estimate.

    ``note_good``/``note_bad`` feed receives; both tallies decay with
    half-life ``window`` so the level tracks the *recent* rate.  The
    signal is pure event-time arithmetic — no simulator events, no
    randomness — and safe to feed unconditionally.
    """

    __slots__ = ("window", "_good", "_bad", "_at")

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._good = 0.0
        self._bad = 0.0
        self._at = 0.0

    def _decay(self, now: float) -> None:
        dt = now - self._at
        if dt > 0:
            factor = 0.5 ** (dt / self.window)
            self._good *= factor
            self._bad *= factor
        self._at = now

    def note_good(self, now: float) -> None:
        """Record one clean receive."""
        self._decay(now)
        self._good += 1.0

    def note_bad(self, now: float) -> None:
        """Record one duplicate/corrupt/discarded receive."""
        self._decay(now)
        self._bad += 1.0

    def level(self, now: float) -> float:
        """Recent bad-receive fraction in [0, 1] (0 while quiet)."""
        self._decay(now)
        total = self._good + self._bad
        if total < 1.0:
            return 0.0  # too little recent evidence to call congestion
        return self._bad / total
