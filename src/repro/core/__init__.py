"""The paper's contribution: the reliable broadcast protocol.

Stable public surface (``__all__``):

* :class:`BroadcastSystem` — assemble the protocol over a topology.
* :class:`BroadcastHost` / :class:`SourceHost` — the sans-IO protocol
  machines; they depend only on the :class:`repro.io.interfaces.Runtime`
  and :class:`~repro.io.interfaces.Transport` contracts, so the same
  classes run in-sim and over real sockets.
* :class:`MultiSourceBroadcastSystem` — several identical single-source
  protocols multiplexed over one network.
* :class:`ProtocolConfig` / :class:`ClusterMode` / :class:`CostBitMode`
  / :class:`ResourceConfig` — tuning knobs.
* :class:`SeqnoSet` and the INFO partial order — the data structures.
* The wire vocabulary (:class:`DataMsg`, :class:`InfoMsg`, ...).
* :mod:`repro.core.attachment` — the attachment procedure (pure logic).

Transport plumbing (:class:`PiggybackPort`, :class:`ControlBundle`,
:class:`PortMux`, :class:`TaggedPayload`, :class:`VirtualPort`) lives in
its canonical submodules (:mod:`repro.core.piggyback`,
:mod:`repro.core.multisource`); the old ``repro.core.<Name>`` import
paths keep working through a PEP 562 ``__getattr__`` deprecation shim.
"""

from .attachment import (
    AttachmentPlan,
    AttachmentView,
    Candidate,
    classify_case,
    plan_attachment,
)
from .cluster import ClusterView
from .config import ClusterMode, CostBitMode, ProtocolConfig
from .costinfer import PerSenderTransitClassifier, TransitTimeClassifier
from .delivery import DeliveryLog, DeliveryRecord
from .engine import BroadcastSystem
from .host import BroadcastHost
from .mapstate import MapState
from .multisource import MultiSourceBroadcastSystem
from .ordering import FifoDeliveryAdapter
from .resources import ResourceConfig, ShedPolicy, TokenBucket
from .rtt import CongestionSignal, ExponentialBackoff, PeerRtt, RttEstimator
from .seqnoset import SeqnoSet, info_equiv, info_leq, info_less
from .source import SourceHost
from .wire import (
    KIND_CONTROL,
    KIND_DATA,
    AttachAck,
    AttachRequest,
    DataMsg,
    DetachNotice,
    InfoMsg,
    checksum_ok,
    corrupted_copy,
)

# Former top-level names whose canonical home is a submodule.  Importing
# them from ``repro.core`` still works (PEP 562) but warns: they are
# transport-layer plumbing, not protocol surface, and the Transport
# protocol in :mod:`repro.io.interfaces` is the supported way to stack
# or replace ports.
_DEPRECATED = {
    "ControlBundle": "repro.core.piggyback",
    "PiggybackPort": "repro.core.piggyback",
    "PortMux": "repro.core.multisource",
    "TaggedPayload": "repro.core.multisource",
    "VirtualPort": "repro.core.multisource",
}


def __getattr__(name: str):
    module_name = _DEPRECATED.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    import warnings

    warnings.warn(
        f"importing {name} from repro.core is deprecated; "
        f"import it from {module_name} instead",
        DeprecationWarning, stacklevel=2)
    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "AttachAck",
    "AttachRequest",
    "AttachmentPlan",
    "AttachmentView",
    "BroadcastHost",
    "BroadcastSystem",
    "Candidate",
    "CongestionSignal",
    "ClusterMode",
    "CostBitMode",
    "ClusterView",
    "DataMsg",
    "DeliveryLog",
    "DeliveryRecord",
    "DetachNotice",
    "ExponentialBackoff",
    "FifoDeliveryAdapter",
    "InfoMsg",
    "KIND_CONTROL",
    "KIND_DATA",
    "MapState",
    "MultiSourceBroadcastSystem",
    "PeerRtt",
    "PerSenderTransitClassifier",
    "ProtocolConfig",
    "ResourceConfig",
    "RttEstimator",
    "SeqnoSet",
    "ShedPolicy",
    "TokenBucket",
    "SourceHost",
    "TransitTimeClassifier",
    "checksum_ok",
    "classify_case",
    "corrupted_copy",
    "info_equiv",
    "info_leq",
    "info_less",
    "plan_attachment",
]
