"""The paper's contribution: the reliable broadcast protocol.

Public surface:

* :class:`BroadcastSystem` — assemble the protocol over a topology.
* :class:`BroadcastHost` / :class:`SourceHost` — per-host agents.
* :class:`ProtocolConfig` / :class:`ClusterMode` — tuning knobs.
* :class:`SeqnoSet` and the INFO partial order — the data structures.
* :mod:`repro.core.attachment` — the attachment procedure (pure logic).
"""

from .attachment import (
    AttachmentPlan,
    AttachmentView,
    Candidate,
    classify_case,
    plan_attachment,
)
from .cluster import ClusterView
from .config import ClusterMode, CostBitMode, ProtocolConfig
from .costinfer import PerSenderTransitClassifier, TransitTimeClassifier
from .delivery import DeliveryLog, DeliveryRecord
from .engine import BroadcastSystem
from .host import BroadcastHost
from .mapstate import MapState
from .multisource import MultiSourceBroadcastSystem, PortMux, TaggedPayload, VirtualPort
from .ordering import FifoDeliveryAdapter
from .piggyback import ControlBundle, PiggybackPort
from .resources import ResourceConfig, ShedPolicy, TokenBucket
from .rtt import CongestionSignal, ExponentialBackoff, PeerRtt, RttEstimator
from .seqnoset import SeqnoSet, info_equiv, info_leq, info_less
from .source import SourceHost
from .wire import (
    KIND_CONTROL,
    KIND_DATA,
    AttachAck,
    AttachRequest,
    DataMsg,
    DetachNotice,
    InfoMsg,
    checksum_ok,
    corrupted_copy,
)

__all__ = [
    "AttachAck",
    "AttachRequest",
    "AttachmentPlan",
    "AttachmentView",
    "BroadcastHost",
    "BroadcastSystem",
    "Candidate",
    "CongestionSignal",
    "ControlBundle",
    "ClusterMode",
    "CostBitMode",
    "ClusterView",
    "DataMsg",
    "DeliveryLog",
    "DeliveryRecord",
    "DetachNotice",
    "ExponentialBackoff",
    "FifoDeliveryAdapter",
    "InfoMsg",
    "KIND_CONTROL",
    "KIND_DATA",
    "MapState",
    "MultiSourceBroadcastSystem",
    "PeerRtt",
    "PerSenderTransitClassifier",
    "PiggybackPort",
    "PortMux",
    "TaggedPayload",
    "VirtualPort",
    "ProtocolConfig",
    "ResourceConfig",
    "RttEstimator",
    "SeqnoSet",
    "ShedPolicy",
    "TokenBucket",
    "SourceHost",
    "TransitTimeClassifier",
    "checksum_ok",
    "classify_case",
    "corrupted_copy",
    "info_equiv",
    "info_leq",
    "info_less",
    "plan_attachment",
]
