"""Protocol tuning parameters.

The paper (Sections 4.2, 6) leaves several frequencies as explicit
parameters of the algorithm — INFO/parent-pointer exchange, the two
gap-filling rates, the attachment period, and the various timeouts.
They embody the reliability↔cost trade-off studied in experiment E7,
so everything is collected in one frozen dataclass that experiments can
sweep.

``ClusterMode`` selects how a host knows its cluster (Section 6,
conclusions): ``DYNAMIC`` is the paper's main design (learn from cost
bits), ``STATIC`` uses fixed a-priori cluster knowledge, ``SINGLETON``
assumes every host is alone in its cluster (no cluster information at
all).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from .resources import ResourceConfig


class ClusterMode(Enum):
    """How hosts obtain cluster information (Section 6)."""

    DYNAMIC = "dynamic"
    STATIC = "static"
    SINGLETON = "singleton"


class CostBitMode(Enum):
    """How hosts learn whether a delivery crossed an expensive link (§2).

    ``NETWORK`` reads the cost bit servers stamp on packets (the paper's
    primary mechanism); ``TIMESTAMP`` ignores it and infers the class
    from the message's time in transit (the paper's host-level
    alternative, implemented by
    :class:`repro.core.costinfer.TransitTimeClassifier`).
    """

    NETWORK = "network"
    TIMESTAMP = "timestamp"


@dataclass(frozen=True)
class ProtocolConfig:
    """All knobs of the broadcast protocol.  Times are simulated seconds."""

    # -- attachment procedure ------------------------------------------------
    #: how often each host runs the attachment procedure (Section 4.2)
    attachment_period: float = 1.0
    #: jitter applied to the attachment period (desynchronizes hosts)
    attachment_jitter: float = 0.2
    #: how long to wait for an AttachAck before trying the next candidate
    attach_ack_timeout: float = 2.0

    # -- INFO / parent-pointer exchange ---------------------------------------
    #: period of INFO exchange with hosts believed to be cluster neighbors
    info_intra_period: float = 0.5
    #: period of INFO exchange with all other hosts (across clusters)
    info_inter_period: float = 6.0
    #: jitter fraction applied to both exchange periods
    info_jitter_frac: float = 0.2

    # -- parent liveness ------------------------------------------------------
    #: declare an in-cluster parent dead after this long without any message
    parent_timeout_intra: float = 2.5
    #: declare an out-of-cluster parent dead after this long
    parent_timeout_inter: float = 20.0

    # -- gap filling (Section 4.4) --------------------------------------------
    #: period of gap filling toward parent-graph neighbors in the same cluster
    gapfill_neighbor_intra_period: float = 1.0
    #: period of gap filling toward parent-graph neighbors in other clusters
    gapfill_neighbor_inter_period: float = 4.0
    #: period of gap filling toward NON-neighbors (the Figure 4.1 mechanism)
    gapfill_nonneighbor_period: float = 15.0
    #: cap on data messages sent per gap-fill action toward one host
    gapfill_batch_limit: int = 20
    #: smaller cap toward out-of-cluster hosts: batches cross expensive,
    #: low-bandwidth trunks and must not monopolize them
    gapfill_batch_limit_inter: int = 8
    #: do not re-send the same seq to the same host within this window;
    #: bounds duplicate fills caused by stale MAP views while still
    #: retrying genuinely lost fills after the window expires
    gapfill_suppression: float = 8.0
    #: enable the non-neighbor gap-filling extension (Section 4.4, end)
    enable_nonneighbor_gapfill: bool = True

    # -- parent-graph consistency ------------------------------------------------
    #: a child is only reconciled away (dropped because its routine
    #: parent-pointer exchange names someone else) after this grace
    #: period, so an InfoMsg already in flight when it attached cannot
    #: evict it
    child_reconcile_grace: float = 5.0
    #: a host whose parent advertises a larger INFO set but has sent no
    #: data for this long re-sends an AttachRequest to its own parent
    #: (heals the parent having silently dropped it from CHILDREN)
    parent_refresh_timeout: float = 8.0
    #: ablation flags for the two consistency repairs (see DESIGN.md §4);
    #: disabling them demonstrates the lost-ack pathologies they fix
    enable_child_reconcile: bool = True
    enable_parent_refresh: bool = True

    # -- feature flags / ablations ---------------------------------------------
    #: enable case II option 3 (delay-minimizing re-parenting); ablation E10
    enable_delay_optimization: bool = True
    #: hysteresis for II.3: only switch parents when the candidate's
    #: INFO maximum leads the current parent's by at least this many
    #: messages (1 = the paper's literal strict inequality; higher
    #: values damp re-parenting churn caused by view staleness)
    delay_opt_margin: int = 2
    #: how hosts know their clusters (Section 6)
    cluster_mode: ClusterMode = ClusterMode.DYNAMIC
    #: how hosts learn link classes (Section 2): network cost bit, or
    #: host-level inference from message transit times
    cost_bit_mode: CostBitMode = CostBitMode.NETWORK
    #: TIMESTAMP mode: transit beyond this multiple of the cheap
    #: baseline is classified expensive
    transit_spread_factor: float = 5.0
    #: piggyback same-destination control messages into one packet
    #: (Section 6 optimization)
    enable_piggybacking: bool = False
    #: how long a control message may wait for companions
    piggyback_window: float = 0.05
    #: prune INFO sets once all hosts are known to have a prefix (Section 6)
    enable_info_pruning: bool = True

    # -- adaptive control plane (repro.core.rtt; DESIGN.md §9) -------------------
    #: derive attach/parent/gap-fill deadlines from per-peer RTT
    #: estimates instead of the fixed values above.  Off by default:
    #: ``adaptive=False`` is the escape hatch that keeps every existing
    #: trace bit-identical.  The fixed values stay meaningful either
    #: way — they become the *ceilings* of the adaptive deadlines.
    adaptive: bool = False
    #: adaptive deadlines never shrink below this fraction of the
    #: corresponding fixed value (the floor of the clamp)
    rto_floor_frac: float = 0.1
    #: adaptive parent-liveness deadline: this many heartbeat periods
    #: plus the parent's RTO (clamped to the fixed timeout as ceiling)
    adaptive_parent_beats: float = 3.0
    #: adaptive gap-fill retry window: one exchange period plus this
    #: many RTOs of the target (clamped to ``gapfill_suppression``)
    gapfill_rto_mult: float = 3.0
    #: base/cap of the attach-round exponential backoff (applied after
    #: an attachment round exhausts every candidate)
    attach_backoff_base: float = 2.0
    attach_backoff_cap: float = 16.0
    #: +/- jitter fraction on every backoff delay (decorrelates hosts)
    backoff_jitter_frac: float = 0.25
    #: half-life of the congestion signal's decaying receive tallies
    congestion_window: float = 10.0
    #: recent bad-receive fraction beyond which optional repair traffic
    #: (non-neighbor gap fills) is throttled and batches are halved
    congestion_threshold: float = 0.3
    #: how long a control message's uid is remembered for duplicate
    #: suppression (bounds the dedup table; replays older than this are
    #: caught by the protocol's own idempotence)
    control_dedup_window: float = 30.0

    # -- host crash/recovery (failure model, §2/§4) ------------------------------
    #: a crashing host keeps only messages already flushed to stable
    #: storage: the contiguous delivered prefix minus the most recent
    #: ``crash_stable_lag`` messages (writes are flushed in order, the
    #: newest may still be buffered).  0 = the whole contiguous prefix
    #: survives; everything above the prefix is always volatile and lost.
    crash_stable_lag: int = 0

    # -- bounded host resources (repro.core.resources; DESIGN.md §13) ------------
    #: buffer limits, shedding policies, and source admission control.
    #: ``None`` (the default) leaves every buffer unbounded and admission
    #: off — byte-identical to builds without the resource model.
    resources: Optional[ResourceConfig] = None

    # -- message sizes -----------------------------------------------------------
    #: application data message size in bits
    data_size_bits: int = 8_000
    #: control message (INFO exchange, attach/detach) size in bits
    control_size_bits: int = 1_000

    def __post_init__(self) -> None:
        positive = [
            ("attachment_period", self.attachment_period),
            ("attach_ack_timeout", self.attach_ack_timeout),
            ("info_intra_period", self.info_intra_period),
            ("info_inter_period", self.info_inter_period),
            ("parent_timeout_intra", self.parent_timeout_intra),
            ("parent_timeout_inter", self.parent_timeout_inter),
            ("gapfill_neighbor_intra_period", self.gapfill_neighbor_intra_period),
            ("gapfill_neighbor_inter_period", self.gapfill_neighbor_inter_period),
            ("gapfill_nonneighbor_period", self.gapfill_nonneighbor_period),
        ]
        for name, value in positive:
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.attachment_jitter < 0 or self.attachment_jitter >= self.attachment_period:
            raise ValueError("attachment_jitter must be in [0, attachment_period)")
        if not 0 <= self.info_jitter_frac < 1:
            raise ValueError("info_jitter_frac must be in [0, 1)")
        if self.gapfill_batch_limit < 1 or self.gapfill_batch_limit_inter < 1:
            raise ValueError("gapfill batch limits must be at least 1")
        if self.gapfill_suppression < 0:
            raise ValueError("gapfill_suppression must be non-negative")
        if self.child_reconcile_grace < 0:
            raise ValueError("child_reconcile_grace must be non-negative")
        if self.parent_refresh_timeout <= 0:
            raise ValueError("parent_refresh_timeout must be positive")
        if self.delay_opt_margin < 1:
            raise ValueError("delay_opt_margin must be at least 1")
        if self.transit_spread_factor <= 1.0:
            raise ValueError("transit_spread_factor must exceed 1")
        if self.piggyback_window <= 0:
            raise ValueError("piggyback_window must be positive")
        if not 0 < self.rto_floor_frac <= 1:
            raise ValueError("rto_floor_frac must be in (0, 1]")
        if self.adaptive_parent_beats < 1:
            raise ValueError("adaptive_parent_beats must be at least 1")
        if self.gapfill_rto_mult <= 0:
            raise ValueError("gapfill_rto_mult must be positive")
        if self.attach_backoff_base <= 0 or self.attach_backoff_cap < self.attach_backoff_base:
            raise ValueError("need 0 < attach_backoff_base <= attach_backoff_cap")
        if not 0 <= self.backoff_jitter_frac < 1:
            raise ValueError("backoff_jitter_frac must be in [0, 1)")
        if self.congestion_window <= 0:
            raise ValueError("congestion_window must be positive")
        if not 0 < self.congestion_threshold < 1:
            raise ValueError("congestion_threshold must be in (0, 1)")
        if self.control_dedup_window <= 0:
            raise ValueError("control_dedup_window must be positive")
        if self.crash_stable_lag < 0:
            raise ValueError("crash_stable_lag must be non-negative")
        if self.data_size_bits < 1 or self.control_size_bits < 1:
            raise ValueError("message sizes must be positive")

    @classmethod
    def for_scale(cls, n_hosts: int, **overrides: object) -> "ProtocolConfig":
        """Defaults adjusted for deployments of ``n_hosts`` participants.

        The all-pairs inter-cluster INFO exchange generates O(N²)
        control messages per period; on low-bandwidth (56 kbit/s class)
        trunks this saturates the backbone for a few dozen hosts unless
        the period grows with N.  This constructor stretches the
        inter-cluster rates linearly with N (the paper: control traffic
        "can be adjusted as desired", Section 5) while leaving the cheap
        intra-cluster rates alone.
        """
        if n_hosts < 1:
            raise ValueError("n_hosts must be positive")
        inter = max(6.0, 0.3 * n_hosts)
        defaults = dict(
            info_inter_period=inter,
            parent_timeout_inter=3.5 * inter,
            gapfill_nonneighbor_period=2.5 * inter,
            gapfill_suppression=1.5 * inter,
        )
        defaults.update(overrides)
        return cls(**defaults)  # type: ignore[arg-type]

    def scaled(self, factor: float) -> "ProtocolConfig":
        """A config with all periods/timeouts multiplied by ``factor``.

        This is the one-knob version of the paper's reliability↔cost
        trade-off: smaller factors exchange state more often (more
        reliable, more control traffic).
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return dataclasses.replace(
            self,
            attachment_period=self.attachment_period * factor,
            attachment_jitter=self.attachment_jitter * factor,
            attach_ack_timeout=self.attach_ack_timeout * factor,
            info_intra_period=self.info_intra_period * factor,
            info_inter_period=self.info_inter_period * factor,
            parent_timeout_intra=self.parent_timeout_intra * factor,
            parent_timeout_inter=self.parent_timeout_inter * factor,
            gapfill_neighbor_intra_period=self.gapfill_neighbor_intra_period * factor,
            gapfill_neighbor_inter_period=self.gapfill_neighbor_inter_period * factor,
            gapfill_nonneighbor_period=self.gapfill_nonneighbor_period * factor,
            gapfill_suppression=self.gapfill_suppression * factor,
            child_reconcile_grace=self.child_reconcile_grace * factor,
            parent_refresh_timeout=self.parent_refresh_timeout * factor,
            attach_backoff_base=self.attach_backoff_base * factor,
            attach_backoff_cap=self.attach_backoff_cap * factor,
            congestion_window=self.congestion_window * factor,
            control_dedup_window=self.control_dedup_window * factor,
        )
