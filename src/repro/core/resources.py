"""Bounded host resources: buffer limits, shedding policies, admission.

The paper's correctness argument lets hosts buffer and retransmit
without bound — INFO sets, message stores, and outbound queues all grow
as needed.  Under sustained overload that assumption is the first thing
to break on a real machine, so this module gives the protocol an
explicit resource model (DESIGN.md §13):

* :class:`ResourceConfig` bounds the three implicitly-unbounded host
  buffers — the retransmit/message **store**, the gap-fill suppression
  **fill table**, and the **outbound** data queue on the access link —
  each with an explicit shedding policy, every shed traced and counted;
* :class:`TokenBucket` implements source-side **admission control**:
  a saturated source degrades by *rejecting* new broadcasts
  (reject-at-source) instead of by unbounded memory growth.  The
  refill rate is braked by the source's
  :class:`~repro.core.rtt.CongestionSignal`, closing the backpressure
  loop from bad receives to admitted load.

Everything here is **off by default**: ``ProtocolConfig.resources`` is
``None`` and a :class:`ResourceConfig` with all limits at 0 disables
every path.  Neither state draws randomness nor schedules events, so
disabled runs are byte-identical to builds that predate this module
(proven by the E2/E20/E21 signature tests).

Shedding never lies to the protocol: an evicted store entry keeps its
sequence number in INFO (the host really did deliver it); it merely can
no longer *serve* that message, and both data forwarding and gap
filling already tolerate a missing store entry.  Recovery then flows
through the ordinary gap-fill machinery via some other holder.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ShedPolicy(Enum):
    """What to evict when a bounded buffer is full.

    ``DROP_NEWEST``/``DROP_OLDEST`` apply to the message store;
    the outbound queue is inherently drop-newest (the send that found
    the queue full is the one skipped) and admission control is
    inherently :attr:`REJECT_AT_SOURCE` (the broadcast that found the
    bucket empty is the one rejected).
    """

    DROP_NEWEST = "drop_newest"
    DROP_OLDEST = "drop_oldest"
    REJECT_AT_SOURCE = "reject_at_source"


@dataclass(frozen=True)
class ResourceConfig:
    """Per-host resource bounds.  A limit of 0 means *unbounded* (off).

    The defaults leave everything unbounded so
    ``ProtocolConfig(resources=ResourceConfig())`` is still byte-
    identical to ``resources=None`` — limits are opted into one buffer
    at a time.
    """

    #: cap on entries in the message store (non-source hosts only — the
    #: source's store is its stable outbox and is never shed)
    store_limit: int = 0
    #: which end of the store to evict when over the limit
    store_policy: ShedPolicy = ShedPolicy.DROP_OLDEST
    #: cap on total (target, seq) gap-fill suppression entries; evicts
    #: the oldest-stamped entries first (the least useful: their
    #: suppression window is closest to expiring anyway)
    fill_table_limit: int = 0
    #: skip (shed) outbound *data* sends when the access-link transmit
    #: queue holds at least this many packets; control traffic is never
    #: shed, so the control plane stays alive under data overload
    outbound_queue_limit: int = 0
    #: source admission rate in broadcasts/second (0 = no admission
    #: control); excess broadcasts are rejected, not queued
    admission_rate: float = 0.0
    #: burst allowance of the admission token bucket
    admission_burst: int = 8
    #: multiplier applied to the admission refill rate while the
    #: source's congestion signal is above ``congestion_threshold`` —
    #: the backpressure path from bad receives to admitted load
    congestion_brake: float = 0.5

    def __post_init__(self) -> None:
        if self.store_limit < 0:
            raise ValueError("store_limit must be >= 0 (0 = unbounded)")
        if self.store_policy is ShedPolicy.REJECT_AT_SOURCE:
            raise ValueError(
                "store_policy must be DROP_NEWEST or DROP_OLDEST; "
                "REJECT_AT_SOURCE only applies to admission control")
        if self.fill_table_limit < 0:
            raise ValueError("fill_table_limit must be >= 0 (0 = unbounded)")
        if self.outbound_queue_limit < 0:
            raise ValueError("outbound_queue_limit must be >= 0 (0 = unbounded)")
        if self.admission_rate < 0:
            raise ValueError("admission_rate must be >= 0 (0 = off)")
        if self.admission_burst < 1:
            raise ValueError("admission_burst must be at least 1")
        if not 0 < self.congestion_brake <= 1:
            raise ValueError("congestion_brake must be in (0, 1]")

    @property
    def bounds_store(self) -> bool:
        """True when the message store is bounded."""
        return self.store_limit > 0

    @property
    def bounds_fill_table(self) -> bool:
        """True when the gap-fill suppression table is bounded."""
        return self.fill_table_limit > 0

    @property
    def bounds_outbound(self) -> bool:
        """True when outbound data sends are shed against queue depth."""
        return self.outbound_queue_limit > 0

    @property
    def admission_enabled(self) -> bool:
        """True when source-side admission control is active."""
        return self.admission_rate > 0


class TokenBucket:
    """A deterministic token bucket (no RNG, no scheduled events).

    Tokens refill lazily on each :meth:`try_take` from the elapsed
    simulated time, so an idle bucket costs nothing.  The ``brake``
    argument scales the refill rate for the interval since the last
    call — this is how the congestion signal throttles admissions
    without the bucket knowing anything about congestion.
    """

    def __init__(self, rate: float, burst: int, now: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._last = now

    @property
    def tokens(self) -> float:
        """Tokens available as of the last refill (diagnostic)."""
        return self._tokens

    def _refill(self, now: float, brake: float) -> None:
        elapsed = max(now - self._last, 0.0)
        self._last = now
        self._tokens = min(float(self.burst),
                           self._tokens + elapsed * self.rate * brake)

    def try_take(self, now: float, brake: float = 1.0) -> bool:
        """Take one token if available; returns False when empty."""
        self._refill(now, brake)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def reset(self, now: float) -> None:
        """Restore a full bucket (host recovery)."""
        self._tokens = float(self.burst)
        self._last = now
