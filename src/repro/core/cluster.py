"""CLUSTER-set maintenance (Section 4.2).

``CLUSTER_i`` is host *i*'s current belief about which hosts share its
cluster.  In the paper's main design it is learned *dynamically* from
the cost bit of every received message: a message from *j* that
traversed an expensive link evicts *j*; a cheaply delivered message
admits *j*.  A host's view "may not always be consistent either with
that of other hosts or with reality" — the protocol tolerates that.

Two degraded modes from the conclusions are also implemented: static
a-priori knowledge, and no knowledge at all (every host permanently a
singleton cluster).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from ..net import HostId
from .config import ClusterMode


class ClusterView:
    """One host's (possibly wrong) view of its own cluster."""

    def __init__(
        self,
        me: HostId,
        mode: ClusterMode = ClusterMode.DYNAMIC,
        static_members: Optional[Iterable[HostId]] = None,
    ) -> None:
        self.me = me
        self.mode = mode
        if mode is ClusterMode.STATIC:
            if static_members is None:
                raise ValueError("STATIC cluster mode requires static_members")
            self._members: Set[HostId] = set(static_members) | {me}
        else:
            # DYNAMIC starts from the paper's initialization CLUSTER_i = {i};
            # SINGLETON stays there forever.
            self._members = {me}
        self._static_members = set(self._members)

    def reset(self) -> None:
        """Return to the post-initialization state (host crash recovery).

        STATIC knowledge is a-priori configuration and survives; the
        DYNAMIC view is volatile learned state and restarts at {me}.
        """
        if self.mode is ClusterMode.STATIC:
            self._members = set(self._static_members)
        else:
            self._members = {self.me}

    # ------------------------------------------------------------------

    def observe(self, sender: HostId, cost_bit: bool) -> bool:
        """Update from a received message's cost bit.

        Returns True when membership changed.  Only DYNAMIC mode learns;
        the other modes ignore observations.
        """
        if self.mode is not ClusterMode.DYNAMIC or sender == self.me:
            return False
        if cost_bit and sender in self._members:
            self._members.discard(sender)
            return True
        if not cost_bit and sender not in self._members:
            self._members.add(sender)
            return True
        return False

    # ------------------------------------------------------------------

    def __contains__(self, host: Optional[HostId]) -> bool:
        """Membership test; None (no/unknown parent) is never in a cluster."""
        if host is None:
            return False
        return host in self._members

    def members(self) -> Set[HostId]:
        """A copy of the current membership (always includes ``me``)."""
        return set(self._members)

    def neighbors(self) -> Set[HostId]:
        """Members other than ``me``."""
        return self._members - {self.me}

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(sorted(str(m) for m in self._members))
        return f"ClusterView({self.me}: {{{names}}})"
