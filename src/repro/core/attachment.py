"""The attachment procedure (Section 4.2) as pure candidate selection.

This module contains no I/O and no timers: given a snapshot of one
host's state it computes *which case applies*, *whether an
intra-cluster cycle must be broken*, and *the ordered list of candidate
parents* to try.  :class:`repro.core.host.BroadcastHost` drives the
actual request/ack handshake around this logic, which keeps the paper's
case analysis directly unit-testable.

Cases (for host *i*, candidate *j*; ``<`` and ``≃`` compare INFO-set
maxima, see :mod:`repro.core.seqnoset`):

I.  *No parent*:
    1. j ∈ CLUSTER_i, p_i[j] ∉ CLUSTER_i, MAP_i[i] < MAP_i[j]
    2. j ∈ CLUSTER_i, p_i[j] ∉ CLUSTER_i, MAP_i[i] ≃ MAP_i[j],
       order(i) < order(j)
    3. j ∉ CLUSTER_i, MAP_i[i] < MAP_i[j]

II. *Parent in a different cluster* (i is a cluster leader):
    1–2. as I.1–I.2
    3. j ∉ CLUSTER_i, MAP_i[p_i[i]] < MAP_i[j]   (delay optimization)

III. *Parent in the same cluster*:
    1. j ∈ CLUSTER_i, p_i[j] ∉ CLUSTER_i, j ∈ ANC_i \\ {p_i[i]},
       MAP_i[i] < MAP_i[j] or MAP_i[i] ≃ MAP_i[j]

While computing ANC_i, discovering i ∈ ANC_i signals an intra-cluster
cycle; the member with the *highest static order* detaches (the paper's
cycle-breaking rule) and immediately falls into case I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..net import HostId
from .cluster import ClusterView
from .mapstate import MapState
from .seqnoset import info_equiv, info_leq, info_less

OrderFn = Callable[[HostId], int]


@dataclass(frozen=True)
class Candidate:
    """One candidate parent, tagged with the case/option that produced it."""

    target: HostId
    case: str
    option: int


@dataclass
class AttachmentPlan:
    """The outcome of one attachment-procedure evaluation."""

    case: str
    candidates: List[Candidate] = field(default_factory=list)
    #: True when an intra-cluster cycle through this host was detected
    cycle_detected: bool = False
    #: True when this host is the cycle member that must detach (highest order)
    must_break_cycle: bool = False
    cycle: List[HostId] = field(default_factory=list)


@dataclass
class AttachmentView:
    """Snapshot of the host state the attachment procedure reads."""

    me: HostId
    parent: Optional[HostId]
    participants: Sequence[HostId]
    cluster: ClusterView
    maps: MapState
    order: OrderFn
    #: ablation flag for case II option 3 (ProtocolConfig.enable_delay_optimization)
    delay_optimization: bool = True
    #: hysteresis margin for II.3 (ProtocolConfig.delay_opt_margin)
    delay_opt_margin: int = 1


def classify_case(view: AttachmentView) -> str:
    """Which of the paper's three cases applies to this host now."""
    if view.parent is None:
        return "I"
    if view.parent in view.cluster:
        return "III"
    return "II"


def plan_attachment(view: AttachmentView) -> AttachmentPlan:
    """Run the case analysis and produce prioritized candidates."""
    case = classify_case(view)
    if case == "I":
        return AttachmentPlan(case="I", candidates=_case_i_candidates(view))
    if case == "II":
        candidates = _case_i_candidates(view, options=(1, 2), case_tag="II")
        if view.delay_optimization:
            candidates.extend(_case_ii_option3(view))
        return AttachmentPlan(case="II", candidates=candidates)
    return _case_iii_plan(view)


# ----------------------------------------------------------------------
# Case machinery
# ----------------------------------------------------------------------


def _sorted_matches(view: AttachmentView, matches: List[HostId]) -> List[HostId]:
    """Order candidates: most advanced INFO first, then static order."""
    return sorted(
        matches,
        key=lambda j: (-view.maps.info_of(j).max_seqno, view.order(j), str(j)),
    )


def _eligible(view: AttachmentView, j: HostId) -> bool:
    return j != view.me and j != view.parent


def _is_leader_in_my_cluster(view: AttachmentView, j: HostId) -> bool:
    """j is in my cluster and j's parent (as I see it) is not."""
    return j in view.cluster and view.maps.parent_of(j) not in view.cluster


def _case_i_candidates(
    view: AttachmentView,
    options: Sequence[int] = (1, 2, 3),
    case_tag: str = "I",
) -> List[Candidate]:
    my_info = view.maps.info_of(view.me)
    out: List[Candidate] = []

    if 1 in options:
        matches = [
            j for j in view.participants
            if _eligible(view, j)
            and _is_leader_in_my_cluster(view, j)
            and info_less(my_info, view.maps.info_of(j))
        ]
        out.extend(Candidate(j, case_tag, 1) for j in _sorted_matches(view, matches))

    if 2 in options:
        matches = [
            j for j in view.participants
            if _eligible(view, j)
            and _is_leader_in_my_cluster(view, j)
            and info_equiv(my_info, view.maps.info_of(j))
            and view.order(view.me) < view.order(j)
        ]
        out.extend(Candidate(j, case_tag, 2) for j in _sorted_matches(view, matches))

    if 3 in options:
        matches = [
            j for j in view.participants
            if _eligible(view, j)
            and j not in view.cluster
            and info_less(my_info, view.maps.info_of(j))
        ]
        out.extend(Candidate(j, case_tag, 3) for j in _sorted_matches(view, matches))

    return out


def _case_ii_option3(view: AttachmentView) -> List[Candidate]:
    """Leader switches to an out-of-cluster host ahead of its parent.

    ``delay_opt_margin`` adds hysteresis: with the literal strict
    inequality (margin 1), the staleness of MAP views makes leaders
    re-parent on every transient skew, which costs discarded in-flight
    messages and gap fills.
    """
    assert view.parent is not None
    parent_max = view.maps.info_of(view.parent).max_seqno
    matches = [
        j for j in view.participants
        if _eligible(view, j)
        and j not in view.cluster
        and view.maps.info_of(j).max_seqno >= parent_max + view.delay_opt_margin
    ]
    return [Candidate(j, "II", 3) for j in _sorted_matches(view, matches)]


def _case_iii_plan(view: AttachmentView) -> AttachmentPlan:
    plan = AttachmentPlan(case="III")
    ancestors, cycle_through_me = view.maps.ancestors_of_me(view.parent)

    if cycle_through_me:
        cycle = [view.me] + ancestors
        plan.cycle_detected = True
        plan.cycle = cycle
        highest = max(cycle, key=lambda j: (view.order(j), str(j)))
        plan.must_break_cycle = highest == view.me
        return plan

    my_info = view.maps.info_of(view.me)
    matches = [
        j for j in ancestors
        if j != view.parent
        and _is_leader_in_my_cluster(view, j)
        and info_leq(my_info, view.maps.info_of(j))
    ]
    plan.candidates = [Candidate(j, "III", 1) for j in _sorted_matches(view, matches)]
    return plan
