"""The broadcast source host.

The source is a normal protocol participant except that (per Section
4.2) it never runs the attachment procedure — it is permanently the
root of the host parent graph and the leader of its own cluster.  It
numbers data messages consecutively from 1 and pushes each new message
to its current children; everything else (INFO exchange, gap filling,
answering attach requests) is inherited from
:class:`~repro.core.host.BroadcastHost`.
"""

from __future__ import annotations

from typing import List, Optional

from ..io.interfaces import PeriodicHandle
from ..net import HostId
from .delivery import DeliveryRecord
from .host import BroadcastHost
from .resources import TokenBucket
from .wire import DataMsg


class SourceHost(BroadcastHost):
    """The single broadcast source (root of the host parent graph)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._next_seq = 1
        # Source-side admission control (DESIGN.md §13): a token bucket
        # paces how fast new broadcasts are *accepted*; the congestion
        # signal brakes the refill while receives are going bad.  None
        # unless the resource model asks for it.
        self._admission: Optional[TokenBucket] = None
        resources = self.config.resources
        if resources is not None and resources.admission_enabled:
            self._admission = TokenBucket(resources.admission_rate,
                                          resources.admission_burst,
                                          now=self.runtime.now())

    @property
    def is_source(self) -> bool:
        """True for the broadcast source host."""
        return True

    def _build_tasks(self) -> List[PeriodicHandle]:
        # Drop the attachment task: the source never looks for a parent.
        return [task for task in super()._build_tasks() if task.name != "attach"]

    def _attachment_tick(self) -> None:  # pragma: no cover - never scheduled
        raise AssertionError("the source does not run the attachment procedure")

    def _stable_prefix(self) -> int:
        """The source's own stream is its stable outbox (Section 4.1:
        INFO_s is updated *when a message is generated*), so a source
        crash loses volatile protocol state — views, CHILDREN — but
        never the messages it originated or its sequence counter."""
        return self.info.max_seqno

    # ------------------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """Sequence number the next broadcast() call will use."""
        return self._next_seq

    def broadcast(self, content: object = None) -> int:
        """Issue one new broadcast data message; returns its seqno.

        The message is recorded in the source's own INFO set/store
        (``INFO_s`` is updated every time a new message is generated)
        and pushed to the source's current children.  Hosts not yet
        attached will pick it up through attachment + gap filling.

        With admission control enabled, a broadcast arriving while the
        token bucket is empty is **rejected**: no sequence number is
        consumed and 0 is returned (real seqnos start at 1).  Rejection
        is the reject-at-source shedding policy — the degradation mode
        that keeps memory bounded under open-loop overload.
        """
        if not self._admit():
            return 0
        seq = self._next_seq
        self._next_seq += 1
        msg = DataMsg(seq=seq, content=content, created_at=self.runtime.now(),
                      origin=self.me, gapfill=False,
                      size_bits=self.config.data_size_bits)
        self.info.add(seq)
        self.store[seq] = msg
        self.deliveries.record(DeliveryRecord(
            seq=seq, content=content, created_at=self.runtime.now(),
            delivered_at=self.runtime.now(), supplier=self.me, via_gapfill=False))
        self.runtime.trace("source.broadcast", str(self.me), seq=seq,
                            while_crashed=self.crashed)
        self.runtime.counter("proto.source.broadcasts").inc()
        if not self.crashed:
            # While crashed, the message sits in the stable outbox only;
            # hosts catch up via gap filling once the source recovers.
            for child in sorted(self.children):
                self._send_data(child, seq, gapfill=False)
        return seq

    def _admit(self) -> bool:
        """Admission check for one broadcast (True = accepted)."""
        if self._admission is None:
            return True
        resources = self.config.resources
        assert resources is not None
        brake = resources.congestion_brake if self._congested() else 1.0
        if self._admission.try_take(self.runtime.now(), brake=brake):
            return True
        self.runtime.trace("source.admission_reject", str(self.me),
                            braked=brake < 1.0)
        self.runtime.counter("proto.source.admission_rejected").inc()
        return False

    def recover(self) -> None:
        """Recover from a crash; the admission bucket restarts full."""
        if self.crashed and self._admission is not None:
            self._admission.reset(self.runtime.now())
        super().recover()
