"""The broadcast source host.

The source is a normal protocol participant except that (per Section
4.2) it never runs the attachment procedure — it is permanently the
root of the host parent graph and the leader of its own cluster.  It
numbers data messages consecutively from 1 and pushes each new message
to its current children; everything else (INFO exchange, gap filling,
answering attach requests) is inherited from
:class:`~repro.core.host.BroadcastHost`.
"""

from __future__ import annotations

from typing import List, Optional

from ..net import HostId
from ..sim import PeriodicTask
from .delivery import DeliveryRecord
from .host import BroadcastHost
from .wire import DataMsg


class SourceHost(BroadcastHost):
    """The single broadcast source (root of the host parent graph)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._next_seq = 1

    @property
    def is_source(self) -> bool:
        """True for the broadcast source host."""
        return True

    def _build_tasks(self) -> List[PeriodicTask]:
        # Drop the attachment task: the source never looks for a parent.
        return [task for task in super()._build_tasks() if task.name != "attach"]

    def _attachment_tick(self) -> None:  # pragma: no cover - never scheduled
        raise AssertionError("the source does not run the attachment procedure")

    def _stable_prefix(self) -> int:
        """The source's own stream is its stable outbox (Section 4.1:
        INFO_s is updated *when a message is generated*), so a source
        crash loses volatile protocol state — views, CHILDREN — but
        never the messages it originated or its sequence counter."""
        return self.info.max_seqno

    # ------------------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """Sequence number the next broadcast() call will use."""
        return self._next_seq

    def broadcast(self, content: object = None) -> int:
        """Issue one new broadcast data message; returns its seqno.

        The message is recorded in the source's own INFO set/store
        (``INFO_s`` is updated every time a new message is generated)
        and pushed to the source's current children.  Hosts not yet
        attached will pick it up through attachment + gap filling.
        """
        seq = self._next_seq
        self._next_seq += 1
        msg = DataMsg(seq=seq, content=content, created_at=self.sim.now,
                      origin=self.me, gapfill=False,
                      size_bits=self.config.data_size_bits)
        self.info.add(seq)
        self.store[seq] = msg
        self.deliveries.record(DeliveryRecord(
            seq=seq, content=content, created_at=self.sim.now,
            delivered_at=self.sim.now, supplier=self.me, via_gapfill=False))
        self.sim.trace.emit("source.broadcast", str(self.me), seq=seq,
                            while_crashed=self.crashed)
        self.sim.metrics.counter("proto.source.broadcasts").inc()
        if not self.crashed:
            # While crashed, the message sits in the stable outbox only;
            # hosts catch up via gap filling once the source recovers.
            for child in sorted(self.children):
                self._send_data(child, seq, gapfill=False)
        return seq
