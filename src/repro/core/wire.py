"""Wire formats: the protocol's message payloads.

Five message types implement the whole protocol:

* :class:`DataMsg` — a broadcast data message (possibly a gap-filling
  redelivery).  Carries the source's sequence number and generation
  time (the timestamp the paper suggests for transit-time estimation;
  we use it for delay accounting).
* :class:`InfoMsg` — the periodic INFO-set + parent-pointer exchange
  (Section 4.2).  Doubles as the liveness heartbeat.
* :class:`AttachRequest` / :class:`AttachAck` — the attachment
  handshake.  The request carries the child's INFO set so the new
  parent can immediately fill its gaps (Section 4.4); the ack carries
  the parent's INFO set and parent pointer for the child's MAP.
* :class:`DetachNotice` — tells an old parent that a child has left.

All payloads are frozen dataclasses satisfying the network's
:class:`repro.net.message.Payload` protocol.  INFO sets are *copied* at
construction: a payload must be an immutable snapshot, not an alias of
live mutable host state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..net import HostId
from .seqnoset import SeqnoSet

#: payload kind tags used for traffic accounting
KIND_DATA = "data"
KIND_CONTROL = "control"


def _snapshot(info: SeqnoSet) -> SeqnoSet:
    return info.copy()


@dataclass(frozen=True)
class DataMsg:
    """One broadcast data message.

    ``gapfill`` marks redeliveries (sent to fill another host's gap);
    receivers treat any message numbered at or below their current
    maximum as gap-filling regardless of the flag — the flag exists for
    traffic accounting and traces.
    """

    seq: int
    content: object
    created_at: float
    origin: HostId
    gapfill: bool = False
    size_bits: int = 8_000

    @property
    def kind(self) -> str:
        """Payload class tag used for traffic accounting."""
        return KIND_DATA


@dataclass(frozen=True)
class InfoMsg:
    """Periodic INFO-set and parent-pointer exchange (also a heartbeat)."""

    sender: HostId
    info: SeqnoSet
    parent: Optional[HostId]
    size_bits: int = 1_000

    def __post_init__(self) -> None:
        object.__setattr__(self, "info", _snapshot(self.info))

    @property
    def kind(self) -> str:
        """Payload class tag used for traffic accounting."""
        return KIND_CONTROL


@dataclass(frozen=True)
class AttachRequest:
    """Child asks to be included in the candidate parent's CHILDREN set."""

    child: HostId
    child_info: SeqnoSet
    #: monotone per-child counter so stale acks can be recognized
    attempt: int = 0
    size_bits: int = 1_000

    def __post_init__(self) -> None:
        object.__setattr__(self, "child_info", _snapshot(self.child_info))

    @property
    def kind(self) -> str:
        """Payload class tag used for traffic accounting."""
        return KIND_CONTROL


@dataclass(frozen=True)
class AttachAck:
    """Parent confirms the attachment (echoing the request's attempt)."""

    parent: HostId
    attempt: int
    parent_info: SeqnoSet
    parent_parent: Optional[HostId]
    size_bits: int = 1_000

    def __post_init__(self) -> None:
        object.__setattr__(self, "parent_info", _snapshot(self.parent_info))

    @property
    def kind(self) -> str:
        """Payload class tag used for traffic accounting."""
        return KIND_CONTROL


@dataclass(frozen=True)
class DetachNotice:
    """Child tells its former parent to forget it."""

    child: HostId
    size_bits: int = 1_000

    @property
    def kind(self) -> str:
        """Payload class tag used for traffic accounting."""
        return KIND_CONTROL
