"""Wire formats: the protocol's message payloads.

Five message types implement the whole protocol:

* :class:`DataMsg` — a broadcast data message (possibly a gap-filling
  redelivery).  Carries the source's sequence number and generation
  time (the timestamp the paper suggests for transit-time estimation;
  we use it for delay accounting).
* :class:`InfoMsg` — the periodic INFO-set + parent-pointer exchange
  (Section 4.2).  Doubles as the liveness heartbeat, and carries the
  NTP-style ``stamp``/``echo_stamp``/``echo_hold`` triple that feeds
  the adaptive control plane's RTT estimators (:mod:`repro.core.rtt`).
* :class:`AttachRequest` / :class:`AttachAck` — the attachment
  handshake.  The request carries the child's INFO set so the new
  parent can immediately fill its gaps (Section 4.4); the ack carries
  the parent's INFO set and parent pointer for the child's MAP.
* :class:`DetachNotice` — tells an old parent that a child has left.

All payloads are frozen dataclasses satisfying the network's
:class:`repro.net.message.Payload` protocol.  INFO sets are *copied* at
construction: a payload must be an immutable snapshot, not an alias of
live mutable host state.

Wire hardening
--------------

Every payload carries a ``checksum`` over its semantic fields — the
tuple hash of a fully *numeric* canonical (strings pre-folded through
CRC-32), which is deterministic across processes because Python only
randomizes str/bytes hashing — computed at construction.  Receivers
call :func:`checksum_ok` and drop-and-count mismatches, so a corrupted
message can garble *one* delivery but never wedge protocol state.
Control payloads additionally carry a ``uid`` unique per construction;
link-level duplicates and chaos-injected replays share the original's
``uid`` (packet forks share the payload object), which is what the
host's duplicate-control suppression keys on.  :func:`corrupted_copy`
is the injection helper chaos uses to flip a payload's checksum.

Receivers attribute control-plane drops in two dimensions: corrupt
payloads (checksum mismatch) split into ``dup_uid`` (a uid the receiver
has already accepted from that sender — a mangled retransmission) and
``forged_uid`` (a uid never seen before — bit rot on first contact, or
a fabricated message); the legacy aggregate counters keep their names.
Checksums only catch *accidents*: a misbehaving host constructs
payloads whose checksums validate perfectly, which is what
:func:`forged_copy` models for the adversary personas in
:mod:`repro.chaos.adversary`.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..net import HostId
from .seqnoset import SeqnoSet

#: payload kind tags used for traffic accounting
KIND_DATA = "data"
KIND_CONTROL = "control"

#: sentinel meaning "compute the checksum at construction"
_AUTO = -1

_uids = itertools.count(1)


def _snapshot(info: SeqnoSet) -> SeqnoSet:
    return info.copy()


def _info_canonical(info: SeqnoSet) -> Tuple[int, Tuple[Tuple[int, int], ...]]:
    return (info.floor, tuple(info.ranges()))


#: cached CRC-32 per string — host names and type tags repeat endlessly,
#: and folding them to ints keeps the canonical tuples fully numeric
_str_crc: dict = {}


def _scrc(s: str) -> int:
    value = _str_crc.get(s)
    if value is None:
        value = _str_crc[s] = zlib.crc32(s.encode("utf-8"))
    return value


def _host_crc(host: Optional[HostId]) -> int:
    return -1 if host is None else _scrc(host.name)


def _content_crc(content: object) -> int:
    """CRC-32 of a data payload's content rendering (uncached: contents
    are arbitrary application objects, unbounded in cardinality)."""
    return zlib.crc32(repr(content).encode("utf-8"))


def compute_checksum(canonical: object) -> int:
    """32-bit checksum of a canonical field tuple.

    The wire payloads build *numeric* canonicals (strings pre-folded
    through CRC-32 by :func:`_scrc`), for which Python's tuple hash is
    both C-fast and stable across processes — only str/bytes hashing is
    randomized.  This is the per-construction and per-receive hot path,
    which is why it is not a CRC over a ``repr`` rendering.
    """
    return hash(canonical) & 0xFFFFFFFF


def checksum_ok(payload: object) -> bool:
    """Validate a payload's checksum; payloads without one pass."""
    expected = getattr(payload, "checksum", None)
    if expected is None:
        return True
    canonical = getattr(payload, "_canonical", None)
    if canonical is None:  # pragma: no cover - all wire payloads have it
        return True
    return expected == compute_checksum(canonical())


def corrupted_copy(payload: object) -> Optional[object]:
    """A copy of ``payload`` whose checksum no longer validates.

    Models in-flight bit corruption at the receiver-visible level.
    Returns None for payloads without a checksum field (nothing to
    corrupt detectably — e.g. a piggyback bundle; its inner messages
    are checksummed individually).
    """
    if getattr(payload, "checksum", None) is None:
        return None
    return replace(payload, checksum=payload.checksum ^ 0x5A5A5A5A)  # type: ignore[arg-type]


def forged_copy(payload: object, **overrides: object) -> object:
    """A copy of ``payload`` with fields overridden and a *valid*
    checksum recomputed over the forged contents.

    This is the adversary-persona helper (:mod:`repro.chaos.adversary`):
    wire checksums detect accidental corruption, not malice — a
    misbehaving host constructs internally consistent payloads that
    pass every receive-side validity check.  The copy keeps the
    original ``uid`` unless the caller overrides it (``uid=0`` draws a
    fresh one), so forgeries interact with duplicate-control
    suppression exactly like honest traffic.
    """
    if getattr(payload, "checksum", None) is not None:
        overrides.setdefault("checksum", _AUTO)
    return replace(payload, **overrides)  # type: ignore[arg-type]


@dataclass(frozen=True)
class DataMsg:
    """One broadcast data message.

    ``gapfill`` marks redeliveries (sent to fill another host's gap);
    receivers treat any message numbered at or below their current
    maximum as gap-filling regardless of the flag — the flag exists for
    traffic accounting and traces.
    """

    seq: int
    content: object
    created_at: float
    origin: HostId
    gapfill: bool = False
    size_bits: int = 8_000
    checksum: int = _AUTO

    def __post_init__(self) -> None:
        if self.checksum == _AUTO:
            object.__setattr__(self, "checksum", compute_checksum(self._canonical()))

    def _canonical(self) -> tuple:
        return (_scrc("data"), self.seq, _content_crc(self.content),
                self.created_at, _host_crc(self.origin), self.gapfill)

    @property
    def kind(self) -> str:
        """Payload class tag used for traffic accounting."""
        return KIND_DATA


@dataclass(frozen=True)
class InfoMsg:
    """Periodic INFO-set and parent-pointer exchange (also a heartbeat).

    ``stamp`` is the sender's clock at send time; ``echo_stamp`` /
    ``echo_hold`` return the destination's most recent stamp together
    with how long it was held before being echoed.  The receiver of the
    echo computes ``rtt = (now - echo_stamp) - echo_hold`` entirely in
    its own clock — the skew-immune NTP arrangement — which feeds the
    per-peer estimators of :mod:`repro.core.rtt`.  A negative stamp
    means "no sample" (e.g. pre-adaptive senders).
    """

    sender: HostId
    info: SeqnoSet
    parent: Optional[HostId]
    size_bits: int = 1_000
    stamp: float = -1.0
    echo_stamp: float = -1.0
    echo_hold: float = 0.0
    uid: int = 0
    checksum: int = _AUTO

    def __post_init__(self) -> None:
        object.__setattr__(self, "info", _snapshot(self.info))
        if self.uid == 0:
            object.__setattr__(self, "uid", next(_uids))
        if self.checksum == _AUTO:
            object.__setattr__(self, "checksum", compute_checksum(self._canonical()))

    def _canonical(self) -> tuple:
        return (_scrc("info"), _host_crc(self.sender),
                _info_canonical(self.info), _host_crc(self.parent),
                self.stamp, self.echo_stamp, self.echo_hold, self.uid)

    @property
    def kind(self) -> str:
        """Payload class tag used for traffic accounting."""
        return KIND_CONTROL


@dataclass(frozen=True)
class AttachRequest:
    """Child asks to be included in the candidate parent's CHILDREN set."""

    child: HostId
    child_info: SeqnoSet
    #: monotone per-child counter so stale acks can be recognized
    attempt: int = 0
    size_bits: int = 1_000
    uid: int = 0
    checksum: int = _AUTO

    def __post_init__(self) -> None:
        object.__setattr__(self, "child_info", _snapshot(self.child_info))
        if self.uid == 0:
            object.__setattr__(self, "uid", next(_uids))
        if self.checksum == _AUTO:
            object.__setattr__(self, "checksum", compute_checksum(self._canonical()))

    def _canonical(self) -> tuple:
        return (_scrc("attach_req"), _host_crc(self.child),
                _info_canonical(self.child_info), self.attempt, self.uid)

    @property
    def kind(self) -> str:
        """Payload class tag used for traffic accounting."""
        return KIND_CONTROL


@dataclass(frozen=True)
class AttachAck:
    """Parent confirms the attachment (echoing the request's attempt)."""

    parent: HostId
    attempt: int
    parent_info: SeqnoSet
    parent_parent: Optional[HostId]
    size_bits: int = 1_000
    uid: int = 0
    checksum: int = _AUTO

    def __post_init__(self) -> None:
        object.__setattr__(self, "parent_info", _snapshot(self.parent_info))
        if self.uid == 0:
            object.__setattr__(self, "uid", next(_uids))
        if self.checksum == _AUTO:
            object.__setattr__(self, "checksum", compute_checksum(self._canonical()))

    def _canonical(self) -> tuple:
        return (_scrc("attach_ack"), _host_crc(self.parent), self.attempt,
                _info_canonical(self.parent_info),
                _host_crc(self.parent_parent), self.uid)

    @property
    def kind(self) -> str:
        """Payload class tag used for traffic accounting."""
        return KIND_CONTROL


@dataclass(frozen=True)
class DetachNotice:
    """Child tells its former parent to forget it."""

    child: HostId
    size_bits: int = 1_000
    uid: int = 0
    checksum: int = _AUTO

    def __post_init__(self) -> None:
        if self.uid == 0:
            object.__setattr__(self, "uid", next(_uids))
        if self.checksum == _AUTO:
            object.__setattr__(self, "checksum", compute_checksum(self._canonical()))

    def _canonical(self) -> tuple:
        return (_scrc("detach"), _host_crc(self.child), self.uid)

    @property
    def kind(self) -> str:
        """Payload class tag used for traffic accounting."""
        return KIND_CONTROL
