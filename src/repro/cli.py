"""Unified command-line interface: ``python -m repro <subcommand>``.

One front door for the three historical entry points::

    python -m repro experiments [E1 E5 ...] [--seed N] [--jobs N] [--cache]
    python -m repro perf [--quick] [--jobs N] [--json PATH]
    python -m repro sweep E21 --set n=10,20 --seeds 3 [--jobs N]
    python -m repro fuzz run --trials 50 --seed 7 --jobs 4
    python -m repro fuzz replay fuzz-artifacts/repro-7-3.json
    python -m repro demo udp [--messages N] [--seed N] [--time-scale S]
    python -m repro demo udp-chaos [--messages N] [--seed N] [--time-scale S]

Flags are consistent across subcommands: ``--seed`` overrides the RNG
seed, ``--jobs`` fans work out over the process-pool engine
(:mod:`repro.exec`) with bit-identical results, ``--json`` writes
machine-readable output, ``--markdown`` emits GitHub tables.  The old
module entry points (``python -m repro.experiments.cli``,
``python -m repro.perf``) remain as shims over these implementations
and emit the same tables.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from .exec import (
    DEFAULT_CACHE_DIR,
    ItemOutcome,
    ResultCache,
    WorkItem,
    derive_seed,
    make_executor,
)
from .experiments.records import ExperimentResult
from .experiments.registry import REGISTRY, get_spec, run_registered


# ----------------------------------------------------------------------
# experiments subcommand
# ----------------------------------------------------------------------


def add_experiments_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids to run (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the per-experiment default seed")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan experiments (or one experiment's grid) "
                             "out over N worker processes")
    parser.add_argument("--cache", action="store_true",
                        help="reuse on-disk results keyed by (experiment, "
                             "params, code fingerprint)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR", help="cache directory "
                        f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--markdown", action="store_true",
                        help="emit GitHub-flavoured markdown tables")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write all results as JSON to PATH")


def run_experiments_command(args: argparse.Namespace) -> int:
    if args.list:
        for exp_id, spec in REGISTRY.items():
            print(f"{exp_id:5s} {spec.title}")
        return 0

    selected = args.experiments or list(REGISTRY)
    unknown = [e for e in selected if e not in REGISTRY]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2
    jobs = max(1, args.jobs)
    cache = ResultCache(args.cache_dir) if args.cache else None

    results: Dict[str, ExperimentResult] = {}
    walls: Dict[str, float] = {}
    cached_ids: List[str] = []
    to_run: List[str] = []
    for exp_id in selected:
        spec = get_spec(exp_id)
        if cache is not None:
            hit, value = cache.get(exp_id, spec.cache_params(seed=args.seed))
            if hit:
                results[exp_id] = value
                cached_ids.append(exp_id)
                continue
        to_run.append(exp_id)

    if jobs > 1 and len(to_run) > 1:
        # Fan whole experiments out; each runs serially in its worker.
        items = [WorkItem(key=(exp_id,), fn=run_registered,
                          kwargs=dict(exp_id=exp_id, seed=args.seed))
                 for exp_id in to_run]
        outcomes = make_executor(jobs).map(items)
        failed: List[ItemOutcome] = []
        for exp_id, outcome in zip(to_run, outcomes):
            if outcome.ok:
                results[exp_id] = outcome.value
                walls[exp_id] = outcome.wall_s
            else:
                failed.append(outcome)
        if failed:
            for outcome in failed:
                assert outcome.failure is not None
                print(f"experiment {outcome.key[0]} failed — "
                      f"{outcome.failure.describe()}", file=sys.stderr)
    else:
        # A single selected experiment still exploits --jobs through
        # its internal grid fan-out (E1/E2/E5/E20/E21 accept it).
        import time

        executor = make_executor(jobs) if jobs > 1 else None
        for exp_id in to_run:
            started = time.time()
            results[exp_id] = get_spec(exp_id).run(seed=args.seed,
                                                   executor=executor)
            walls[exp_id] = time.time() - started

    collected: List[ExperimentResult] = []
    for exp_id in selected:
        result = results.get(exp_id)
        if result is None:
            continue  # failed in a worker; already reported
        if cache is not None and exp_id not in cached_ids:
            cache.put(exp_id, get_spec(exp_id).cache_params(seed=args.seed),
                      result)
        collected.append(result)
        print()
        if args.markdown:
            print(result.render_markdown())
        else:
            print(result.render())
            if exp_id in cached_ids:
                print(f"  [{exp_id} loaded from cache]")
            else:
                print(f"  [{exp_id} finished in {walls[exp_id]:.1f}s wall]")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as out:
            json.dump([r.as_dict() for r in collected], out, indent=2)
            out.write("\n")
        print(f"\nwrote JSON results to {args.json}", file=sys.stderr)
    return 0 if len(collected) == len(selected) else 1


# ----------------------------------------------------------------------
# sweep subcommand
# ----------------------------------------------------------------------


def _parse_value(token: str) -> Any:
    try:
        return ast.literal_eval(token)
    except (ValueError, SyntaxError):
        return token


def _parse_axis(entry: str) -> "tuple[str, List[Any]]":
    if "=" not in entry:
        raise SystemExit(f"--set expects NAME=V1,V2,... got {entry!r}")
    name, _, raw = entry.partition("=")
    values = [_parse_value(token) for token in raw.split(",") if token != ""]
    if not values:
        raise SystemExit(f"--set {name}= needs at least one value")
    return name.strip(), values


def add_sweep_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("experiment", help="experiment id to sweep (e.g. E21)")
    parser.add_argument("--set", action="append", dest="axes", default=[],
                        metavar="NAME=V1,V2,...",
                        help="sweep axis over a runner parameter (repeatable)")
    parser.add_argument("--seeds", type=int, default=1, metavar="N",
                        help="seed replicas per grid point, derived "
                             "deterministically from --seed (default 1)")
    parser.add_argument("--seed", type=int, default=None,
                        help="base seed (default: the runner's default)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the grid fan-out")
    parser.add_argument("--markdown", action="store_true",
                        help="emit a GitHub-flavoured markdown table")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the merged result as JSON to PATH")


def run_sweep_command(args: argparse.Namespace) -> int:
    from .experiments.sweep import grid

    try:
        spec = get_spec(args.experiment)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    axes: Dict[str, List[Any]] = {}
    for entry in args.axes:
        name, values = _parse_axis(entry)
        if name not in spec.defaults:
            print(f"{spec.id} has no parameter {name!r}; available: "
                  f"{', '.join(spec.defaults)}", file=sys.stderr)
            return 2
        axes[name] = values

    base_seed = args.seed if args.seed is not None else spec.default_seed
    if args.seeds > 1 and base_seed is None:
        print("--seeds needs a --seed (runner has no integer default)",
              file=sys.stderr)
        return 2
    seeds: List[Optional[int]] = [base_seed]
    if args.seeds > 1:
        assert base_seed is not None
        seeds = [derive_seed(base_seed, spec.id, "replica", i)
                 for i in range(args.seeds)]

    points = list(grid(**axes)) or [{}]
    items = [
        WorkItem(key=(spec.id,) + tuple(sorted(point.items())) + (seed,),
                 fn=run_registered,
                 kwargs=dict(exp_id=spec.id, seed=seed, **point))
        for point in points for seed in seeds
    ]
    outcomes = make_executor(max(1, args.jobs)).map(items)

    axis_names = sorted(axes)
    merged: Optional[ExperimentResult] = None
    failures: List[ItemOutcome] = []
    for item, outcome in zip(items, outcomes):
        if not outcome.ok:
            failures.append(outcome)
            continue
        sub: ExperimentResult = outcome.value
        if merged is None:
            merged = ExperimentResult(
                f"{spec.id}-sweep",
                f"{spec.title} — sweep over {axis_names or ['seed']}",
                axis_names + ["seed"] + [c for c in sub.columns
                                         if c not in axis_names])
        point = dict(item.kwargs)
        point.pop("exp_id", None)
        used_seed = point.pop("seed", None)
        for row in sub.rows:
            cells = {**point, "seed": used_seed if used_seed is not None
                     else "-", **row}
            for column in merged.columns:
                cells.setdefault(column, "-")
            merged.add_row(**cells)
    for outcome in failures:
        assert outcome.failure is not None
        print(f"sweep point {outcome.key!r} failed — "
              f"{outcome.failure.describe()}", file=sys.stderr)
    if merged is None:
        print("every sweep point failed", file=sys.stderr)
        return 1
    print()
    print(merged.render_markdown() if args.markdown else merged.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as out:
            json.dump(merged.as_dict(), out, indent=2)
            out.write("\n")
        print(f"\nwrote JSON results to {args.json}", file=sys.stderr)
    return 0 if not failures else 1


# ----------------------------------------------------------------------
# demo subcommand
# ----------------------------------------------------------------------


def add_demo_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("what", choices=["udp", "udp-chaos"],
                        help="udp: run the seed-matched scenario once in-sim "
                             "and once over localhost UDP sockets, then "
                             "compare per-host delivered seqno sets; "
                             "udp-chaos: same, with an identical seeded "
                             "ChaosSpec (host crash + packet loss/corruption) "
                             "injected on both backends and the invariant "
                             "monitor asserting zero stable violations")
    parser.add_argument("--messages", type=int, default=None, metavar="N",
                        help="broadcasts to deliver on each backend "
                             "(default 5, or 8 for udp-chaos)")
    parser.add_argument("--seed", type=int, default=7,
                        help="seed shared by both backends (default 7)")
    parser.add_argument("--time-scale", type=float, default=0.05,
                        metavar="S", help="wall seconds per protocol second "
                        "on the UDP side; 0.05 runs the paper's multi-second "
                        "timers 20x faster than real time (default 0.05)")


def run_demo_command(args: argparse.Namespace) -> int:
    if args.what == "udp-chaos":
        from .io.crosscheck import demo_udp_chaos

        chaos_result = demo_udp_chaos(
            messages=args.messages if args.messages is not None else 8,
            time_scale=args.time_scale, seed=args.seed)
        return 0 if chaos_result.ok else 1
    from .io.crosscheck import demo_udp

    result = demo_udp(
        messages=args.messages if args.messages is not None else 5,
        time_scale=args.time_scale, seed=args.seed)
    return 0 if result.match else 1


# ----------------------------------------------------------------------
# perf subcommand (implementation lives in repro.perf.__main__)
# ----------------------------------------------------------------------


def run_perf_command(args: argparse.Namespace) -> int:
    from .perf.__main__ import run_perf

    return run_perf(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reliable-broadcast reproduction: experiments, perf "
                    "benchmarks, and parameter sweeps under one CLI.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiments = subparsers.add_parser(
        "experiments", help="run paper experiments and print their tables",
        description="Run the E-series experiments (see --list).")
    add_experiments_args(experiments)
    experiments.set_defaults(func=run_experiments_command)

    from .perf.__main__ import add_perf_args

    perf = subparsers.add_parser(
        "perf", help="run the pinned perf scenario matrix",
        description="Run the perf matrix and write BENCH_<date>.json.")
    add_perf_args(perf)
    perf.set_defaults(func=run_perf_command)

    sweep = subparsers.add_parser(
        "sweep", help="sweep one experiment over parameter axes and seeds",
        description="Fan one experiment out over a parameter grid and/or "
                    "derived seed replicas, merging rows into one table.")
    add_sweep_args(sweep)
    sweep.set_defaults(func=run_sweep_command)

    demo = subparsers.add_parser(
        "demo", help="run the sans-IO core over real UDP sockets",
        description="Deploy the unchanged protocol machines over localhost "
                    "UDP and cross-check delivered seqno sets against the "
                    "seed-matched discrete-event run (exit 0 on parity).")
    add_demo_args(demo)
    demo.set_defaults(func=run_demo_command)

    from .fuzz.cli import add_fuzz_args, run_fuzz_command

    fuzz = subparsers.add_parser(
        "fuzz", help="fuzz the fault space; shrink and replay failures",
        description="Seed-deterministic chaos fuzzing: random fault "
                    "schedules, delta-debugged minimal repros, and "
                    "byte-identical artifact replay.")
    add_fuzz_args(fuzz)
    fuzz.set_defaults(func=run_fuzz_command)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
