"""Parallel execution engine: deterministic fan-out over worker processes.

See DESIGN.md §10 for the invariants (per-item derived seeds, ordered
merge, structured failures, fingerprint-keyed caching) and
:mod:`repro.exec.engine` for the executors.
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache, canonical_params, code_fingerprint
from .engine import (
    ExecutionError,
    Executor,
    ItemFailure,
    ItemOutcome,
    ProcessExecutor,
    SerialExecutor,
    WorkItem,
    make_executor,
    values_or_raise,
)
from .seeds import canonical_key, derive_seed

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ExecutionError",
    "Executor",
    "ItemFailure",
    "ItemOutcome",
    "ProcessExecutor",
    "ResultCache",
    "SerialExecutor",
    "WorkItem",
    "canonical_key",
    "canonical_params",
    "code_fingerprint",
    "derive_seed",
    "make_executor",
    "values_or_raise",
]
