"""Deterministic seed derivation for fanned-out work items.

Every parallel work item gets its own RNG seed, derived from a base
seed plus the item's canonical identity.  Derivation must be *stable
across processes and interpreter runs* — ``hash()`` is salted per
process (``PYTHONHASHSEED``), so we go through SHA-256 of a canonical
JSON encoding instead.  Serial and parallel execution then agree on
every item's seed by construction (DESIGN.md §10).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

#: derived seeds fit comfortably in ``random.Random``'s input space and
#: stay positive so they survive round-trips through CLIs and JSON
_SEED_BITS = 62


def canonical_key(*components: Any) -> str:
    """Canonical JSON encoding of a work-item identity.

    Dict keys are sorted and non-JSON types fall back to ``repr``, so
    logically equal identities encode identically regardless of
    construction order or process.
    """
    return json.dumps(components, sort_keys=True, separators=(",", ":"),
                      default=repr)


def derive_seed(base_seed: int, *components: Any) -> int:
    """Derive a per-item seed from ``base_seed`` and the item identity.

    >>> derive_seed(1, "E2", 0) == derive_seed(1, "E2", 0)
    True
    >>> derive_seed(1, "E2", 0) != derive_seed(1, "E2", 1)
    True
    """
    payload = canonical_key(int(base_seed), *components)
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (1 << _SEED_BITS)
