"""On-disk result cache for experiment runs.

Entries are keyed by ``(runner name, canonicalized params, code
fingerprint)``: re-running ``EXPERIMENTS.md`` only recomputes what
changed.  The code fingerprint hashes the *contents* of every ``.py``
file in the ``repro`` package, so any source edit — a runner tweak, a
protocol fix three layers down — invalidates every cached result
without any manual versioning (DESIGN.md §10).
"""

from __future__ import annotations

import functools
import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Mapping, Optional, Tuple

from .seeds import canonical_key

#: default cache directory, relative to the working directory
DEFAULT_CACHE_DIR = ".repro-cache"


@functools.lru_cache(maxsize=4)
def code_fingerprint(package_root: Optional[str] = None) -> str:
    """SHA-256 over the sorted contents of every ``.py`` under the package.

    Defaults to the installed ``repro`` package.  Stable across
    machines and mtimes — only actual source changes move it.
    """
    if package_root is None:
        import repro

        package_root = str(Path(repro.__file__).parent)
    root = Path(package_root)
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def canonical_params(params: Mapping[str, Any]) -> str:
    """Canonical JSON encoding of a params mapping (sorted, repr fallback)."""
    return canonical_key(dict(params))


class ResultCache:
    """Pickle-per-entry cache under ``root``; key = hash of identity.

    ``get``/``put`` take the entry's identity — runner name and params —
    and combine it with the cache's code fingerprint.  A corrupt or
    unreadable entry counts as a miss (and is removed), never an error.
    """

    def __init__(self, root: "Path | str" = DEFAULT_CACHE_DIR,
                 fingerprint: Optional[str] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fingerprint = (fingerprint if fingerprint is not None
                            else code_fingerprint())
        self.hits = 0
        self.misses = 0

    def key_for(self, runner: str, params: Mapping[str, Any]) -> str:
        identity = canonical_key(runner, dict(params), self.fingerprint)
        return hashlib.sha256(identity.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, runner: str, params: Mapping[str, Any]
            ) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a miss returns ``(False, None)``."""
        path = self._path(self.key_for(runner, params))
        if not path.exists():
            self.misses += 1
            return False, None
        try:
            with path.open("rb") as handle:
                entry = pickle.load(handle)
            value = entry["value"]
        except Exception:
            path.unlink(missing_ok=True)
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, runner: str, params: Mapping[str, Any], value: Any) -> Path:
        """Store ``value``; atomic rename so readers never see partials."""
        path = self._path(self.key_for(runner, params))
        entry = {
            "runner": runner,
            "params": canonical_params(params),
            "fingerprint": self.fingerprint,
            "value": value,
        }
        fd, tmp_name = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path
