"""Process-pool execution engine with deterministic fan-out.

The engine runs independent simulation work items (grid points, seed
replicas, whole experiments) either in-process (:class:`SerialExecutor`)
or across ``multiprocessing`` workers (:class:`ProcessExecutor`), under
three invariants that make parallel execution *bit-identical* to serial
execution (DESIGN.md §10):

1. **Self-contained items.**  A :class:`WorkItem` carries a picklable
   module-level callable plus its kwargs (and optionally a derived
   seed); the simulation is built *inside* the worker, so no state
   leaks between items or from the parent process.
2. **Ordered merge.**  ``map()`` returns outcomes in submission order,
   regardless of completion order.
3. **Structured failure.**  A worker that raises, hangs past its
   timeout, or dies outright yields an :class:`ItemOutcome` with a
   typed :class:`ItemFailure` — one bad grid point never aborts the
   batch, and the failure names the offending item.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from queue import Empty
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)


@dataclass(frozen=True)
class WorkItem:
    """One independent unit of work.

    ``key`` is the item's canonical identity: it names the item in
    failure reports and cache entries and must be unique within a
    batch.  ``seed``, when set, is merged into ``kwargs`` under
    ``seed_param`` just before the call — this is how derived per-item
    seeds travel with the item rather than with the executor.
    """

    key: Tuple[Any, ...]
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    seed_param: str = "seed"

    def call_kwargs(self) -> Dict[str, Any]:
        kwargs = dict(self.kwargs)
        if self.seed is not None:
            kwargs[self.seed_param] = self.seed
        return kwargs


@dataclass(frozen=True)
class ItemFailure:
    """Why a work item produced no value."""

    kind: str  #: ``"exception"`` | ``"timeout"`` | ``"crash"``
    exc_type: str = ""
    message: str = ""
    traceback: str = ""

    def describe(self) -> str:
        if self.kind == "exception":
            return f"{self.exc_type}: {self.message}"
        return f"{self.kind}: {self.message}" if self.message else self.kind


@dataclass
class ItemOutcome:
    """One item's result: a value, or a structured failure."""

    key: Tuple[Any, ...]
    ok: bool
    value: Any = None
    failure: Optional[ItemFailure] = None
    wall_s: float = 0.0
    cached: bool = False


class Executor(Protocol):
    """What runners need from an executor: ordered ``map`` plus ``jobs``."""

    jobs: int

    def map(self, items: Sequence[WorkItem]) -> List[ItemOutcome]:
        ...


class ExecutionError(RuntimeError):
    """Raised by :func:`values_or_raise` when any item failed."""

    def __init__(self, failed: Sequence[ItemOutcome]):
        self.failed = list(failed)
        lines = [f"{len(self.failed)} work item(s) failed:"]
        for outcome in self.failed:
            assert outcome.failure is not None
            lines.append(f"  {outcome.key!r}: {outcome.failure.describe()}")
        super().__init__("\n".join(lines))


def values_or_raise(outcomes: Sequence[ItemOutcome]) -> List[Any]:
    """Unwrap outcome values, raising :class:`ExecutionError` on failure."""
    failed = [o for o in outcomes if not o.ok]
    if failed:
        raise ExecutionError(failed)
    return [o.value for o in outcomes]


def _run_item(fn: Callable[..., Any], kwargs: Dict[str, Any]
              ) -> Tuple[str, Any, float]:
    """Shared invoke-and-classify used by both executors."""
    start = time.perf_counter()
    try:
        value = fn(**kwargs)
    except Exception as exc:  # noqa: BLE001 - structured capture is the point
        wall = time.perf_counter() - start
        failure = ItemFailure(kind="exception", exc_type=type(exc).__name__,
                              message=str(exc),
                              traceback=traceback.format_exc())
        return "fail", failure, wall
    return "ok", value, time.perf_counter() - start


class SerialExecutor:
    """Runs every item in-process, in submission order.

    This is the reference implementation the parallel path must match
    row-for-row; it is also the default everywhere, so single-job runs
    pay no multiprocessing overhead at all.
    """

    jobs = 1

    def map(self, items: Sequence[WorkItem]) -> List[ItemOutcome]:
        outcomes: List[ItemOutcome] = []
        for item in items:
            tag, payload, wall = _run_item(item.fn, item.call_kwargs())
            if tag == "ok":
                outcomes.append(ItemOutcome(item.key, True, value=payload,
                                            wall_s=wall))
            else:
                outcomes.append(ItemOutcome(item.key, False, failure=payload,
                                            wall_s=wall))
        return outcomes


def _worker_main(queue: Any, idx: int, fn: Callable[..., Any],
                 kwargs: Dict[str, Any]) -> None:
    """Worker process entry point: run one item, report one message."""
    tag, payload, wall = _run_item(fn, kwargs)
    if tag == "ok":
        try:
            queue.put((idx, "ok", payload, wall))
            return
        except Exception as exc:  # unpicklable result: report, don't hang
            payload = ItemFailure(
                kind="exception", exc_type=type(exc).__name__,
                message=f"result not picklable: {exc}",
                traceback=traceback.format_exc())
    queue.put((idx, "fail", payload, wall))


class ProcessExecutor:
    """Fans items out over worker processes, one process per item.

    A fresh process per item (bounded to ``jobs`` concurrent workers)
    keeps items hermetic, lets a timeout actually *kill* the offender,
    and turns an abnormal worker death (segfault, ``os._exit``, OOM
    kill) into a ``"crash"`` failure for exactly that item.  Results
    are merged in submission order.
    """

    def __init__(self, jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 start_method: Optional[str] = None):
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.timeout = timeout
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else available[0]
        self._ctx = multiprocessing.get_context(start_method)

    def map(self, items: Sequence[WorkItem]) -> List[ItemOutcome]:
        items = list(items)
        queue = self._ctx.Queue()
        outcomes: List[Optional[ItemOutcome]] = [None] * len(items)
        pending = deque(enumerate(items))
        #: idx -> (process, deadline or None)
        running: Dict[int, Tuple[Any, Optional[float]]] = {}
        reported: Dict[int, Tuple[str, Any, float]] = {}

        def launch() -> None:
            while pending and len(running) < self.jobs:
                idx, item = pending.popleft()
                process = self._ctx.Process(
                    target=_worker_main,
                    args=(queue, idx, item.fn, item.call_kwargs()),
                    daemon=True)
                process.start()
                deadline = (time.monotonic() + self.timeout
                            if self.timeout is not None else None)
                running[idx] = (process, deadline)

        def drain(block_s: float) -> None:
            try:
                idx, tag, payload, wall = queue.get(timeout=block_s)
            except Empty:
                return
            while True:
                reported[idx] = (tag, payload, wall)
                try:
                    idx, tag, payload, wall = queue.get_nowait()
                except Empty:
                    return

        launch()
        while running:
            drain(0.02)
            now = time.monotonic()
            for idx in list(running):
                process, deadline = running[idx]
                key = items[idx].key
                if idx in reported:
                    tag, payload, wall = reported.pop(idx)
                    process.join()
                    if tag == "ok":
                        outcomes[idx] = ItemOutcome(key, True, value=payload,
                                                    wall_s=wall)
                    else:
                        outcomes[idx] = ItemOutcome(key, False, failure=payload,
                                                    wall_s=wall)
                elif not process.is_alive():
                    # Died without reporting: give the queue feeder one
                    # last chance, then classify as a crash.
                    drain(0.05)
                    if idx in reported:
                        continue  # handled on the next pass
                    process.join()
                    outcomes[idx] = ItemOutcome(key, False, failure=ItemFailure(
                        kind="crash",
                        message=f"worker exited with code {process.exitcode} "
                                "before reporting a result"))
                elif deadline is not None and now > deadline:
                    process.terminate()
                    process.join()
                    outcomes[idx] = ItemOutcome(key, False, failure=ItemFailure(
                        kind="timeout",
                        message=f"exceeded {self.timeout:.1f}s; worker killed"),
                        wall_s=self.timeout or 0.0)
                else:
                    continue
                running.pop(idx)
                launch()
        queue.close()
        queue.join_thread()
        return [o for o in outcomes if o is not None]


def make_executor(jobs: Optional[int] = None,
                  timeout: Optional[float] = None
                  ) -> "SerialExecutor | ProcessExecutor":
    """``jobs <= 1`` (or ``None``) → serial; otherwise a process pool."""
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ProcessExecutor(jobs=jobs, timeout=timeout)
