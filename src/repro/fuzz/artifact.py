"""Self-contained JSON repro artifacts: save a failure, replay it anywhere.

An artifact captures one failing :class:`TrialSpec` (usually already
shrunk), the failure class it reproduces, and the delivery signature
the replay must match byte-for-byte.  Everything is plain JSON — no
pickles, no code references — so an artifact attached to a bug report
or uploaded from CI replays identically on any checkout with::

    python -m repro fuzz replay repro-XYZ.json

Encoding is canonical (sorted keys, fixed separators, trailing
newline): saving the same artifact twice produces byte-identical files,
so artifacts diff cleanly and deduplicate by content hash.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..chaos import (
    AdversarySpec,
    ChaosSpec,
    HostChurnSpec,
    HostOutageSpec,
    LinkChurnSpec,
    LinkOutageSpec,
    PartitionSpec,
    PartitionWindowSpec,
    PacketFaultSpec,
    ServerOutageSpec,
)
from ..scenarios.partitions import WindowSpec
from .generator import TopologySpec, TrialSpec, WorkloadSpec
from .properties import TrialOutcome, run_trial

SCHEMA = "repro.fuzz.artifact/v1"

#: ChaosSpec event fields and their element types, for reconstruction
_CHAOS_EVENT_TYPES: Dict[str, type] = {
    "host_outages": HostOutageSpec,
    "link_outages": LinkOutageSpec,
    "server_outages": ServerOutageSpec,
    "partitions": PartitionSpec,
    "window_partitions": PartitionWindowSpec,
    "host_churn": HostChurnSpec,
    "link_churn": LinkChurnSpec,
    "packet_faults": PacketFaultSpec,
    # NOTE: AdversarySpec windows default to end=Infinity; that is
    # round-trip-safe because json emits and parses the IEEE Infinity
    # literal (the same convention PacketFaultSpec's open end uses).
    "adversaries": AdversarySpec,
}


def _tuplify(value: Any) -> Any:
    """JSON lists back to the tuples the frozen specs expect."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


def spec_to_dict(spec: TrialSpec) -> Dict[str, Any]:
    """A plain-JSON encoding of a trial (tuples become lists)."""
    return dataclasses.asdict(spec)


def spec_from_dict(data: Dict[str, Any]) -> TrialSpec:
    """Reconstruct a :class:`TrialSpec` from :func:`spec_to_dict` output."""
    chaos_data = dict(data["chaos"])
    chaos_kwargs: Dict[str, Any] = {"heal_by": chaos_data["heal_by"]}
    for field_name, event_type in _CHAOS_EVENT_TYPES.items():
        events = []
        for entry in chaos_data.get(field_name, ()):  # absent field: empty
            entry = {key: _tuplify(value) for key, value in entry.items()}
            if event_type is PartitionWindowSpec and isinstance(
                    entry["window"], dict):
                entry["window"] = WindowSpec(**entry["window"])
            events.append(event_type(**entry))
        chaos_kwargs[field_name] = tuple(events)
    return TrialSpec(
        seed=data["seed"],
        protocol=data["protocol"],
        adaptive=data["adaptive"],
        crash_stable_lag=data["crash_stable_lag"],
        topology=TopologySpec(**data["topology"]),
        workload=WorkloadSpec(**data["workload"]),
        chaos=ChaosSpec(**chaos_kwargs),
        horizon=data["horizon"],
        stable_window=data.get("stable_window", 20.0),
    )


@dataclass(frozen=True)
class ReproArtifact:
    """One replayable failure: the trial plus what it must reproduce."""

    spec: TrialSpec
    expected_classification: str
    expected_signature: str
    #: fault events before shrinking (== events when never shrunk)
    original_events: int = 0
    shrink_evals: int = 0
    note: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "spec": spec_to_dict(self.spec),
            "expected": {
                "classification": self.expected_classification,
                "signature": self.expected_signature,
            },
            "shrink": {
                "original_events": self.original_events,
                "evals": self.shrink_evals,
            },
            "note": self.note,
            "replay_with": "python -m repro fuzz replay <this file>",
        }


def artifact_from_dict(data: Dict[str, Any]) -> ReproArtifact:
    if data.get("schema") != SCHEMA:
        raise ValueError(
            f"unsupported artifact schema {data.get('schema')!r}; "
            f"this build reads {SCHEMA!r}")
    shrink = data.get("shrink", {})
    return ReproArtifact(
        spec=spec_from_dict(data["spec"]),
        expected_classification=data["expected"]["classification"],
        expected_signature=data["expected"]["signature"],
        original_events=shrink.get("original_events", 0),
        shrink_evals=shrink.get("evals", 0),
        note=data.get("note", ""),
    )


def save_artifact(artifact: ReproArtifact, path: str) -> str:
    """Write canonical JSON (byte-stable across saves); returns ``path``."""
    blob = json.dumps(artifact.as_dict(), indent=2, sort_keys=True)
    with open(path, "w", encoding="utf-8") as out:
        out.write(blob)
        out.write("\n")
    return path


def load_artifact(path: str) -> ReproArtifact:
    with open(path, "r", encoding="utf-8") as handle:
        return artifact_from_dict(json.load(handle))


def replay(artifact: ReproArtifact) -> Tuple[TrialOutcome, bool]:
    """Re-run the artifact's trial; True when it reproduces exactly.

    "Exactly" means the failure classification matches *and* the
    delivery signature is byte-identical — the replayed simulation made
    every delivery at the same time from the same supplier.
    """
    outcome = run_trial(artifact.spec)
    reproduced = (
        outcome.classification == artifact.expected_classification
        and outcome.signature == artifact.expected_signature)
    return outcome, reproduced
