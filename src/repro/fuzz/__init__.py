"""Deterministic chaos fuzzing: search the fault space, shrink, replay.

The chaos layer (:mod:`repro.chaos`) can *express* any composition of
host, link, server, partition, and packet faults; this package
*searches* that space.  A campaign draws seed-derived random trials
(:mod:`~repro.fuzz.generator`), runs each against the protocol's
reliability properties (:mod:`~repro.fuzz.properties`), delta-debugs
every failure to a minimal fault schedule (:mod:`~repro.fuzz.shrinker`),
and archives it as a self-contained JSON artifact replayable
byte-identically with ``python -m repro fuzz replay``
(:mod:`~repro.fuzz.artifact`).  Campaigns fan out over
:mod:`repro.exec` with serial == parallel parity.  DESIGN.md §11 states
the invariants.
"""

from .artifact import (
    ReproArtifact,
    load_artifact,
    replay,
    save_artifact,
    spec_from_dict,
    spec_to_dict,
)
from .corpus import CampaignSummary, TrialRecord, run_campaign, run_generated_trial
from .generator import (
    FuzzOptions,
    TopologySpec,
    TrialSpec,
    WorkloadSpec,
    generate_trial,
)
from .properties import (
    CLEAN,
    FAILURE_CLASSES,
    NO_EVENTUAL_DELIVERY,
    STABLE_VIOLATION,
    TrialOutcome,
    delivery_signature,
    run_trial,
)
from .shrinker import ShrinkResult, fault_event_count, fault_events, shrink_trial

__all__ = [
    "CLEAN",
    "CampaignSummary",
    "FAILURE_CLASSES",
    "FuzzOptions",
    "NO_EVENTUAL_DELIVERY",
    "ReproArtifact",
    "STABLE_VIOLATION",
    "ShrinkResult",
    "TopologySpec",
    "TrialOutcome",
    "TrialRecord",
    "TrialSpec",
    "WorkloadSpec",
    "delivery_signature",
    "fault_event_count",
    "fault_events",
    "generate_trial",
    "load_artifact",
    "replay",
    "run_campaign",
    "run_generated_trial",
    "run_trial",
    "save_artifact",
    "shrink_trial",
    "spec_from_dict",
    "spec_to_dict",
]
